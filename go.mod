module benchpress

go 1.22
