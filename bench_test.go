// Package benchpress_test is the benchmark harness that regenerates every
// table and figure of the paper (DESIGN.md experiment index) as testing.B
// targets, plus the ablation benches for the design choices DESIGN.md calls
// out. Throughput numbers are attached via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the same series EXPERIMENTS.md records.
package benchpress_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/experiments"
	"benchpress/internal/sqldb/storage/heap"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/stats"
	"benchpress/internal/trace"
	"benchpress/internal/wal"
)

// T1: Table 1 — every benchmark loads and runs; one bench per engine keeps
// output rows aligned with the table's columns.
func benchmarkTable1(b *testing.B, engine string) {
	opts := experiments.QuickOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(opts, engine)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			total += r.TPS
		}
		b.ReportMetric(total/float64(len(rows)), "mean-tps")
	}
}

func BenchmarkTable1_goserial(b *testing.B) { benchmarkTable1(b, "goserial") }
func BenchmarkTable1_golock(b *testing.B)   { benchmarkTable1(b, "golock") }
func BenchmarkTable1_gomvcc(b *testing.B)   { benchmarkTable1(b, "gomvcc") }

// F2: Figure 2 — the scripted game session (select benchmark, select DBMS,
// play, change mixture).
func BenchmarkFig2_GameSession(b *testing.B) {
	opts := experiments.QuickOptions()
	opts.Duration = 3 * time.Second
	for i := 0; i < b.N; i++ {
		steps, res, err := experiments.Fig2Session("ycsb", "gomvcc", opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(steps) == 0 {
			b.Fatal("empty session transcript")
		}
		b.ReportMetric(float64(res.Score), "score")
	}
}

// E-RATE: Section 2.2.1 — rate-control precision per arrival distribution.
func benchmarkRateControl(b *testing.B, exponential bool) {
	opts := experiments.QuickOptions()
	opts.Duration = time.Second
	const target = 1000.0
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RateControl(opts, []float64{target})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Exponential != exponential {
				continue
			}
			if !p.NeverExceeded {
				b.Fatalf("target %.0f exceeded", p.Target)
			}
			b.ReportMetric(p.MeasuredTPS, "measured-tps")
			b.ReportMetric(p.Target, "target-tps")
		}
	}
}

func BenchmarkRateControl_Uniform(b *testing.B)     { benchmarkRateControl(b, false) }
func BenchmarkRateControl_Exponential(b *testing.B) { benchmarkRateControl(b, true) }

// E-MIX: Sections 2.2.2 / 4.1.2 — the read-heavy mixture boost under the
// locking engine.
func BenchmarkMixture_ReadHeavyBoost(b *testing.B) {
	opts := experiments.QuickOptions()
	opts.Duration = 600 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiments.MixtureFlip(opts, "golock")
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]experiments.MixturePhaseResult{}
		for _, r := range res {
			byName[r.Phase] = r
		}
		b.ReportMetric(byName["write-heavy"].TPS, "writeheavy-tps")
		b.ReportMetric(byName["read-only"].TPS, "readonly-tps")
		if byName["read-only"].TPS <= byName["write-heavy"].TPS {
			b.Fatalf("read-only (%.0f) did not beat write-heavy (%.0f)",
				byName["read-only"].TPS, byName["write-heavy"].TPS)
		}
	}
}

// E-TEN: Section 2.2.3 — multi-tenant interference on one instance.
func BenchmarkMultiTenancy_Interference(b *testing.B) {
	opts := experiments.QuickOptions()
	opts.Duration = 1200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiTenancy(opts, "golock")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].TPSAlonePhase, "tenantA-quiet-tps")
		b.ReportMetric(res[0].TPSContended, "tenantA-burst-tps")
		b.ReportMetric(res[0].DegradationPct, "degradation-pct")
	}
}

// E-SHAPE: Section 4.1.1 — the four challenge shapes on the MVCC engine.
func benchmarkShape(b *testing.B, shape string) {
	opts := experiments.QuickOptions()
	opts.Duration = 4 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := experiments.PlayShape(shape, "gomvcc", 400, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Score), "score")
		b.ReportMetric(boolMetric(res.Survived), "survived")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func BenchmarkShape_Steps(b *testing.B)      { benchmarkShape(b, "steps") }
func BenchmarkShape_Sinusoidal(b *testing.B) { benchmarkShape(b, "sinusoidal") }
func BenchmarkShape_Peak(b *testing.B)       { benchmarkShape(b, "peak") }
func BenchmarkShape_Tunnel(b *testing.B)     { benchmarkShape(b, "tunnel") }

// E-TUN: Section 4.3 — tunnel steadiness per engine (jitter CV).
func BenchmarkTunnelJitter_Engines(b *testing.B) {
	opts := experiments.QuickOptions()
	opts.Duration = 2 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := experiments.TunnelJitter(opts, 300, 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.JitterCV, r.Engine+"-jitter-cv")
		}
	}
}

// --------------------------------------------------------------- ablations

// Ablation: centralized queue (one manager, N workers) vs local rate
// limiting (N managers, 1 worker each at rate/N). The paper argues the
// centralized queue controls throughput "from one location"; the ablation
// quantifies the conformance difference.
func BenchmarkAblation_QueueVsLocal(b *testing.B) {
	const target = 800.0
	const workers = 4
	dur := 1200 * time.Millisecond
	for i := 0; i < b.N; i++ {
		// Centralized.
		db, err := dbdriver.Open("gomvcc")
		if err != nil {
			b.Fatal(err)
		}
		bench, _ := core.NewBenchmark("ycsb", 0.02)
		if err := core.Prepare(bench, db, 1); err != nil {
			b.Fatal(err)
		}
		m := core.NewManager(bench, db, []core.Phase{{Duration: dur, Rate: target}},
			core.Options{Terminals: workers})
		if err := m.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		central := conformance(m, target)
		db.Close()

		// Local: split the target across independent single-worker managers.
		db2, _ := dbdriver.Open("gomvcc")
		bench2, _ := core.NewBenchmark("ycsb", 0.02)
		if err := core.Prepare(bench2, db2, 1); err != nil {
			b.Fatal(err)
		}
		var locals []*core.Manager
		for w := 0; w < workers; w++ {
			locals = append(locals, core.NewManager(bench2, db2,
				[]core.Phase{{Duration: dur, Rate: target / workers}},
				core.Options{Terminals: 1, Seed: int64(w + 1), Name: nameN("local", w)}))
		}
		if err := core.RunAll(context.Background(), locals...); err != nil {
			b.Fatal(err)
		}
		var localDev float64
		for _, lm := range locals {
			localDev += conformance(lm, target/workers)
		}
		localDev /= workers
		db2.Close()

		b.ReportMetric(central, "central-conformance-dev")
		b.ReportMetric(localDev, "local-conformance-dev")
	}
}

func nameN(prefix string, n int) string { return prefix + string(rune('a'+n)) }

// conformance computes the mean relative deviation of full per-window
// throughput from the target.
func conformance(m *core.Manager, target float64) float64 {
	var series []int
	for _, w := range m.Collector().Windows() {
		series = append(series, int(w.Committed))
	}
	if len(series) > 1 {
		series = series[:len(series)-1] // drop the partial tail window
	}
	return trace.Conformance(series, target)
}

// Ablation: WAL durability policy. Same workload, three commit-latency
// emulations.
func BenchmarkAblation_WALPolicy(b *testing.B) {
	policies := []struct {
		name   string
		policy wal.SyncPolicy
	}{
		{"none", wal.SyncNone},
		{"async", wal.SyncAsync},
		{"group", wal.SyncGroup},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			dbdriver.Register(dbdriver.Personality{
				Name: "ablation-" + p.name, Dialect: "gosql", Mode: txn.MVCC,
				WALPolicy: p.policy, GroupCommitInterval: 500 * time.Microsecond,
			})
			for i := 0; i < b.N; i++ {
				db, err := dbdriver.Open("ablation-" + p.name)
				if err != nil {
					b.Fatal(err)
				}
				bench, _ := core.NewBenchmark("ycsb", 0.02)
				if err := core.Prepare(bench, db, 1); err != nil {
					b.Fatal(err)
				}
				m := core.NewManager(bench, db,
					[]core.Phase{{Duration: 500 * time.Millisecond, Rate: 0,
						Mix: []float64{0, 20, 0, 60, 0, 20}}}, // write-heavy
					core.Options{Terminals: 4})
				if err := m.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.Collector().Committed())*2, "write-tps")
				db.Close()
			}
		})
	}
}

// Ablation: index path. The same point query through the primary key vs an
// unindexed column (sequential scan).
func BenchmarkAblation_Index(b *testing.B) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	c := db.Connect()
	if _, err := c.Exec("CREATE TABLE pts (id INT NOT NULL, grp INT, payload VARCHAR(64), PRIMARY KEY (id))"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := c.Exec("INSERT INTO pts VALUES (?, ?, 'x')", i, i); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("pk-lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryRow("SELECT payload FROM pts WHERE id = ?", i%5000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seqscan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.QueryRow("SELECT payload FROM pts WHERE grp = ?", i%5000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Per-engine micro-benchmarks: open-loop YCSB throughput (the level
// difficulty of the game).
func benchmarkEngineYCSB(b *testing.B, engine string) {
	for i := 0; i < b.N; i++ {
		db, err := dbdriver.Open(engine)
		if err != nil {
			b.Fatal(err)
		}
		bench, _ := core.NewBenchmark("ycsb", 0.05)
		if err := core.Prepare(bench, db, 1); err != nil {
			b.Fatal(err)
		}
		dur := 500 * time.Millisecond
		m := core.NewManager(bench, db, []core.Phase{{Duration: dur, Rate: 0}},
			core.Options{Terminals: 4})
		if err := m.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Collector().Committed())/dur.Seconds(), "tps")
		db.Close()
	}
}

func BenchmarkEngineYCSB_goserial(b *testing.B) { benchmarkEngineYCSB(b, "goserial") }
func BenchmarkEngineYCSB_golock(b *testing.B)   { benchmarkEngineYCSB(b, "golock") }
func BenchmarkEngineYCSB_gomvcc(b *testing.B)   { benchmarkEngineYCSB(b, "gomvcc") }

// E-SCALE: the same open-loop YCSB run with terminals tied to GOMAXPROCS, so
// `go test -bench EngineYCSBScale -cpu 1,2,4,8` sweeps worker counts in one
// invocation and the striped row store's concurrency scaling shows up as the
// tps trend across -cpu columns. On a single-core host the sweep still varies
// offered concurrency; the stripes then buy reduced lock convoying rather
// than parallel speedup.
func benchmarkEngineYCSBScale(b *testing.B, engine string) {
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		db, err := dbdriver.Open(engine)
		if err != nil {
			b.Fatal(err)
		}
		bench, _ := core.NewBenchmark("ycsb", 0.05)
		if err := core.Prepare(bench, db, 1); err != nil {
			b.Fatal(err)
		}
		dur := 500 * time.Millisecond
		m := core.NewManager(bench, db, []core.Phase{{Duration: dur, Rate: 0}},
			core.Options{Terminals: workers})
		if err := m.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Collector().Committed())/dur.Seconds(), "tps")
		b.ReportMetric(float64(workers), "workers")
		db.Close()
	}
}

func BenchmarkEngineYCSBScale_golock(b *testing.B) { benchmarkEngineYCSBScale(b, "golock") }
func BenchmarkEngineYCSBScale_gomvcc(b *testing.B) { benchmarkEngineYCSBScale(b, "gomvcc") }

// E-DISK: the fixed-terminal YCSB run again, disk-resident — the golock
// personality re-registered with a heap/WAL directory and a deliberately
// small buffer pool, so the run pays page eviction, WAL-before-data
// flushing, and device re-reads on the hot path instead of pure RAM
// access. Alongside tps, each run reports the pool hit rate and the
// data-to-pool size ratio; when requireOverflow is set the run fails
// unless the dataset is at least 2x the pool budget (the acceptance bar
// for "actually exercising eviction"). The pool sweep across 32/64/256
// frames is the hit-rate curve: tps recovers as the working set fits.
func benchmarkEngineYCSBDisk(b *testing.B, poolPages int, requireOverflow bool) {
	name := fmt.Sprintf("golock-disk%d", poolPages)
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		dbdriver.Register(dbdriver.Personality{
			Name: name, Dialect: "mysql", Mode: txn.Locking,
			WALPolicy: wal.SyncGroup, GroupCommitInterval: 500 * time.Microsecond,
			VacuumInterval: 5 * time.Millisecond,
			DataDir:        dir, BufferPoolPages: poolPages,
		})
		db, err := dbdriver.Open(name)
		if err != nil {
			b.Fatal(err)
		}
		bench, _ := core.NewBenchmark("ycsb", 0.05)
		if err := core.Prepare(bench, db, 1); err != nil {
			b.Fatal(err)
		}
		dur := 500 * time.Millisecond
		m := core.NewManager(bench, db, []core.Phase{{Duration: dur, Rate: 0}},
			core.Options{Terminals: 4})
		if err := m.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		committed := m.Collector().Committed()
		if committed == 0 {
			b.Fatal("disk-resident run committed nothing")
		}
		b.ReportMetric(float64(committed)/dur.Seconds(), "tps")
		st, ok := db.Engine().DiskPoolStats()
		if !ok {
			b.Fatal("engine is not disk-resident")
		}
		if acc := st.Hits + st.Misses; acc > 0 {
			b.ReportMetric(float64(st.Hits)/float64(acc)*100, "hit-pct")
		}
		db.Close()
		fi, err := os.Stat(filepath.Join(dir, "heap.db"))
		if err != nil {
			b.Fatal(err)
		}
		dataPages := float64(fi.Size()) / heap.PageSize
		b.ReportMetric(dataPages/float64(poolPages), "data-pool-ratio")
		if requireOverflow && dataPages < 2*float64(poolPages) {
			b.Fatalf("dataset is %.0f pages but the pool holds %d: not a larger-than-RAM run",
				dataPages, poolPages)
		}
	}
}

func BenchmarkEngineYCSBDisk_pool32(b *testing.B)  { benchmarkEngineYCSBDisk(b, 32, true) }
func BenchmarkEngineYCSBDisk_pool64(b *testing.B)  { benchmarkEngineYCSBDisk(b, 64, false) }
func BenchmarkEngineYCSBDisk_pool256(b *testing.B) { benchmarkEngineYCSBDisk(b, 256, false) }

// E-VAC: a sustained update/churn mix against a small hot set leaves behind
// committed-dead versions and row slots that only the online vacuum reclaims
// behind the transaction low-watermark. Every 16th operation is an unindexed
// point query — a sequential scan that pays for every unreclaimed slot — so
// without vacuum the p99 tail drifts upward with run length, while with the
// background vacuum it stays flat. Reported as p99 over the first vs last
// quarter of the run, per variant. WAL is off so the storage layer, not the
// group-commit wait, is what the latencies measure.
func BenchmarkSustainedUpdateP99(b *testing.B) {
	for _, v := range []struct {
		name     string
		interval time.Duration
	}{{"vacuum", time.Millisecond}, {"novacuum", 0}} {
		b.Run(v.name, func(b *testing.B) {
			dbdriver.Register(dbdriver.Personality{
				Name: "p99-" + v.name, Dialect: "gosql", Mode: txn.MVCC,
				WALPolicy: wal.SyncNone, VacuumInterval: v.interval,
			})
			for i := 0; i < b.N; i++ {
				db, err := dbdriver.Open("p99-" + v.name)
				if err != nil {
					b.Fatal(err)
				}
				c := db.Connect()
				if _, err := c.Exec("CREATE TABLE hot (id INT NOT NULL, grp INT, PRIMARY KEY (id))"); err != nil {
					b.Fatal(err)
				}
				const keys = 64
				for k := 0; k < keys; k++ {
					if _, err := c.Exec("INSERT INTO hot VALUES (?, ?)", k, k); err != nil {
						b.Fatal(err)
					}
				}
				const ops = 100000
				var early, late stats.Histogram
				for u := 0; u < ops; u++ {
					k := u % keys
					t0 := time.Now()
					switch {
					case u%16 == 15: // seqscan: visits every unreclaimed slot
						if _, err := c.QueryRow("SELECT id FROM hot WHERE grp = ?", k); err != nil {
							b.Fatal(err)
						}
					case u%4 == 3: // churn: kill the row's slot, re-insert the key
						if _, err := c.Exec("DELETE FROM hot WHERE id = ?", k); err != nil {
							b.Fatal(err)
						}
						if _, err := c.Exec("INSERT INTO hot VALUES (?, ?)", k, k); err != nil {
							b.Fatal(err)
						}
					default: // grow the row's version chain
						if _, err := c.Exec("UPDATE hot SET grp = ? WHERE id = ?", k, k); err != nil {
							b.Fatal(err)
						}
					}
					d := time.Since(t0)
					switch {
					case u < ops/4:
						early.Record(d)
					case u >= ops-ops/4:
						late.Record(d)
					}
				}
				b.ReportMetric(float64(early.Percentile(99).Microseconds()), "early-p99-us")
				b.ReportMetric(float64(late.Percentile(99).Microseconds()), "late-p99-us")
				db.Close()
			}
		})
	}
}

// F1: Figure 1 — the architecture end to end: config -> manager -> queue ->
// workers -> driver -> engine, with statistics, trace, and the control API
// surface all exercised in one pass.
func TestArchitectureEndToEnd(t *testing.T) {
	bench, err := core.NewBenchmark("smallbank", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dbdriver.Open("golock")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := core.Prepare(bench, db, 5); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(bench, db, []core.Phase{
		{Duration: 600 * time.Millisecond, Rate: 500, Exponential: true},
		{Duration: 600 * time.Millisecond, Rate: 0},
	}, core.Options{Terminals: 4})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := m.Collector()
	if c.Committed() == 0 {
		t.Fatal("no commits")
	}
	if c.Errors() > 0 {
		t.Fatalf("errors: %d", c.Errors())
	}
	snap := c.Snapshot()
	if len(snap.TypeNames) != 6 {
		t.Fatalf("smallbank types: %v", snap.TypeNames)
	}
	if len(c.Windows()) == 0 {
		t.Fatal("no stats windows")
	}
}
