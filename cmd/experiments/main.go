// Command experiments regenerates every table and figure of the paper's
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded outcomes).
//
// Usage:
//
//	experiments -exp table1|rate|mixture|tenancy|tunnel|shapes|fig2|all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"benchpress/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1 | rate | mixture | tenancy | tunnel | shapes | fig2 | all")
		quick     = flag.Bool("quick", false, "use fast low-fidelity settings")
		scale     = flag.Float64("scale", 0, "override scale factor")
		terminals = flag.Int("terminals", 0, "override worker count")
		seconds   = flag.Float64("time", 0, "override per-cell duration in seconds")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *terminals > 0 {
		opts.Terminals = *terminals
	}
	if *seconds > 0 {
		opts.Duration = time.Duration(*seconds * float64(time.Second))
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error { return table1(opts) })
	run("rate", func() error { return rate(opts) })
	run("mixture", func() error { return mixture(opts) })
	run("tenancy", func() error { return tenancy(opts) })
	run("tunnel", func() error { return tunnel(opts) })
	run("shapes", func() error { return shapes(opts) })
	run("fig2", func() error { return fig2(opts) })
}

// table1 reproduces Table 1 as a living inventory: every benchmark loaded
// and run on every engine.
func table1(opts experiments.Options) error {
	rows, err := experiments.Table1(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-17s %-9s %10s %9s %9s %7s\n",
		"Class", "Benchmark", "Engine", "tps", "avg ms", "p99 ms", "aborts")
	for _, r := range rows {
		fmt.Printf("%-16s %-17s %-9s %10.0f %9.2f %9.2f %7d\n",
			r.Class, r.Benchmark, r.Engine, r.TPS, r.AvgLatMS, r.P99LatMS, r.Aborts)
	}
	return nil
}

// rate reproduces Section 2.2.1: target vs measured throughput, uniform and
// exponential arrivals, with the never-exceed check.
func rate(opts experiments.Options) error {
	pts, err := experiments.RateControl(opts, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %12s %10s %14s\n", "arrival", "target", "measured", "postponed", "never-exceeded")
	for _, p := range pts {
		arr := "uniform"
		if p.Exponential {
			arr = "exponential"
		}
		fmt.Printf("%-12s %10.0f %12.1f %10d %14v\n", arr, p.Target, p.MeasuredTPS, p.Postponed, p.NeverExceeded)
	}
	return nil
}

// mixture reproduces Section 2.2.2 / 4.1.2: the read-heavy boost.
func mixture(opts experiments.Options) error {
	for _, engine := range experiments.Engines {
		res, err := experiments.MixtureFlip(opts, engine)
		if err != nil {
			return err
		}
		fmt.Printf("engine %s:\n", engine)
		for _, r := range res {
			fmt.Printf("  %-12s %10.0f tps %8.0f aborts/s\n", r.Phase, r.TPS, r.AbortsPS)
		}
	}
	return nil
}

// tenancy reproduces Section 2.2.3: co-tenant interference.
func tenancy(opts experiments.Options) error {
	for _, engine := range experiments.Engines {
		res, err := experiments.MultiTenancy(opts, engine)
		if err != nil {
			return err
		}
		fmt.Printf("engine %s:\n", engine)
		for _, r := range res {
			fmt.Printf("  %-10s quiet-half %8.0f tps   burst-half %8.0f tps   degradation %5.1f%%\n",
				r.Tenant, r.TPSAlonePhase, r.TPSContended, r.DegradationPct)
		}
	}
	return nil
}

// tunnel reproduces the Section 4.3 takeaway: which engines hold a tight
// constant rate.
func tunnel(opts experiments.Options) error {
	res, err := experiments.TunnelJitter(opts, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %10s %10s %8s %12s\n", "engine", "target", "mean tps", "jitter cv", "passed", "worst window")
	for _, r := range res {
		fmt.Printf("%-10s %8.0f %10.1f %10.3f %8v %12.1f\n",
			r.Engine, r.Target, r.MeanTPS, r.JitterCV, r.Passed, r.WorstWindow)
	}
	return nil
}

// shapes reproduces Section 4.1.1: the four challenge shapes, autopilot on
// each engine, printing the target-vs-delivered series.
func shapes(opts experiments.Options) error {
	// Base of 4000 tps sits above goserial's capacity under this mixture
	// (~2k tps) and within golock/gomvcc's, so the staircase exposes who
	// saturates where. The course runs much longer than one measurement
	// cell so that the warm-up grace period is a small fraction of the run.
	base := 4000.0
	opts.Duration *= 6
	for _, shape := range experiments.ShapeNames {
		for _, engine := range experiments.Engines {
			res, err := experiments.PlayShape(shape, engine, base, opts)
			if err != nil {
				return err
			}
			outcome := "CLEARED"
			if !res.Survived {
				outcome = fmt.Sprintf("CRASH@t%d", res.Ticks-1)
			}
			fmt.Printf("%-11s %-9s %-10s score=%-4d series target/measured: %s\n",
				shape, engine, outcome, res.Score, seriesString(res.Targets, res.Measured, 8))
		}
	}
	return nil
}

// fig2 reproduces the Figure 2 demo flow headlessly.
func fig2(opts experiments.Options) error {
	opts.Duration *= 4
	steps, res, err := experiments.Fig2Session("ycsb", "gomvcc", opts)
	if err != nil {
		return err
	}
	for _, s := range steps {
		fmt.Printf("  [%s] %s\n", s.Step, s.Detail)
	}
	fmt.Printf("  trajectory: %s\n", seriesString(res.Targets, res.Measured, 10))
	return nil
}

// seriesString compacts two parallel series for terminal output.
func seriesString(targets, measured []float64, n int) string {
	if len(targets) == 0 {
		return "(empty)"
	}
	step := len(targets) / n
	if step < 1 {
		step = 1
	}
	var parts []string
	for i := 0; i < len(targets); i += step {
		parts = append(parts, fmt.Sprintf("%.0f/%.0f", targets[i], measured[i]))
	}
	return strings.Join(parts, " ")
}
