package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtures maps every rule's failing fixture to the synthetic import path it
// must be linted under; benchlint must exit 1 on each one.
var fixtures = []struct {
	file    string
	pkgpath string
}{
	{"atomic_bad.go", "benchpress/internal/fixture"},
	{"txn_bad.go", "benchpress/internal/fixture"},
	{"errdiscard_bad.go", "benchpress/internal/fixture"},
	{"boundary_bad.go", "benchpress/internal/benchmarks/fixture"},
	{"goroutine_bad.go", "benchpress/internal/fixture"},
}

func testdata(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "rules", "testdata", name)
}

// capture returns scratch files for run's stdout/stderr and a reader.
func capture(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

func TestFailingFixturesExitNonZero(t *testing.T) {
	for _, tc := range fixtures {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			stdout, readOut := capture(t)
			stderr, _ := capture(t)
			code := run([]string{"-pkgpath", tc.pkgpath, testdata(tc.file)}, stdout, stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1", code)
			}
			if out := readOut(); !strings.Contains(out, tc.file+":") {
				t.Errorf("findings do not name the fixture:\n%s", out)
			}
		})
	}
}

func TestCleanFileExitsZero(t *testing.T) {
	stdout, _ := capture(t)
	stderr, readErr := capture(t)
	code := run([]string{"-pkgpath", "benchpress/internal/fixture", testdata("atomic_good.go")}, stdout, stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, readErr())
	}
}

func TestListPrintsEveryRule(t *testing.T) {
	stdout, readOut := capture(t)
	stderr, _ := capture(t)
	if code := run([]string{"-list"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	out := readOut()
	for _, name := range []string{"atomic-consistency", "txn-hygiene", "error-discard", "dialect-boundary", "bare-goroutine"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	stdout, _ := capture(t)
	stderr, readErr := capture(t)
	if code := run([]string{"-rule", "no-such-rule"}, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readErr(), "unknown rule") {
		t.Errorf("stderr missing diagnostic:\n%s", readErr())
	}
}
