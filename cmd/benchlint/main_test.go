package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixtures maps every rule's failing fixture to the synthetic import path it
// must be linted under; benchlint must exit 1 on each one.
var fixtures = []struct {
	file    string
	pkgpath string
}{
	{"atomic_bad.go", "benchpress/internal/fixture"},
	{"txn_bad.go", "benchpress/internal/fixture"},
	{"errdiscard_bad.go", "benchpress/internal/fixture"},
	{"boundary_bad.go", "benchpress/internal/benchmarks/fixture"},
	{"goroutine_bad.go", "benchpress/internal/fixture"},
}

func testdata(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "rules", "testdata", name)
}

// capture returns scratch files for run's stdout/stderr and a reader.
func capture(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

func TestFailingFixturesExitNonZero(t *testing.T) {
	for _, tc := range fixtures {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			stdout, readOut := capture(t)
			stderr, _ := capture(t)
			code := run([]string{"-pkgpath", tc.pkgpath, testdata(tc.file)}, stdout, stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1", code)
			}
			if out := readOut(); !strings.Contains(out, tc.file+":") {
				t.Errorf("findings do not name the fixture:\n%s", out)
			}
		})
	}
}

func TestCleanFileExitsZero(t *testing.T) {
	stdout, _ := capture(t)
	stderr, readErr := capture(t)
	code := run([]string{"-pkgpath", "benchpress/internal/fixture", testdata("atomic_good.go")}, stdout, stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, readErr())
	}
}

func TestListPrintsEveryRule(t *testing.T) {
	stdout, readOut := capture(t)
	stderr, _ := capture(t)
	if code := run([]string{"-list"}, stdout, stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	out := readOut()
	for _, name := range []string{"atomic-consistency", "txn-hygiene", "error-discard", "dialect-boundary", "bare-goroutine"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	stdout, _ := capture(t)
	stderr, readErr := capture(t)
	if code := run([]string{"-rule", "no-such-rule"}, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readErr(), "unknown rule") {
		t.Errorf("stderr missing diagnostic:\n%s", readErr())
	}
}

// TestExitCodeContract pins the three-way contract in one place: 0 clean,
// 1 findings, 2 load/type errors.
func TestExitCodeContract(t *testing.T) {
	broken := filepath.Join(t.TempDir(), "broken.go")
	if err := os.WriteFile(broken, []byte("package p\n\nfunc f() { undefined() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"-pkgpath", "benchpress/internal/fixture", testdata("atomic_good.go")}, 0},
		{"findings", []string{"-pkgpath", "benchpress/internal/fixture", testdata("atomic_bad.go")}, 1},
		{"load error", []string{broken}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, _ := capture(t)
			stderr, readErr := capture(t)
			if code := run(tc.args, stdout, stderr); code != tc.want {
				t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, tc.want, readErr())
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	stdout, readOut := capture(t)
	stderr, _ := capture(t)
	code := run([]string{"-format", "json", "-pkgpath", "benchpress/internal/fixture", testdata("atomic_bad.go")}, stdout, stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(readOut()), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, readOut())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	f := findings[0]
	if !strings.HasSuffix(f.File, "atomic_bad.go") || f.Line == 0 || f.Rule != "atomic-consistency" || f.Message == "" {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	stdout, readOut := capture(t)
	stderr, _ := capture(t)
	code := run([]string{"-format", "json", "-pkgpath", "benchpress/internal/fixture", testdata("atomic_good.go")}, stdout, stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(readOut()); got != "[]" {
		t.Errorf("clean JSON output = %q, want []", got)
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	stdout, _ := capture(t)
	stderr, readErr := capture(t)
	if code := run([]string{"-format", "yaml"}, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readErr(), "unknown format") {
		t.Errorf("stderr missing diagnostic:\n%s", readErr())
	}
}

// git runs git in dir for the diff-mode test repo.
func git(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", append([]string{"-C", dir,
		"-c", "user.name=test", "-c", "user.email=test@test"}, args...)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

// TestDiffModeLintsReverseDependencies builds a two-package git repo where
// the finding lives in an UNCHANGED importer: editing only the imported
// package must still surface the importer's finding through the reverse
// dependency closure, and a clean tree must lint nothing.
func TestDiffModeLintsReverseDependencies(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not on PATH")
	}
	repo := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(repo, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module m\n\ngo 1.22\n")
	write("internal/lib/lib.go", "package lib\n\nfunc F() {}\n")
	write("internal/app/app.go", "package app\n\nimport \"m/internal/lib\"\n\nfunc Run() {\n\tgo lib.F()\n}\n")
	git(t, repo, "init", "-q")
	git(t, repo, "add", "-A")
	git(t, repo, "commit", "-q", "-m", "seed")

	t.Chdir(repo)

	// Clean tree: nothing changed, nothing linted.
	stdout, readOut := capture(t)
	stderr, readErr := capture(t)
	if code := run([]string{"-diff", "HEAD"}, stdout, stderr); code != 0 {
		t.Fatalf("clean tree: exit code = %d, want 0; stderr:\n%s", code, readErr())
	}
	if out := readOut(); out != "" {
		t.Errorf("clean tree produced output:\n%s", out)
	}

	// Touch only lib; the bare-goroutine finding is in app, which imports
	// lib and must be pulled in by the reverse closure.
	write("internal/lib/lib.go", "package lib\n\nfunc F() {}\n\nfunc G() {}\n")
	stdout, readOut = capture(t)
	stderr, _ = capture(t)
	if code := run([]string{"-diff", "HEAD"}, stdout, stderr); code != 1 {
		t.Fatalf("dirty tree: exit code = %d, want 1; output:\n%s", code, readOut())
	}
	if out := readOut(); !strings.Contains(out, "app.go") || !strings.Contains(out, "bare-goroutine") {
		t.Errorf("reverse-dependency finding missing:\n%s", out)
	}
}

func TestDiffModeRejectsPatterns(t *testing.T) {
	stdout, _ := capture(t)
	stderr, readErr := capture(t)
	if code := run([]string{"-diff", "HEAD", "./..."}, stdout, stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(readErr(), "-diff replaces package patterns") {
		t.Errorf("stderr missing diagnostic:\n%s", readErr())
	}
}
