// Command benchlint runs the repository's domain static-analysis rules
// (internal/analysis/rules) over Go packages and exits non-zero on
// findings. It is the lint gate of scripts/verify.sh.
//
// Usage:
//
//	benchlint [-rule name[,name]] [-list] [-format text|json] [-diff ref] [-pkgpath path] [patterns ...]
//
// Patterns are package directories relative to the working directory;
// "dir/..." recurses (default "./..."). A pattern naming a single .go file
// lints that file alone as a synthetic package whose import path is set
// with -pkgpath — this is how a rule's failing fixture can be checked from
// the command line:
//
//	benchlint -pkgpath benchpress/internal/fixture internal/analysis/rules/testdata/errdiscard_bad.go
//
// -diff ref lints only the packages whose files changed since
// merge-base(HEAD, ref), plus every package that transitively imports one
// of them (interprocedural findings can surface in callers of changed
// code). It replaces the pattern arguments and is the fast pre-push gate.
//
// Whatever selects the targets, interprocedural rules always see the full
// program the loader pulled in, so facts flow in from dependencies that
// are not themselves being reported on.
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ruleFlag := fs.String("rule", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	format := fs.String("format", "text", "output format: text or json")
	diffRef := fs.String("diff", "", "lint only packages changed since merge-base(HEAD, ref), plus reverse dependencies")
	pkgpath := fs.String("pkgpath", "benchpress/internal/lintfixture",
		"synthetic import path for single-file arguments (rules scope by path)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "benchlint: unknown format %q (want text or json)\n", *format)
		return 2
	}
	if *list {
		for _, r := range rules.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	active := rules.All()
	if *ruleFlag != "" {
		active = active[:0]
		for _, name := range strings.Split(*ruleFlag, ",") {
			r := rules.Lookup(strings.TrimSpace(name))
			if r == nil {
				fmt.Fprintf(stderr, "benchlint: unknown rule %q (see -list)\n", name)
				return 2
			}
			active = append(active, r)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "benchlint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "benchlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "benchlint:", err)
		return 2
	}

	// Targets are the packages findings are reported in; filePkgs are
	// single-file synthetic packages the loader does not memoize, so they
	// must be added to the program by hand.
	var targets, filePkgs []*analysis.Package
	var dirs []string

	if *diffRef != "" {
		if len(fs.Args()) > 0 {
			fmt.Fprintln(stderr, "benchlint: -diff replaces package patterns; drop the arguments")
			return 2
		}
		dirs, err = changedPackageDirs(root, *diffRef, loader)
		if err != nil {
			fmt.Fprintln(stderr, "benchlint:", err)
			return 2
		}
		if len(dirs) == 0 {
			if *format == "json" {
				fmt.Fprintln(stdout, "[]")
			}
			return 0
		}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var dirPatterns []string
		for _, pat := range patterns {
			if strings.HasSuffix(pat, ".go") {
				pkg, err := loader.LoadFile(pat, *pkgpath)
				if err != nil {
					fmt.Fprintln(stderr, "benchlint:", err)
					return 2
				}
				filePkgs = append(filePkgs, pkg)
				continue
			}
			dirPatterns = append(dirPatterns, pat)
		}
		if len(dirPatterns) > 0 {
			dirs, err = loader.Expand(dirPatterns, cwd)
			if err != nil {
				fmt.Fprintln(stderr, "benchlint:", err)
				return 2
			}
		}
	}

	targets = append(targets, filePkgs...)
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "benchlint:", err)
			return 2
		}
		targets = append(targets, pkg)
	}

	loadBroken := false
	for _, pkg := range targets {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "benchlint: %s: %v\n", pkg.Path, terr)
			loadBroken = true
		}
	}
	if loadBroken {
		return 2
	}

	program := append(loader.Loaded(), filePkgs...)
	diags := analysis.RunProgram(analysis.NewProgram(program), targets, active)

	switch *format {
	case "json":
		if err := writeJSON(stdout, diags, root); err != nil {
			fmt.Fprintln(stderr, "benchlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(d, root))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "benchlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// finding is the JSON shape of one diagnostic; paths are module-relative.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSON(stdout *os.File, diags []analysis.Diagnostic, root string) error {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		out = append(out, finding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relativize shortens absolute diagnostic paths to module-relative ones.
func relativize(d analysis.Diagnostic, root string) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// changedPackageDirs resolves -diff: the absolute directories of packages
// with .go files changed since merge-base(HEAD, ref) — tracked edits and
// untracked additions — widened to every package that transitively imports
// one of them.
func changedPackageDirs(root, ref string, loader *analysis.Loader) ([]string, error) {
	base, err := gitOutput(root, "merge-base", "HEAD", ref)
	if err != nil {
		return nil, fmt.Errorf("git merge-base HEAD %s: %w", ref, err)
	}
	changedOut, err := gitOutput(root, "diff", "--name-only", "--relative", strings.TrimSpace(base), "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("git diff: %w", err)
	}
	untrackedOut, err := gitOutput(root, "ls-files", "--others", "--exclude-standard", "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("git ls-files: %w", err)
	}

	changed := map[string]bool{}
	for _, line := range strings.Split(changedOut+"\n"+untrackedOut, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		changed[filepath.Join(root, filepath.Dir(filepath.FromSlash(line)))] = true
	}
	if len(changed) == 0 {
		return nil, nil
	}

	allDirs, err := loader.Expand([]string{"./..."}, root)
	if err != nil {
		return nil, err
	}
	importers, err := reverseImports(loader, allDirs)
	if err != nil {
		return nil, err
	}

	// Seed with changed dirs that are real package dirs (deleted packages
	// and non-package dirs drop out), then close over reverse imports.
	pkgDirs := map[string]bool{}
	for _, d := range allDirs {
		pkgDirs[d] = true
	}
	var seeds []string
	for d := range changed {
		if pkgDirs[d] {
			seeds = append(seeds, d)
		}
	}
	return reverseClosure(importers, seeds), nil
}

// reverseImports parses import clauses of every package dir (non-test files
// only) and returns the reverse edge map: dependency dir -> importer dirs.
func reverseImports(loader *analysis.Loader, dirs []string) (map[string][]string, error) {
	prefix := loader.ModulePath + "/"
	importers := map[string][]string{}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				var rel string
				if path == loader.ModulePath {
					rel = "."
				} else if strings.HasPrefix(path, prefix) {
					rel = strings.TrimPrefix(path, prefix)
				} else {
					continue
				}
				dep := filepath.Join(loader.ModuleRoot, filepath.FromSlash(rel))
				if !seen[dep] {
					seen[dep] = true
					importers[dep] = append(importers[dep], dir)
				}
			}
		}
	}
	return importers, nil
}

// reverseClosure walks the reverse import edges from the seed dirs and
// returns every reachable dir (including the seeds), sorted.
func reverseClosure(importers map[string][]string, seeds []string) []string {
	out := map[string]bool{}
	queue := append([]string(nil), seeds...)
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if out[d] {
			continue
		}
		out[d] = true
		queue = append(queue, importers[d]...)
	}
	dirs := make([]string, 0, len(out))
	for d := range out {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs
}

// gitOutput runs git in dir and returns its stdout.
func gitOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(errb.String())
		if msg == "" {
			msg = err.Error()
		}
		return "", fmt.Errorf("%s", msg)
	}
	return out.String(), nil
}

// findModuleRoot walks upward from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
