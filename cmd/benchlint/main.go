// Command benchlint runs the repository's domain static-analysis rules
// (internal/analysis/rules) over Go packages and exits non-zero on
// findings. It is the lint gate of scripts/verify.sh.
//
// Usage:
//
//	benchlint [-rule name[,name]] [-list] [-pkgpath path] [patterns ...]
//
// Patterns are package directories relative to the working directory;
// "dir/..." recurses (default "./..."). A pattern naming a single .go file
// lints that file alone as a synthetic package whose import path is set
// with -pkgpath — this is how a rule's failing fixture can be checked from
// the command line:
//
//	benchlint -pkgpath benchpress/internal/fixture internal/analysis/rules/testdata/errdiscard_bad.go
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ruleFlag := fs.String("rule", "", "comma-separated rule names to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	pkgpath := fs.String("pkgpath", "benchpress/internal/lintfixture",
		"synthetic import path for single-file arguments (rules scope by path)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range rules.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	active := rules.All()
	if *ruleFlag != "" {
		active = active[:0]
		for _, name := range strings.Split(*ruleFlag, ",") {
			r := rules.Lookup(strings.TrimSpace(name))
			if r == nil {
				fmt.Fprintf(stderr, "benchlint: unknown rule %q (see -list)\n", name)
				return 2
			}
			active = append(active, r)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "benchlint:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "benchlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "benchlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	var dirPatterns []string
	for _, pat := range patterns {
		if strings.HasSuffix(pat, ".go") {
			pkg, err := loader.LoadFile(pat, *pkgpath)
			if err != nil {
				fmt.Fprintln(stderr, "benchlint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
			continue
		}
		dirPatterns = append(dirPatterns, pat)
	}
	if len(dirPatterns) > 0 {
		dirs, err := loader.Expand(dirPatterns, cwd)
		if err != nil {
			fmt.Fprintln(stderr, "benchlint:", err)
			return 2
		}
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(stderr, "benchlint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	loadBroken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "benchlint: %s: %v\n", pkg.Path, terr)
			loadBroken = true
		}
	}
	if loadBroken {
		return 2
	}

	diags := analysis.Run(pkgs, active)
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(d, root))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "benchlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize shortens absolute diagnostic paths to module-relative ones.
func relativize(d analysis.Diagnostic, root string) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// findModuleRoot walks upward from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
