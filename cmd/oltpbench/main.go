// Command oltpbench is the batch benchmark runner: it loads a workload
// (from a config.xml or flags), executes its phases against a target engine
// personality, and prints the results summary — the classic OLTP-Bench
// driver loop.
//
// Usage:
//
//	oltpbench -config config.xml [-trace trace.txt]
//	oltpbench -bench tpcc -db gomvcc -scale 1 -terminals 8 -time 30 -rate 500
//	oltpbench -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/config"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/monitor"
	"benchpress/internal/trace"
)

func main() {
	var (
		configPath = flag.String("config", "", "workload config.xml (overrides the individual flags)")
		benchName  = flag.String("bench", "ycsb", "benchmark name")
		dbName     = flag.String("db", "gomvcc", "target DBMS personality")
		scale      = flag.Float64("scale", 1, "scale factor")
		terminals  = flag.Int("terminals", 8, "worker threads")
		seconds    = flag.Float64("time", 10, "phase duration in seconds")
		rate       = flag.Float64("rate", 0, "target tps (0 = unlimited)")
		weights    = flag.String("weights", "", "comma-separated mixture weights")
		arrival    = flag.String("arrival", "uniform", "arrival distribution: uniform | exponential")
		tracePath  = flag.String("trace", "", "write per-transaction trace to this file")
		replayPath = flag.String("replay", "", "replay the per-second rate curve of a recorded trace (overrides -time/-rate)")
		seed       = flag.Int64("seed", 1, "random seed")
		list       = flag.Bool("list", false, "list benchmarks and DBMS personalities, then exit")
		monitorOn  = flag.Bool("monitor", true, "collect host resource statistics")
		dataDir    = flag.String("data-dir", "", "run the target DBMS disk-resident: heap file + WAL in this directory, with full recovery on restart")
		poolPages  = flag.Int("buffer-pool-pages", 0, "buffer pool budget in 4KiB pages for -data-dir mode (0 = engine default)")
	)
	flag.Parse()

	// Disk residency is a property of the chosen personality: re-register the
	// target under the same name with the heap/WAL directory attached, so the
	// run's Open gets the disk engine.
	if *dataDir != "" {
		p, err := dbdriver.Lookup(*dbName)
		if err != nil {
			fatal(err)
		}
		p.DataDir = *dataDir
		p.BufferPoolPages = *poolPages
		dbdriver.Register(p)
	}

	if *list {
		fmt.Println("benchmarks: ", strings.Join(core.BenchmarkNames(), ", "))
		fmt.Println("dbms:       ", strings.Join(dbdriver.Names(), ", "))
		return
	}

	var (
		wl  *config.Workload
		err error
	)
	if *configPath != "" {
		wl, err = config.ParseFile(*configPath)
		if err != nil {
			fatal(err)
		}
	} else {
		wl = &config.Workload{
			Benchmark:   *benchName,
			DBType:      *dbName,
			ScaleFactor: *scale,
			Terminals:   *terminals,
			Works: []config.Work{{
				Time:    *seconds,
				Rate:    rateString(*rate),
				Weights: *weights,
				Arrival: *arrival,
			}},
		}
		if err := wl.Validate(); err != nil {
			fatal(err)
		}
	}

	if err := run(wl, *tracePath, *replayPath, *seed, *monitorOn); err != nil {
		fatal(err)
	}
}

func rateString(r float64) string {
	if r <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%g", r)
}

func run(wl *config.Workload, tracePath, replayPath string, seed int64, monitorOn bool) (retErr error) {
	bench, err := core.NewBenchmark(wl.Benchmark, wl.ScaleFactor)
	if err != nil {
		return err
	}
	db, err := dbdriver.Open(wl.DBType)
	if err != nil {
		return err
	}
	defer db.Close()

	fmt.Printf("== loading %s (scale %g) into %s\n", wl.Benchmark, wl.ScaleFactor, wl.DBType)
	start := time.Now()
	if err := core.Prepare(bench, db, seed); err != nil {
		return err
	}
	fmt.Printf("   loaded %d rows in %v\n", db.Engine().RowCount(), time.Since(start).Round(time.Millisecond))

	var phases []core.Phase
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			return err
		}
		entries, err := trace.Read(f)
		_ = f.Close() // read-only replay file; close cannot lose data
		if err != nil {
			return err
		}
		rates := trace.RateSchedule(entries, time.Second)
		if len(rates) == 0 {
			return fmt.Errorf("trace %q has no committed transactions to replay", replayPath)
		}
		fmt.Printf("== replaying %d seconds of recorded load from %s\n", len(rates), replayPath)
		phases = core.PhasesFromRates(rates, time.Second, nil)
	}
	for _, w := range wl.Works {
		if replayPath != "" {
			break // the replay schedule replaces the configured works
		}
		tps, err := w.RateTPS()
		if err != nil {
			return err
		}
		mix, err := w.MixWeights()
		if err != nil {
			return err
		}
		phases = append(phases, core.Phase{
			Duration:    w.Duration(),
			Rate:        tps,
			Mix:         mix,
			Exponential: w.ExponentialArrival(),
			ThinkTime:   w.ThinkTime(),
		})
	}

	opts := core.Options{Terminals: wl.Terminals, Seed: seed}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		// The trace file is a write path: a failed close means recorded
		// transactions were lost, so it must fail the run.
		defer func() {
			if cerr := traceFile.Close(); cerr != nil && retErr == nil {
				retErr = fmt.Errorf("close trace file: %w", cerr)
			}
		}()
		opts.Trace = trace.NewWriter(traceFile)
	}

	var mon *monitor.Monitor
	if monitorOn {
		mon = monitor.New(time.Second)
		mon.Start()
		defer mon.Stop()
	}

	m := core.NewManager(bench, db, phases, opts)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	fmt.Printf("== running %d phase(s) with %d terminal(s)\n", len(phases), wl.Terminals)
	runStart := time.Now()
	if err := m.Run(ctx); err != nil && err != context.Canceled {
		return err
	}
	elapsed := time.Since(runStart)

	printSummary(m, elapsed, mon)
	return nil
}

func printSummary(m *core.Manager, elapsed time.Duration, mon *monitor.Monitor) {
	c := m.Collector()
	fmt.Printf("\n== results (%v elapsed)\n", elapsed.Round(time.Millisecond))
	fmt.Printf("   committed: %d (%.1f tps)\n", c.Committed(), float64(c.Committed())/elapsed.Seconds())
	fmt.Printf("   aborted:   %d   retries: %d   errors: %d   postponed: %d\n",
		c.Aborted(), c.Retries(), c.Errors(), m.Postponed())
	fmt.Printf("   latency:   %s\n", c.Global().Snapshot())
	fmt.Println("   per transaction type:")
	snap := c.Snapshot()
	for i, name := range snap.TypeNames {
		tl := snap.TypeLat[i]
		fmt.Printf("     %-24s %9d txns  avg %7.2f ms  p50 %7.2f  p95 %7.2f  p99 %7.2f\n",
			name, snap.TypeCounts[i], float64(snap.TypeLatency[i].Microseconds())/1000,
			msf(tl.P50), msf(tl.P95), msf(tl.P99))
	}
	if mon != nil {
		if s := mon.Latest(); s.HostStats {
			fmt.Printf("   host: cpu %.0f%%us/%.0f%%sy  mem %.0f%%  heap %.0fMB\n",
				s.CPUUserPct, s.CPUSystemPct, s.MemUsedPct, s.HeapMB)
		}
	}
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltpbench:", err)
	os.Exit(1)
}
