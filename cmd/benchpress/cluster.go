package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"benchpress/internal/api"
	"benchpress/internal/cluster"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/monitor"
)

// Cluster modes: instead of one process generating all load, a coordinator
// process owns the control plane (REST API, merged stats, rate/mixture
// fan-out) and N worker processes generate load — against their own embedded
// engines, or against one shared engine served by an --engine-server process
// (-db remote:<addr>). This is the scale-out shape from the OLTP-Bench
// lineage: the client tier scales horizontally while the control surface and
// the feedback stream stay single.

// runCoordinator serves the control wire on wireAddr and the REST API
// (including /api/v1/cluster) on httpAddr until the context ends.
func runCoordinator(ctx context.Context, wireAddr, httpAddr string) {
	if httpAddr == "" {
		fatal(fmt.Errorf("--coordinator requires -http for the control API"))
	}
	ln, err := net.Listen("tcp", wireAddr)
	if err != nil {
		fatal(err)
	}
	co := cluster.NewCoordinator(ln, cluster.CoordinatorOptions{})
	defer co.Close()

	mon := monitor.New(time.Second)
	mon.Start()
	defer mon.Stop()
	srv := api.NewServer(mon)
	srv.EnableCluster(co, ln.Addr().String())

	hsrv := &http.Server{Addr: httpAddr, Handler: srv.Handler()}
	//lint:ignore bare-goroutine Shutdown below is the lifecycle bound for ListenAndServe
	go func() {
		if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "benchpress: coordinator http:", err)
		}
	}()
	fmt.Printf("== coordinator: control wire %s, API http://%s\n", ln.Addr(), httpAddr)
	fmt.Println("   workers register via POST /api/v1/cluster/workers; merged feed at /api/v1/cluster/stream")

	<-ctx.Done()
	shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = hsrv.Shutdown(shctx)
}

// runEngineServer loads the benchmark into a fresh embedded engine and serves
// engine sessions on addr until the context ends. Workers pointed at it with
// -db remote:<addr> skip their own load phase. commitDelay > 0 adds fixed
// per-commit latency on top of the personality's own WAL policy, emulating a
// DBMS whose commits pay a durability or replication round trip — the regime
// where a single closed-loop load generator saturates long before the engine
// does and scale-out clients are required.
func runEngineServer(ctx context.Context, addr, benchName, dbName string, scale float64, commitDelay time.Duration) {
	b, err := core.NewBenchmark(benchName, scale)
	if err != nil {
		fatal(err)
	}
	p, err := dbdriver.Lookup(dbName)
	if err != nil {
		fatal(err)
	}
	if commitDelay > 0 {
		p.CommitDelay = commitDelay
	}
	db, err := dbdriver.OpenWith(p)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	fmt.Printf("== engine server: loading %s into %s...\n", benchName, dbName)
	if err := core.Prepare(b, db, time.Now().UnixNano()%100000+1); err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	es := cluster.ServeEngine(ln, db)
	defer es.Close()
	fmt.Printf("   serving engine sessions on %s (workers: -db remote:%s)\n", ln.Addr(), ln.Addr())
	<-ctx.Done()
}

// runWorkerMode runs one worker agent: build the workload (embedded or
// remote engine), register with the coordinator, and stream stats until the
// run completes.
func runWorkerMode(ctx context.Context, coord, benchName, dbName string, scale float64, terminals int, seconds float64) {
	b, err := core.NewBenchmark(benchName, scale)
	if err != nil {
		fatal(err)
	}
	var db *dbdriver.DB
	if remoteAddr, ok := strings.CutPrefix(dbName, "remote:"); ok {
		dialer, err := cluster.DialRemoteEngine(remoteAddr)
		if err != nil {
			fatal(err)
		}
		// The engine-server process loaded the data; this worker only runs
		// the execute phase.
		db = dbdriver.OpenRemote(dialer)
	} else {
		db, err = dbdriver.Open(dbName)
		if err != nil {
			fatal(err)
		}
		if err := core.Prepare(b, db, time.Now().UnixNano()%100000+1); err != nil {
			fatal(err)
		}
	}
	defer db.Close()

	name := fmt.Sprintf("%s-%d", benchName, os.Getpid())
	opts := cluster.WorkerOptions{Name: name, Benchmark: benchName, DB: dbName}
	if strings.HasPrefix(coord, "http://") || strings.HasPrefix(coord, "https://") {
		reg, err := cluster.RegisterWorker(ctx, strings.TrimSuffix(coord, "/"), cluster.RegisterRequest{
			Name: name, Benchmark: benchName, DB: dbName,
		})
		if err != nil {
			fatal(err)
		}
		opts.Addr = reg.WireAddr
		opts.WorkerID = reg.WorkerID
	} else {
		opts.Addr = coord // direct control-wire address; registers via Hello
	}

	dur := time.Duration(seconds * float64(time.Second))
	m := core.NewManager(b, db, []core.Phase{{Duration: dur}}, core.Options{
		Terminals: terminals,
		Name:      name,
	})
	fmt.Printf("== worker %s: %s on %s for %v, coordinator %s\n", name, benchName, dbName, dur, opts.Addr)
	if err := cluster.RunWorker(ctx, m, opts); err != nil {
		fatal(err)
	}
	c := m.Collector()
	fmt.Printf("   done: committed=%d aborted=%d errors=%d %s\n",
		c.Committed(), c.Aborted(), c.Errors(), c.GlobalSummary())
}
