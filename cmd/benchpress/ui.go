package main

// indexHTML is the single-file browser front end: a canvas drawing the
// obstacle course scrolling right-to-left with the character's height bound
// to the measured throughput, plus live stats from the control API. It is a
// thin view - all game logic runs server-side in internal/game.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>BenchPress</title>
<style>
  body { background: #10141a; color: #dde; font-family: monospace; margin: 20px; }
  canvas { background: #182030; border: 1px solid #334; display: block; margin: 12px 0; }
  #stats { white-space: pre; }
  button { font-family: monospace; background: #2a3a55; color: #dde; border: 1px solid #456;
           padding: 6px 14px; margin-right: 8px; cursor: pointer; }
</style>
</head>
<body>
<h2>BenchPress</h2>
<div>
  <button onclick="jump()">JUMP (space)</button>
  <button onclick="mixture('readonly')">read-only mix</button>
  <button onclick="mixture('writeheavy')">super-writes mix</button>
  <button onclick="mixture('default')">default mix</button>
</div>
<canvas id="c" width="960" height="420"></canvas>
<div id="stats">connecting...</div>
<script>
const canvas = document.getElementById('c');
const ctx = canvas.getContext('2d');
let course = [], ticks = [], maxY = 1;

function jump() { fetch('/game/jump', {method:'POST', body: JSON.stringify({delta: 150})}); }

// The v1 API addresses workloads by name; resolve it once, then follow the
// live SSE window stream for per-window percentiles.
let wl = null, lastWin = null;
async function init() {
  try {
    const ls = await (await fetch('/api/v1/workloads')).json();
    if (ls.workloads && ls.workloads.length) {
      wl = ls.workloads[0].name;
      const es = new EventSource('/api/v1/workloads/' + wl + '/stream');
      es.addEventListener('window', e => { lastWin = JSON.parse(e.data); });
    }
  } catch (e) { /* legacy flat routes remain as fallback */ }
}
init();

function mixture(preset) {
  if (wl) {
    fetch('/api/v1/workloads/' + wl + '/mixture', {method:'POST',
      headers: {'Content-Type': 'application/json'}, body: JSON.stringify({preset: preset})});
  } else {
    fetch('/api/mixture', {method:'POST', body: JSON.stringify({preset: preset})});
  }
}
document.addEventListener('keydown', e => { if (e.code === 'Space') { e.preventDefault(); jump(); } });

function yOf(v) { return canvas.height - 20 - (v / maxY) * (canvas.height - 60); }

function draw() {
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  if (course.length === 0) return;
  maxY = 1;
  for (const p of course) if (p.Obstacle && p.Hi > 0) maxY = Math.max(maxY, p.Hi * 1.2);
  const now = ticks.length;
  const span = 80; // visible ticks
  const x0 = now - 20; // character fixed near the left
  const w = canvas.width / span;
  for (let i = 0; i < span; i++) {
    const idx = x0 + i;
    if (idx < 0 || idx >= course.length) continue;
    const p = course[idx], x = i * w;
    if (p.Obstacle && p.Hi > 0) {
      ctx.fillStyle = p.AutoPil ? '#553' : '#2d4';
      ctx.globalAlpha = 0.25;
      ctx.fillRect(x, yOf(p.Hi), w + 1, yOf(p.Lo) - yOf(p.Hi));
      ctx.globalAlpha = 1.0;
      ctx.fillStyle = p.AutoPil ? '#aa5' : '#484';
      ctx.fillRect(x, 0, w + 1, yOf(p.Hi));
      ctx.fillRect(x, yOf(Math.max(p.Lo, 0)), w + 1, canvas.height);
    }
  }
  // Measured-throughput trail and character.
  ctx.strokeStyle = '#6cf'; ctx.lineWidth = 2; ctx.beginPath();
  for (let i = Math.max(0, now - 20); i < now; i++) {
    const x = (i - x0) * w, y = yOf(ticks[i].Measured);
    if (i === Math.max(0, now - 20)) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  }
  ctx.stroke();
  if (now > 0) {
    const last = ticks[now - 1];
    ctx.fillStyle = '#fc3';
    ctx.beginPath();
    ctx.arc(20 * w, yOf(last.Measured), 7, 0, 2 * Math.PI);
    ctx.fill();
    ctx.strokeStyle = '#f66';
    ctx.setLineDash([4, 4]);
    ctx.beginPath();
    ctx.moveTo(0, yOf(last.Target)); ctx.lineTo(canvas.width, yOf(last.Target));
    ctx.stroke();
    ctx.setLineDash([]);
  }
}

async function poll() {
  try {
    const gs = await (await fetch('/game/state')).json();
    course = gs.course || []; ticks = gs.ticks || [];
    const stURL = wl ? '/api/v1/workloads/' + wl : '/api/status';
    const st = await (await fetch(stURL)).json();
    let txt = 'DBMS ' + st.dbms + '  benchmark ' + st.benchmark +
      '\nmeasured ' + st.tps.toFixed(0) + ' tps   target ' + gs.target.toFixed(0) +
      ' tps   avg latency ' + st.avg_latency_ms.toFixed(2) + ' ms' +
      '\ncommitted ' + st.committed + '  aborted ' + st.aborted + '  errors ' + st.errors;
    if (st.p99_ms !== undefined) {
      txt += '\nlatency p50 ' + st.p50_ms.toFixed(2) + '  p95 ' + st.p95_ms.toFixed(2) +
        '  p99 ' + st.p99_ms.toFixed(2) + ' ms (run)';
    }
    if (lastWin) {
      txt += '\nwindow ' + lastWin.second + ': ' + lastWin.tps.toFixed(0) + ' tps  p95 ' +
        lastWin.p95_ms.toFixed(2) + '  p99 ' + lastWin.p99_ms.toFixed(2) + ' ms';
    }
    if (st.resources && st.resources.host_stats) {
      txt += '\ncpu ' + st.resources.cpu_user_pct.toFixed(0) + '%us ' +
        st.resources.cpu_system_pct.toFixed(0) + '%sy   mem ' +
        st.resources.mem_used_pct.toFixed(0) + '%';
    }
    document.getElementById('stats').textContent = txt;
    draw();
  } catch (e) {
    document.getElementById('stats').textContent = 'poll error: ' + e;
  }
}
setInterval(poll, 250);
</script>
</body>
</html>
`
