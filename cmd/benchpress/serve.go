package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"benchpress/internal/api"
	"benchpress/internal/benchmarks/synthetic"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/monitor"
	"benchpress/internal/synth"
)

// Serve-mode defaults for workloads started over the API without explicit
// settings.
const (
	serveDefaultScale     = 0.2
	serveDefaultTerminals = 8
	serveDefaultDuration  = 60 * time.Second
)

// runServe is the API-only mode: no game, no initial workload — every
// workload is started, captured, synthesized, and stopped through
// /api/v1. This is the REST surface the capture → synthesize → replay
// round trip drives end to end.
func runServe(ctx context.Context, addr string) {
	if addr == "" {
		fatal(fmt.Errorf("-serve requires -http addr"))
	}
	mon := monitor.New(time.Second)
	mon.Start()
	defer mon.Stop()
	srv := api.NewServer(mon)
	srv.StartWorkload = startWorkloadFunc(ctx, srv)

	server := &http.Server{Addr: addr, Handler: srv.Handler()}
	//lint:ignore bare-goroutine Shutdown below is the completion path; ListenAndServe only returns on close
	go func() {
		if err := server.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "benchpress: http:", err)
		}
	}()
	fmt.Printf("== BenchPress API server on http://%s/api/v1 (POST /api/v1/workloads to begin)\n", addr)
	<-ctx.Done()
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_ = server.Shutdown(shutCtx) // exiting anyway; managers stop with the context
}

// startWorkloadFunc builds the POST /api/v1/workloads handler's launcher:
// prepare a benchmark (or a synthetic replay of a stored profile), start
// its manager, and hand it back to the API for registration.
func startWorkloadFunc(ctx context.Context, srv *api.Server) func(api.StartRequest) (*core.Manager, error) {
	return func(req api.StartRequest) (*core.Manager, error) {
		if req.Benchmark == "" {
			return nil, fmt.Errorf("benchmark required")
		}
		scale := req.Scale
		if scale <= 0 {
			scale = serveDefaultScale
		}
		terminals := req.Terminals
		if terminals <= 0 {
			terminals = serveDefaultTerminals
		}
		dur := serveDefaultDuration
		if req.DurationSec > 0 {
			dur = time.Duration(req.DurationSec * float64(time.Second))
		}
		dbms := req.DBMS
		if dbms == "" {
			dbms = "gomvcc"
		}

		var (
			bench   core.Benchmark
			arrival *core.ArrivalSpec
			err     error
		)
		if strings.EqualFold(req.Benchmark, "synthetic") && req.ResolvedProfile != nil {
			// Replay a stored profile: the profile fixes the source schema
			// and scale, and the synthesizer derives the open-loop arrival
			// spec from the capture plus the request's dials.
			var sb *synthetic.Benchmark
			sb, err = synthetic.FromProfile(req.ResolvedProfile)
			if err != nil {
				return nil, err
			}
			var syn *synth.Synthesizer
			syn, err = synth.NewSynthesizer(req.ResolvedProfile, req.Amplify)
			if err != nil {
				return nil, err
			}
			syn.Process = req.Process
			syn.Skew = req.Skew
			spec := syn.Spec()
			arrival = &spec
			bench = sb
			scale = req.ResolvedProfile.Scale
		} else {
			bench, err = core.NewBenchmark(req.Benchmark, scale)
			if err != nil {
				return nil, err
			}
		}

		db, err := dbdriver.Open(dbms)
		if err != nil {
			return nil, err
		}
		if err := core.Prepare(bench, db, time.Now().UnixNano()%100000+1); err != nil {
			db.Close()
			return nil, err
		}
		name := req.Name
		if name == "" {
			name = bench.Name()
		}
		m := core.NewManager(bench, db, []core.Phase{{Duration: dur, Rate: req.Rate}},
			core.Options{Name: name, Terminals: terminals})
		if req.Mix != nil {
			m.SetMix(req.Mix)
		}
		if arrival != nil {
			if err := m.SetArrival(*arrival); err != nil {
				db.Close()
				return nil, err
			}
		}
		srv.RecordScale(name, scale)
		//lint:ignore bare-goroutine Manager.Run signals completion through Manager.Done(); DELETE /workloads/{name} is the shutdown path
		go func() {
			if err := m.Run(ctx); err != nil && err != context.Canceled {
				fmt.Fprintf(os.Stderr, "benchpress: workload %s: %v\n", name, err)
			}
			db.Close()
		}()
		return m, nil
	}
}
