// Command benchpress runs the BenchPress game: a workload whose target rate
// is the player's (or autopilot's) character, an obstacle course derived
// from the paper's challenge shapes, the REST control API, and an embedded
// browser UI.
//
// Usage:
//
//	benchpress -bench ycsb -db gomvcc -course steps -autopilot        # headless
//	benchpress -bench tpcc -db golock -course sinusoidal -http :8080  # browser game
//	benchpress -course-file mycourse.json -autopilot
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"benchpress/internal/api"
	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/dbdriver"
	"benchpress/internal/experiments"
	"benchpress/internal/game"
	"benchpress/internal/monitor"
)

func main() {
	var (
		benchName  = flag.String("bench", "ycsb", "benchmark (the game character)")
		dbName     = flag.String("db", "gomvcc", "target DBMS (the game level)")
		courseName = flag.String("course", "steps", "challenge shape: steps | sinusoidal | peak | tunnel")
		courseFile = flag.String("course-file", "", "custom course JSON (overrides -course)")
		base       = flag.Float64("base", 600, "course base throughput (tps)")
		seconds    = flag.Float64("duration", 30, "course duration in seconds")
		scale      = flag.Float64("scale", 0.2, "benchmark scale factor")
		terminals  = flag.Int("terminals", 8, "worker threads")
		autopilot  = flag.Bool("autopilot", false, "let the autopilot play")
		httpAddr   = flag.String("http", "", "serve the browser UI and control API on this address")
		gravity    = flag.Float64("gravity", 0, "gravity in tps/sec (default base/2)")
		coordAddr  = flag.String("coordinator", "", "run as cluster coordinator; control-wire listen address (requires -http)")
		workerOf   = flag.String("worker", "", "run as worker agent; coordinator HTTP base URL or control-wire address")
		engineAddr = flag.String("engine-server", "", "serve the embedded engine to remote workers on this address")
		commitLat  = flag.Duration("commit-delay", 0, "engine-server only: extra per-commit latency emulating durable/replicated commits")
		serveMode  = flag.Bool("serve", false, "API-only server: workloads start, capture, and synthesize via /api/v1 (requires -http)")
		dataDir    = flag.String("data-dir", "", "run the target DBMS disk-resident: heap file + WAL in this directory, with full recovery on restart")
		poolPages  = flag.Int("buffer-pool-pages", 0, "buffer pool budget in 4KiB pages for -data-dir mode (0 = engine default)")
	)
	flag.Parse()

	// Disk residency is a property of the chosen personality: re-register the
	// target under the same name with the heap/WAL directory attached, so
	// every later Open (game backend, serve mode) gets the disk engine.
	if *dataDir != "" {
		p, err := dbdriver.Lookup(*dbName)
		if err != nil {
			fatal(err)
		}
		p.DataDir = *dataDir
		p.BufferPoolPages = *poolPages
		dbdriver.Register(p)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Serve and cluster modes replace the single-process game loop entirely.
	switch {
	case *serveMode:
		runServe(ctx, *httpAddr)
		return
	case *coordAddr != "":
		runCoordinator(ctx, *coordAddr, *httpAddr)
		return
	case *engineAddr != "":
		runEngineServer(ctx, *engineAddr, *benchName, *dbName, *scale, *commitLat)
		return
	case *workerOf != "":
		runWorkerMode(ctx, *workerOf, *benchName, *dbName, *scale, *terminals, *seconds)
		return
	}

	// Build the course.
	var course *game.Course
	var err error
	if *courseFile != "" {
		f, ferr := os.Open(*courseFile)
		if ferr != nil {
			fatal(ferr)
		}
		course, err = game.LoadCourse(f)
		_ = f.Close() // read-only course file; close cannot lose data
	} else {
		course, err = experiments.BuildCourse(*courseName, *base,
			time.Duration(*seconds*float64(time.Second)), 500*time.Millisecond)
	}
	if err != nil {
		fatal(err)
	}

	// Launch the workload (Figure 2a/2b: benchmark and DBMS selection).
	fmt.Printf("== BenchPress: %s on %s, course %q (%v)\n",
		*benchName, *dbName, course.Name, course.Duration().Round(time.Second))
	fmt.Println("   loading...")
	backend, err := game.LaunchWorkload(ctx, *benchName, *dbName, *scale, *terminals,
		course.Duration()+time.Hour)
	if err != nil {
		fatal(err)
	}

	g := *gravity
	if g <= 0 {
		g = *base / 2
	}
	state := &liveState{course: course}
	gm := game.New(course, backend, nil, game.Config{
		Gravity: g, MaxRate: *base * 5,
		OnTick: state.record,
	})

	if *httpAddr != "" {
		mon := monitor.New(time.Second)
		mon.Start()
		defer mon.Stop()
		srv := api.NewServer(mon, backend.Manager)
		go serveUI(*httpAddr, srv, gm, state)
		fmt.Printf("   UI on http://%s  (keys: space = jump)\n", *httpAddr)
	}

	var result game.Result
	if *autopilot {
		fmt.Println("   autopilot engaged")
		result = game.NewAutopilot(gm).Play(ctx)
	} else if *httpAddr == "" {
		fmt.Println("   no -http and no -autopilot: running autopilot by default")
		result = game.NewAutopilot(gm).Play(ctx)
	} else {
		result = gm.Run(ctx)
	}

	printResult(result)
	if !result.Survived {
		os.Exit(2)
	}
}

func printResult(res game.Result) {
	fmt.Printf("\n== game over: course %q\n", res.CourseName)
	if res.Survived {
		fmt.Printf("   CLEARED  score=%d\n", res.Score)
	} else {
		fmt.Printf("   CRASHED at tick %d  score=%d\n", res.CrashedAt, res.Score)
	}
	if res.Latency.Count > 0 {
		fmt.Printf("   latency: %s\n", res.Latency)
	}
	n := len(res.Trajectory)
	step := n / 12
	if step < 1 {
		step = 1
	}
	fmt.Println("   tick  corridor          target  measured")
	for i := 0; i < n; i += step {
		r := res.Trajectory[i]
		fmt.Printf("   %4d  [%6.0f,%6.0f]  %7.0f  %8.1f\n", r.Index, r.Lo, r.Hi, r.Target, r.Measured)
	}
}

// liveState buffers tick records for the browser.
type liveState struct {
	mu     sync.Mutex
	course *game.Course
	ticks  []game.TickRecord
}

func (s *liveState) record(r game.TickRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks = append(s.ticks, r)
}

func (s *liveState) snapshot() []game.TickRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]game.TickRecord, len(s.ticks))
	copy(out, s.ticks)
	return out
}

// serveUI mounts the control API under /api/, the game endpoints, and the
// single-file UI.
func serveUI(addr string, srv *api.Server, gm *game.Game, state *liveState) {
	mux := http.NewServeMux()
	// Versioned API and the Prometheus endpoint mount at their canonical
	// paths; the StripPrefix mount keeps the legacy flat routes (/api/status,
	// /api/rate, ...) the UI's fallbacks still use.
	mux.Handle("/api/v1/", srv.Handler())
	mux.Handle("/metrics", srv.Handler())
	mux.Handle("/api/", http.StripPrefix("/api", srv.Handler()))
	mux.HandleFunc("GET /game/state", func(w http.ResponseWriter, r *http.Request) {
		type point struct {
			Lo, Hi            float64
			Obstacle, AutoPil bool
		}
		ticks := state.snapshot()
		for i := range ticks {
			// Open points carry +Inf bounds, which JSON cannot encode.
			if math.IsInf(ticks[i].Hi, 1) {
				ticks[i].Hi = 0
			}
		}
		course := make([]point, len(state.course.Points))
		for i, p := range state.course.Points {
			hi := p.Hi
			if math.IsInf(hi, 1) {
				hi = 0
			}
			course[i] = point{Lo: p.Lo, Hi: hi, Obstacle: p.Obstacle, AutoPil: p.AutoPilot}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"course": course,
			"ticks":  ticks,
			"target": gm.Target(),
		})
	})
	mux.HandleFunc("POST /game/jump", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Delta float64 `json:"delta"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		if req.Delta <= 0 {
			req.Delta = 100
		}
		gm.Controls().Jump(req.Delta)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(indexHTML))
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "benchpress: http:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpress:", err)
	os.Exit(1)
}
