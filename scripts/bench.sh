#!/usr/bin/env sh
# bench.sh — runs the benchmark suites and writes the recorded-number files:
#
#   BENCH_hotpath.json  hot-path micro/macro benchmarks (ns/op, B/op,
#                       allocs/op) next to the pre-overhaul baseline
#                       (commit 18c7be1, same machine class)
#   BENCH_storage.json  storage-concurrency record: the -cpu worker sweep
#                       over the striped row store, the sustained-update p99
#                       vacuum ablation, and the fixed 4-terminal YCSB rows
#                       next to the pre-striping baseline (commit 27373b1)
#   BENCH_obsv.json     observability-overhead record: the fixed-terminal
#                       YCSB rows and the stats recording micros with the
#                       per-shard window histograms wired into the hot path,
#                       next to the pre-histogram baseline (commit fafef9a)
#   BENCH_disk.json     disk-residency record: the all-RAM golock YCSB row
#                       next to the disk-resident buffer-pool sweep
#                       (32/64/256 frames) with hit rates and the
#                       dataset-to-pool ratio
#
# Usage: scripts/bench.sh [hotpath.json] [storage.json] [obsv.json] [synth.json] [disk.json]
#        scripts/bench.sh --compare <baseline.json> [current.json] [--allow-missing]
#
# The --compare mode prints per-benchmark deltas for tps, ns_op, and
# allocs_op over the benchmarks the two records share, and exits nonzero
# when any metric regresses by more than 5%. A benchmark recorded in the
# baseline but absent from the current run also fails the gate (silently
# dropping a benchmark is how regressions hide); pass --allow-missing to
# downgrade that to a warning when the omission is intentional. With
# current.json omitted it reruns the engine macro benchmarks and compares
# the fresh numbers against the baseline record.
#
# Environment knobs:
#   BENCHTIME_MICRO  benchtime for the micro benchmarks (default 200000x)
#   BENCHTIME_MACRO  benchtime for the 500ms-per-iteration YCSB engine
#                    benchmarks (default 2x). Keep it >= 2x: at 1x the Go
#                    testing package reuses the sub-benchmark discovery run
#                    for the first -cpu column, which executes at the wrong
#                    GOMAXPROCS.
#   CPU_LIST         -cpu sweep for the scaling benchmarks (default
#                    1,2,4,8,16; the 16-wide column probes lock contention
#                    well past the physical core count)
#   COMPARE_BENCH    -bench regex for the fresh run in --compare mode
#                    (default BenchmarkEngineYCSB_; the disk gate passes
#                    BenchmarkEngineYCSBDisk_)
set -eu

cd "$(dirname "$0")/.."

render() {
    printf '%s\n' "$1" | awk '
    {
        name=$1; ns=""; tps=""; bytes=""; allocs="";
        workers=""; earlyp99=""; latep99=""; hitpct=""; ratio="";
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op") ns = $(i-1);
            else if ($i == "tps") tps = $(i-1);
            else if ($i == "B/op") bytes = $(i-1);
            else if ($i == "allocs/op") allocs = $(i-1);
            else if ($i == "workers") workers = $(i-1);
            else if ($i == "early-p99-us") earlyp99 = $(i-1);
            else if ($i == "late-p99-us") latep99 = $(i-1);
            else if ($i == "hit-pct") hitpct = $(i-1);
            else if ($i == "data-pool-ratio") ratio = $(i-1);
        }
        line = sprintf("    {\"name\": \"%s\", \"ns_op\": %s", name, ns);
        if (tps != "")      line = line sprintf(", \"tps\": %s", tps);
        if (workers != "")  line = line sprintf(", \"workers\": %s", workers);
        if (earlyp99 != "") line = line sprintf(", \"early_p99_us\": %s", earlyp99);
        if (latep99 != "")  line = line sprintf(", \"late_p99_us\": %s", latep99);
        if (hitpct != "")   line = line sprintf(", \"hit_pct\": %s", hitpct);
        if (ratio != "")    line = line sprintf(", \"data_pool_ratio\": %s", ratio);
        if (bytes != "")    line = line sprintf(", \"b_op\": %s", bytes);
        if (allocs != "")   line = line sprintf(", \"allocs_op\": %s", allocs);
        print line "},";
    }' | sed '$ s/},$/}/'
}

# compare_records <baseline.json> <current.json> [allow_missing] —
# per-benchmark deltas over the intersection of names, exit 1 on any >5%
# regression. A benchmark present in the baseline but absent from the current
# run fails the gate too — a silently dropped benchmark is how regressions
# hide — unless allow_missing=1 (the --allow-missing flag), which downgrades
# it to a warning. Parsing is line-oriented (each benchmark entry in the
# BENCH_*.json records is one object per line); when a name appears in both a
# "baseline" and a "current" section of the same file, the later entry wins.
# The fixed-duration engine benchmarks count a whole 500ms run in allocs_op,
# so when a row also reports tps the gate compares allocs_op/tps —
# proportional to allocations per transaction — instead of the raw per-run
# count.
compare_records() {
    awk -v base="$1" -v cur="$2" -v allow_missing="${3:-0}" '
    function load(file, tbl,    line, name) {
        while ((getline line < file) > 0) {
            if (match(line, /"name": "[^"]+"/) == 0) continue
            name = substr(line, RSTART + 9, RLENGTH - 10)
            if (file == cur && !(name in seen)) { seen[name] = 1; order[++n] = name }
            if (file == base && !(name in bseen)) { bseen[name] = 1; border[++bn] = name }
            if (match(line, /"tps": [0-9.]+/))       tbl[name, "tps"] = substr(line, RSTART + 7, RLENGTH - 7) + 0
            if (match(line, /"ns_op": [0-9.]+/))     tbl[name, "ns_op"] = substr(line, RSTART + 9, RLENGTH - 9) + 0
            if (match(line, /"allocs_op": [0-9.]+/)) tbl[name, "allocs_op"] = substr(line, RSTART + 13, RLENGTH - 13) + 0
        }
        close(file)
    }
    # dir: +1 when lower is better (ns_op, allocs), -1 when higher is (tps).
    function row(name, metric, b, c, dir,    d, flag) {
        compared++
        if (b == 0) d = (c > 0) ? 100 : 0
        else        d = (c - b) * 100.0 / b
        flag = ""
        if (dir * d > 5) { flag = "  REGRESSION"; fails++ }
        printf "%-52s %-10s %14.6g %14.6g %+8.1f%%%s\n", name, metric, b, c, d, flag
    }
    BEGIN {
        n = 0; bn = 0; fails = 0; compared = 0; missing = 0
        load(cur, curtbl)
        load(base, basetbl)
        printf "%-52s %-10s %14s %14s %9s\n", "benchmark", "metric", "baseline", "current", "delta"
        for (i = 1; i <= bn; i++) {
            name = border[i]
            if (name in seen) continue
            missing++
            printf "%-52s %-10s %14s %14s %9s  %s\n", name, "-", "present", "absent", "-",
                (allow_missing ? "MISSING (allowed)" : "MISSING")
        }
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (((name, "tps") in basetbl) && ((name, "tps") in curtbl))
                row(name, "tps", basetbl[name, "tps"], curtbl[name, "tps"], -1)
            if (((name, "ns_op") in basetbl) && ((name, "ns_op") in curtbl))
                row(name, "ns_op", basetbl[name, "ns_op"], curtbl[name, "ns_op"], 1)
            if (((name, "allocs_op") in basetbl) && ((name, "allocs_op") in curtbl)) {
                if (((name, "tps") in basetbl) && ((name, "tps") in curtbl))
                    row(name, "allocs/tx", basetbl[name, "allocs_op"] / basetbl[name, "tps"],
                        curtbl[name, "allocs_op"] / curtbl[name, "tps"], 1)
                else
                    row(name, "allocs_op", basetbl[name, "allocs_op"], curtbl[name, "allocs_op"], 1)
            }
        }
        if (compared == 0) { print "compare: no overlapping benchmarks between records" > "/dev/stderr"; exit 2 }
        if (missing > 0 && !allow_missing) {
            printf "compare: %d baseline benchmark(s) missing from the current run (use --allow-missing to waive)\n",
                missing > "/dev/stderr"
            exit 1
        }
        if (fails > 0) { printf "compare: %d metric(s) regressed beyond 5%%\n", fails > "/dev/stderr"; exit 1 }
        if (missing > 0) printf "compare: %d baseline benchmark(s) missing from the current run (allowed)\n", missing
        printf "compare: %d metric(s) within the 5%% envelope\n", compared
    }'
}

if [ "${1:-}" = "--compare" ]; then
    shift
    ALLOW_MISSING=0
    BASELINE=""
    CURRENT=""
    for arg in "$@"; do
        case "$arg" in
        --allow-missing) ALLOW_MISSING=1 ;;
        *)
            if [ -z "$BASELINE" ]; then BASELINE=$arg
            elif [ -z "$CURRENT" ]; then CURRENT=$arg
            else
                echo "usage: scripts/bench.sh --compare <baseline.json> [current.json] [--allow-missing]" >&2
                exit 2
            fi
            ;;
        esac
    done
    if [ -z "$BASELINE" ]; then
        echo "usage: scripts/bench.sh --compare <baseline.json> [current.json] [--allow-missing]" >&2
        exit 2
    fi
    if [ -z "$CURRENT" ]; then
        echo "==> fresh engine macro run for compare (${COMPARE_BENCH:-BenchmarkEngineYCSB_})"
        FRESH=$(go test -count=1 -run '^$' \
            -bench "${COMPARE_BENCH:-BenchmarkEngineYCSB_}" \
            -benchmem -benchtime "${BENCHTIME_MACRO:-2x}" . | grep '^Benchmark')
        CURRENT=$(mktemp)
        trap 'rm -f "$CURRENT"' EXIT
        {
            echo '{'
            echo '  "current": ['
            render "$FRESH"
            echo '  ]'
            echo '}'
        } > "$CURRENT"
    fi
    compare_records "$BASELINE" "$CURRENT" "$ALLOW_MISSING"
    exit 0
fi

OUT=${1:-BENCH_hotpath.json}
STORAGE_OUT=${2:-BENCH_storage.json}
OBSV_OUT=${3:-BENCH_obsv.json}
SYNTH_OUT=${4:-BENCH_synth.json}
DISK_OUT=${5:-BENCH_disk.json}

echo "==> micro benchmarks (sqldb prepared paths, stats recording)"
MICRO=$(go test -count=1 -run '^$' \
    -bench 'BenchmarkPrepared|BenchmarkExecPointRead|BenchmarkStatsRecord' \
    -benchmem -benchtime "${BENCHTIME_MICRO:-200000x}" \
    ./internal/sqldb/ ./internal/stats/ | grep '^Benchmark')

echo "==> macro benchmarks (YCSB engines, ablation)"
MACRO=$(go test -count=1 -run '^$' \
    -bench 'BenchmarkEngineYCSB_|BenchmarkAblation_Index' \
    -benchmem -benchtime "${BENCHTIME_MACRO:-2x}" . | grep '^Benchmark')

echo "==> storage scaling benchmarks (-cpu ${CPU_LIST:-1,2,4,8,16} worker sweep)"
SCALE=$(go test -count=1 -run '^$' \
    -bench 'BenchmarkEngineYCSBScale' \
    -benchtime "${BENCHTIME_MACRO:-2x}" -cpu "${CPU_LIST:-1,2,4,8,16}" . |
    grep '^Benchmark')

echo "==> sustained-update p99 (vacuum ablation)"
P99=$(go test -count=1 -run '^$' \
    -bench 'BenchmarkSustainedUpdateP99' -benchtime 1x . | grep '^Benchmark')

{
    cat <<'EOF'
{
  "note": "Hot-path benchmark record: 'baseline' is the pre-overhaul seed (commit 18c7be1, benchtime=2x, single-CPU container); 'current' is regenerated by scripts/bench.sh. EngineYCSB iterations are fixed 500ms runs, so allocs/op compares whole runs: read tps alongside it.",
  "baseline": {
    "commit": "18c7be1",
    "benchmarks": [
    {"name": "BenchmarkAblation_Index/pk-lookup", "ns_op": 18827, "b_op": 872, "allocs_op": 15},
    {"name": "BenchmarkAblation_Index/seqscan", "ns_op": 948256, "allocs_op": 13},
    {"name": "BenchmarkEngineYCSB_goserial", "tps": 1926, "allocs_op": 51967},
    {"name": "BenchmarkEngineYCSB_golock", "tps": 7716, "allocs_op": 324759},
    {"name": "BenchmarkEngineYCSB_gomvcc", "tps": 11008, "allocs_op": 219880}
    ]
  },
  "current": [
EOF
    render "$MICRO" | sed '$ s/}$/},/'
    render "$MACRO"
    cat <<'EOF'
  ]
}
EOF
} > "$OUT"

echo "wrote $OUT"

{
    cat <<'EOF'
{
  "note": "Storage concurrency record: 'baseline' is the pre-striping tree (commit 27373b1, global table RWMutex, stop-the-world vacuum) at 4 terminals. 'scaling' ties terminals to GOMAXPROCS so the -cpu sweep varies offered concurrency; the container has one physical CPU, so gains past 1 worker come from overlapping WAL group-commit waits and reduced lock convoying, not parallel execution. 'sustained_update_p99' is the online-vacuum ablation: p99 over the first vs last quarter of a 100k-op update/churn/scan run (WAL off).",
  "baseline": {
    "commit": "27373b1",
    "benchmarks": [
    {"name": "BenchmarkEngineYCSB_goserial", "tps": 2082, "workers": 4},
    {"name": "BenchmarkEngineYCSB_golock", "tps": 8522, "workers": 4},
    {"name": "BenchmarkEngineYCSB_gomvcc", "tps": 10896, "workers": 4}
    ]
  },
  "fixed_terminals": [
EOF
    render "$(printf '%s\n' "$MACRO" | grep 'EngineYCSB_')"
    cat <<'EOF'
  ],
  "scaling": [
EOF
    render "$SCALE"
    cat <<'EOF'
  ],
  "sustained_update_p99": [
EOF
    render "$P99"
    cat <<'EOF'
  ]
}
EOF
} > "$STORAGE_OUT"

echo "wrote $STORAGE_OUT"

{
    cat <<'EOF'
{
  "note": "Observability-overhead record: 'baseline' is the pre-histogram tree (commit fafef9a, shared cumulative histograms off the record path, no window percentiles) from BENCH_storage.json fixed_terminals and BENCH_hotpath.json micros. 'current' runs the same benchmarks with the per-shard per-type window histograms wired into every committed record. The acceptance gate is <=5% on EngineYCSB ns/op and allocs/op.",
  "baseline": {
    "commit": "fafef9a",
    "benchmarks": [
    {"name": "BenchmarkEngineYCSB_goserial", "ns_op": 506740747, "tps": 2562, "allocs_op": 37742},
    {"name": "BenchmarkEngineYCSB_golock", "ns_op": 508766198, "tps": 18422, "allocs_op": 215755},
    {"name": "BenchmarkEngineYCSB_gomvcc", "ns_op": 507813856, "tps": 37908, "allocs_op": 472451},
    {"name": "BenchmarkStatsRecordParallel", "ns_op": 161.0, "allocs_op": 0},
    {"name": "BenchmarkStatsRecordPoolAffine", "ns_op": 157.0, "allocs_op": 0}
    ]
  },
  "current": [
EOF
    render "$(printf '%s\n' "$MACRO" | grep 'EngineYCSB_')" | sed '$ s/}$/},/'
    render "$(printf '%s\n' "$MICRO" | grep 'StatsRecord')"
    cat <<'EOF'
  ]
}
EOF
} > "$OBSV_OUT"

echo "wrote $OBSV_OUT"

echo "==> disk-resident YCSB (buffer-pool sweep)"
# The golock personality again, disk-resident with a deliberately small
# buffer pool: the 32-frame row is the dataset-larger-than-RAM gate (the
# benchmark itself fails unless data >= 2x the pool), and the 32/64/256
# sweep is the hit-rate curve. The RAM rows ride along so the record reads
# as "what does disk residency cost at each pool budget".
DISK=$(go test -count=1 -run '^$' \
    -bench 'BenchmarkEngineYCSBDisk' \
    -benchmem -benchtime "${BENCHTIME_MACRO:-2x}" . | grep '^Benchmark')

{
    cat <<'EOF'
{
  "note": "Disk-residency record: 'ram' is the all-RAM golock YCSB row from the same bench.sh run; 'disk' re-registers golock with -data-dir semantics (4KiB slotted-page heap + ARIES WAL behind a clock-LRU buffer pool) at 32/64/256 frames. hit_pct is the buffer-pool hit rate, data_pool_ratio the final heap size over the pool budget (the pool32 row asserts >= 2x: a genuinely larger-than-RAM run). The verify.sh gate compares fresh disk rows against this file.",
  "ram": [
EOF
    render "$(printf '%s\n' "$MACRO" | grep 'EngineYCSB_golock')"
    cat <<'EOF'
  ],
  "disk": [
EOF
    render "$DISK"
    cat <<'EOF'
  ]
}
EOF
} > "$DISK_OUT"

echo "wrote $DISK_OUT"

echo "==> open-loop scheduler overhead (worker execute hot path)"
# Closed-loop vs open-loop worker execute: the paired benchmarks run the
# same no-op transaction through Manager.execute, the open-loop variant
# with a saturated Poisson arrival schedule installed so every iteration
# pays the gap lookup. The synthesis acceptance gate is <=5% ns/op; the
# effect is small, so each benchmark runs 5 times and the minimum ns/op
# is recorded (scheduler noise only ever adds time).
SYNTH=$(go test -count=5 -run '^$' \
    -bench 'BenchmarkExecuteClosedLoop|BenchmarkExecuteOpenLoop' \
    -benchmem -benchtime "${BENCHTIME_MICRO:-200000x}" ./internal/core/ |
    grep '^Benchmark' | awk '
    { if (!($1 in best) || $3 < best[$1]) { best[$1] = $3; line[$1] = $0 } }
    END { for (name in line) print line[name] }' | sort)

{
    cat <<'EOF'
{
  "note": "Open-loop arrival scheduling overhead record: both rows drive Manager.execute with a no-op transaction; ExecuteOpenLoop adds a saturated Poisson ArrivalSpec (base_rate 1e9, so the scheduler never sleeps) and the gate is open-loop ns/op <= 1.05x closed-loop ns/op on this worker hot path.",
  "current": [
EOF
    render "$SYNTH"
    cat <<'EOF'
  ]
}
EOF
} > "$SYNTH_OUT"

echo "wrote $SYNTH_OUT"

printf '%s\n' "$SYNTH" | awk '
    /BenchmarkExecuteClosedLoop/ { closed = $3 }
    /BenchmarkExecuteOpenLoop/   { open = $3 }
    END {
        if (closed == 0 || open == 0) { print "synth overhead: benchmarks missing" > "/dev/stderr"; exit 2 }
        pct = (open - closed) * 100.0 / closed
        printf "open-loop overhead: closed %.1f ns/op, open %.1f ns/op (%+.1f%%)\n", closed, open, pct
        if (pct > 5) { print "synth overhead: open-loop exceeds the 5% hot-path envelope" > "/dev/stderr"; exit 1 }
    }'
