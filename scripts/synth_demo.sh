#!/usr/bin/env sh
# synth_demo.sh — trace-driven workload synthesis demo, REST only (the
# acceptance demo for the capture → profile → scaled replay loop):
#
#   phase 1  start a TPC-C run through POST /api/v1/workloads, attach a
#            capture with POST .../capture, let it record, finish it with
#            DELETE .../capture into a stored profile
#   phase 2  launch the `synthetic` benchmark from that profile at
#            AMPLIFY x amplification with a Poisson arrival process and
#            assert (a) per-type mix proportions within +-MIX_TOL of the
#            captured profile and (b) sustained rate within RATE_TOL of
#            AMPLIFY x the captured rate
#   phase 3  re-dial the arrival process mid-run via POST .../arrival
#            (burst shape) and assert the change shows up in the SSE
#            window stream
#
# Every control action is an HTTP request against the -serve API; nothing
# touches the process after it starts.
#
# Environment knobs:
#   BENCH     captured benchmark (default tpcc)
#   SCALE     benchmark scale factor (default 0.05)
#   CAP_RATE  closed-loop rate of the captured run, tps (default 50)
#   CAPDUR    capture length in seconds (default 8)
#   AMPLIFY   x-N-users dial for the replay (default 10)
#   MEASURE   replay measurement window in seconds (default 8)
#   MIX_TOL   per-type proportion tolerance (default 0.05)
#   RATE_TOL  relative rate tolerance (default 0.25: Poisson noise plus
#             single-CPU scheduling jitter over a short window)
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-tpcc}
SCALE=${SCALE:-0.05}
CAP_RATE=${CAP_RATE:-50}
CAPDUR=${CAPDUR:-8}
AMPLIFY=${AMPLIFY:-10}
MEASURE=${MEASURE:-8}
MIX_TOL=${MIX_TOL:-0.05}
RATE_TOL=${RATE_TOL:-0.25}

HTTP=127.0.0.1:8093
API="http://$HTTP/api/v1"

command -v jq >/dev/null || { echo "synth_demo: jq required" >&2; exit 2; }

TMP=$(mktemp -d)
BIN="$TMP/benchpress"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() { echo "synth_demo: FAIL: $*" >&2; exit 1; }

post() { # post <path> <json>
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$2" "$API$1"
}

echo "==> building benchpress"
go build -o "$BIN" ./cmd/benchpress

echo "==> starting API server on http://$HTTP"
"$BIN" -serve -http "$HTTP" >"$TMP/serve.log" 2>&1 &
PIDS="$PIDS $!"
i=0
until curl -fsS "$API/workloads" >/dev/null 2>&1; do
    i=$((i + 1)); [ "$i" -gt 50 ] && fail "API server did not come up (see $TMP/serve.log)"
    sleep 0.2
done

echo "==> phase 1: capture a $BENCH run (scale $SCALE, $CAP_RATE tps, ${CAPDUR}s)"
post /workloads "{\"benchmark\":\"$BENCH\",\"name\":\"cap\",\"scale\":$SCALE,\"rate\":$CAP_RATE,\"terminals\":4,\"duration_sec\":300}" >/dev/null
post /workloads/cap/capture '{}' >/dev/null
sleep "$CAPDUR"
curl -fsS -X DELETE "$API/workloads/cap/capture" >"$TMP/profile.json"
PID=$(jq -r .id "$TMP/profile.json")
PRATE=$(jq -r .rate "$TMP/profile.json")
PTYPES=$(jq -r '.types | length' "$TMP/profile.json")
[ "$PID" != "null" ] || fail "capture did not produce a profile: $(cat "$TMP/profile.json")"
curl -fsS -X DELETE "$API/workloads/cap" >/dev/null
echo "    profile $PID: $PTYPES types, captured rate $PRATE tps"
# The captured rate must reflect the closed-loop target it ran under.
jq -e ".rate > $CAP_RATE * 0.7 and .rate < $CAP_RATE * 1.2" "$TMP/profile.json" >/dev/null ||
    fail "captured rate $PRATE far from the $CAP_RATE tps target"

echo "==> phase 2: synthetic replay at ${AMPLIFY}x, Poisson arrivals"
post /workloads "{\"benchmark\":\"synthetic\",\"profile\":\"$PID\",\"name\":\"syn\",\"amplify\":$AMPLIFY,\"process\":\"poisson\",\"terminals\":16,\"duration_sec\":300}" >/dev/null
# SSE capture across the whole replay, for the phase-3 assertion.
curl -sN "$API/workloads/syn/stream" >"$TMP/sse.log" 2>/dev/null &
PIDS="$PIDS $!"
sleep 2    # settle past the ramp before the measurement window
c0=$(curl -fsS "$API/workloads/syn" | jq .committed)
sleep "$MEASURE"
curl -fsS "$API/workloads/syn" >"$TMP/syn.json"
c1=$(jq .committed "$TMP/syn.json")
tps=$(awk "BEGIN{printf \"%.1f\", ($c1 - $c0) / $MEASURE}")
target=$(awk "BEGIN{printf \"%.1f\", $PRATE * $AMPLIFY}")
echo "    sustained $tps tps over ${MEASURE}s (target $target = ${AMPLIFY}x $PRATE)"
awk "BEGIN{exit !($tps >= $target * (1 - $RATE_TOL) && $tps <= $target * (1 + $RATE_TOL))}" ||
    fail "replay rate $tps outside +-${RATE_TOL} of $target"

# Mix conformance: replay per-type proportions vs the profile's, +-MIX_TOL.
jq -s --argjson tol "$MIX_TOL" '
    (.[0].types | map({key: .name, value: .proportion}) | from_entries) as $want
    | (.[1].types | map(.count) | add) as $total
    | [.[1].types[] | {name, got: (.count / $total), want: $want[.name]}]
    | map(select(.want != null and ((.got - .want) | fabs) > $tol))
' "$TMP/profile.json" "$TMP/syn.json" >"$TMP/mixdiff.json"
if [ "$(jq length "$TMP/mixdiff.json")" != "0" ]; then
    jq . "$TMP/mixdiff.json" >&2
    fail "replay mix proportions drift beyond +-$MIX_TOL of the profile"
fi
echo "    mix proportions within +-$MIX_TOL of the captured profile"

echo "==> phase 3: mid-run arrival re-dial via POST .../arrival"
post /workloads/syn/arrival '{"process":"burst","burst_on_ms":200,"burst_off_ms":800}' >"$TMP/arrival.json"
jq -e '.process == "burst"' "$TMP/arrival.json" >/dev/null || fail "arrival POST did not install burst"
sleep 3
grep -q '"process":"burst"' "$TMP/sse.log" ||
    fail "SSE stream never carried the burst arrival spec"
windows=$(grep -c '^event: window' "$TMP/sse.log" || true)
echo "    burst spec visible in the SSE stream ($windows window frames)"

curl -fsS -X DELETE "$API/workloads/syn" >/dev/null
echo "synth_demo: PASS (capture -> profile $PID -> ${AMPLIFY}x Poisson replay, mix +-$MIX_TOL, rate ~${AMPLIFY}x, live burst re-dial in SSE)"
