#!/usr/bin/env sh
# cluster_demo.sh — scale-out load generation demo: one coordinator, one
# engine-server process holding the shared DBMS, and N worker agents driving
# it over the binary engine wire (topology mirrors configs/cluster_example.json).
#
# The engine runs with -commit-delay so every write pays a durable-commit
# round trip (synchronous replication / fsync class latency). A single
# closed-loop worker is then latency-bound and leaves the engine mostly
# idle — the regime the coordinator/worker split exists for. The demo:
#
#   phase 1  one worker, measure aggregate tps (latency-bound baseline)
#   phase 2  WORKERS workers, measure aggregate tps; the merged committed
#            count from GET /api/v1/cluster must equal the sum of the
#            per-worker totals exactly, and aggregate tps must reach
#            MIN_SCALE x the baseline
#   phase 3  WORKERS workers under a rate target; SIGKILL one mid-run and
#            assert the coordinator detaches it and re-spreads the rate
#            share to the survivors without stalling the merged SSE feed
#
# Writes BENCH_cluster.json in the bench.sh record shape (one object per
# line, "name"/"tps" fields), so scripts/bench.sh --compare gates it.
#
# Environment knobs:
#   DUR           seconds per measured phase (default 6)
#   WORKERS       worker-agent count for the scale-out phases (default 4)
#   TERMINALS     terminals per worker (default 1: closed loop per agent)
#   DB            engine personality (default gomvcc)
#   SCALE         benchmark scale factor (default 0.2)
#   COMMIT_DELAY  emulated durable-commit latency (default 8ms)
#   MIN_SCALE     required aggregate speedup of phase 2 over phase 1
#                 (default 3.5)
#   OUT           record file (default BENCH_cluster.json)
set -eu

cd "$(dirname "$0")/.."

DUR=${DUR:-6}
WORKERS=${WORKERS:-4}
TERMINALS=${TERMINALS:-1}
DB=${DB:-gomvcc}
SCALE=${SCALE:-0.2}
COMMIT_DELAY=${COMMIT_DELAY:-8ms}
MIN_SCALE=${MIN_SCALE:-3.5}
OUT=${OUT:-BENCH_cluster.json}

WIRE=127.0.0.1:9191
HTTP=127.0.0.1:8091
ENGINE=127.0.0.1:9292
API="http://$HTTP/api/v1/cluster"

TMP=$(mktemp -d)
BIN="$TMP/benchpress"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() { echo "cluster_demo: FAIL: $*" >&2; exit 1; }

# json_field <file-or-"-"> <key> — last occurrence wins, which for the merged
# status object means the cluster-level counter, not a per-worker one.
json_field() {
    grep -o "\"$2\":[0-9.]*" "$1" | tail -1 | cut -d: -f2
}

echo "==> building benchpress"
go build -o "$BIN" ./cmd/benchpress

echo "==> starting engine server ($DB, ycsb scale $SCALE, commit delay $COMMIT_DELAY)"
"$BIN" --engine-server "$ENGINE" -bench ycsb -db "$DB" -scale "$SCALE" \
    -commit-delay "$COMMIT_DELAY" >"$TMP/engine.log" 2>&1 &
PIDS="$PIDS $!"

echo "==> starting coordinator (wire $WIRE, api http://$HTTP)"
"$BIN" --coordinator "$WIRE" -http "$HTTP" >"$TMP/coord.log" 2>&1 &
PIDS="$PIDS $!"

i=0
until grep -q 'serving engine sessions' "$TMP/engine.log" 2>/dev/null; do
    i=$((i + 1)); [ "$i" -gt 150 ] && fail "engine server did not come up"
    sleep 0.2
done
i=0
until curl -fsS "$API" >/dev/null 2>&1; do
    i=$((i + 1)); [ "$i" -gt 50 ] && fail "coordinator API did not come up"
    sleep 0.2
done

# Update-only mixture: every transaction pays the commit delay, so the
# baseline is honestly latency-bound rather than read-CPU-bound.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"weights":[0,0,0,1,0,0]}' "$API/mixture" >/dev/null

run_workers() { # run_workers <count> <seconds> <logprefix> -> pids in $WPIDS
    n=$1; secs=$2; prefix=$3
    WPIDS=""
    k=1
    while [ "$k" -le "$n" ]; do
        "$BIN" --worker "http://$HTTP" -bench ycsb -db "remote:$ENGINE" \
            -terminals "$TERMINALS" -duration "$secs" \
            >"$TMP/$prefix$k.log" 2>&1 &
        WPIDS="$WPIDS $!"
        k=$((k + 1))
    done
}

sum_committed() { # sum_committed <logprefix> <count>
    total=0; k=1
    while [ "$k" -le "$2" ]; do
        c=$(grep -o 'committed=[0-9]*' "$TMP/$1$k.log" | cut -d= -f2)
        [ -n "$c" ] || fail "worker log $1$k.log has no final total (see $TMP)"
        total=$((total + c))
        k=$((k + 1))
    done
    echo "$total"
}

merged_committed() {
    curl -fsS "$API" >"$TMP/status.json"
    json_field "$TMP/status.json" committed
}

echo "==> phase 1: baseline, 1 worker x $TERMINALS terminal(s), ${DUR}s"
before=$(merged_committed)
run_workers 1 "$DUR" base
# shellcheck disable=SC2086
wait $WPIDS
base_committed=$(sum_committed base 1)
base_tps=$(awk "BEGIN{printf \"%.1f\", $base_committed/$DUR}")
echo "    baseline: $base_committed committed ($base_tps tps)"

echo "==> phase 2: scale-out, $WORKERS workers, ${DUR}s"
before=$(merged_committed)
run_workers "$WORKERS" "$DUR" scale
# shellcheck disable=SC2086
wait $WPIDS
agg_committed=$(sum_committed scale "$WORKERS")
after=$(merged_committed)
merged_delta=$((after - before))
[ "$merged_delta" -eq "$agg_committed" ] ||
    fail "merged committed delta $merged_delta != sum of worker totals $agg_committed"
drift=$(json_field "$TMP/status.json" drift_events)
[ "$drift" = "0" ] || fail "coordinator recorded $drift stats drift events"
agg_tps=$(awk "BEGIN{printf \"%.1f\", $agg_committed/$DUR}")
ratio=$(awk "BEGIN{printf \"%.2f\", $agg_committed/$base_committed}")
echo "    scale-out: $agg_committed committed ($agg_tps tps), ${ratio}x baseline, merged == sum exactly"
awk "BEGIN{exit !($ratio >= $MIN_SCALE)}" ||
    fail "aggregate speedup ${ratio}x below required ${MIN_SCALE}x"

echo "==> phase 3: kill one of $WORKERS workers mid-run (rate 200 tps spread)"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"tps":200}' "$API/rate" >/dev/null
kill_secs=$((DUR + 4))
run_workers "$WORKERS" "$kill_secs" kill
victim=${WPIDS# }
victim=${victim%% *}
survivors=$((WORKERS - 1))
want_share=$(awk "BEGIN{printf \"%.2f\", 200/$survivors - 0.01}")
# Merged SSE feed, captured across the kill.
curl -sN "$API/stream" >"$TMP/sse.log" 2>/dev/null &
sse_pid=$!
PIDS="$PIDS $sse_pid"
sleep 3
kill -9 "$victim"
sse_at_kill=$(grep -c '^event: window' "$TMP/sse.log" || true)
# The coordinator must detach the dead worker and re-spread its rate share
# within one heartbeat (500ms default); allow 2s of polling slack.
i=0
while :; do
    share=$(curl -fsS "$API/rate" | grep -o '"share":[0-9.]*' | cut -d: -f2)
    awk "BEGIN{exit !($share >= $want_share)}" && break
    i=$((i + 1)); [ "$i" -gt 20 ] && fail "rate share $share never re-spread to >= $want_share"
    sleep 0.1
done
echo "    share re-spread to $share tps across $survivors survivors"
# shellcheck disable=SC2086
wait $(echo "$WPIDS" | sed "s/\\<$victim\\> *//") 2>/dev/null || true
sse_at_end=$(grep -c '^event: window' "$TMP/sse.log" || true)
[ "$sse_at_end" -gt "$sse_at_kill" ] ||
    fail "merged SSE feed stalled after worker kill ($sse_at_kill -> $sse_at_end windows)"
kill "$sse_pid" 2>/dev/null || true
echo "    merged SSE stayed live: $sse_at_kill windows at kill, $sse_at_end at end"

cat >"$OUT" <<EOF
{
  "note": "Scale-out record from scripts/cluster_demo.sh: ycsb Update-only against one shared $DB engine (commit delay $COMMIT_DELAY emulating durable commits), $TERMINALS terminal(s) per worker, ${DUR}s phases on a single-CPU container. workers=1 is the latency-bound single-generator baseline; workers=$WORKERS is the coordinator fan-out aggregate; scaleout is their ratio (gate: >= $MIN_SCALE). Regenerate with scripts/cluster_demo.sh; gate with scripts/bench.sh --compare.",
  "current": [
    {"name": "ClusterRemoteYCSB/workers=1", "tps": $base_tps, "workers": 1},
    {"name": "ClusterRemoteYCSB/workers=$WORKERS", "tps": $agg_tps, "workers": $WORKERS},
    {"name": "ClusterRemoteYCSB/scaleout", "tps": $ratio}
  ]
}
EOF
echo "wrote $OUT"
echo "cluster_demo: PASS (${ratio}x scale-out, exact merge, live SSE through worker kill)"
