#!/usr/bin/env sh
# verify.sh — the repository's full verification gate, in dependency order:
# compile, vet, format, domain lint (benchlint), unit/integration tests, and
# a short-mode race pass over the concurrency-heavy packages. Run from
# anywhere inside the repository; every gate must pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "==> benchlint -diff vs merge base (fast gate)"
# Lint only the packages changed since the merge base, plus their reverse
# dependencies — quick feedback before the expensive gates. Override the
# base with BENCHLINT_DIFF_BASE; the full tree is linted in the race gate.
BASE=${BENCHLINT_DIFF_BASE:-origin/main}
if ! git rev-parse -q --verify "$BASE" >/dev/null 2>&1; then
    BASE=main
fi
if git rev-parse -q --verify "$BASE" >/dev/null 2>&1; then
    go run ./cmd/benchlint -diff "$BASE"
else
    echo "benchlint: no base ref found; skipping diff gate"
fi

echo "==> go test ./..."
go test ./...

echo "==> benchlint ./... (full tree, incl. self-lint of internal/analysis)"
go run ./cmd/benchlint ./...
go run ./cmd/benchlint ./internal/analysis/...

echo "==> benchlint hotpath-alloc (batch hot-path allocation gate)"
# Explicit pass of the interprocedural allocation rule over the tree the
# batch loops live in, so a hot-path alloc regression names itself here
# instead of hiding in the full-tree run above.
go run ./cmd/benchlint -rule hotpath-alloc ./internal/...

echo "==> go test -race (short) core/stats/sqldb/wal/api/cluster"
go test -race -short -count=1 ./internal/core/... ./internal/stats/... ./internal/sqldb/... ./internal/wal/ ./internal/api/ ./internal/cluster/

echo "==> cluster merge gate (-race): coordinator + 2 in-process workers"
# Short YCSB burst through the coordinator/worker wire: merged committed
# count must equal the sum of the per-worker totals exactly, and merged
# percentiles must land within 10% of a single-collector oracle built by
# merging the workers' own histograms in-process.
go test -race -count=1 -run 'TestClusterGateMergedExactness' ./internal/cluster/

echo "==> observability smoke (/metrics exposition, SSE stream, error envelope)"
go test -count=1 -run 'TestMetricsEndpoint|TestStreamEndpoint|TestStreamWhilePaused|TestErrorEnvelope' ./internal/api/

echo "==> synthesis round trip (-race): capture -> profile -> scaled open-loop replay"
# Seeded end-to-end synthesis gate: capture a live YCSB run into a profile,
# amplify it x2 through the synthesizer, replay open loop, and require the
# replay's rate and per-type mixture to conform (rate +-20%, mix +-0.05).
# The API-level capture/profile/arrival resources race under the short pass
# above; this drives the whole loop through internal/synth.
go test -race -count=1 -run 'TestSynthRoundTrip|TestScheduleConformance' ./internal/benchmarks/synthetic/ ./internal/synth/

echo "==> isolation conformance & crash recovery (-race, fixed seed)"
# Deterministic differential-oracle harness for the three personalities plus
# the WAL kill-point sweep. CONSISTENCY_SEED=<n> reseeds the run; add
# -consistency.long for the ~10x soak shape.
go test -race -count=1 ./internal/consistency/

echo "==> disk full-recovery torture (-race): kill sweep over WAL + page writes"
# The disk-backed engine's durability gate: one byte budget meters WAL
# appends and heap page flushes together, and the sweep kills the stream at
# >= 15 points — evenly spaced, mid-WAL-frame, mid-page-flush, and
# mid-checkpoint tears. Every kill must recover to an image honoring
# acked <= winners <= acked+uncertain byte-exactly, with every device page
# passing Verify and the recovered engine passing the conformance oracle.
# Named explicitly (it also runs in the package pass above) so a durability
# regression names itself here.
go test -race -count=1 -run 'TestDiskCrash' ./internal/consistency/

echo "==> go test -race storage stress (striped store + online vacuum)"
go test -race -count=1 -run 'TestStorageStressConcurrent' ./internal/sqldb/txn/

echo "==> allocation smoke (prepared point read)"
go test -count=1 -run 'TestPreparedPointReadAllocSmoke' -v ./internal/sqldb/ | grep -E 'allocs/op|PASS|FAIL'

echo "==> bench record compare (BENCH_obsv.json -> BENCH_speed.json)"
# Deterministic file-vs-file regression gate over the checked-in records:
# the raw-speed record must not regress tps, ns/op, or throughput-normalized
# allocations by more than 5% against the observability-era numbers.
scripts/bench.sh --compare BENCH_obsv.json BENCH_speed.json

echo "==> bench record compare (BENCH_disk.json: disk-resident YCSB, fresh run)"
# Fresh disk-resident rows against the checked-in disk-residency record:
# guards the buffer-pool/eviction/recovery path's throughput (and its
# dataset>=2x-pool invariant, asserted inside the benchmark itself).
# 4x benchtime averages four 500ms runs per row, keeping run-to-run noise
# well inside the 5% envelope. The record's all-RAM golock row is contextual
# (it is gated via BENCH_speed.json above), hence --allow-missing.
COMPARE_BENCH='BenchmarkEngineYCSBDisk' BENCHTIME_MACRO=4x scripts/bench.sh --compare BENCH_disk.json --allow-missing

echo "verify: all gates passed"
