// Dynamiccontrol: drive a running workload through the RESTful control API
// (the paper's Section 2.2.4): sweep the target rate through a sinusoid,
// flip the mixture to read-only halfway, and read instantaneous feedback -
// everything an external controller (or the BenchPress game) does.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"time"

	"benchpress/internal/api"
	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

func main() {
	// Launch a workload with one long phase; the API will steer it.
	bench, err := core.NewBenchmark("ycsb", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	db, err := dbdriver.Open("golock")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := core.Prepare(bench, db, 7); err != nil {
		log.Fatal(err)
	}
	m := core.NewManager(bench, db, []core.Phase{{Duration: time.Hour, Rate: 500}},
		core.Options{Terminals: 8, Name: "steered"})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// Expose it over the control API (in-process HTTP for the example).
	srv := httptest.NewServer(api.NewServer(nil, m).Handler())
	defer srv.Close()
	fmt.Println("control API at", srv.URL)

	post := func(path string, body any) {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	status := func() api.StatusResponse {
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var st api.StatusResponse
		json.NewDecoder(resp.Body).Decode(&st)
		return st
	}

	// Sweep a sinusoidal rate for 12 seconds; flip to the read-only preset
	// at the halfway point and back to default near the end.
	const seconds = 12
	fmt.Println("sec   target   measured   avg-lat-ms   mix")
	for s := 0; s < seconds; s++ {
		target := 1500 + 1000*math.Sin(2*math.Pi*float64(s)/8)
		post("/rate", map[string]any{"tps": target})
		switch s {
		case seconds / 2:
			post("/mixture", map[string]any{"preset": "readonly"})
		case seconds - 2:
			post("/mixture", map[string]any{"preset": "default"})
		}
		time.Sleep(time.Second)
		st := status()
		mixName := "default"
		if st.Mix[0] > 90 {
			mixName = "read-only"
		}
		fmt.Printf("%3d %8.0f %10.0f %12.2f   %s\n", s, target, st.TPS, st.AvgLatMS, mixName)
	}
	st := status()
	fmt.Printf("\nfinal: committed=%d aborted=%d errors=%d\n", st.Committed, st.Aborted, st.Errors)
}
