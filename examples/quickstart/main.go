// Quickstart: load YCSB into the embedded MVCC engine, run it for five
// seconds at a throttled rate, and print the summary. This is the smallest
// complete use of the public workflow: benchmark registry -> driver ->
// prepare -> workload manager -> statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	_ "benchpress/internal/benchmarks/all" // register the 15 benchmarks
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

func main() {
	// 1. Instantiate a benchmark at a scale factor.
	bench, err := core.NewBenchmark("ycsb", 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open a target DBMS personality and load the data.
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := core.Prepare(bench, db, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows into %s\n", db.Engine().RowCount(), db.Personality().Name)

	// 3. Describe the execution: one phase, 2000 tps, exponential arrivals.
	phases := []core.Phase{{
		Duration:    5 * time.Second,
		Rate:        2000,
		Exponential: true,
	}}

	// 4. Run it.
	m := core.NewManager(bench, db, phases, core.Options{Terminals: 8})
	if err := m.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// 5. Read the results.
	c := m.Collector()
	fmt.Printf("committed %d transactions (%.0f tps), %s\n",
		c.Committed(), float64(c.Committed())/5, c.Global().Snapshot())
	snap := c.Snapshot()
	for i, name := range snap.TypeNames {
		fmt.Printf("  %-18s %8d txns  avg %6.2f ms\n",
			name, snap.TypeCounts[i], float64(snap.TypeLatency[i].Microseconds())/1000)
	}
}
