// Game_autopilot: the BenchPress autopilot plays the Steps course against
// all three engine personalities at the same course difficulty, showing how
// the same challenge separates the engines (the demo's "different stages
// with varying environment conditions").
package main

import (
	"fmt"
	"log"
	"time"

	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/experiments"
)

func main() {
	opts := experiments.Options{Scale: 0.2, Terminals: 8, Duration: 15 * time.Second, Seed: 3}
	const base = 4000 // above goserial's capacity (~2k here), within golock/gomvcc's

	fmt.Printf("course: steps ramping %0.f -> %0.f tps\n\n", base/2.0, base/2.0+4*base/4.0)
	for _, engine := range experiments.Engines {
		res, err := experiments.PlayShape("steps", engine, base, opts)
		if err != nil {
			log.Fatal(err)
		}
		outcome := "CLEARED the course"
		if !res.Survived {
			outcome = fmt.Sprintf("CRASHED after %d ticks", res.Ticks)
		}
		fmt.Printf("%-10s %s (score %d)\n", engine, outcome, res.Score)
		// Print the flight recorder: corridor target vs delivered tps.
		n := len(res.Targets)
		step := n / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			fmt.Printf("   tick %3d  target %6.0f  delivered %7.1f\n", i, res.Targets[i], res.Measured[i])
		}
		fmt.Println()
	}
}
