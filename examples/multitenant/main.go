// Multitenant: run TPC-C and YCSB concurrently against one engine instance
// (the paper's Section 2.2.3 multi-tenancy feature) and report how each
// tenant's throughput evolves as the co-tenant's load changes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

func main() {
	// One shared database instance hosts both tenants.
	db, err := dbdriver.Open("golock")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tpcc, err := core.NewBenchmark("tpcc", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Prepare(tpcc, db, 1); err != nil {
		log.Fatal(err)
	}
	ycsb, err := core.NewBenchmark("ycsb", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Prepare(ycsb, db, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows total into one %s instance\n",
		db.Engine().RowCount(), db.Personality().Name)

	// Tenant A: steady TPC-C at 300 tps for 9 seconds.
	tenantA := core.NewManager(tpcc, db, []core.Phase{
		{Duration: 9 * time.Second, Rate: 300},
	}, core.Options{Terminals: 4, Name: "tpcc-tenant"})

	// Tenant B: quiet YCSB, then a 3-second open-loop write burst, then
	// quiet again.
	writeBurst := []float64{0, 10, 0, 80, 0, 10}
	tenantB := core.NewManager(ycsb, db, []core.Phase{
		{Duration: 3 * time.Second, Rate: 50},
		{Duration: 3 * time.Second, Rate: 0, Mix: writeBurst},
		{Duration: 3 * time.Second, Rate: 50},
	}, core.Options{Terminals: 4, Name: "ycsb-tenant"})

	if err := core.RunAll(context.Background(), tenantA, tenantB); err != nil {
		log.Fatal(err)
	}

	// Per-second interference report.
	fmt.Println("\nsec   tpcc tps   ycsb tps")
	wa := tenantA.Collector().Windows()
	wb := tenantB.Collector().Windows()
	for i := 0; i < len(wa) || i < len(wb); i++ {
		var a, b int64
		if i < len(wa) {
			a = wa[i].Committed
		}
		if i < len(wb) {
			b = wb[i].Committed
		}
		marker := ""
		if i >= 3 && i < 6 {
			marker = "   <- tenant B write burst"
		}
		fmt.Printf("%3d %10d %10d%s\n", i, a, b, marker)
	}
	fmt.Printf("\ntpcc committed %d, ycsb committed %d\n",
		tenantA.Collector().Committed(), tenantB.Collector().Committed())
}
