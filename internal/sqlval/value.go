// Package sqlval defines the dynamically typed value system shared by the
// SQL parser, planner, executor, and storage layers of the embedded engine.
//
// A Value is a small tagged union. Values are compared with SQL semantics:
// NULL sorts before everything and never compares equal to anything under
// Equal (three-valued logic is handled by the executor); numeric kinds
// (integer and float) compare with each other after widening.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported runtime kinds.
const (
	KindNull   Kind = iota
	KindInt         // 64-bit signed integer (SQL INT, BIGINT, SMALLINT, ...)
	KindFloat       // 64-bit float (SQL DOUBLE, FLOAT, DECIMAL, NUMERIC)
	KindString      // UTF-8 string (SQL VARCHAR, CHAR, TEXT)
	KindBool        // SQL BOOLEAN
	KindTime        // SQL TIMESTAMP / DATE

	// KindTop is an internal sentinel that sorts after every other value.
	// It never appears in stored rows; the executor uses it to build
	// inclusive upper bounds for prefix scans over composite index keys.
	KindTop Kind = 200
)

// Top returns the +infinity sentinel used in index-scan upper bounds.
func Top() Value { return Value{kind: KindTop} }

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	t    time.Time
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewTime returns a timestamp value.
func NewTime(v time.Time) Value { return Value{kind: KindTime, t: v} }

// FromGo converts a native Go value into a Value. Supported inputs are nil,
// all integer widths, float32/64, string, bool, time.Time, and Value itself.
func FromGo(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null(), nil
	case Value:
		return x, nil
	case int:
		return NewInt(int64(x)), nil
	case int8:
		return NewInt(int64(x)), nil
	case int16:
		return NewInt(int64(x)), nil
	case int32:
		return NewInt(int64(x)), nil
	case int64:
		return NewInt(x), nil
	case uint:
		return NewInt(int64(x)), nil
	case uint32:
		return NewInt(int64(x)), nil
	case uint64:
		if x > math.MaxInt64 {
			return Value{}, fmt.Errorf("sqlval: uint64 %d overflows int64", x)
		}
		return NewInt(int64(x)), nil
	case float32:
		return NewFloat(float64(x)), nil
	case float64:
		return NewFloat(x), nil
	case string:
		return NewString(x), nil
	case bool:
		return NewBool(x), nil
	case time.Time:
		return NewTime(x), nil
	default:
		return Value{}, fmt.Errorf("sqlval: unsupported Go type %T", v)
	}
}

// MustFromGo is FromGo that panics on unsupported types; it is intended for
// benchmark control code that passes only supported parameter types.
func MustFromGo(v any) Value {
	val, err := FromGo(v)
	if err != nil {
		panic(err)
	}
	return val
}

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the value as int64. Floats are truncated; booleans map to 0/1.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindString:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n
	case KindTime:
		return v.t.UnixNano()
	default:
		return 0
	}
}

// Float returns the value as float64.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	case KindString:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f
	default:
		return 0
	}
}

// Str returns the value as a string (its SQL text form for non-strings).
func (v Value) Str() string {
	if v.kind == KindString {
		return v.s
	}
	return v.Format()
}

// Bool returns the value as a boolean.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return false
	}
}

// Time returns the value as a time.Time (zero time if not a timestamp).
func (v Value) Time() time.Time {
	if v.kind == KindTime {
		return v.t
	}
	return time.Time{}
}

// Go returns the value as a native Go value (nil, int64, float64, string,
// bool, or time.Time).
func (v Value) Go() any {
	switch v.kind {
	case KindNull:
		return nil
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindBool:
		return v.i != 0
	case KindTime:
		return v.t
	default:
		return nil
	}
}

// Format renders the value as SQL literal-ish text (without quoting).
func (v Value) Format() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindTime:
		return v.t.UTC().Format("2006-01-02 15:04:05.000")
	default:
		return "?"
	}
}

// String implements fmt.Stringer.
func (v Value) String() string { return v.Format() }

// numericKind reports whether k participates in numeric widening.
func numericKind(k Kind) bool { return k == KindInt || k == KindFloat || k == KindBool }

// Compare orders a before b (-1), equal (0), or after (+1). NULL sorts first.
// Numeric kinds are widened; comparing a number with a string compares the
// string's parsed numeric form (benchmarks store numeric-looking strings).
// Incomparable kinds fall back to comparing their text forms so that sorting
// is always total.
func Compare(a, b Value) int {
	if a.kind == KindTop || b.kind == KindTop {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindTop:
			return 1
		default:
			return -1
		}
	}
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.kind == b.kind {
		switch a.kind {
		case KindInt, KindBool:
			return cmpInt(a.i, b.i)
		case KindFloat:
			return cmpFloat(a.f, b.f)
		case KindString:
			return strings.Compare(a.s, b.s)
		case KindTime:
			switch {
			case a.t.Before(b.t):
				return -1
			case a.t.After(b.t):
				return 1
			default:
				return 0
			}
		}
	}
	if numericKind(a.kind) && numericKind(b.kind) {
		return cmpFloat(a.Float(), b.Float())
	}
	if a.kind == KindTime && numericKind(b.kind) {
		return cmpInt(a.t.UnixNano(), b.Int())
	}
	if numericKind(a.kind) && b.kind == KindTime {
		return cmpInt(a.Int(), b.t.UnixNano())
	}
	// Mixed string/number: compare numerically when both parse, else by text.
	if a.kind == KindString && numericKind(b.kind) {
		if f, err := strconv.ParseFloat(strings.TrimSpace(a.s), 64); err == nil {
			return cmpFloat(f, b.Float())
		}
	}
	if numericKind(a.kind) && b.kind == KindString {
		if f, err := strconv.ParseFloat(strings.TrimSpace(b.s), 64); err == nil {
			return cmpFloat(a.Float(), f)
		}
	}
	return strings.Compare(a.Format(), b.Format())
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality. NULL is never equal to anything, including
// NULL itself (use IsNull for that test).
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// CompareRows orders two composite keys column by column.
func CompareRows(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// EncodeKey renders a composite key into a compact string usable as a Go map
// key. Encoding is injective per kind but not order-preserving; it is used
// for hash lookups only.
func EncodeKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		switch v.kind {
		case KindNull:
			b.WriteByte(0x00)
		case KindInt, KindBool:
			b.WriteByte(0x01)
			writeUint64(&b, uint64(v.i))
		case KindFloat:
			b.WriteByte(0x02)
			writeUint64(&b, math.Float64bits(v.f))
		case KindString:
			b.WriteByte(0x03)
			writeUint64(&b, uint64(len(v.s)))
			b.WriteString(v.s)
		case KindTime:
			b.WriteByte(0x04)
			writeUint64(&b, uint64(v.t.UnixNano()))
		}
	}
	return b.String()
}

func writeUint64(b *strings.Builder, v uint64) {
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = byte(v)
		v >>= 8
	}
	b.Write(buf[:])
}

// Add returns a+b with numeric widening; string operands concatenate.
func Add(a, b Value) (Value, error) { return arith(a, b, "+") }

// Sub returns a-b with numeric widening.
func Sub(a, b Value) (Value, error) { return arith(a, b, "-") }

// Mul returns a*b with numeric widening.
func Mul(a, b Value) (Value, error) { return arith(a, b, "*") }

// Div returns a/b; integer division when both operands are integers.
func Div(a, b Value) (Value, error) { return arith(a, b, "/") }

func arith(a, b Value, op string) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if op == "+" && (a.kind == KindString || b.kind == KindString) {
		return NewString(a.Str() + b.Str()), nil
	}
	if !numericKind(a.kind) || !numericKind(b.kind) {
		return Value{}, fmt.Errorf("sqlval: cannot apply %q to %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindFloat || b.kind == KindFloat {
		x, y := a.Float(), b.Float()
		switch op {
		case "+":
			return NewFloat(x + y), nil
		case "-":
			return NewFloat(x - y), nil
		case "*":
			return NewFloat(x * y), nil
		case "/":
			if y == 0 {
				return Value{}, fmt.Errorf("sqlval: division by zero")
			}
			return NewFloat(x / y), nil
		}
	}
	x, y := a.Int(), b.Int()
	switch op {
	case "+":
		return NewInt(x + y), nil
	case "-":
		return NewInt(x - y), nil
	case "*":
		return NewInt(x * y), nil
	case "/":
		if y == 0 {
			return Value{}, fmt.Errorf("sqlval: division by zero")
		}
		return NewInt(x / y), nil
	}
	return Value{}, fmt.Errorf("sqlval: unknown operator %q", op)
}

// CoerceKind converts v to the target kind, used when storing into a typed
// column. NULL passes through unchanged.
func CoerceKind(v Value, k Kind) (Value, error) {
	if v.IsNull() || v.kind == k {
		return v, nil
	}
	switch k {
	case KindInt:
		switch v.kind {
		case KindFloat:
			return NewInt(int64(v.f)), nil
		case KindBool:
			return NewInt(v.i), nil
		case KindString:
			n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqlval: cannot coerce %q to INTEGER", v.s)
			}
			return NewInt(n), nil
		case KindTime:
			return NewInt(v.t.UnixNano()), nil
		}
	case KindFloat:
		switch v.kind {
		case KindInt, KindBool:
			return NewFloat(float64(v.i)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqlval: cannot coerce %q to DOUBLE", v.s)
			}
			return NewFloat(f), nil
		}
	case KindString:
		return NewString(v.Format()), nil
	case KindBool:
		switch v.kind {
		case KindInt:
			return NewBool(v.i != 0), nil
		case KindFloat:
			return NewBool(v.f != 0), nil
		case KindString:
			b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(v.s)))
			if err != nil {
				return Value{}, fmt.Errorf("sqlval: cannot coerce %q to BOOLEAN", v.s)
			}
			return NewBool(b), nil
		}
	case KindTime:
		switch v.kind {
		case KindInt:
			return NewTime(time.Unix(0, v.i)), nil
		case KindString:
			for _, layout := range []string{"2006-01-02 15:04:05.000", "2006-01-02 15:04:05", "2006-01-02", time.RFC3339} {
				if t, err := time.Parse(layout, v.s); err == nil {
					return NewTime(t), nil
				}
			}
			return Value{}, fmt.Errorf("sqlval: cannot coerce %q to TIMESTAMP", v.s)
		}
	}
	return Value{}, fmt.Errorf("sqlval: cannot coerce %s to %s", v.kind, k)
}
