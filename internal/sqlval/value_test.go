package sqlval

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{NewInt(42), KindInt},
		{NewFloat(3.5), KindFloat},
		{NewString("x"), KindString},
		{NewBool(true), KindBool},
		{NewTime(time.Unix(0, 0)), KindTime},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misclassified")
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(7).Int() != 7 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewFloat(2.9).Int() != 2 {
		t.Error("Float->Int truncation")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Int->Float widening")
	}
	if NewString("abc").Str() != "abc" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
	if NewInt(1).Bool() != true || NewInt(0).Bool() != false {
		t.Error("Int->Bool")
	}
	if NewString("41").Int() != 41 {
		t.Error("numeric string Int")
	}
	ts := time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC)
	if !NewTime(ts).Time().Equal(ts) {
		t.Error("Time accessor")
	}
}

func TestFromGo(t *testing.T) {
	for _, in := range []any{nil, 1, int8(1), int16(1), int32(1), int64(1), uint(1), uint32(1), uint64(1), float32(1), float64(1), "s", true, time.Now()} {
		if _, err := FromGo(in); err != nil {
			t.Errorf("FromGo(%T) error: %v", in, err)
		}
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}) should fail")
	}
	v, _ := FromGo(NewInt(9))
	if v.Int() != 9 {
		t.Error("FromGo(Value) passthrough")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(2), NewFloat(1.5), 1},
		{NewFloat(2), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
		{NewString("10"), NewInt(9), 1}, // numeric string compares numerically
		{NewBool(false), NewBool(true), -1},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false")
	}
	if Equal(Null(), NewInt(0)) || Equal(NewInt(0), Null()) {
		t.Error("NULL = x must be false")
	}
	if !Equal(NewInt(5), NewFloat(5)) {
		t.Error("5 = 5.0 must be true")
	}
}

func TestCompareRows(t *testing.T) {
	a := []Value{NewInt(1), NewString("b")}
	b := []Value{NewInt(1), NewString("c")}
	if CompareRows(a, b) != -1 {
		t.Error("row compare second column")
	}
	if CompareRows(a, a) != 0 {
		t.Error("row compare equal")
	}
	if CompareRows([]Value{NewInt(1)}, a) != -1 {
		t.Error("shorter prefix sorts first")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if mustV(Add(NewInt(2), NewInt(3))).Int() != 5 {
		t.Error("int add")
	}
	if mustV(Add(NewInt(2), NewFloat(0.5))).Float() != 2.5 {
		t.Error("mixed add widens to float")
	}
	if mustV(Sub(NewInt(2), NewInt(3))).Int() != -1 {
		t.Error("sub")
	}
	if mustV(Mul(NewInt(4), NewInt(3))).Int() != 12 {
		t.Error("mul")
	}
	if mustV(Div(NewInt(7), NewInt(2))).Int() != 3 {
		t.Error("integer division")
	}
	if mustV(Div(NewFloat(7), NewInt(2))).Float() != 3.5 {
		t.Error("float division")
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must error")
	}
	if !mustV(Add(Null(), NewInt(1))).IsNull() {
		t.Error("NULL propagates through arithmetic")
	}
	if mustV(Add(NewString("a"), NewString("b"))).Str() != "ab" {
		t.Error("string + concatenates")
	}
}

func TestCoerceKind(t *testing.T) {
	v, err := CoerceKind(NewString("42"), KindInt)
	if err != nil || v.Int() != 42 {
		t.Errorf("string->int coerce: %v %v", v, err)
	}
	v, err = CoerceKind(NewInt(2), KindFloat)
	if err != nil || v.Float() != 2.0 {
		t.Errorf("int->float coerce: %v %v", v, err)
	}
	v, err = CoerceKind(NewFloat(2.9), KindInt)
	if err != nil || v.Int() != 2 {
		t.Errorf("float->int coerce: %v %v", v, err)
	}
	if _, err := CoerceKind(NewString("xyz"), KindInt); err == nil {
		t.Error("bad string->int must error")
	}
	v, err = CoerceKind(NewString("2015-05-31 12:00:00"), KindTime)
	if err != nil || v.Time().Year() != 2015 {
		t.Errorf("string->time coerce: %v %v", v, err)
	}
	n, err := CoerceKind(Null(), KindInt)
	if err != nil || !n.IsNull() {
		t.Error("NULL passes through coercion")
	}
	v, err = CoerceKind(NewInt(123), KindString)
	if err != nil || v.Str() != "123" {
		t.Errorf("int->string coerce: %v %v", v, err)
	}
	v, err = CoerceKind(NewString("true"), KindBool)
	if err != nil || !v.Bool() {
		t.Errorf("string->bool coerce: %v %v", v, err)
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Distinct composite keys must encode to distinct strings.
	keys := [][]Value{
		{NewInt(1), NewString("a")},
		{NewInt(1), NewString("b")},
		{NewString("1a")},
		{NewString("1"), NewString("a")},
		{NewInt(1)},
		{NewFloat(1)},
		{Null()},
		{NewBool(false), NewBool(true)},
		{},
	}
	seen := map[string]int{}
	for i, k := range keys {
		enc := EncodeKey(k)
		if j, dup := seen[enc]; dup {
			t.Errorf("keys %d and %d encode identically", i, j)
		}
		seen[enc] = i
	}
}

// Property: Compare is antisymmetric and consistent with Equal for ints.
func TestCompareProperty(t *testing.T) {
	prop := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c1, c2 := Compare(va, vb), Compare(vb, va)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == (a == b) && Equal(va, vb) == (a == b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey is injective for (int64, string) pairs.
func TestEncodeKeyProperty(t *testing.T) {
	prop := func(a1 int64, s1 string, a2 int64, s2 string) bool {
		k1 := EncodeKey([]Value{NewInt(a1), NewString(s1)})
		k2 := EncodeKey([]Value{NewInt(a2), NewString(s2)})
		return (k1 == k2) == (a1 == a2 && s1 == s2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormat(t *testing.T) {
	if Null().Format() != "NULL" {
		t.Error("NULL format")
	}
	if NewInt(-5).Format() != "-5" {
		t.Error("int format")
	}
	if NewBool(true).Format() != "true" {
		t.Error("bool format")
	}
	if NewFloat(1.25).Format() != "1.25" {
		t.Error("float format")
	}
}
