package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/stats"
)

// WorkerOptions configures one worker agent.
type WorkerOptions struct {
	// Addr is the coordinator's control-wire TCP address.
	Addr string
	// WorkerID is the id a prior HTTP registration assigned; zero registers
	// directly over the wire on first Hello.
	WorkerID uint64
	// Name identifies the worker in cluster status (defaulted by the
	// coordinator when empty).
	Name string
	// Benchmark and DB describe what the worker runs, for cluster status.
	Benchmark string
	DB        string
	// ReconnectMin/Max bound the dial backoff (defaults 100ms / 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

func (o *WorkerOptions) fill() {
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 100 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
}

// typeSent is the last cumulative per-type state shipped to the coordinator.
type typeSent struct {
	count int64
	hist  stats.HistSnapshot
}

// workerAgent binds a local workload Manager to the coordinator: it applies
// Assign frames to the manager's dynamic controls and ships the collector's
// counter movement back as cumulative deltas.
type workerAgent struct {
	m    *core.Manager
	c    *stats.Collector
	opts WorkerOptions

	start   time.Time
	welcome Welcome
	gen     atomic.Uint64 // newest assignment generation applied

	// Delta baselines persist across reconnects: the coordinator keeps the
	// accumulated view per worker id, so a reconnect resumes the cumulative
	// stream instead of restarting it.
	seq           uint64
	sentCommitted int64
	sentAborted   int64
	sentErrors    int64
	sentRetries   int64
	sentSumUS     int64
	sentTypes     []typeSent
}

// RunWorker runs m as one cluster worker agent: it launches the manager,
// maintains a control-wire connection to the coordinator (reconnecting with
// backoff), applies assignments, and streams stats until the manager
// finishes or ctx is cancelled. The manager's own Run error is returned.
func RunWorker(ctx context.Context, m *core.Manager, opts WorkerOptions) error {
	opts.fill()
	a := &workerAgent{
		m:         m,
		c:         m.Collector(),
		opts:      opts,
		start:     time.Now(),
		sentTypes: make([]typeSent, len(m.Collector().Types())),
	}

	runErr := make(chan error, 1)
	go func() { runErr <- m.Run(ctx) }()

	backoff := opts.ReconnectMin
	done := false
	for !done {
		conn, err := net.DialTimeout("tcp", opts.Addr, 5*time.Second)
		if err != nil {
			// Coordinator unreachable: wait out the backoff, unless the run
			// ends first — then there is nobody to flush to.
			select {
			case <-ctx.Done():
				done = true
			case <-m.Done():
				done = true
			case <-time.After(backoff):
				backoff *= 2
				if backoff > opts.ReconnectMax {
					backoff = opts.ReconnectMax
				}
			}
			continue
		}
		backoff = opts.ReconnectMin
		done = a.session(ctx, conn)
	}
	m.Stop()
	return <-runErr
}

// session drives one control connection. It returns true when the agent is
// finished (manager done or ctx cancelled), false on a connection break that
// the caller should redial.
func (a *workerAgent) session(ctx context.Context, conn net.Conn) bool {
	defer func() { _ = conn.Close() }()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(conn, 16<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	hello := Hello{
		Proto:     ProtoVersion,
		WorkerID:  a.opts.WorkerID,
		Name:      a.opts.Name,
		Benchmark: a.opts.Benchmark,
		DB:        a.opts.DB,
		Types:     a.c.Types(),
	}
	if err := WriteFrame(bw, FrameHello, hello.encode()); err != nil {
		return false
	}
	if err := bw.Flush(); err != nil {
		return false
	}
	typ, payload, err := ReadFrame(br)
	if err != nil || typ != FrameWelcome {
		return false
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return false
	}
	a.welcome = w
	a.opts.WorkerID = w.WorkerID // keep the assigned id across reconnects

	// The reader goroutine owns inbound frames (assignments); this goroutine
	// owns all writes. connDead closes when the peer is gone.
	connDead := make(chan struct{})
	go func() {
		defer close(connDead)
		for {
			typ, payload, err := ReadFrame(br)
			if err != nil {
				return
			}
			if typ == FrameAssign {
				if asg, err := decodeAssign(payload); err == nil {
					a.applyAssign(asg)
				}
			}
			// Unknown inbound frames are skipped, not fatal: a newer
			// coordinator may add advisory frames.
		}
	}()

	flushEvery := time.Duration(w.FlushUS) * time.Microsecond
	if flushEvery <= 0 {
		flushEvery = 250 * time.Millisecond
	}
	hbEvery := time.Duration(w.HeartbeatUS) * time.Microsecond
	if hbEvery <= 0 {
		hbEvery = 500 * time.Millisecond
	}
	flush := time.NewTicker(flushEvery)
	defer flush.Stop()
	hb := time.NewTicker(hbEvery)
	defer hb.Stop()

	for {
		select {
		case <-connDead:
			return false
		case <-ctx.Done():
			a.goodbye(bw, "context cancelled")
			return true
		case <-a.m.Done():
			// Final flush: the manager's workers have drained, so the
			// collector is quiescent and this delta makes the coordinator's
			// totals exactly equal the worker's.
			if a.writeUpdate(bw) == nil {
				a.goodbye(bw, "run complete")
			}
			return true
		case <-flush.C:
			if err := a.writeUpdate(bw); err != nil {
				return false
			}
		case <-hb.C:
			if err := a.writeHeartbeat(bw); err != nil {
				return false
			}
		}
	}
}

// applyAssign applies one assignment to the manager's dynamic controls,
// guarded by generation so a stale frame replayed across a reconnect cannot
// roll newer controls back.
func (a *workerAgent) applyAssign(asg Assign) {
	for {
		cur := a.gen.Load()
		if asg.Gen <= cur {
			return
		}
		if a.gen.CompareAndSwap(cur, asg.Gen) {
			break
		}
	}
	a.m.SetRate(asg.Rate)
	if len(asg.Mix) > 0 {
		a.m.SetMix(asg.Mix)
	} else {
		a.m.SetMix(nil) // restore benchmark default
	}
	if asg.Paused {
		a.m.Pause()
	} else {
		a.m.Resume()
	}
}

// buildUpdate diffs the collector's cumulative state against the last-sent
// baselines and advances them. Deltas are exact: every counter movement is
// shipped exactly once, which is what keeps the coordinator's merged totals
// equal to the sum of the workers'.
func (a *workerAgent) buildUpdate() StatsUpdate {
	a.seq++
	u := StatsUpdate{
		Seq:    a.seq,
		Window: int64(time.Since(a.start) / a.windowDur()),
	}

	cum := [4]int64{a.c.Committed(), a.c.Aborted(), a.c.Errors(), a.c.Retries()}
	u.Committed = cum[0] - a.sentCommitted
	u.Aborted = cum[1] - a.sentAborted
	u.Errors = cum[2] - a.sentErrors
	u.Retries = cum[3] - a.sentRetries
	a.sentCommitted, a.sentAborted, a.sentErrors, a.sentRetries = cum[0], cum[1], cum[2], cum[3]

	for i := range a.sentTypes {
		h := a.c.TypeHistSnapshot(i)
		last := &a.sentTypes[i]
		var count int64
		for _, n := range h.Counts {
			count += n
		}
		sumDelta := h.SumUS - last.hist.SumUS
		countDelta := count - last.count
		if countDelta == 0 && sumDelta == 0 && h.MaxUS == last.hist.MaxUS {
			continue // nothing moved for this type since the last flush
		}
		t := TypeDelta{
			Index: i,
			Count: countDelta,
			SumUS: sumDelta,
			MaxUS: h.MaxUS, // maxima travel cumulative, they do not delta
		}
		t.Buckets = make([]int64, len(h.Counts))
		for j, n := range h.Counts {
			prev := int64(0)
			if j < len(last.hist.Counts) {
				prev = last.hist.Counts[j]
			}
			t.Buckets[j] = n - prev
		}
		u.SumLatencyUS += sumDelta
		u.Types = append(u.Types, t)
		last.count = count
		last.hist = h // snapshots are fresh copies; safe to retain
	}
	a.sentSumUS += u.SumLatencyUS
	return u
}

func (a *workerAgent) windowDur() time.Duration {
	if a.welcome.WindowUS > 0 {
		return time.Duration(a.welcome.WindowUS) * time.Microsecond
	}
	return time.Second
}

func (a *workerAgent) writeUpdate(bw *bufio.Writer) error {
	u := a.buildUpdate()
	if err := WriteFrame(bw, FrameStats, u.encode()); err != nil {
		return err
	}
	return bw.Flush()
}

func (a *workerAgent) writeHeartbeat(bw *bufio.Writer) error {
	hb := Heartbeat{
		Committed: a.sentCommitted,
		Aborted:   a.sentAborted,
		Errors:    a.sentErrors,
		Retries:   a.sentRetries,
	}
	if err := WriteFrame(bw, FrameHeartbeat, hb.encode()); err != nil {
		return err
	}
	return bw.Flush()
}

func (a *workerAgent) goodbye(bw *bufio.Writer, reason string) {
	// Best-effort: the coordinator treats a bare disconnect identically.
	if WriteFrame(bw, FrameBye, Bye{Reason: reason}.encode()) == nil {
		_ = bw.Flush()
	}
}

// RegisterRequest is the HTTP registration payload
// (POST /api/v1/cluster/workers).
type RegisterRequest struct {
	Name      string `json:"name"`
	Benchmark string `json:"benchmark"`
	DB        string `json:"db"`
}

// RegisterResponse answers an HTTP registration with the assigned worker id
// and where/how to attach the control wire.
type RegisterResponse struct {
	WorkerID    uint64 `json:"worker_id"`
	WireAddr    string `json:"wire_addr"`
	WindowUS    int64  `json:"window_us"`
	FlushUS     int64  `json:"flush_us"`
	HeartbeatUS int64  `json:"heartbeat_us"`
}

// RegisterWorker registers over the coordinator's HTTP API (baseURL like
// "http://127.0.0.1:8090") and returns the assigned id plus the control-wire
// address to dial. Registration retries with backoff until the coordinator
// answers or ctx ends, so workers can start before the coordinator.
func RegisterWorker(ctx context.Context, baseURL string, req RegisterRequest) (RegisterResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return RegisterResponse{}, err
	}
	backoff := 100 * time.Millisecond
	for {
		resp, err := postJSON(ctx, baseURL+"/api/v1/cluster/workers", body)
		if err == nil {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return RegisterResponse{}, fmt.Errorf("cluster: register at %s: %w", baseURL, err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func postJSON(ctx context.Context, url string, body []byte) (RegisterResponse, error) {
	var out RegisterResponse
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return out, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("cluster: registration rejected: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}
