package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"benchpress/internal/dbdriver"
	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqlval"
)

// RemoteDialer connects dbdriver Conns to an EngineServer. It implements
// dbdriver.Dialer: Dial opens one TCP connection (= one engine session) per
// worker terminal. The first successful handshake caches the remote
// personality so the benchmark's dialect-specific statement resolution works
// against remote engines exactly as embedded ones.
type RemoteDialer struct {
	addr        string
	personality dbdriver.Personality
	// spare holds the probe session until the first Dial claims it, so
	// probing costs no extra engine session.
	spare *remoteSession
}

// DialRemoteEngine probes the engine server at addr (host:port) and returns
// a dialer wrapping it. The probe handshake both validates the protocol and
// learns the remote personality.
func DialRemoteEngine(addr string) (*RemoteDialer, error) {
	d := &RemoteDialer{addr: addr}
	probe, err := d.dialSession()
	if err != nil {
		return nil, fmt.Errorf("cluster: probe engine server %s: %w", addr, err)
	}
	d.personality = dbdriver.Personality{
		Name:        "remote:" + probe.welcome.Name,
		Description: "remote engine at " + addr,
		Dialect:     probe.welcome.Dialect,
	}
	d.spare = probe
	return d, nil
}

// Personality implements dbdriver.Dialer.
func (d *RemoteDialer) Personality() dbdriver.Personality { return d.personality }

// Close implements dbdriver.Dialer. The dialer holds no pooled resources;
// individual sessions close with their Conns.
func (d *RemoteDialer) Close() {
	if d.spare != nil {
		_ = d.spare.Close()
		d.spare = nil
	}
}

// Dial implements dbdriver.Dialer.
func (d *RemoteDialer) Dial() (dbdriver.SessionBackend, error) {
	if s := d.spare; s != nil {
		d.spare = nil
		return s, nil
	}
	return d.dialSession()
}

func (d *RemoteDialer) dialSession() (*remoteSession, error) {
	conn, err := net.DialTimeout("tcp", d.addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Per-statement round trips are latency-bound; Nagle would add a
		// full delayed-ACK cycle to every one.
		_ = tc.SetNoDelay(true)
	}
	s := &remoteSession{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
		bw:   bufio.NewWriterSize(conn, 32<<10),
	}
	var e enc
	e.uvarint(ProtoVersion)
	if err := WriteFrame(s.bw, FrameEngineHello, e.b); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := s.bw.Flush(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	typ, payload, err := ReadFrame(s.br)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	if typ != FrameEngineWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("cluster: engine handshake: unexpected frame 0x%02x", typ)
	}
	w, err := decodeEngineWelcome(payload)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	s.welcome = w
	return s, nil
}

// remoteSession is one engine session over the wire. It implements
// dbdriver.SessionBackend. Not safe for concurrent use — exactly like an
// embedded session, each worker terminal owns one.
type remoteSession struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	welcome engineWelcome
	inTxn   bool
	broken  error // sticky transport failure; engine errors do not set it
}

// roundTrip writes one request frame and reads the response frame.
func (s *remoteSession) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	if s.broken != nil {
		return 0, nil, s.broken
	}
	if err := WriteFrame(s.bw, typ, payload); err != nil {
		return 0, nil, s.fail(err)
	}
	if err := s.bw.Flush(); err != nil {
		return 0, nil, s.fail(err)
	}
	rt, rp, err := ReadFrame(s.br)
	if err != nil {
		return 0, nil, s.fail(err)
	}
	return rt, rp, nil
}

func (s *remoteSession) fail(err error) error {
	if s.broken == nil {
		s.broken = fmt.Errorf("cluster: engine connection lost: %w", err)
		_ = s.conn.Close()
	}
	// A transport loss mid-transaction means the commit verdict is unknown;
	// the session stays broken so the terminal's Conn surfaces errors until
	// the manager replaces it (or the run ends).
	s.inTxn = false
	return s.broken
}

func (s *remoteSession) exec(query bool, sql string, args []any) (*exec.Result, error) {
	vals := make([]sqlval.Value, len(args))
	for i, a := range args {
		v, err := sqlval.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("cluster: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	req := engineExec{Query: query, SQL: sql, Args: vals}
	typ, payload, err := s.roundTrip(FrameEngineExec, req.encode())
	if err != nil {
		return nil, err
	}
	switch typ {
	case FrameEngineResult:
		return decodeEngineResult(payload)
	case FrameEngineErr:
		m, derr := decodeEngineErr(payload)
		if derr != nil {
			return nil, s.fail(derr)
		}
		return nil, declassifyError(m.Class, m.Message)
	default:
		return nil, s.fail(fmt.Errorf("cluster: unexpected response frame 0x%02x", typ))
	}
}

// verdict interprets an OK/Err response to a transaction-control request.
func (s *remoteSession) verdict(typ byte, payload []byte) error {
	switch typ {
	case FrameEngineOK:
		return nil
	case FrameEngineErr:
		m, derr := decodeEngineErr(payload)
		if derr != nil {
			return s.fail(derr)
		}
		return declassifyError(m.Class, m.Message)
	default:
		return s.fail(fmt.Errorf("cluster: unexpected response frame 0x%02x", typ))
	}
}

// Exec implements dbdriver.SessionBackend.
func (s *remoteSession) Exec(sql string, args []any) (*exec.Result, error) {
	return s.exec(false, sql, args)
}

// Query implements dbdriver.SessionBackend.
func (s *remoteSession) Query(sql string, args []any) (*exec.Result, error) {
	return s.exec(true, sql, args)
}

// Begin implements dbdriver.SessionBackend.
func (s *remoteSession) Begin(readonly bool) error {
	var e enc
	e.boolVal(readonly)
	typ, payload, err := s.roundTrip(FrameEngineBegin, e.b)
	if err != nil {
		return err
	}
	if err := s.verdict(typ, payload); err != nil {
		return err
	}
	s.inTxn = true
	return nil
}

// Commit implements dbdriver.SessionBackend.
func (s *remoteSession) Commit() error {
	typ, payload, err := s.roundTrip(FrameEngineCommit, nil)
	if err != nil {
		return err
	}
	s.inTxn = false
	return s.verdict(typ, payload)
}

// Rollback implements dbdriver.SessionBackend.
func (s *remoteSession) Rollback() error {
	typ, payload, err := s.roundTrip(FrameEngineAbort, nil)
	if err != nil {
		return err
	}
	s.inTxn = false
	return s.verdict(typ, payload)
}

// InTxn implements dbdriver.SessionBackend.
func (s *remoteSession) InTxn() bool { return s.inTxn }

// Close implements dbdriver.SessionBackend.
func (s *remoteSession) Close() error {
	if s.broken != nil {
		return nil // connection already torn down
	}
	// Best-effort goodbye; the server also unwinds cleanly on bare EOF.
	_ = WriteFrame(s.bw, FrameBye, Bye{Reason: "session close"}.encode())
	_ = s.bw.Flush()
	return s.conn.Close()
}
