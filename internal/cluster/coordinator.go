package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"benchpress/internal/stats"
)

// CoordinatorOptions sets the cluster cadences. Zero values take defaults.
type CoordinatorOptions struct {
	// Window is the merged-feed window duration (default 1s).
	Window time.Duration
	// Flush is the deadline workers coalesce stat updates under (default
	// 250ms — four updates per 1s window keeps the merged feed fresh while
	// batching hundreds of transactions per frame).
	Flush time.Duration
	// Heartbeat is the worker heartbeat interval (default 500ms). A worker
	// silent for 3 heartbeats is evicted and its rate share rebalanced.
	Heartbeat time.Duration
}

func (o *CoordinatorOptions) fill() {
	if o.Window <= 0 {
		o.Window = time.Second
	}
	if o.Flush <= 0 {
		o.Flush = 250 * time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 500 * time.Millisecond
	}
}

// typeCum is one transaction type's cluster-cumulative state.
type typeCum struct {
	hist stats.HistSnapshot
}

// windowAccum collects the deltas that landed during the current merged
// window. It is reset at each rotation.
type windowAccum struct {
	committed    int64
	aborted      int64
	errors       int64
	retries      int64
	sumLatencyUS int64
	perType      []int64
	typeHist     []stats.HistSnapshot
	hist         stats.HistSnapshot
}

func newWindowAccum(ntypes int) windowAccum {
	return windowAccum{
		perType:  make([]int64, ntypes),
		typeHist: make([]stats.HistSnapshot, ntypes),
	}
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id        uint64
	name      string
	benchmark string
	db        string

	// conn/bw are nil while the worker is detached (registered over HTTP but
	// not yet connected, or between reconnects). wmu serializes Assign writes
	// against each other; the read loop never writes.
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex

	lastSeen   time.Time // any frame
	lastUpdate time.Time // last StatsUpdate specifically
	lastSeq    uint64
	lastWindow int64

	committed int64
	aborted   int64
	errors    int64
	retries   int64

	evicted bool
}

// WorkerStatus is one worker's externally visible state.
type WorkerStatus struct {
	ID        uint64 `json:"id"`
	Name      string `json:"name"`
	Benchmark string `json:"benchmark"`
	DB        string `json:"db"`
	Connected bool   `json:"connected"`
	// Stale marks a connected worker whose stats feed has missed at least
	// two flush deadlines; its numbers are still merged (they are cumulative
	// deltas, nothing is lost) but its share of "now" is outdated.
	Stale      bool    `json:"stale"`
	LastSeenMS int64   `json:"last_seen_ms"`
	RateShare  float64 `json:"rate_share"`
	Committed  int64   `json:"committed"`
	Aborted    int64   `json:"aborted"`
	Errors     int64   `json:"errors"`
	Retries    int64   `json:"retries"`
}

// ClusterStatus is the coordinator's externally visible state.
type ClusterStatus struct {
	Benchmark  string         `json:"benchmark"`
	Types      []string       `json:"types,omitempty"`
	TargetRate float64        `json:"target_rate"`
	Paused     bool           `json:"paused"`
	Mix        []float64      `json:"mix,omitempty"`
	Workers    []WorkerStatus `json:"workers"`
	Committed  int64          `json:"committed"`
	Aborted    int64          `json:"aborted"`
	Errors     int64          `json:"errors"`
	Retries    int64          `json:"retries"`
	// DriftEvents counts heartbeat cross-checks where a worker's cumulative
	// counters fell behind the delta-accumulated view (always zero unless the
	// lossless-delta invariant broke).
	DriftEvents int64                `json:"drift_events"`
	Latency     stats.LatencySummary `json:"-"`
}

// Coordinator owns the cluster: it accepts worker control connections,
// merges their sharded stat streams into one cluster-wide window feed, and
// fans dynamic-control changes back out as rate-share assignments. Merging
// is strictly non-blocking — windows rotate on the coordinator's clock and a
// slow or dead worker only goes stale, it never stalls the feed.
type Coordinator struct {
	opts   CoordinatorOptions
	ln     net.Listener
	start  time.Time
	wg     sync.WaitGroup
	closed atomic.Bool
	stopCh chan struct{}

	mu         sync.Mutex
	nextID     uint64
	gen        uint64
	targetRate float64
	paused     bool
	mix        []float64
	benchmark  string
	types      []string
	workers    map[uint64]*workerState

	totCommitted int64
	totAborted   int64
	totErrors    int64
	totRetries   int64
	sumLatencyUS int64
	driftEvents  int64
	typeCums     []typeCum
	globalHist   stats.HistSnapshot

	cur     windowAccum
	history []stats.Window

	subs    map[int]chan struct{}
	nextSub int
}

// NewCoordinator starts a coordinator serving the worker control wire on ln.
func NewCoordinator(ln net.Listener, opts CoordinatorOptions) *Coordinator {
	opts.fill()
	c := &Coordinator{
		opts:    opts,
		ln:      ln,
		start:   time.Now(),
		stopCh:  make(chan struct{}),
		workers: map[uint64]*workerState{},
		subs:    map[int]chan struct{}{},
	}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.acceptLoop()
	}()
	go func() {
		defer c.wg.Done()
		c.maintainLoop()
	}()
	return c
}

// Addr returns the control-wire listener address workers dial.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Start returns when the coordinator's window clock started.
func (c *Coordinator) Start() time.Time { return c.start }

// WindowDuration returns the merged feed's window length.
func (c *Coordinator) WindowDuration() time.Duration { return c.opts.Window }

// Close stops the coordinator: the listener closes, connected workers are
// disconnected, and background loops drain.
func (c *Coordinator) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.stopCh)
	_ = c.ln.Close()
	c.mu.Lock()
	for _, w := range c.workers {
		if w.conn != nil {
			_ = w.conn.Close()
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Register pre-registers a worker (the HTTP registration path). The returned
// id is presented in the worker's control-wire Hello. Registration fixes
// identity only; the benchmark type list arrives with the Hello.
func (c *Coordinator) Register(name, benchmark, db string) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.benchmark != "" && benchmark != c.benchmark {
		return 0, fmt.Errorf("cluster: benchmark %q does not match cluster benchmark %q", benchmark, c.benchmark)
	}
	c.nextID++
	id := c.nextID
	if name == "" {
		name = fmt.Sprintf("worker-%d", id)
	}
	c.workers[id] = &workerState{id: id, name: name, benchmark: benchmark, db: db, lastSeen: time.Now()}
	return id, nil
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serveWorker(conn)
		}()
	}
}

// serveWorker drives one worker control connection: Hello/Welcome handshake,
// initial Assign, then an inbound loop of stats/heartbeat frames. Outbound
// Assign frames are written by control methods under the worker's write
// mutex; this loop only reads.
func (c *Coordinator) serveWorker(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)

	typ, payload, err := ReadFrame(br)
	if err != nil || typ != FrameHello {
		return
	}
	hello, err := decodeHello(payload)
	if err != nil || hello.Proto != ProtoVersion {
		return
	}
	w, err := c.attach(hello, conn, bw)
	if err != nil {
		return
	}
	defer c.detach(w, conn)

	welcome := Welcome{
		WorkerID:    w.id,
		WindowUS:    c.opts.Window.Microseconds(),
		FlushUS:     c.opts.Flush.Microseconds(),
		HeartbeatUS: c.opts.Heartbeat.Microseconds(),
	}
	w.wmu.Lock()
	err = WriteFrame(bw, FrameWelcome, welcome.encode())
	if err == nil {
		err = bw.Flush()
	}
	w.wmu.Unlock()
	if err != nil {
		return
	}
	// The initial assignment carries the worker's current rate share so a
	// reconnecting worker resynchronizes immediately.
	c.broadcastAssign()

	for {
		typ, payload, err := ReadFrame(br)
		if err != nil {
			return // disconnect; detach rebalances
		}
		now := time.Now()
		switch typ {
		case FrameStats:
			u, err := decodeStatsUpdate(payload)
			if err != nil {
				return
			}
			c.applyStats(w, u, now)
		case FrameHeartbeat:
			hb, err := decodeHeartbeat(payload)
			if err != nil {
				return
			}
			c.applyHeartbeat(w, hb, now)
		case FrameBye:
			return
		default:
			return
		}
	}
}

// attach binds a control connection to its worker registration. A Hello with
// id 0 registers on the spot (the TCP-only path tests use); a nonzero id must
// match an existing registration and replaces any previous connection (the
// reconnect path). The first attach fixes the cluster's benchmark type list;
// later workers must present the same list or they are rejected — per-type
// deltas are indexed, so a mismatched list would corrupt the merge.
func (c *Coordinator) attach(h Hello, conn net.Conn, bw *bufio.Writer) (*workerState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var w *workerState
	if h.WorkerID == 0 {
		c.nextID++
		name := h.Name
		if name == "" {
			name = fmt.Sprintf("worker-%d", c.nextID)
		}
		w = &workerState{id: c.nextID, name: name, benchmark: h.Benchmark, db: h.DB}
		c.workers[w.id] = w
	} else {
		var ok bool
		w, ok = c.workers[h.WorkerID]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown worker id %d", h.WorkerID)
		}
		if old := w.conn; old != nil && old != conn {
			_ = old.Close()
		}
	}
	if c.types == nil {
		c.types = append([]string(nil), h.Types...)
		c.benchmark = h.Benchmark
		c.typeCums = make([]typeCum, len(c.types))
		c.cur = newWindowAccum(len(c.types))
	} else if !sameStrings(c.types, h.Types) {
		return nil, fmt.Errorf("cluster: worker %d type list does not match cluster", w.id)
	}
	now := time.Now()
	// conn/bw flips take the write mutex too: broadcastAssign reads them
	// under wmu alone after snapshotting targets, so registry-lock coverage
	// is not enough.
	w.wmu.Lock()
	w.conn = conn
	w.bw = bw
	w.wmu.Unlock()
	w.lastSeen = now
	w.lastUpdate = now
	w.evicted = false
	return w, nil
}

// detach drops a worker's connection (peer loss or Bye) and rebalances rate
// shares across the remaining connected workers — a killed worker's share is
// redistributed immediately, not at the next heartbeat sweep. The session's
// own conn is compared first: a reconnect may already have replaced it, and
// the stale session's teardown must not sever the replacement.
func (c *Coordinator) detach(w *workerState, conn net.Conn) {
	c.mu.Lock()
	w.wmu.Lock()
	if w.conn == conn {
		_ = w.conn.Close()
		w.conn = nil
		w.bw = nil
	}
	w.wmu.Unlock()
	c.mu.Unlock()
	c.broadcastAssign()
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyStats folds one worker's cumulative-delta update into the cluster
// totals and the current window accumulator. Duplicate or reordered updates
// (possible across a reconnect replay) are rejected by sequence number, which
// preserves the exactness of the merged counters.
func (c *Coordinator) applyStats(w *workerState, u StatsUpdate, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.lastSeen = now
	if u.Seq <= w.lastSeq {
		return
	}
	w.lastSeq = u.Seq
	w.lastUpdate = now
	w.lastWindow = u.Window

	w.committed += u.Committed
	w.aborted += u.Aborted
	w.errors += u.Errors
	w.retries += u.Retries

	c.totCommitted += u.Committed
	c.totAborted += u.Aborted
	c.totErrors += u.Errors
	c.totRetries += u.Retries
	c.sumLatencyUS += u.SumLatencyUS

	c.cur.committed += u.Committed
	c.cur.aborted += u.Aborted
	c.cur.errors += u.Errors
	c.cur.retries += u.Retries
	c.cur.sumLatencyUS += u.SumLatencyUS

	for _, t := range u.Types {
		if t.Index < 0 || t.Index >= len(c.typeCums) {
			continue // corrupt index; drop the delta rather than the worker
		}
		delta := stats.HistSnapshot{Counts: t.Buckets, SumUS: t.SumUS, MaxUS: t.MaxUS}
		c.typeCums[t.Index].hist.Merge(delta)
		c.globalHist.Merge(delta)
		if t.Index < len(c.cur.perType) {
			c.cur.perType[t.Index] += t.Count
			// Window-scoped digests deliberately omit MaxUS: the delta's max
			// is cumulative over the worker's life, so the window max falls
			// back to the highest occupied bucket (one-bucket resolution).
			wdelta := stats.HistSnapshot{Counts: t.Buckets, SumUS: t.SumUS}
			c.cur.typeHist[t.Index].Merge(wdelta)
			c.cur.hist.Merge(wdelta)
		}
	}
}

// applyHeartbeat records liveness and cross-checks the delta-accumulated
// totals against the worker's own cumulative counters.
func (c *Coordinator) applyHeartbeat(w *workerState, hb Heartbeat, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.lastSeen = now
	// Heartbeats race ahead of in-flight stat flushes, so the worker's own
	// counters may exceed the accumulated view; they must never be behind it.
	// Being behind means lost or double-applied deltas — counted rather than
	// patched over, so tests and operators can see the invariant break.
	if hb.Committed < w.committed || hb.Aborted < w.aborted {
		c.driftEvents++
	}
}

// maintainLoop owns the coordinator's clock: window rotation on the window
// cadence and heartbeat-based eviction on the heartbeat cadence.
func (c *Coordinator) maintainLoop() {
	rotate := time.NewTicker(c.opts.Window)
	defer rotate.Stop()
	sweep := time.NewTicker(c.opts.Heartbeat)
	defer sweep.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-rotate.C:
			c.rotate()
			c.notifySubscribers()
		case <-sweep.C:
			c.sweepDead()
		}
	}
}

// rotate finalizes the current merged window. It runs on the coordinator's
// ticker regardless of worker progress: a stalled worker's missing deltas
// simply land in a later window when they arrive.
func (c *Coordinator) rotate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := len(c.history)
	win := stats.Window{
		Index:        idx,
		Start:        time.Duration(idx) * c.opts.Window,
		Committed:    c.cur.committed,
		Aborted:      c.cur.aborted,
		Errors:       c.cur.errors,
		Retries:      c.cur.retries,
		SumLatencyUS: c.cur.sumLatencyUS,
		PerType:      append([]int64(nil), c.cur.perType...),
		Lat:          c.cur.hist.Summary(),
	}
	win.TypeLat = make([]stats.LatencySummary, len(c.cur.typeHist))
	for i := range c.cur.typeHist {
		win.TypeLat[i] = c.cur.typeHist[i].Summary()
	}
	c.history = append(c.history, win)
	c.cur = newWindowAccum(len(c.types))
}

// sweepDead evicts workers silent for 3 heartbeat intervals and rebalances.
func (c *Coordinator) sweepDead() {
	cutoff := time.Now().Add(-3 * c.opts.Heartbeat)
	var dropped bool
	c.mu.Lock()
	for _, w := range c.workers {
		if w.conn != nil && w.lastSeen.Before(cutoff) {
			_ = w.conn.Close() // read loop unwinds and detaches
			w.evicted = true
			dropped = true
		}
	}
	c.mu.Unlock()
	if dropped {
		c.broadcastAssign()
	}
}

// EvictWorker forcibly disconnects a worker (the API's DELETE). Its stats
// stay merged; its rate share is rebalanced to the survivors.
func (c *Coordinator) EvictWorker(id uint64) bool {
	c.mu.Lock()
	w, ok := c.workers[id]
	if ok && w.conn != nil {
		_ = w.conn.Close()
		w.evicted = true
	}
	c.mu.Unlock()
	return ok
}

// SetRate sets the aggregate cluster rate (0 = unlimited) and fans per-worker
// shares out.
func (c *Coordinator) SetRate(tps float64) {
	c.mu.Lock()
	if tps < 0 {
		tps = 0
	}
	c.targetRate = tps
	c.mu.Unlock()
	c.broadcastAssign()
}

// TargetRate returns the aggregate cluster rate target.
func (c *Coordinator) TargetRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.targetRate
}

// SetMix sets the cluster-wide transaction mixture (nil = benchmark default).
func (c *Coordinator) SetMix(weights []float64) {
	c.mu.Lock()
	c.mix = append([]float64(nil), weights...)
	c.mu.Unlock()
	c.broadcastAssign()
}

// Mix returns the cluster-wide mixture (nil = benchmark default).
func (c *Coordinator) Mix() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.mix...)
}

// SetPaused pauses or resumes arrivals cluster-wide.
func (c *Coordinator) SetPaused(paused bool) {
	c.mu.Lock()
	c.paused = paused
	c.mu.Unlock()
	c.broadcastAssign()
}

// Paused reports the cluster pause gate.
func (c *Coordinator) Paused() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.paused
}

// broadcastAssign recomputes per-worker rate shares and pushes the current
// assignment to every connected worker under a fresh generation number.
func (c *Coordinator) broadcastAssign() {
	c.mu.Lock()
	c.gen++
	live := 0
	for _, w := range c.workers {
		if w.conn != nil {
			live++
		}
	}
	share := 0.0
	if c.targetRate > 0 && live > 0 {
		share = c.targetRate / float64(live)
	}
	a := Assign{Gen: c.gen, Rate: share, Paused: c.paused, Mix: append([]float64(nil), c.mix...)}
	targets := make([]*workerState, 0, live)
	for _, w := range c.workers {
		if w.conn != nil {
			targets = append(targets, w)
		}
	}
	c.mu.Unlock()

	payload := a.encode()
	for _, w := range targets {
		w.wmu.Lock()
		if w.bw != nil {
			// A write failure also surfaces on the worker's read loop, which
			// owns detach-and-rebalance; nothing to do with it here.
			if err := WriteFrame(w.bw, FrameAssign, payload); err == nil {
				_ = w.bw.Flush()
			}
		}
		w.wmu.Unlock()
	}
}

// RateShare returns the share a single worker currently receives.
func (c *Coordinator) RateShare() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for _, w := range c.workers {
		if w.conn != nil {
			live++
		}
	}
	if c.targetRate <= 0 || live == 0 {
		return 0
	}
	return c.targetRate / float64(live)
}

// Types returns the cluster's fixed transaction type list (nil until the
// first worker attaches).
func (c *Coordinator) Types() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.types...)
}

// Status returns the cluster's externally visible state.
func (c *Coordinator) Status() ClusterStatus {
	now := time.Now()
	staleCutoff := now.Add(-2 * c.opts.Flush)
	c.mu.Lock()
	defer c.mu.Unlock()
	live := 0
	for _, w := range c.workers {
		if w.conn != nil {
			live++
		}
	}
	share := 0.0
	if c.targetRate > 0 && live > 0 {
		share = c.targetRate / float64(live)
	}
	st := ClusterStatus{
		Benchmark:   c.benchmark,
		Types:       append([]string(nil), c.types...),
		TargetRate:  c.targetRate,
		Paused:      c.paused,
		Mix:         append([]float64(nil), c.mix...),
		Committed:   c.totCommitted,
		Aborted:     c.totAborted,
		Errors:      c.totErrors,
		Retries:     c.totRetries,
		DriftEvents: c.driftEvents,
		Latency:     c.globalHist.Summary(),
	}
	ids := make([]uint64, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := c.workers[id]
		ws := WorkerStatus{
			ID:         w.id,
			Name:       w.name,
			Benchmark:  w.benchmark,
			DB:         w.db,
			Connected:  w.conn != nil,
			Stale:      w.conn != nil && w.lastUpdate.Before(staleCutoff),
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			Committed:  w.committed,
			Aborted:    w.aborted,
			Errors:     w.errors,
			Retries:    w.retries,
		}
		if ws.Connected {
			ws.RateShare = share
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

// GlobalSummary returns the cluster-cumulative latency digest.
func (c *Coordinator) GlobalSummary() stats.LatencySummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.globalHist.Summary()
}

// GlobalHistSnapshot returns a copy of the cluster-cumulative merged
// histogram.
func (c *Coordinator) GlobalHistSnapshot() stats.HistSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.globalHist.Clone()
}

// Committed returns the exact cluster-cumulative committed count.
func (c *Coordinator) Committed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totCommitted
}

// WindowsSince returns finalized merged windows from index from on.
func (c *Coordinator) WindowsSince(from int) []stats.Window {
	c.mu.Lock()
	defer c.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(c.history) {
		return nil
	}
	return append([]stats.Window(nil), c.history[from:]...)
}

// Subscribe registers for a signal after each window rotation (same contract
// as stats.Collector.Subscribe: coalesced, non-blocking).
func (c *Coordinator) Subscribe() (<-chan struct{}, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextSub
	c.nextSub++
	ch := make(chan struct{}, 1)
	c.subs[id] = ch
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.subs, id)
	}
}

func (c *Coordinator) notifySubscribers() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending signal
		}
	}
}
