package cluster

import (
	"benchpress/internal/stats"
)

// Hello is the worker's first frame on the control wire: identity plus the
// benchmark metadata the coordinator needs to merge stats (the type list
// fixes per-type indexes for every later delta). WorkerID is zero on first
// contact; a reconnecting worker presents its assigned id to resume its
// registration instead of creating a new one.
type Hello struct {
	Proto     uint64
	WorkerID  uint64
	Name      string
	Benchmark string
	DB        string
	Types     []string
}

func (h Hello) encode() []byte {
	var e enc
	e.uvarint(h.Proto)
	e.uvarint(h.WorkerID)
	e.str(h.Name)
	e.str(h.Benchmark)
	e.str(h.DB)
	e.strs(h.Types)
	return e.b
}

func decodeHello(p []byte) (Hello, error) {
	d := dec{b: p}
	h := Hello{
		Proto:     d.uvarint(),
		WorkerID:  d.uvarint(),
		Name:      d.str(),
		Benchmark: d.str(),
		DB:        d.str(),
		Types:     d.strs(),
	}
	return h, d.finish()
}

// Welcome answers a Hello: the worker's assigned id and the cadences the
// coordinator wants it to run at (stat flush deadline, heartbeat interval,
// window duration), all in microseconds.
type Welcome struct {
	WorkerID    uint64
	WindowUS    int64
	FlushUS     int64
	HeartbeatUS int64
}

func (w Welcome) encode() []byte {
	var e enc
	e.uvarint(w.WorkerID)
	e.varint(w.WindowUS)
	e.varint(w.FlushUS)
	e.varint(w.HeartbeatUS)
	return e.b
}

func decodeWelcome(p []byte) (Welcome, error) {
	d := dec{b: p}
	w := Welcome{
		WorkerID:    d.uvarint(),
		WindowUS:    d.varint(),
		FlushUS:     d.varint(),
		HeartbeatUS: d.varint(),
	}
	return w, d.finish()
}

// Assign fans the cluster's dynamic controls out to one worker: its rate
// share (0 = unlimited), the mixture weights (nil = benchmark default), and
// the pause gate. Gen is a monotonic assignment generation; a worker ignores
// frames older than the newest it has applied, so reordering across a
// reconnect cannot roll controls back.
type Assign struct {
	Gen    uint64
	Rate   float64
	Paused bool
	Mix    []float64
}

func (a Assign) encode() []byte {
	var e enc
	e.uvarint(a.Gen)
	e.float64Val(a.Rate)
	e.boolVal(a.Paused)
	e.float64s(a.Mix)
	return e.b
}

func decodeAssign(p []byte) (Assign, error) {
	d := dec{b: p}
	a := Assign{
		Gen:    d.uvarint(),
		Rate:   d.float64Val(),
		Paused: d.boolVal(),
		Mix:    d.float64sVal(),
	}
	return a, d.finish()
}

// TypeDelta is one transaction type's share of a stats update: committed
// count and latency-sum deltas since the previous flush, the cumulative
// maximum (maxima do not delta), and the histogram bucket-count deltas.
type TypeDelta struct {
	Index   int
	Count   int64
	SumUS   int64
	MaxUS   int64
	Buckets []int64
}

// StatsUpdate is one batched, coalesced stat flush: every counter movement
// on the worker since the previous update, attributed cumulatively. Deltas
// are lossless — the coordinator's running totals equal the worker's exactly
// once the update lands, which is what makes the merged committed count an
// exact sum rather than an estimate. Window is the worker's latest completed
// window ordinal, carried for staleness accounting.
type StatsUpdate struct {
	Seq          uint64
	Window       int64
	Committed    int64
	Aborted      int64
	Errors       int64
	Retries      int64
	SumLatencyUS int64
	Types        []TypeDelta
}

func (u StatsUpdate) encode() []byte {
	var e enc
	e.uvarint(u.Seq)
	e.varint(u.Window)
	e.varint(u.Committed)
	e.varint(u.Aborted)
	e.varint(u.Errors)
	e.varint(u.Retries)
	e.varint(u.SumLatencyUS)
	e.uvarint(uint64(len(u.Types)))
	for _, t := range u.Types {
		e.uvarint(uint64(t.Index))
		e.varint(t.Count)
		e.varint(t.SumUS)
		e.varint(t.MaxUS)
		appendSparseBuckets(&e, t.Buckets)
	}
	return e.b
}

// maxTypes bounds the per-update type count; no benchmark has more than a
// few dozen procedures, so anything past this is a corrupt frame.
const maxTypes = 1 << 10

func decodeStatsUpdate(p []byte) (StatsUpdate, error) {
	d := dec{b: p}
	u := StatsUpdate{
		Seq:          d.uvarint(),
		Window:       d.varint(),
		Committed:    d.varint(),
		Aborted:      d.varint(),
		Errors:       d.varint(),
		Retries:      d.varint(),
		SumLatencyUS: d.varint(),
	}
	n := d.count(4)
	if n > maxTypes {
		d.fail()
	}
	for i := 0; i < n && d.err == nil; i++ {
		t := TypeDelta{
			Index: int(d.uvarint()),
			Count: d.varint(),
			SumUS: d.varint(),
			MaxUS: d.varint(),
		}
		t.Buckets = decodeSparseBuckets(&d, 0, stats.NumBuckets)
		if t.Index >= maxTypes {
			d.fail()
			break
		}
		u.Types = append(u.Types, t)
	}
	return u, d.finish()
}

// Heartbeat carries liveness plus the worker's cumulative outcome totals, so
// the coordinator can cross-check its delta-accumulated view and surface
// drift (there should never be any) instead of silently diverging.
type Heartbeat struct {
	Committed int64
	Aborted   int64
	Errors    int64
	Retries   int64
}

func (h Heartbeat) encode() []byte {
	var e enc
	e.varint(h.Committed)
	e.varint(h.Aborted)
	e.varint(h.Errors)
	e.varint(h.Retries)
	return e.b
}

func decodeHeartbeat(p []byte) (Heartbeat, error) {
	d := dec{b: p}
	h := Heartbeat{
		Committed: d.varint(),
		Aborted:   d.varint(),
		Errors:    d.varint(),
		Retries:   d.varint(),
	}
	return h, d.finish()
}

// Bye announces a graceful shutdown with a human-readable reason.
type Bye struct{ Reason string }

func (b Bye) encode() []byte {
	var e enc
	e.str(b.Reason)
	return e.b
}

func decodeBye(p []byte) (Bye, error) {
	d := dec{b: p}
	b := Bye{Reason: d.str()}
	return b, d.finish()
}
