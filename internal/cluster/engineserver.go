package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"benchpress/internal/dbdriver"
	"benchpress/internal/sqldb/exec"
)

// EngineServer exposes one embedded engine instance over the binary session
// wire, so any number of worker processes can drive a single DBMS — the
// deployment shape real OLTP-Bench clusters have. Each accepted connection
// is one engine session with its own transaction state; the server prepares
// nothing itself (the operator loads the benchmark before serving).
type EngineServer struct {
	db *dbdriver.DB
	ln net.Listener

	wg       sync.WaitGroup
	closed   atomic.Bool
	sessions atomic.Int64
}

// ServeEngine starts serving db's sessions on ln. It returns immediately;
// Close stops the accept loop and waits for in-flight sessions to unwind.
func ServeEngine(ln net.Listener, db *dbdriver.DB) *EngineServer {
	s := &EngineServer{db: db, ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop()
	}()
	return s
}

// Addr returns the listener address.
func (s *EngineServer) Addr() net.Addr { return s.ln.Addr() }

// Sessions returns the number of currently open sessions.
func (s *EngineServer) Sessions() int64 { return s.sessions.Load() }

// Close stops accepting and waits for session goroutines. Session
// connections unwind on their next read after the peer closes; the engine
// itself is owned by the caller and stays open.
func (s *EngineServer) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	// Listener close doubles as the shutdown signal for the accept loop; a
	// close error past shutdown carries no information worth surfacing.
	_ = s.ln.Close()
	s.wg.Wait()
}

func (s *EngineServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveSession(conn)
		}()
	}
}

// serveSession drives one engine session: handshake, then a strict
// request/response loop until the peer disconnects. Any protocol violation
// tears the connection down — a confused client must not keep a half-driven
// transaction pinned.
func (s *EngineServer) serveSession(conn net.Conn) {
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	defer func() { _ = conn.Close() }()

	sess := s.db.Connect()
	// Session teardown past a broken peer: the rollback verdict has nobody
	// left to report to.
	defer func() { _ = sess.Close() }()

	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)

	// Handshake.
	typ, payload, err := ReadFrame(br)
	if err != nil || typ != FrameEngineHello {
		return
	}
	d := dec{b: payload}
	if proto := d.uvarint(); d.finish() != nil || proto != ProtoVersion {
		return
	}
	p := s.db.Personality()
	welcome := engineWelcome{Name: p.Name, Dialect: p.Dialect}
	if err := WriteFrame(bw, FrameEngineWelcome, welcome.encode()); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	for {
		typ, payload, err := ReadFrame(br)
		if err != nil {
			return // disconnect (clean EOF between frames is the normal exit)
		}
		if err := s.handleFrame(bw, sess, typ, payload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handleFrame executes one request and writes (not flushes) the response.
// The returned error is transport/protocol-fatal; engine errors travel back
// as FrameEngineErr and keep the session alive.
func (s *EngineServer) handleFrame(w io.Writer, sess *dbdriver.Conn, typ byte, payload []byte) error {
	switch typ {
	case FrameEngineExec:
		req, err := decodeEngineExec(payload)
		if err != nil {
			return frameError(typ, err)
		}
		args := make([]any, len(req.Args))
		for i, v := range req.Args {
			args[i] = v
		}
		var (
			r       *exec.Result
			execErr error
		)
		if req.Query {
			r, execErr = sess.Query(req.SQL, args...)
		} else {
			r, execErr = sess.Exec(req.SQL, args...)
		}
		if execErr != nil {
			return writeEngineErr(w, execErr)
		}
		return WriteFrame(w, FrameEngineResult, encodeEngineResult(r))
	case FrameEngineBegin:
		d := dec{b: payload}
		readonly := d.boolVal()
		if err := d.finish(); err != nil {
			return frameError(typ, err)
		}
		var err error
		if readonly {
			err = sess.BeginReadOnly()
		} else {
			err = sess.Begin()
		}
		return writeVerdict(w, err)
	case FrameEngineCommit:
		return writeVerdict(w, sess.Commit())
	case FrameEngineAbort:
		return writeVerdict(w, sess.Rollback())
	case FrameBye:
		return io.EOF
	default:
		return fmt.Errorf("cluster: unexpected engine frame 0x%02x", typ)
	}
}

func writeVerdict(w io.Writer, err error) error {
	if err != nil {
		return writeEngineErr(w, err)
	}
	return WriteFrame(w, FrameEngineOK, nil)
}

func writeEngineErr(w io.Writer, err error) error {
	m := engineErr{Class: classifyError(err), Message: err.Error()}
	return WriteFrame(w, FrameEngineErr, m.encode())
}
