package cluster_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	_ "benchpress/internal/benchmarks/all"
	"benchpress/internal/cluster"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/stats"
)

// newWorkerManager builds one embedded-engine YCSB workload for a cluster
// worker: small scale, its own database, one open-loop phase of d.
func newWorkerManager(t *testing.T, name string, d time.Duration, terminals int) (*core.Manager, func()) {
	t.Helper()
	b, err := core.NewBenchmark("ycsb", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Prepare(b, db, 1); err != nil {
		db.Close()
		t.Fatal(err)
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: d}}, core.Options{
		Terminals: terminals,
		Name:      name,
	})
	return m, db.Close
}

func testCoordinator(t *testing.T) (*cluster.Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := cluster.NewCoordinator(ln, cluster.CoordinatorOptions{
		Window:    200 * time.Millisecond,
		Flush:     50 * time.Millisecond,
		Heartbeat: 100 * time.Millisecond,
	})
	t.Cleanup(co.Close)
	return co, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterGateMergedExactness is the CI gate for the scale-out path: a
// coordinator with two in-process workers running a short YCSB burst. The
// merged committed count must equal the sum of the workers' collectors
// EXACTLY (the stats wire ships lossless cumulative deltas, not samples),
// and the merged latency digest must agree with an oracle built by merging
// the worker histograms directly in-process.
func TestClusterGateMergedExactness(t *testing.T) {
	co, addr := testCoordinator(t)

	const nWorkers = 2
	managers := make([]*core.Manager, nWorkers)
	for i := range managers {
		m, closeDB := newWorkerManager(t, "w"+string(rune('0'+i)), 1200*time.Millisecond, 2)
		t.Cleanup(closeDB)
		managers[i] = m
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range managers {
		wg.Add(1)
		go func(i int, m *core.Manager) {
			defer wg.Done()
			if err := cluster.RunWorker(ctx, m, cluster.WorkerOptions{
				Addr:      addr,
				Name:      m.Name(),
				Benchmark: "ycsb",
				DB:        "gomvcc",
			}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, m)
	}
	wg.Wait()
	// RunWorker returns after its final flush and Bye, so the coordinator
	// has every delta once the reads drain; give the server loop a moment.
	var wantCommitted, wantAborted, wantErrors, wantRetries int64
	oracle := stats.HistSnapshot{}
	for _, m := range managers {
		c := m.Collector()
		wantCommitted += c.Committed()
		wantAborted += c.Aborted()
		wantErrors += c.Errors()
		wantRetries += c.Retries()
		oracle.Merge(c.GlobalHistSnapshot())
	}
	if wantCommitted == 0 {
		t.Fatal("workers committed nothing; workload did not run")
	}
	waitFor(t, 2*time.Second, "merged committed count", func() bool {
		return co.Committed() == wantCommitted
	})

	st := co.Status()
	if st.Committed != wantCommitted || st.Aborted != wantAborted ||
		st.Errors != wantErrors || st.Retries != wantRetries {
		t.Fatalf("merged totals not exact: got %d/%d/%d/%d want %d/%d/%d/%d",
			st.Committed, st.Aborted, st.Errors, st.Retries,
			wantCommitted, wantAborted, wantErrors, wantRetries)
	}
	if st.DriftEvents != 0 {
		t.Fatalf("heartbeat cross-check saw %d drift events", st.DriftEvents)
	}

	// Percentile fidelity: merged-over-the-wire vs direct in-process merge.
	// Bucket deltas are lossless, so this should be exact; the gate allows
	// ±10% to stay robust if the bucket scheme ever coarsens.
	want := oracle.Summary()
	got := co.GlobalSummary()
	if got.Count != want.Count {
		t.Fatalf("merged histogram count %d != oracle %d", got.Count, want.Count)
	}
	within := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= 0.10*float64(want)
	}
	if !within(got.P95, want.P95) || !within(got.P50, want.P50) {
		t.Fatalf("merged percentiles diverge from oracle: got p50=%v p95=%v, want p50=%v p95=%v",
			got.P50, got.P95, want.P50, want.P95)
	}
	if got.Max != want.Max {
		t.Fatalf("merged max %v != oracle %v", got.Max, want.Max)
	}

	// The merged feed produced windows and their committed sum never exceeds
	// the exact total (the tail may still sit in the unrotated window).
	wins := co.WindowsSince(0)
	if len(wins) == 0 {
		t.Fatal("no merged windows rotated")
	}
	var winSum int64
	for _, w := range wins {
		winSum += w.Committed
	}
	if winSum > wantCommitted {
		t.Fatalf("windows contain %d committed, more than the exact total %d", winSum, wantCommitted)
	}
}

// TestClusterRateFanOutAndRebalance drives the dynamic-control path: an
// aggregate rate splits evenly across live workers, and a departing worker's
// share moves to the survivors without stalling the merged feed.
func TestClusterRateFanOutAndRebalance(t *testing.T) {
	co, addr := testCoordinator(t)

	mkWorker := func(name string) (m *core.Manager, cancel context.CancelFunc, done chan struct{}) {
		m, closeDB := newWorkerManager(t, name, 10*time.Second, 1)
		t.Cleanup(closeDB)
		ctx, cancelCtx := context.WithCancel(context.Background())
		ch := make(chan struct{})
		go func() {
			defer close(ch)
			_ = cluster.RunWorker(ctx, m, cluster.WorkerOptions{Addr: addr, Name: name, Benchmark: "ycsb", DB: "gomvcc"})
		}()
		return m, cancelCtx, ch
	}
	m1, cancel1, done1 := mkWorker("r1")
	m2, cancel2, done2 := mkWorker("r2")
	defer func() {
		cancel1()
		cancel2()
		<-done1
		<-done2
	}()

	waitFor(t, 5*time.Second, "both workers connected", func() bool {
		st := co.Status()
		n := 0
		for _, w := range st.Workers {
			if w.Connected {
				n++
			}
		}
		return n == 2
	})

	co.SetRate(300)
	waitFor(t, 2*time.Second, "rate share fan-out", func() bool {
		return m1.Rate() == 150 && m2.Rate() == 150
	})

	// Kill worker 1 (context cancel closes its connection): its share must
	// land on worker 2 within roughly a heartbeat.
	windowsBefore := len(co.WindowsSince(0))
	cancel1()
	<-done1
	waitFor(t, 2*time.Second, "share rebalance to survivor", func() bool {
		return m2.Rate() == 300
	})
	// The merged feed kept rotating while the cluster shrank.
	waitFor(t, 2*time.Second, "merged feed still rotating", func() bool {
		return len(co.WindowsSince(0)) > windowsBefore
	})

	// Pause fan-out reaches the survivor.
	co.SetPaused(true)
	waitFor(t, 2*time.Second, "pause fan-out", func() bool { return m2.Paused() })
	co.SetPaused(false)
	waitFor(t, 2*time.Second, "resume fan-out", func() bool { return !m2.Paused() })
}

// TestRemoteEngineSession drives a dbdriver connection against an engine in
// "another process" (same process, real TCP): DDL, DML, queries, and
// transaction control all round-trip, including the autocommit path.
func TestRemoteEngineSession(t *testing.T) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setup := db.Connect()
	if _, err := setup.Exec("CREATE TABLE kv (k INT NOT NULL, v VARCHAR(20), PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	if err := setup.Close(); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	es := cluster.ServeEngine(ln, db)
	defer es.Close()

	dialer, err := cluster.DialRemoteEngine(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	rdb := dbdriver.OpenRemote(dialer)
	defer rdb.Close()
	if !rdb.Remote() {
		t.Fatal("OpenRemote produced a non-remote DB")
	}
	if got := rdb.Personality().Dialect; got != db.Personality().Dialect {
		t.Fatalf("remote personality dialect %q != %q", got, db.Personality().Dialect)
	}

	conn := rdb.Connect()
	defer conn.Close()
	if _, err := conn.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", 1, "one"); err != nil {
		t.Fatal(err)
	}
	// Explicit transaction: insert + rollback leaves no row.
	if err := conn.Begin(); err != nil {
		t.Fatal(err)
	}
	if !conn.InTxn() {
		t.Fatal("InTxn false inside transaction")
	}
	if _, err := conn.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", 2, "two"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Prepared statements re-ship SQL client-side.
	st, err := conn.Prepare("SELECT v FROM kv WHERE k = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "one" {
		t.Fatalf("point read: %+v", res.Rows)
	}
	if res, err := conn.Query("SELECT v FROM kv WHERE k = ?", 2); err != nil || len(res.Rows) != 0 {
		t.Fatalf("rolled-back row visible: rows=%v err=%v", res, err)
	}
	row, err := conn.QueryRow("SELECT v FROM kv WHERE k = ?", 1)
	if err != nil || row == nil || row[0].Str() != "one" {
		t.Fatalf("QueryRow: row=%v err=%v", row, err)
	}
	// Engine-side errors come back as errors, not dead connections.
	if _, err := conn.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", 1, "dup"); err == nil {
		t.Fatal("duplicate key accepted over the wire")
	}
	// ...and the session is still usable afterwards.
	if _, err := conn.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", 3, "three"); err != nil {
		t.Fatal(err)
	}
	if es.Sessions() == 0 {
		t.Fatal("server reports no open sessions")
	}
}

// TestWorkerReconnect kills the coordinator-side connection and verifies the
// worker redials with backoff and resumes its cumulative stream on the same
// worker id (no double counting).
func TestWorkerReconnect(t *testing.T) {
	co, addr := testCoordinator(t)
	m, closeDB := newWorkerManager(t, "rw", 3*time.Second, 1)
	t.Cleanup(closeDB)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = cluster.RunWorker(ctx, m, cluster.WorkerOptions{Addr: addr, Name: "rw", Benchmark: "ycsb", DB: "gomvcc"})
	}()
	waitFor(t, 5*time.Second, "worker attached", func() bool {
		st := co.Status()
		return len(st.Workers) == 1 && st.Workers[0].Connected
	})
	id := co.Status().Workers[0].ID
	// Force a disconnect from the coordinator side.
	co.EvictWorker(id)
	waitFor(t, 5*time.Second, "worker re-attached after eviction", func() bool {
		st := co.Status()
		return len(st.Workers) == 1 && st.Workers[0].ID == id && st.Workers[0].Connected
	})
	<-done
	// After the run: exact totals despite the reconnect.
	waitFor(t, 2*time.Second, "exact totals after reconnect", func() bool {
		return co.Committed() == m.Collector().Committed()
	})
	if st := co.Status(); st.DriftEvents != 0 {
		t.Fatalf("reconnect produced %d drift events", st.DriftEvents)
	}
}
