package cluster

import (
	"net"
	"testing"
	"time"
)

// TestHeartbeatEviction covers the silent-death path: a worker that attaches
// and then goes mute (no heartbeats, no stats — as after SIGKILL with the
// socket held open by a NAT box) must be evicted after 3 heartbeat
// intervals. Internal test: it speaks the raw wire to stay mute, which the
// worker agent API deliberately cannot do.
func TestHeartbeatEviction(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(ln, CoordinatorOptions{
		Window:    200 * time.Millisecond,
		Flush:     50 * time.Millisecond,
		Heartbeat: 100 * time.Millisecond,
	})
	defer co.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := Hello{Proto: ProtoVersion, Name: "mute", Benchmark: "ycsb", DB: "gomvcc", Types: []string{"A"}}
	if err := WriteFrame(conn, FrameHello, hello.encode()); err != nil {
		t.Fatal(err)
	}

	poll := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	poll("mute worker attached", func() bool {
		st := co.Status()
		return len(st.Workers) == 1 && st.Workers[0].Connected
	})
	// Now say nothing. 3 heartbeat intervals at 100ms: evicted well within 2s.
	poll("mute worker evicted", func() bool {
		st := co.Status()
		return len(st.Workers) == 1 && !st.Workers[0].Connected
	})
}
