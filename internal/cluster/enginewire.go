package cluster

import (
	"errors"
	"fmt"
	"time"

	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
)

// The remote-engine session protocol: one TCP connection is one engine
// session, driven strictly request/response. A worker terminal holds one
// connection, so its transactions serialize naturally and the server needs
// no per-connection statement routing. Retryable-abort classification
// survives the wire via an error class byte, which is what lets the workload
// manager's retry loop work unchanged against a remote engine.

// Error classes carried by FrameEngineErr.
const (
	errClassGeneric       byte = 0
	errClassWriteConflict byte = 1
	errClassDeadlock      byte = 2
	errClassBusy          byte = 3
)

// classifyError maps an engine error onto its wire class.
func classifyError(err error) byte {
	switch {
	case errors.Is(err, txn.ErrWriteConflict):
		return errClassWriteConflict
	case errors.Is(err, txn.ErrDeadlock):
		return errClassDeadlock
	case errors.Is(err, txn.ErrBusy):
		return errClassBusy
	default:
		return errClassGeneric
	}
}

// declassifyError reconstructs a client-side error whose identity satisfies
// dbdriver.IsRetryable exactly as the in-process sentinel would.
func declassifyError(class byte, msg string) error {
	switch class {
	case errClassWriteConflict:
		return fmt.Errorf("cluster: remote: %s: %w", msg, txn.ErrWriteConflict)
	case errClassDeadlock:
		return fmt.Errorf("cluster: remote: %s: %w", msg, txn.ErrDeadlock)
	case errClassBusy:
		return fmt.Errorf("cluster: remote: %s: %w", msg, txn.ErrBusy)
	default:
		return fmt.Errorf("cluster: remote: %s", msg)
	}
}

// Value kind tags on the wire.
const (
	wireNull   byte = 0
	wireInt    byte = 1
	wireFloat  byte = 2
	wireString byte = 3
	wireBool   byte = 4
	wireTime   byte = 5
)

func appendValue(e *enc, v sqlval.Value) {
	switch v.Kind() {
	case sqlval.KindInt:
		e.byteVal(wireInt)
		e.varint(v.Int())
	case sqlval.KindFloat:
		e.byteVal(wireFloat)
		e.float64Val(v.Float())
	case sqlval.KindString:
		e.byteVal(wireString)
		e.str(v.Str())
	case sqlval.KindBool:
		e.byteVal(wireBool)
		e.boolVal(v.Bool())
	case sqlval.KindTime:
		e.byteVal(wireTime)
		e.varint(v.Time().UnixNano())
	default:
		// NULL, and any internal sentinel that should never leave the
		// engine, both travel as NULL.
		e.byteVal(wireNull)
	}
}

func decodeValue(d *dec) sqlval.Value {
	switch d.byteVal() {
	case wireNull:
		return sqlval.Null()
	case wireInt:
		return sqlval.NewInt(d.varint())
	case wireFloat:
		return sqlval.NewFloat(d.float64Val())
	case wireString:
		return sqlval.NewString(d.str())
	case wireBool:
		return sqlval.NewBool(d.boolVal())
	case wireTime:
		return sqlval.NewTime(time.Unix(0, d.varint()))
	default:
		d.fail()
		return sqlval.Null()
	}
}

// engineExec is the FrameEngineExec payload: query selects result-set
// semantics (Session.Query vs Session.Exec — bare SELECTs differ in
// autocommit read-only handling).
type engineExec struct {
	Query bool
	SQL   string
	Args  []sqlval.Value
}

func (m engineExec) encode() []byte {
	var e enc
	e.boolVal(m.Query)
	e.str(m.SQL)
	e.uvarint(uint64(len(m.Args)))
	for _, v := range m.Args {
		appendValue(&e, v)
	}
	return e.b
}

func decodeEngineExec(p []byte) (engineExec, error) {
	d := dec{b: p}
	m := engineExec{Query: d.boolVal(), SQL: d.str()}
	n := d.count(1)
	for i := 0; i < n && d.err == nil; i++ {
		m.Args = append(m.Args, decodeValue(&d))
	}
	return m, d.finish()
}

// engineResult is the FrameEngineResult payload, mirroring exec.Result.
type engineResult struct {
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int64
	LastInsertID int64
}

func encodeEngineResult(r *exec.Result) []byte {
	var e enc
	e.strs(r.Columns)
	e.uvarint(uint64(len(r.Rows)))
	for _, row := range r.Rows {
		e.uvarint(uint64(len(row)))
		for _, v := range row {
			appendValue(&e, v)
		}
	}
	e.varint(int64(r.RowsAffected))
	e.varint(r.LastInsertID)
	return e.b
}

func decodeEngineResult(p []byte) (*exec.Result, error) {
	d := dec{b: p}
	res := &exec.Result{Columns: d.strs()}
	nrows := d.count(1)
	for i := 0; i < nrows && d.err == nil; i++ {
		ncols := d.count(1)
		row := make([]sqlval.Value, 0, ncols)
		for j := 0; j < ncols && d.err == nil; j++ {
			row = append(row, decodeValue(&d))
		}
		res.Rows = append(res.Rows, row)
	}
	res.RowsAffected = int(d.varint())
	res.LastInsertID = d.varint()
	return res, d.finish()
}

// engineErr is the FrameEngineErr payload.
type engineErr struct {
	Class   byte
	Message string
}

func (m engineErr) encode() []byte {
	var e enc
	e.byteVal(m.Class)
	e.str(m.Message)
	return e.b
}

func decodeEngineErr(p []byte) (engineErr, error) {
	d := dec{b: p}
	m := engineErr{Class: d.byteVal(), Message: d.str()}
	return m, d.finish()
}

// engineWelcome is the FrameEngineWelcome payload: enough personality for the
// client to resolve dialect-specific statements.
type engineWelcome struct {
	Name    string
	Dialect string
}

func (m engineWelcome) encode() []byte {
	var e enc
	e.str(m.Name)
	e.str(m.Dialect)
	return e.b
}

func decodeEngineWelcome(p []byte) (engineWelcome, error) {
	d := dec{b: p}
	m := engineWelcome{Name: d.str(), Dialect: d.str()}
	return m, d.finish()
}
