package cluster

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"benchpress/internal/dbdriver"
	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, FrameStats, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameBye, nil); err != nil {
		t.Fatal(err)
	}
	typ, p, err := ReadFrame(&buf)
	if err != nil || typ != FrameStats || !bytes.Equal(p, payload) {
		t.Fatalf("frame 1: typ=%#x p=%v err=%v", typ, p, err)
	}
	typ, p, err = ReadFrame(&buf)
	if err != nil || typ != FrameBye || len(p) != 0 {
		t.Fatalf("frame 2: typ=%#x p=%v err=%v", typ, p, err)
	}
	if _, _, err = ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF at frame boundary, got %v", err)
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameAssign, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got := AppendFrame(nil, FrameAssign, []byte("xyz"))
	if !bytes.Equal(buf.Bytes(), got) {
		t.Fatalf("AppendFrame %x != WriteFrame %x", got, buf.Bytes())
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Oversized length prefix must fail before allocating.
	big := []byte{0xff, 0xff, 0xff, 0xff, 0x00}
	if _, _, err := ReadFrame(bytes.NewReader(big)); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
	// Zero length has no room for the type byte.
	zero := []byte{0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(zero)); err != ErrMalformed {
		t.Fatalf("zero-length frame: got %v, want ErrMalformed", err)
	}
}

// TestTruncatedFramesNeverPanic feeds every proper prefix of valid frames to
// the reader: each must produce an error (EOF only at offset 0), never a
// panic or a phantom frame.
func TestTruncatedFramesNeverPanic(t *testing.T) {
	var buf bytes.Buffer
	u := StatsUpdate{Seq: 9, Committed: 1234, Types: []TypeDelta{{Index: 3, Count: 7, Buckets: []int64{0, 0, 5, 0, 2}}}}
	if err := WriteFrame(&buf, FrameStats, u.encode()); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes read as a whole frame", cut, len(whole))
		}
		if cut >= 4 && err != io.ErrUnexpectedEOF {
			t.Fatalf("mid-frame tear at %d: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestControlMessageRoundTrips(t *testing.T) {
	hello := Hello{Proto: ProtoVersion, WorkerID: 7, Name: "w7", Benchmark: "ycsb", DB: "gomvcc", Types: []string{"Read", "Update"}}
	gotH, err := decodeHello(hello.encode())
	if err != nil || !reflect.DeepEqual(gotH, hello) {
		t.Fatalf("hello: %+v err=%v", gotH, err)
	}

	welcome := Welcome{WorkerID: 7, WindowUS: 1_000_000, FlushUS: 250_000, HeartbeatUS: 500_000}
	gotW, err := decodeWelcome(welcome.encode())
	if err != nil || gotW != welcome {
		t.Fatalf("welcome: %+v err=%v", gotW, err)
	}

	assign := Assign{Gen: 42, Rate: 123.5, Paused: true, Mix: []float64{0.5, 0.25, 0.25}}
	gotA, err := decodeAssign(assign.encode())
	if err != nil || !reflect.DeepEqual(gotA, assign) {
		t.Fatalf("assign: %+v err=%v", gotA, err)
	}

	hb := Heartbeat{Committed: 10, Aborted: 2, Errors: 1, Retries: 4}
	gotB, err := decodeHeartbeat(hb.encode())
	if err != nil || gotB != hb {
		t.Fatalf("heartbeat: %+v err=%v", gotB, err)
	}

	bye := Bye{Reason: "done"}
	gotY, err := decodeBye(bye.encode())
	if err != nil || gotY != bye {
		t.Fatalf("bye: %+v err=%v", gotY, err)
	}
}

func TestStatsUpdateRoundTripSparse(t *testing.T) {
	buckets := make([]int64, 2048)
	buckets[0] = 3
	buckets[100] = 17
	buckets[2047] = 1
	u := StatsUpdate{
		Seq: 5, Window: 2, Committed: 21, Aborted: 1, Errors: 0, Retries: 2,
		SumLatencyUS: 424242,
		Types: []TypeDelta{
			{Index: 0, Count: 21, SumUS: 424242, MaxUS: 999999, Buckets: buckets},
			{Index: 3, Count: 0, SumUS: 0, MaxUS: 50, Buckets: []int64{0, 1}},
		},
	}
	got, err := decodeStatsUpdate(u.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != u.Seq || got.Committed != u.Committed || got.SumLatencyUS != u.SumLatencyUS {
		t.Fatalf("scalar mismatch: %+v", got)
	}
	if len(got.Types) != 2 {
		t.Fatalf("types: %d", len(got.Types))
	}
	// Sparse decode allocates up to the highest occupied bucket; every
	// encoded count must land on its original index.
	for i, want := range buckets {
		var have int64
		if i < len(got.Types[0].Buckets) {
			have = got.Types[0].Buckets[i]
		}
		if have != want {
			t.Fatalf("bucket %d: got %d want %d", i, have, want)
		}
	}
	if got.Types[1].Buckets[1] != 1 {
		t.Fatalf("second type buckets: %v", got.Types[1].Buckets)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	p := append(Heartbeat{Committed: 1}.encode(), 0xFF)
	if _, err := decodeHeartbeat(p); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestEngineExecRoundTrip(t *testing.T) {
	when := time.Unix(0, 1723111222333444555)
	req := engineExec{
		Query: true,
		SQL:   "SELECT v FROM kv WHERE k = ?",
		Args: []sqlval.Value{
			sqlval.NewInt(-7),
			sqlval.NewFloat(3.25),
			sqlval.NewString("abc"),
			sqlval.NewBool(true),
			sqlval.NewTime(when),
			sqlval.Null(),
		},
	}
	got, err := decodeEngineExec(req.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Query != req.Query || got.SQL != req.SQL || len(got.Args) != len(req.Args) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	if got.Args[0].Int() != -7 || got.Args[1].Float() != 3.25 || got.Args[2].Str() != "abc" ||
		!got.Args[3].Bool() || !got.Args[4].Time().Equal(when) || !got.Args[5].IsNull() {
		t.Fatalf("value mismatch: %+v", got.Args)
	}
}

func TestEngineResultRoundTrip(t *testing.T) {
	r := &exec.Result{
		Columns: []string{"k", "v"},
		Rows: [][]sqlval.Value{
			{sqlval.NewInt(1), sqlval.NewString("a")},
			{sqlval.NewInt(2), sqlval.Null()},
		},
		RowsAffected: 2,
		LastInsertID: 17,
	}
	got, err := decodeEngineResult(encodeEngineResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, r.Columns) || got.RowsAffected != 2 || got.LastInsertID != 17 {
		t.Fatalf("result header mismatch: %+v", got)
	}
	if len(got.Rows) != 2 || got.Rows[0][1].Str() != "a" || !got.Rows[1][1].IsNull() {
		t.Fatalf("rows mismatch: %+v", got.Rows)
	}
}

// TestErrorClassificationSurvivesWire is the property the workload manager's
// retry loop depends on: a retryable engine abort shipped over the wire must
// still satisfy dbdriver.IsRetryable after reconstruction.
func TestErrorClassificationSurvivesWire(t *testing.T) {
	for _, sentinel := range []error{txn.ErrWriteConflict, txn.ErrDeadlock, txn.ErrBusy} {
		class := classifyError(sentinel)
		back := declassifyError(class, sentinel.Error())
		if !dbdriver.IsRetryable(back) {
			t.Fatalf("%v lost retryability over the wire (class %d): %v", sentinel, class, back)
		}
	}
	generic := declassifyError(classifyError(io.EOF), "boom")
	if dbdriver.IsRetryable(generic) {
		t.Fatalf("generic error became retryable: %v", generic)
	}
}

func TestSparseBucketsRejectCorruptIndexes(t *testing.T) {
	var e enc
	e.uvarint(1)       // one pair
	e.uvarint(1 << 40) // absurd gap
	e.uvarint(5)
	d := dec{b: e.b}
	decodeSparseBuckets(&d, 0, 2048)
	if d.finish() == nil {
		t.Fatal("corrupt gap accepted")
	}
}
