// Package cluster implements scale-out load generation: a coordinator that
// owns cluster-wide dynamic workload control and N worker agents that each
// run a local workload manager, receive rate/mix assignments, and stream
// their stat windows back over a compact binary wire for merged cluster-wide
// percentiles. The same frame codec also carries a remote-engine session
// protocol, so worker processes can drive one shared engine process instead
// of an embedded one.
//
// Wire format. Every message is one length-prefixed frame:
//
//	| length uint32 BE | type byte | payload ... |
//
// where length covers the type byte and payload. Payload integers are
// unsigned varints (signed values zig-zag), strings and byte blobs are
// varint-length-prefixed, and float64s travel as big-endian IEEE bits.
// Histogram bucket arrays use a sparse gap encoding: only non-zero buckets
// are shipped as (index-gap, count) varint pairs, so a stat window update for
// a 2048-bucket histogram is typically a few dozen bytes, not a JSON blob.
//
// Decoding never panics on truncated or corrupt input: the frame reader
// bounds the length against MaxFrameBytes before allocating, and the payload
// reader is error-sticky — every read past a malformation yields zero values
// and the first error is returned once.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ProtoVersion is the cluster wire protocol version. Hello frames carry it;
// both sides reject a mismatch rather than misparse.
const ProtoVersion = 1

// MaxFrameBytes bounds one frame's payload. The largest legitimate frame is
// a stats batch covering every type of a wide benchmark with fully occupied
// histograms (~tens of KiB); 1 MiB leaves headroom while keeping a corrupt
// length prefix from allocating gigabytes.
const MaxFrameBytes = 1 << 20

// Frame types. Control wire (coordinator <-> worker) first, then the
// remote-engine session wire. One namespace so a misdirected frame fails
// loudly instead of aliasing.
const (
	// FrameHello is worker->coordinator: identity + benchmark metadata.
	FrameHello byte = 0x01
	// FrameWelcome is coordinator->worker: assigned id and cadence config.
	FrameWelcome byte = 0x02
	// FrameAssign is coordinator->worker: rate share / mix / pause fan-out.
	FrameAssign byte = 0x03
	// FrameStats is worker->coordinator: one batched stats delta update.
	FrameStats byte = 0x04
	// FrameHeartbeat is worker->coordinator: liveness + cumulative totals.
	FrameHeartbeat byte = 0x05
	// FrameBye announces a graceful departure (either direction).
	FrameBye byte = 0x06

	// Remote-engine session frames.
	FrameEngineHello   byte = 0x10 // client->server: protocol handshake
	FrameEngineWelcome byte = 0x11 // server->client: personality + dialect
	FrameEngineExec    byte = 0x12 // client->server: statement execution
	FrameEngineBegin   byte = 0x13 // client->server: begin txn
	FrameEngineCommit  byte = 0x14 // client->server: commit txn
	FrameEngineAbort   byte = 0x15 // client->server: rollback txn
	FrameEngineResult  byte = 0x16 // server->client: result set
	FrameEngineOK      byte = 0x17 // server->client: success, no rows
	FrameEngineErr     byte = 0x18 // server->client: classified error
)

// ErrFrameTooLarge reports a frame whose length prefix exceeds MaxFrameBytes.
var ErrFrameTooLarge = errors.New("cluster: frame exceeds size limit")

// ErrMalformed reports a payload that ended early or failed validation.
var ErrMalformed = errors.New("cluster: malformed frame payload")

// WriteFrame writes one length-prefixed frame. The payload may be nil.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	// One write for the header+type keeps small frames at two syscalls when
	// w is unbuffered; batching callers wrap w in a bufio.Writer anyway.
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. Flush batching uses it to coalesce several frames into one write.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)+1))
	dst = append(dst, typ)
	return append(dst, payload...)
}

// ReadFrame reads one frame, returning its type and payload. The payload
// slice is freshly allocated and owned by the caller. io.EOF is returned
// clean only at a frame boundary; a tear mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, ErrMalformed
	}
	if n > MaxFrameBytes {
		return 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// ---- payload encoding helpers ----

// enc is an append-only payload encoder.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byteVal(v byte)   { e.b = append(e.b, v) }
func (e *enc) boolVal(v bool)   { e.b = append(e.b, b2i(v)) }
func (e *enc) float64Val(v float64) {
	e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) strs(ss []string) {
	e.uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}
func (e *enc) float64s(fs []float64) {
	e.uvarint(uint64(len(fs)))
	for _, f := range fs {
		e.float64Val(f)
	}
}

func b2i(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// dec is an error-sticky payload decoder: after the first malformation every
// read returns the zero value, and Err reports the failure once. Length
// prefixes are validated against the remaining bytes before any allocation,
// so corrupt input can neither panic nor balloon memory.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrMalformed
	}
}

// Err returns the first decode error, also failing if trailing bytes remain
// unconsumed (a length/shape mismatch the varint reads did not catch).
func (d *dec) Err() error { return d.err }

// finish fails the decode when unconsumed bytes remain.
func (d *dec) finish() error {
	if d.err == nil && len(d.b) != 0 {
		d.fail()
	}
	return d.err
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byteVal() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) boolVal() bool { return d.byteVal() != 0 }

func (d *dec) float64Val() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[:8]))
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count validates a declared element count against the minimum encoded size
// per element, so a corrupt count cannot drive a huge allocation.
func (d *dec) count(minBytesPer int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if n > uint64(len(d.b)/minBytesPer) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) strs() []string {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) float64sVal() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.float64Val()
	}
	return out
}

// ---- sparse histogram bucket encoding ----

// appendSparseBuckets encodes only the non-zero entries of counts as
// (index-gap, count) varint pairs. Gap coding keeps indexes single-byte for
// clustered occupancy, which real latency histograms are.
func appendSparseBuckets(e *enc, counts []int64) {
	nz := 0
	for _, c := range counts {
		if c != 0 {
			nz++
		}
	}
	e.uvarint(uint64(nz))
	prev := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		e.uvarint(uint64(i - prev))
		e.uvarint(uint64(c))
		prev = i
	}
}

// decodeSparseBuckets decodes (index-gap, count) pairs into a dense slice of
// at least minLen buckets. Indexes must stay below maxIdx or the decode
// fails — a corrupt gap can neither panic nor allocate past the histogram's
// fixed bucket space.
func decodeSparseBuckets(d *dec, minLen, maxIdx int) []int64 {
	n := d.count(2)
	if d.err != nil {
		return nil
	}
	out := make([]int64, minLen)
	idx := 0 // the first gap is the absolute index of the first bucket
	for i := 0; i < n; i++ {
		gap := d.uvarint()
		c := d.uvarint()
		if d.err != nil {
			return nil
		}
		if gap >= uint64(maxIdx) || idx+int(gap) >= maxIdx {
			d.fail()
			return nil
		}
		idx += int(gap)
		if idx >= len(out) {
			grown := make([]int64, idx+1)
			copy(grown, out)
			out = grown
		}
		out[idx] = int64(c)
	}
	return out
}

// frameError wraps a decode failure with the frame type for diagnostics.
func frameError(typ byte, err error) error {
	return fmt.Errorf("cluster: decode frame 0x%02x: %w", typ, err)
}
