package cluster

import (
	"bytes"
	"testing"

	"benchpress/internal/sqlval"
)

// decodeAny routes a frame through the same typed decoders the coordinator,
// worker, and engine server use, so the fuzzer exercises every payload
// parser behind every frame type.
func decodeAny(typ byte, payload []byte) {
	switch typ {
	case FrameHello:
		_, _ = decodeHello(payload)
	case FrameWelcome:
		_, _ = decodeWelcome(payload)
	case FrameAssign:
		_, _ = decodeAssign(payload)
	case FrameStats:
		_, _ = decodeStatsUpdate(payload)
	case FrameHeartbeat:
		_, _ = decodeHeartbeat(payload)
	case FrameBye:
		_, _ = decodeBye(payload)
	case FrameEngineExec:
		_, _ = decodeEngineExec(payload)
	case FrameEngineResult:
		_, _ = decodeEngineResult(payload)
	case FrameEngineErr:
		_, _ = decodeEngineErr(payload)
	case FrameEngineWelcome:
		_, _ = decodeEngineWelcome(payload)
	default:
		// Unknown types carry no payload contract; nothing to decode.
	}
}

// seedFrames builds one valid instance of every frame type, giving the
// fuzzer a structurally correct corpus to mutate from.
func seedFrames() [][]byte {
	buckets := make([]int64, 256)
	buckets[10] = 3
	buckets[200] = 1
	frames := [][]byte{
		AppendFrame(nil, FrameHello, Hello{Proto: ProtoVersion, WorkerID: 1, Name: "w", Benchmark: "ycsb", DB: "gomvcc", Types: []string{"A", "B"}}.encode()),
		AppendFrame(nil, FrameWelcome, Welcome{WorkerID: 1, WindowUS: 1000000, FlushUS: 250000, HeartbeatUS: 500000}.encode()),
		AppendFrame(nil, FrameAssign, Assign{Gen: 3, Rate: 99.5, Paused: false, Mix: []float64{1, 2}}.encode()),
		AppendFrame(nil, FrameStats, StatsUpdate{Seq: 1, Committed: 4, Types: []TypeDelta{{Index: 1, Count: 4, SumUS: 100, MaxUS: 60, Buckets: buckets}}}.encode()),
		AppendFrame(nil, FrameHeartbeat, Heartbeat{Committed: 4}.encode()),
		AppendFrame(nil, FrameBye, Bye{Reason: "bye"}.encode()),
		AppendFrame(nil, FrameEngineExec, engineExec{Query: true, SQL: "SELECT 1", Args: []sqlval.Value{sqlval.NewInt(1), sqlval.Null()}}.encode()),
		AppendFrame(nil, FrameEngineErr, engineErr{Class: errClassDeadlock, Message: "deadlock"}.encode()),
		AppendFrame(nil, FrameEngineWelcome, engineWelcome{Name: "gomvcc", Dialect: "postgres"}.encode()),
	}
	return frames
}

// FuzzReadFrame is the wire-robustness gate: arbitrary bytes — including
// mutations of every valid frame type — must never panic the frame reader or
// any payload decoder, no matter how they are truncated or corrupted.
func FuzzReadFrame(f *testing.F) {
	var stream []byte
	for _, fr := range seedFrames() {
		f.Add(fr)
		// Truncation seeds: a frame cut mid-payload and cut mid-header.
		if len(fr) > 7 {
			f.Add(fr[:len(fr)-3])
			f.Add(fr[:2])
		}
		stream = append(stream, fr...)
	}
	f.Add(stream)                                     // several frames back to back
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x04, 0x00}) // absurd length prefix
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		// Drain the whole input as a frame stream, decoding each payload the
		// way the real read loops do. Bounded by input length: every
		// iteration either consumes bytes or errors out.
		for {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			decodeAny(typ, payload)
		}
	})
}
