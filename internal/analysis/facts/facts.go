// Package facts is the summary store of the interprocedural analysis
// engine. A fact is a per-object datum a rule computes once and consumes at
// call sites anywhere else in the program — "this function settles the
// transaction passed as its receiver", "this function may acquire the row
// latch". Facts are keyed by the owning types.Object plus a rule-chosen name,
// so independent rules share one store without colliding.
//
// The store also carries the fixpoint machinery summary computation needs:
// Export reports whether it changed anything, so a rule can iterate its
// summary pass over the call graph until no fact moves (facts must grow
// monotonically for that loop to terminate).
package facts

import "go/types"

// key identifies one fact: the object it describes and the rule-scoped name.
type key struct {
	obj  types.Object
	name string
}

// Store holds exported facts for one program.
type Store struct {
	m map[key]any
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{m: map[key]any{}}
}

// Export records a fact about obj under name, replacing any previous value.
// It reports whether the stored value changed, which summary fixpoints use as
// their progress signal. Values are compared with ==, so fact types should be
// comparable (bitsets as integers, small structs); incomparable values always
// count as changed.
func (s *Store) Export(obj types.Object, name string, v any) bool {
	k := key{obj: obj, name: name}
	old, ok := s.m[k]
	s.m[k] = v
	if !ok {
		return true
	}
	return !comparableEqual(old, v)
}

// comparableEqual compares two fact values, treating incomparable types as
// always unequal rather than panicking.
func comparableEqual(a, b any) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// Get returns the fact stored for obj under name.
func (s *Store) Get(obj types.Object, name string) (any, bool) {
	v, ok := s.m[key{obj: obj, name: name}]
	return v, ok
}

// Bits returns an integer bitset fact, or zero when absent — the common shape
// for per-parameter summaries ("settles parameter i" = bit i).
func (s *Store) Bits(obj types.Object, name string) uint64 {
	if v, ok := s.Get(obj, name); ok {
		if b, ok := v.(uint64); ok {
			return b
		}
	}
	return 0
}

// ExportBits merges bits into an integer bitset fact and reports whether the
// set grew.
func (s *Store) ExportBits(obj types.Object, name string, bits uint64) bool {
	merged := s.Bits(obj, name) | bits
	if merged == s.Bits(obj, name) {
		if _, ok := s.Get(obj, name); ok {
			return false
		}
	}
	return s.Export(obj, name, merged)
}

// Len returns the number of stored facts (diagnostics and tests).
func (s *Store) Len() int { return len(s.m) }
