package facts_test

import (
	"go/token"
	"go/types"
	"testing"

	"benchpress/internal/analysis/facts"
)

func obj(name string) types.Object {
	return types.NewVar(token.NoPos, nil, name, types.Typ[types.Int])
}

func TestExportReportsChange(t *testing.T) {
	s := facts.NewStore()
	o := obj("f")
	if !s.Export(o, "settles", uint64(1)) {
		t.Fatal("first export must report a change")
	}
	if s.Export(o, "settles", uint64(1)) {
		t.Fatal("re-export of identical value must report no change")
	}
	if !s.Export(o, "settles", uint64(3)) {
		t.Fatal("export of a new value must report a change")
	}
}

func TestFactsAreKeyedByObjectAndName(t *testing.T) {
	s := facts.NewStore()
	a, b := obj("a"), obj("b")
	s.Export(a, "settles", uint64(1))
	s.Export(a, "opens", uint64(2))
	s.Export(b, "settles", uint64(4))
	if got := s.Bits(a, "settles"); got != 1 {
		t.Fatalf("a/settles = %d, want 1", got)
	}
	if got := s.Bits(a, "opens"); got != 2 {
		t.Fatalf("a/opens = %d, want 2", got)
	}
	if got := s.Bits(b, "settles"); got != 4 {
		t.Fatalf("b/settles = %d, want 4", got)
	}
	if got := s.Bits(b, "opens"); got != 0 {
		t.Fatalf("b/opens = %d, want 0 (absent)", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestExportBitsMergesMonotonically(t *testing.T) {
	s := facts.NewStore()
	o := obj("f")
	if !s.ExportBits(o, "acquires", 0b001) {
		t.Fatal("first merge must grow")
	}
	if !s.ExportBits(o, "acquires", 0b100) {
		t.Fatal("new bit must grow")
	}
	if s.ExportBits(o, "acquires", 0b101) {
		t.Fatal("already-present bits must not grow")
	}
	if got := s.Bits(o, "acquires"); got != 0b101 {
		t.Fatalf("acquires = %b, want 101", got)
	}
}

func TestIncomparableValuesAlwaysChange(t *testing.T) {
	s := facts.NewStore()
	o := obj("f")
	s.Export(o, "list", []int{1})
	if !s.Export(o, "list", []int{1}) {
		t.Fatal("incomparable values must count as changed")
	}
}
