package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"benchpress/internal/analysis"
)

// PreparedStmtLeak flags functions that obtain a prepared statement — a
// Prepare call whose first result type has a Close method — and make its
// Close unreachable: no Close call (deferred or direct) anywhere in the
// same function, and the statement never handed to the caller (returned or
// stored into a field, where the owner settles it).
//
// Like txn-hygiene this is a per-function discipline check: a prepared
// statement pins a session reference, and a worker loop that re-prepares
// per transaction without closing accumulates dead statements for the whole
// run. The rule is scoped to internal/ and cmd/.
type PreparedStmtLeak struct{}

// Name implements analysis.Rule.
func (PreparedStmtLeak) Name() string { return "prepared-stmt-leak" }

// Doc implements analysis.Rule.
func (PreparedStmtLeak) Doc() string {
	return "every Prepare() result must reach a Close, a return, or a field store in the same function"
}

// Check implements analysis.Rule.
func (PreparedStmtLeak) Check(pass *analysis.Pass) {
	rel := pass.RelPath()
	if !strings.HasPrefix(rel, "internal/") && !strings.HasPrefix(rel, "cmd/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPreparedFunc(pass, fd)
			}
		}
	}
}

func checkPreparedFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Thin wrappers that ARE the Prepare operation (Conn.Prepare forwarding
	// to Session.Prepare) are exempt: their caller owns the statement.
	if fd.Name.Name == "Prepare" {
		return
	}
	info := pass.Pkg.Info
	escaped := map[*ast.CallExpr]bool{}
	markEscaped := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == "Prepare" {
				escaped[call] = true
			}
			return true
		})
	}
	var prepares []*ast.CallExpr
	closed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// `return c.Prepare(sql)` hands ownership to the caller.
			for _, r := range n.Results {
				markEscaped(r)
			}
		case *ast.AssignStmt:
			// `w.stmt, err = conn.Prepare(sql)` outlives the function; the
			// holder of the field settles it.
			for _, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); ok {
					for _, rhs := range n.Rhs {
						markEscaped(rhs)
					}
					break
				}
			}
		case *ast.CallExpr:
			switch calleeName(n) {
			case "Prepare":
				if stmtLike(info, pass.Pkg.Types, n) {
					prepares = append(prepares, n)
				}
			case "Close":
				closed = true
			}
		}
		return true
	})
	if closed {
		return
	}
	for _, call := range prepares {
		if escaped[call] {
			continue
		}
		pass.Report(call.Pos(),
			"prepared statement is never closed in %s (close it, return it, or store it in a field)",
			fd.Name.Name)
	}
}

// stmtLike reports whether the Prepare call yields a closable statement:
// its first result type has a Close method. This keeps the rule off
// unrelated Prepare helpers (e.g. core.Prepare, which returns only error)
// and off session-level statements that need no release.
func stmtLike(info *types.Info, pkg *types.Package, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return hasMethod(sig.Results().At(0).Type(), pkg, "Close")
}
