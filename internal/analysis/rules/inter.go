package rules

// Shared plumbing for the interprocedural rules (txn-hygiene, latch-order,
// error-sink): resolving expressions to their root objects and mapping
// per-parameter fact bitsets between a callee's declaration and a call site.
//
// The parameter bit layout is unified across rules: bit 0 is the receiver
// (never set for plain functions), bit i+1 is the i-th declared parameter.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rootObj resolves the base identifier of an lvalue-ish expression —
// x, x.f, x.f[i], (*x).f, &x.f — to the object x refers to. It returns nil
// for expressions that do not bottom out in a plain identifier (call
// results, composite literals, ...). Rules use the root as a coarse alias
// class: anything reachable from the same variable is "the same resource".
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// identObj returns the object of e when e is exactly an identifier, modulo
// parentheses and a leading &. Unlike rootObj it does not see through field
// selections: it identifies expressions that denote the tracked value
// itself, not something reachable from it.
func identObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// paramObjs returns the unified parameter objects of a declaration: index 0
// is the receiver (nil for plain functions or unnamed receivers), index i+1
// the i-th declared parameter. The slice indexes match the parameter fact
// bit layout.
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	out := []types.Object{nil}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		out[0] = info.Defs[fd.Recv.List[0].Names[0]]
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				out = append(out, nil) // unnamed parameter still occupies its slot
			}
			for _, nm := range f.Names {
				out = append(out, info.Defs[nm])
			}
		}
	}
	return out
}

// argForBit maps one bit of a callee's parameter fact back to the call-site
// expression bound to that parameter: the receiver expression for bit 0,
// the positional argument otherwise. Returns nil when the call shape does
// not bind the parameter (method expressions, variadic overflow).
func argForBit(call *ast.CallExpr, callee *types.Func, bit int) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if bit == 0 {
		if sig.Recv() == nil {
			return nil
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if i := bit - 1; i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// eachBit calls fn for every set bit in bits, lowest first.
func eachBit(bits uint64, fn func(bit int)) {
	for b := 0; bits != 0 && b < 64; b++ {
		if bits&(1<<b) != 0 {
			bits &^= 1 << b
			fn(b)
		}
	}
}
