package rules

import (
	"strconv"
	"strings"

	"benchpress/internal/analysis"
)

// DialectBoundary enforces the layering the paper's architecture depends
// on: benchmark ports (internal/benchmarks/...) drive the database only
// through the driver surface (internal/dbdriver) and the dialect catalog
// (internal/dialect). Importing the embedded engine's internals
// (internal/sqldb and its subpackages) from a benchmark would couple the
// workload to one engine and silently break the multi-DBMS comparison
// story.
type DialectBoundary struct{}

// Name implements analysis.Rule.
func (DialectBoundary) Name() string { return "dialect-boundary" }

// Doc implements analysis.Rule.
func (DialectBoundary) Doc() string {
	return "benchmark packages must not import internal/sqldb engine internals"
}

// Check implements analysis.Rule.
func (DialectBoundary) Check(pass *analysis.Pass) {
	if !strings.HasPrefix(pass.RelPath(), "internal/benchmarks/") {
		return
	}
	forbidden := pass.Pkg.ModulePath + "/internal/sqldb"
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == forbidden || strings.HasPrefix(path, forbidden+"/") {
				pass.Report(imp.Pos(),
					"benchmark package imports engine internals %s; use internal/dbdriver and internal/dialect instead",
					path)
			}
		}
	}
}
