package rules

import (
	"go/ast"
	"strings"

	"benchpress/internal/analysis"
)

// MixParity flags Benchmark implementations in internal/benchmarks/ whose
// DefaultMix weight literal is not parallel to their Procedures literal. The
// framework pairs the two slices by index (weight i drives procedure i), so
// a length mismatch silently truncates or zero-weights procedures. The rule
// only reasons about bodies that are a single `return <composite literal>`;
// computed slices are skipped rather than guessed at.
type MixParity struct{}

// Name implements analysis.Rule.
func (MixParity) Name() string { return "mix-parity" }

// Doc implements analysis.Rule.
func (MixParity) Doc() string {
	return "a Benchmark's DefaultMix weights must be parallel to its Procedures slice"
}

// Check implements analysis.Rule.
func (MixParity) Check(pass *analysis.Pass) {
	if !strings.HasPrefix(pass.RelPath(), "internal/benchmarks/") {
		return
	}
	type methods struct {
		recv   string
		procs  int // literal length of Procedures, -1 when unknown
		mix    int // literal length of DefaultMix, -1 when unknown
		mixLit *ast.CompositeLit
	}
	var seen []*methods
	lookup := func(recv string) *methods {
		for _, m := range seen {
			if m.recv == recv {
				return m
			}
		}
		m := &methods{recv: recv, procs: -1, mix: -1}
		seen = append(seen, m)
		return m
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := recvTypeName(fd)
			if recv == "" {
				continue
			}
			switch fd.Name.Name {
			case "Procedures":
				if lit := soleReturnedLiteral(fd); lit != nil {
					lookup(recv).procs = len(lit.Elts)
				}
			case "DefaultMix":
				if lit := soleReturnedLiteral(fd); lit != nil {
					m := lookup(recv)
					m.mix = len(lit.Elts)
					m.mixLit = lit
				}
			}
		}
	}
	for _, m := range seen {
		if m.mixLit != nil && m.procs >= 0 && m.mix != m.procs {
			pass.Report(m.mixLit.Pos(),
				"%s.DefaultMix has %d weights but Procedures has %d entries; the slices pair by index",
				m.recv, m.mix, m.procs)
		}
	}
}

// recvTypeName names a method's receiver type, stripping pointers.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// soleReturnedLiteral returns the composite literal when the function body's
// only return statement is `return T{...}`; nil otherwise.
func soleReturnedLiteral(fd *ast.FuncDecl) *ast.CompositeLit {
	var ret *ast.ReturnStmt
	returns := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			returns++
			ret = n.(*ast.ReturnStmt)
		case *ast.FuncLit:
			return false // returns inside closures are not the method's
		}
		return true
	})
	if returns != 1 || len(ret.Results) != 1 {
		return nil
	}
	lit, _ := ret.Results[0].(*ast.CompositeLit)
	return lit
}
