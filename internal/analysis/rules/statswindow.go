package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"benchpress/internal/analysis"
)

// StatsWindowLock enforces the mutex convention of the stats layer: inside a
// struct, a sync.Mutex/sync.RWMutex field guards every field declared after
// it up to the next mutex field. Methods of such a struct may only touch a
// guarded field between a Lock/RLock of the owning mutex and the matching
// Unlock (a deferred Unlock keeps the region open to the end of the method).
//
// The stats collector's window-rotation state (base totals, finalized
// windows, histogram rotation scratch) is exactly this shape: the record fast
// path is lock-free, and any stray unlocked read of rotation state is a data
// race that go vet cannot see. The rule is scoped to internal/stats.
//
// Two escapes keep it practical: fields with sync/atomic value types are
// never considered guarded (they are designed for lock-free access), and a
// method whose doc comment says "Callers hold <mutex>" is exempt — that is
// the repository idiom for internal helpers invoked under the lock.
type StatsWindowLock struct{}

// Name implements analysis.Rule.
func (StatsWindowLock) Name() string { return "stats-window-lock" }

// Doc implements analysis.Rule.
func (StatsWindowLock) Doc() string {
	return "mutex-guarded stats fields must only be accessed inside the owning lock region"
}

// Check implements analysis.Rule.
func (StatsWindowLock) Check(pass *analysis.Pass) {
	rel := pass.RelPath()
	if rel != "internal/stats" && !strings.HasPrefix(rel, "internal/stats/") {
		return
	}
	info := pass.Pkg.Info

	// guards maps each guarded struct field to its owning mutex field,
	// following declaration order: a mutex field opens a guard section that
	// runs until the next mutex field.
	guards := map[*types.Var]*types.Var{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			var current *types.Var
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					v, ok := info.Defs[nm].(*types.Var)
					if !ok {
						continue
					}
					if isMutexType(v.Type()) {
						current = v
						continue
					}
					if current != nil && !isAtomicValueType(v.Type()) {
						guards[v] = current
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if exemptMutex := callersHoldExemption(fn.Doc); exemptMutex != "" {
				continue
			}
			checkLockRegions(pass, info, fn, guards)
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// callersHoldExemption returns the mutex name from a "Callers hold x.mu"
// style doc comment, or "" when the method carries no such contract.
func callersHoldExemption(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	text := doc.Text()
	idx := strings.Index(text, "Callers hold ")
	if idx < 0 {
		return ""
	}
	rest := text[idx+len("Callers hold "):]
	if end := strings.IndexAny(rest, " .\n"); end > 0 {
		return rest[:end]
	}
	return strings.TrimSpace(rest)
}

// lockEvent is one position-ordered occurrence inside a method body: a lock
// or unlock of a receiver mutex, or an access to a guarded receiver field.
type lockEvent struct {
	pos      token.Pos
	mutex    *types.Var // owning mutex of the event
	kind     int        // evLock, evUnlock, evDeferUnlock, evAccess
	field    *types.Var // guarded field, for evAccess
	accessed *ast.SelectorExpr
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evAccess
)

// checkLockRegions performs linear lock-region inference over one method:
// events are ordered by source position, Lock opens the region for its
// mutex, Unlock closes it, and a deferred Unlock leaves it open for the rest
// of the body. Guarded-field accesses outside a region are reported. Nodes
// inside function literals are skipped entirely — closures run at an unknown
// time and defeat linear inference.
func checkLockRegions(pass *analysis.Pass, info *types.Info, fn *ast.FuncDecl, guards map[*types.Var]*types.Var) {
	var events []lockEvent
	var visit func(n ast.Node, deferred bool)
	visit = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// Analyze the deferred call with defer semantics, then skip
				// it in this walk.
				visit(x.Call, true)
				return false
			case *ast.CallExpr:
				if mtx, name := receiverMutexCall(info, x); mtx != nil {
					switch name {
					case "Lock", "RLock":
						events = append(events, lockEvent{pos: x.Pos(), mutex: mtx, kind: evLock})
					case "Unlock", "RUnlock":
						kind := evUnlock
						if deferred {
							kind = evDeferUnlock
						}
						events = append(events, lockEvent{pos: x.Pos(), mutex: mtx, kind: kind})
					}
				}
			case *ast.SelectorExpr:
				if v := fieldVar(info, x); v != nil {
					if mtx := guards[v]; mtx != nil {
						events = append(events, lockEvent{pos: x.Pos(), mutex: mtx, kind: evAccess, field: v, accessed: x})
					}
				}
			}
			return true
		})
	}
	visit(fn.Body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[*types.Var]int{}
	sticky := map[*types.Var]bool{} // deferred unlock seen: region stays open
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			held[ev.mutex]++
		case evUnlock:
			if held[ev.mutex] > 0 {
				held[ev.mutex]--
			}
		case evDeferUnlock:
			sticky[ev.mutex] = true
		case evAccess:
			if held[ev.mutex] == 0 && !sticky[ev.mutex] {
				pass.Report(ev.accessed.Sel.Pos(),
					"field %s is guarded by %s; this access is outside the lock region of %s",
					ev.field.Name(), ev.mutex.Name(), fn.Name.Name)
			}
		}
	}
}

// receiverMutexCall matches calls of the form x.mu.Lock() where mu is a
// struct field of mutex type, returning the mutex field and the method name.
func receiverMutexCall(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	v := fieldVar(info, inner)
	if v == nil || !isMutexType(v.Type()) {
		return nil, ""
	}
	return v, sel.Sel.Name
}
