package rules

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"benchpress/internal/analysis"
)

// PhaseOrder validates core.Phase slice literals passed to core.NewManager:
// every phase needs a positive Duration (a zero-duration phase is silently
// skipped by the phase clock) and a non-negative Rate (negative rates are
// nonsensical; 0 means open loop). Only constant fields are judged —
// durations and rates computed at run time are skipped, and so are phase
// slices built outside the call expression.
type PhaseOrder struct{}

// Name implements analysis.Rule.
func (PhaseOrder) Name() string { return "phase-order" }

// Doc implements analysis.Rule.
func (PhaseOrder) Doc() string {
	return "core.Phase literals passed to NewManager need positive durations and non-negative rates"
}

// Check implements analysis.Rule.
func (PhaseOrder) Check(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "NewManager" || len(call.Args) < 3 {
				return true
			}
			lit, ok := call.Args[2].(*ast.CompositeLit)
			if !ok || !isPhaseSlice(pass, lit) {
				return true
			}
			for _, el := range lit.Elts {
				if ph, ok := el.(*ast.CompositeLit); ok {
					checkPhase(pass, ph)
				}
			}
			return true
		})
	}
}

// isPhaseSlice reports whether the literal's type is []core.Phase.
func isPhaseSlice(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Phase" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// checkPhase judges one phase element literal.
func checkPhase(pass *analysis.Pass, ph *ast.CompositeLit) {
	durExpr, rateExpr := phaseFields(pass, ph)
	if durExpr == nil {
		pass.Report(ph.Pos(), "phase omits Duration: every phase needs a positive duration")
	} else if v, known := constSign(pass, durExpr); known && v <= 0 {
		pass.Report(durExpr.Pos(), "phase needs a positive duration")
	}
	if rateExpr != nil {
		if v, known := constSign(pass, rateExpr); known && v < 0 {
			pass.Report(rateExpr.Pos(), "phase has a negative rate; use 0 for open loop")
		}
	}
}

// phaseFields extracts the Duration and Rate value expressions from a Phase
// literal, handling both keyed and positional forms.
func phaseFields(pass *analysis.Pass, ph *ast.CompositeLit) (dur, rate ast.Expr) {
	if len(ph.Elts) == 0 {
		return nil, nil
	}
	if _, keyed := ph.Elts[0].(*ast.KeyValueExpr); keyed {
		for _, el := range ph.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				switch id.Name {
				case "Duration":
					dur = kv.Value
				case "Rate":
					rate = kv.Value
				}
			}
		}
		return dur, rate
	}
	tv, ok := pass.Pkg.Info.Types[ph]
	if !ok {
		return nil, nil
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i, el := range ph.Elts {
		if i >= st.NumFields() {
			break
		}
		switch st.Field(i).Name() {
		case "Duration":
			dur = el
		case "Rate":
			rate = el
		}
	}
	return dur, rate
}

// constSign returns the sign of a constant numeric expression, or known ==
// false when the expression is not a compile-time constant.
func constSign(pass *analysis.Pass, e ast.Expr) (sign int, known bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value), true
	}
	return 0, false
}
