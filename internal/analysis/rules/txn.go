package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/callgraph"
)

// Fact names exported by TxnHygiene. Settles uses the unified parameter bit
// layout ("calling this function settles the transaction rooted at parameter
// i"); opens uses result indices ("result i of this function carries an open
// transaction the caller must settle").
const (
	factTxnSettles = "txn.settles"
	factTxnOpens   = "txn.opens"
)

// txnBeginNames are the methods that open a transaction; txnSettleNames the
// ones that settle it. Abort is the storage layer's rollback spelling.
var (
	txnBeginNames  = map[string]bool{"Begin": true, "BeginReadOnly": true, "TryBegin": true}
	txnSettleNames = map[string]bool{"Commit": true, "Rollback": true, "Abort": true}
)

// TxnHygiene enforces that every opened transaction is settled somewhere the
// analysis can see: a function that calls Begin/BeginReadOnly/TryBegin — on a
// transactional receiver (a type with Commit and Rollback or Abort) or
// returning a transactional value — must either settle it locally, call a
// helper whose exported fact says it settles the same root, or visibly hand
// the transaction off (return it, store it into a struct, send it away).
//
// Hand-offs are not free passes: a function that returns an open transaction
// exports an "opens" fact, so the obligation reappears at every call site and
// follows the transaction across package boundaries. This is the
// interprocedural upgrade of the v1 rule, which could only see one function
// at a time and forced //lint:ignore directives onto every helper-settled
// transaction.
type TxnHygiene struct{}

// Name implements analysis.Rule.
func (TxnHygiene) Name() string { return "txn-hygiene" }

// Doc implements analysis.Rule.
func (TxnHygiene) Doc() string {
	return "every opened transaction must reach a Commit/Rollback/Abort in this function, a settling callee, or the caller it escapes to"
}

// CheckProgram implements analysis.ProgramRule. Summaries are iterated to a
// fixpoint first (facts grow monotonically), then every function is checked
// against the final facts.
func (TxnHygiene) CheckProgram(pass *analysis.ProgramPass) {
	prog := pass.Prog
	for {
		changed := false
		for _, n := range prog.Graph.Nodes() {
			s := scanTxnFunc(prog, n)
			if prog.Facts.ExportBits(n.Func, factTxnSettles, s.settleBits()) {
				changed = true
			}
			if prog.Facts.ExportBits(n.Func, factTxnOpens, s.opens) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range prog.Graph.Nodes() {
		scanTxnFunc(prog, n).report(pass)
	}
}

// txnObligation is one transaction opened in a function: where, the call
// that opened it, and the variable it is rooted at (nil when the open
// transaction is discarded on the spot).
type txnObligation struct {
	pos  token.Pos
	root types.Object
	what string
}

// txnReturn records that a return statement hands result index idx the value
// rooted at obj.
type txnReturn struct {
	idx int
	obj types.Object
}

// txnScan is the per-function summary of one fixpoint iteration.
type txnScan struct {
	prog *analysis.Program
	node *callgraph.Node
	info *types.Info

	params      []types.Object
	settleRoots map[types.Object]bool
	coarse      bool // a Commit/Rollback/Abort is called somewhere (v1 fallback)
	escaped     map[types.Object]bool
	opens       uint64
	obligations []txnObligation
}

// scanTxnFunc walks one declaration (function literals included — a settle
// inside a closure still settles) and computes its transaction summary under
// the current facts.
func scanTxnFunc(prog *analysis.Program, n *callgraph.Node) *txnScan {
	s := &txnScan{
		prog:        prog,
		node:        n,
		info:        n.Info,
		params:      paramObjs(n.Info, n.Decl),
		settleRoots: map[types.Object]bool{},
		escaped:     map[types.Object]bool{},
	}
	var returns []txnReturn
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			s.visitCall(x)
		case *ast.AssignStmt:
			s.visitAssign(x)
		case *ast.ValueSpec:
			s.visitValueSpec(x)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				for range s.openedResults(call) {
					s.obligations = append(s.obligations,
						txnObligation{pos: call.Pos(), what: calleeName(call)})
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, s.visitReturn(x)...)
		case *ast.CompositeLit:
			// Anything folded into a composite literal escapes linear sight.
			for _, elt := range x.Elts {
				ast.Inspect(elt, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if o := s.info.Uses[id]; o != nil {
							s.escaped[o] = true
						}
					}
					return true
				})
			}
		case *ast.SendStmt:
			if o := identObj(s.info, x.Value); o != nil {
				s.escaped[o] = true
			}
		}
		return true
	})
	// A return of an obligation root re-exports the obligation to callers.
	roots := map[types.Object]bool{}
	for _, ob := range s.obligations {
		if ob.root != nil {
			roots[ob.root] = true
		}
	}
	for _, r := range returns {
		if roots[r.obj] && r.idx < 64 {
			s.opens |= 1 << r.idx
		}
	}
	return s
}

// recvTransactional reports whether the method call's receiver is a
// transactional type: it has Commit plus Rollback or Abort.
func (s *txnScan) recvTransactional(sel *ast.SelectorExpr) bool {
	return isTransactionalType(s.info.TypeOf(sel.X))
}

// isTransactionalType reports whether t looks like a transaction or a
// connection owning one.
func isTransactionalType(t types.Type) bool {
	return hasMethod(t, nil, "Commit") &&
		(hasMethod(t, nil, "Rollback") || hasMethod(t, nil, "Abort"))
}

// visitCall records settles (direct and via callee facts), receiver-style
// begin obligations, and the hand-off of roots into dynamic calls.
func (s *txnScan) visitCall(call *ast.CallExpr) {
	name := calleeName(call)
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if txnSettleNames[name] {
		s.coarse = true
		if isSel {
			if o := rootObj(s.info, sel.X); o != nil {
				s.settleRoots[o] = true
			}
		}
	}
	if txnBeginNames[name] && isSel && s.recvTransactional(sel) {
		s.obligations = append(s.obligations,
			txnObligation{pos: call.Pos(), root: rootObj(s.info, sel.X), what: name})
	}
	resolved := s.prog.Graph.Resolve(call)
	for _, callee := range resolved {
		eachBit(s.prog.Facts.Bits(callee, factTxnSettles), func(bit int) {
			if arg := argForBit(call, callee, bit); arg != nil {
				if o := rootObj(s.info, arg); o != nil {
					s.settleRoots[o] = true
				}
			}
		})
	}
	if len(resolved) == 0 {
		// Dynamic call (function value, conversion, builtin): a transaction
		// passed into it is out of linear sight — hand-off, not a leak.
		for _, a := range call.Args {
			if o := identObj(s.info, a); o != nil {
				s.escaped[o] = true
			}
		}
	}
}

// openedResults returns the result indices of call that carry an open
// transaction: a Begin-family call returning transactional values (unless
// the receiver itself owns the transaction), plus every callee "opens" fact.
func (s *txnScan) openedResults(call *ast.CallExpr) []int {
	seen := map[int]bool{}
	var idx []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	name := calleeName(call)
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if txnBeginNames[name] && !(isSel && s.recvTransactional(sel)) {
		if sig, ok := s.info.TypeOf(call.Fun).(*types.Signature); ok {
			res := sig.Results()
			for i := 0; i < res.Len(); i++ {
				if isTransactionalType(res.At(i).Type()) {
					add(i)
				}
			}
		}
	}
	for _, callee := range s.prog.Graph.Resolve(call) {
		eachBit(s.prog.Facts.Bits(callee, factTxnOpens), add)
	}
	sort.Ints(idx)
	return idx
}

// visitAssign handles both sides of an assignment: storing a tracked root
// into differently-rooted memory is an escape; a call on the right-hand side
// that opens a transaction creates an obligation on the left-hand side.
func (s *txnScan) visitAssign(a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for j, rhs := range a.Rhs {
			o := identObj(s.info, rhs)
			if o == nil {
				continue
			}
			// Assigning to blank drops the value — that is not a hand-off,
			// the obligation stays live.
			if id, ok := ast.Unparen(a.Lhs[j]).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if rootObj(s.info, a.Lhs[j]) != o {
				s.escaped[o] = true
			}
		}
	}
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			for _, i := range s.openedResults(call) {
				s.addLhsObligation(call, a.Lhs, i)
			}
		}
		return
	}
	for j, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			for _, i := range s.openedResults(call) {
				if i == 0 {
					s.addLhsObligation(call, a.Lhs[j:j+1], 0)
				}
			}
		}
	}
}

// visitValueSpec handles `var t = mgr.Begin(...)` declarations.
func (s *txnScan) visitValueSpec(spec *ast.ValueSpec) {
	if len(spec.Values) != 1 {
		return
	}
	call, ok := ast.Unparen(spec.Values[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	for _, i := range s.openedResults(call) {
		ob := txnObligation{pos: call.Pos(), what: calleeName(call)}
		if i < len(spec.Names) && spec.Names[i].Name != "_" {
			ob.root = s.info.Defs[spec.Names[i]]
		}
		s.obligations = append(s.obligations, ob)
	}
}

// addLhsObligation attaches the obligation for result index i of call to the
// assignment target. A blank target is an immediate discard; a field or
// element target moves the transaction into memory (escape), which silences
// the local obligation rather than creating an untrackable one.
func (s *txnScan) addLhsObligation(call *ast.CallExpr, lhs []ast.Expr, i int) {
	ob := txnObligation{pos: call.Pos(), what: calleeName(call)}
	if i < len(lhs) {
		target := ast.Unparen(lhs[i])
		if id, ok := target.(*ast.Ident); ok {
			if id.Name != "_" {
				ob.root = rootObj(s.info, id)
			}
			s.obligations = append(s.obligations, ob)
			return
		}
		// Stored straight into a struct field, map, or slice: out of scope
		// for linear tracking.
		return
	}
	s.obligations = append(s.obligations, ob)
}

// visitReturn records hand-offs through return statements: returned roots
// (plain or folded into a composite literal) and forwarded callee opens.
func (s *txnScan) visitReturn(r *ast.ReturnStmt) []txnReturn {
	if len(r.Results) == 1 {
		if call, ok := ast.Unparen(r.Results[0]).(*ast.CallExpr); ok {
			// Forwarding a call's results re-exports its opens bits verbatim.
			for _, i := range s.openedResults(call) {
				if i < 64 {
					s.opens |= 1 << i
				}
			}
			return nil
		}
	}
	var out []txnReturn
	for j, e := range r.Results {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			for _, i := range s.openedResults(call) {
				if i == 0 && j < 64 {
					s.opens |= 1 << j
				}
			}
			continue
		}
		if o := identObj(s.info, e); o != nil {
			s.escaped[o] = true
			out = append(out, txnReturn{idx: j, obj: o})
			continue
		}
		// A composite literal in a return carries every root folded into it.
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if o := s.info.Uses[id]; o != nil {
					out = append(out, txnReturn{idx: j, obj: o})
				}
			}
			return true
		})
	}
	return out
}

// settleBits projects settled roots onto the function's own parameters for
// export.
func (s *txnScan) settleBits() uint64 {
	var bits uint64
	for i, o := range s.params {
		if o != nil && i < 64 && s.settleRoots[o] {
			bits |= 1 << i
		}
	}
	return bits
}

// report flags every obligation that is neither settled nor handed off.
// Functions that ARE the begin operation (Conn.Begin forwarding to
// Session.Begin) are exempt: their caller owns the transaction.
func (s *txnScan) report(pass *analysis.ProgramPass) {
	if txnBeginNames[s.node.Decl.Name.Name] {
		return
	}
	for _, ob := range s.obligations {
		if ob.root == nil {
			pass.Report(ob.pos, "transaction opened by %s is immediately discarded", ob.what)
			continue
		}
		if s.coarse || s.settleRoots[ob.root] || s.escaped[ob.root] {
			continue
		}
		pass.Report(ob.pos,
			"transaction opened by %s is never committed or rolled back in %s and does not escape to a caller",
			ob.what, s.node.Decl.Name.Name)
	}
}
