package rules

import (
	"go/ast"

	"benchpress/internal/analysis"
)

// TxnHygiene enforces that a function which opens an explicit transaction
// also settles it: any call to Begin/BeginReadOnly on a transactional
// receiver (a type that also has Commit and Rollback methods) must be
// matched by at least one Commit or Rollback call somewhere in the same
// function, deferred calls included.
//
// Functions that intentionally hand an open transaction to their caller
// (connection-pool style) must carry a //lint:ignore txn-hygiene directive
// explaining who settles it.
type TxnHygiene struct{}

// Name implements analysis.Rule.
func (TxnHygiene) Name() string { return "txn-hygiene" }

// Doc implements analysis.Rule.
func (TxnHygiene) Doc() string {
	return "every Begin() must reach a Commit or Rollback within the same function"
}

// Check implements analysis.Rule.
func (TxnHygiene) Check(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTxnFunc(pass, fd)
			}
		}
	}
}

func checkTxnFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Thin wrappers that ARE the Begin operation (Conn.Begin forwarding to
	// Session.Begin) are exempt: their caller owns the transaction.
	if fd.Name.Name == "Begin" || fd.Name.Name == "BeginReadOnly" {
		return
	}
	info := pass.Pkg.Info
	var begins []*ast.CallExpr
	settled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "Begin", "BeginReadOnly":
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := info.TypeOf(sel.X)
			if hasMethod(recv, pass.Pkg.Types, "Commit") && hasMethod(recv, pass.Pkg.Types, "Rollback") {
				begins = append(begins, call)
			}
		case "Commit", "Rollback":
			settled = true
		}
		return true
	})
	if settled {
		return
	}
	for _, call := range begins {
		pass.Report(call.Pos(),
			"transaction opened by %s is never committed or rolled back in %s",
			calleeName(call), fd.Name.Name)
	}
}
