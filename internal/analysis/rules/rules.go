// Package rules holds the domain rules benchlint runs over this repository:
// concurrency, transaction-hygiene, and layering invariants that the generic
// go vet toolchain cannot express. Each rule is a plugin implementing
// analysis.Rule; All returns the full set in a stable order.
package rules

import (
	"go/ast"
	"go/types"

	"benchpress/internal/analysis"
)

// All returns every rule, in the order benchlint runs them.
func All() []analysis.Rule {
	return []analysis.Rule{
		AtomicConsistency{},
		TxnHygiene{},
		PinLeak{},
		PreparedStmtLeak{},
		ErrorDiscard{},
		ErrorSink{},
		LatchOrder{},
		DialectBoundary{},
		BareGoroutine{},
		MixParity{},
		PhaseOrder{},
		StatsWindowLock{},
		HotpathAlloc{},
	}
}

// Lookup returns the rule with the given name, or nil.
func Lookup(name string) analysis.Rule {
	for _, r := range All() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// calleeName extracts the called function or method name from a call.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether the call's signature includes an error
// result.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// hasMethod reports whether type t (or its pointer) has a method name.
func hasMethod(t types.Type, pkg *types.Package, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
	_, ok := obj.(*types.Func)
	return ok
}

// fieldVar resolves a selector to the struct field it reads or writes, or
// nil when the selector is not a field access.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isAtomicValueType reports whether t is one of sync/atomic's value types
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], atomic.Value, ...).
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicPkgCall returns the sync/atomic function name when call is of the
// form atomic.F(...), and "" otherwise.
func atomicPkgCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return ""
	}
	return sel.Sel.Name
}
