package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/callgraph"
)

// factErrSink marks functions whose error result may originate from one of
// the database-surface sinks in discardNames — directly, through a tainted
// local, or wrapped by fmt.Errorf / errors.Join. Stored as uint64(1).
const factErrSink = "errsink.wraps"

// ErrorSink is the interprocedural sibling of ErrorDiscard: that rule flags
// implicitly discarded errors from the sinks themselves (Exec, Commit,
// Close, ...), this one follows the error one level up. A helper that
// forwards or wraps a sink error — a loader's Close that commits, a harness
// step that rolls back — exports a fact, and any call site in any package
// that discards the helper's error with a bare statement, defer, or go is
// flagged. Calls whose name is itself in discardNames are left to
// ErrorDiscard so a finding is never reported twice.
//
// Like ErrorDiscard, the rule is scoped to internal/ and cmd/.
type ErrorSink struct{}

// Name implements analysis.Rule.
func (ErrorSink) Name() string { return "error-sink" }

// Doc implements analysis.Rule.
func (ErrorSink) Doc() string {
	return "no silently discarded errors from helpers that forward database errors across packages"
}

// CheckProgram implements analysis.ProgramRule.
func (ErrorSink) CheckProgram(pass *analysis.ProgramPass) {
	prog := pass.Prog
	for {
		changed := false
		for _, n := range prog.Graph.Nodes() {
			if wrapsSinkError(prog, n) && prog.Facts.Export(n.Func, factErrSink, uint64(1)) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range prog.Graph.Nodes() {
		rel := prog.RelPath(n.Path)
		if strings.HasPrefix(rel, "internal/") || strings.HasPrefix(rel, "cmd/") {
			flagSinkDiscards(pass, n)
		}
	}
}

// errSinkCall reports whether call produces a sink-derived error: a call to
// one of the discardNames sinks returning an error, or to a function already
// known to forward one.
func errSinkCall(prog *analysis.Program, info *types.Info, call *ast.CallExpr) bool {
	if discardNames[calleeName(call)] && returnsError(info, call) {
		return true
	}
	for _, callee := range prog.Graph.Resolve(call) {
		if prog.Facts.Bits(callee, factErrSink) != 0 {
			return true
		}
	}
	return false
}

// errWrapCall matches the stdlib error-combinator calls the taint follows
// through: fmt.Errorf and errors.Join.
func errWrapCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return (p == "fmt" && sel.Sel.Name == "Errorf") ||
		(p == "errors" && sel.Sel.Name == "Join")
}

// wrapsSinkError computes one function's summary under the current facts:
// does some return statement hand back a sink-derived error?
func wrapsSinkError(prog *analysis.Program, n *callgraph.Node) bool {
	info := n.Info
	tainted := map[types.Object]bool{}
	var carrying func(e ast.Expr) bool
	carrying = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if errSinkCall(prog, info, x) {
				return true
			}
			if errWrapCall(info, x) {
				for _, a := range x.Args {
					if carrying(a) {
						return true
					}
				}
			}
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return tainted[o]
			}
		}
		return false
	}

	// Taint locals to a fixpoint within the function: assignment chains like
	// err := c.Commit(); werr := fmt.Errorf("...: %w", err) converge in a
	// couple of passes.
	for {
		grew := false
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			a, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			carries := false
			for _, rhs := range a.Rhs {
				if carrying(rhs) {
					carries = true
					break
				}
			}
			if !carries {
				return true
			}
			for _, lhs := range a.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					o := info.Uses[id]
					if o == nil {
						o = info.Defs[id]
					}
					if o != nil && types.Identical(o.Type(), errorType) && !tainted[o] {
						tainted[o] = true
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	// Named error results make bare returns carriers too.
	var namedErrs []types.Object
	if res := n.Decl.Type.Results; res != nil {
		for _, f := range res.List {
			for _, nm := range f.Names {
				if o := info.Defs[nm]; o != nil && types.Identical(o.Type(), errorType) {
					namedErrs = append(namedErrs, o)
				}
			}
		}
	}

	wraps := false
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if wraps {
			return false
		}
		r, ok := m.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(r.Results) == 0 {
			for _, o := range namedErrs {
				if tainted[o] {
					wraps = true
				}
			}
			return true
		}
		for _, e := range r.Results {
			if carrying(e) {
				wraps = true
			}
		}
		return true
	})
	return wraps
}

// flagSinkDiscards reports implicit discards of calls to fact-carrying
// functions in one body.
func flagSinkDiscards(pass *analysis.ProgramPass, n *callgraph.Node) {
	prog := pass.Prog
	info := n.Info
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		var call *ast.CallExpr
		var how string
		switch s := m.(type) {
		case *ast.ExprStmt:
			if c, ok := s.X.(*ast.CallExpr); ok {
				call, how = c, "discarded"
			}
		case *ast.DeferStmt:
			call, how = s.Call, "discarded by defer"
		case *ast.GoStmt:
			call, how = s.Call, "discarded by go statement"
		}
		if call == nil {
			return true
		}
		name := calleeName(call)
		if discardNames[name] || !returnsError(info, call) {
			return true
		}
		for _, callee := range prog.Graph.Resolve(call) {
			if prog.Facts.Bits(callee, factErrSink) != 0 {
				pass.Report(call.Pos(),
					"error returned by %s is silently %s, but %s forwards a database error (Commit/Exec/Flush and friends) from its callees; handle it or assign it to _ explicitly",
					name, how, name)
				break
			}
		}
		return true
	})
}
