package rules

import (
	"go/ast"
	"go/types"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/callgraph"
)

// HotpathAlloc flags per-row allocation patterns in the executor's batch
// machinery: appends that grow a slice declared without capacity, and
// interface conversions that box a non-pointer value. The scope is
// interprocedural — a function is "hot" when the CHA call graph reaches it
// from one of exec's batch scan loops (a function in internal/sqldb/exec
// that drives the storage batch APIs), because anything those loops call
// runs once per row or once per batch, where a stray allocation multiplies
// by the row rate.
//
// The rule is deliberately narrow about appends: only locals whose
// declaration in the same function provides no capacity (var x []T, x :=
// []T{}, two-argument make) are tracked, so append-to-parameter patterns —
// the caller-presized reuse idiom the batch APIs are built on — stay quiet.
type HotpathAlloc struct{}

// Name implements analysis.Rule.
func (HotpathAlloc) Name() string { return "hotpath-alloc" }

// Doc implements analysis.Rule.
func (HotpathAlloc) Doc() string {
	return "append without presized capacity or boxing interface conversion reachable from exec's batch scan loops"
}

// batchAPIs are the storage batch entry points whose callers constitute
// exec's batch loops. Matching is by callee name: the fixtures (and any
// future storage refactor) keep working as long as the API names hold.
var batchAPIs = map[string]bool{
	"ScanBatch":            true,
	"AppendPrimaryRange":   true,
	"AppendSecondaryRange": true,
}

// execPkg is the module-relative package whose functions can root the hot
// set.
const execPkg = "internal/sqldb/exec"

// CheckProgram implements analysis.ProgramRule.
func (HotpathAlloc) CheckProgram(pass *analysis.ProgramPass) {
	prog := pass.Prog

	// Roots: exec functions that call a batch API anywhere in their body.
	var queue []*callgraph.Node
	rootOf := map[*types.Func]string{} // hot function -> root name, for messages
	for _, n := range prog.Graph.Nodes() {
		if prog.RelPath(n.Path) != execPkg {
			continue
		}
		for _, e := range n.Out {
			for _, c := range e.Callees {
				if batchAPIs[c.Name()] {
					if _, seen := rootOf[n.Func]; !seen {
						rootOf[n.Func] = n.Func.Name()
						queue = append(queue, n)
					}
				}
			}
		}
	}

	// Hot set: everything reachable from the roots, provenance-tagged with
	// the first root that reached it.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			for _, c := range e.Callees {
				if _, seen := rootOf[c]; seen {
					continue
				}
				rootOf[c] = rootOf[n.Func]
				if cn := prog.Graph.Node(c); cn != nil {
					queue = append(queue, cn)
				}
			}
		}
	}

	for _, n := range prog.Graph.Nodes() {
		root, hot := rootOf[n.Func]
		if !hot {
			continue
		}
		checkHotFunc(pass, n, root)
	}
}

// checkHotFunc reports the allocation patterns inside one hot function body.
func checkHotFunc(pass *analysis.ProgramPass, n *callgraph.Node, root string) {
	info := n.Info
	uncapped := uncappedLocals(info, n.Decl)

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			// Explicit conversion T(x).
			if len(call.Args) == 1 && boxes(info.TypeOf(call.Args[0]), tv.Type) {
				pass.Report(call.Pos(),
					"conversion boxes %s into %s on a batch hot path (reachable from %s)",
					types.TypeString(info.TypeOf(call.Args[0]), types.RelativeTo(n.Func.Pkg())),
					types.TypeString(tv.Type, types.RelativeTo(n.Func.Pkg())), root)
			}
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			// Builtin append: flag growth of an uncapped local.
			if len(call.Args) > 0 {
				if obj := identObj(info, call.Args[0]); obj != nil && uncapped[obj] {
					pass.Report(call.Pos(),
						"append grows %s, declared without capacity, on a batch hot path (reachable from %s); presize it",
						obj.Name(), root)
				}
			}
			return true
		}
		// Ordinary call: arguments bound to interface parameters box their
		// concrete values once per invocation.
		sig, ok := info.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			pt := paramType(sig, i, call)
			if pt == nil || !boxes(info.TypeOf(arg), pt) {
				continue
			}
			pass.Report(arg.Pos(),
				"argument boxes %s into %s on a batch hot path (reachable from %s)",
				types.TypeString(info.TypeOf(arg), types.RelativeTo(n.Func.Pkg())),
				types.TypeString(pt, types.RelativeTo(n.Func.Pkg())), root)
		}
		return true
	})
}

// uncappedLocals collects the variables of fd declared without capacity:
// `var x []T`, `x := []T{}`, `x := []T(nil)`, and two-argument make. Append
// growth on these reallocates log-many times; the fix is a capacity hint or
// a pooled buffer.
func uncappedLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(name *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[name]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		switch v := ast.Unparen(rhs).(type) {
		case nil:
			out[obj] = true // var x []T
		case *ast.CompositeLit:
			if len(v.Elts) == 0 {
				out[obj] = true // x := []T{}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" && len(v.Args) == 2 {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					out[obj] = true // x := make([]T, n): cap == len
				}
			}
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
				if b, ok := info.Types[v.Args[0]]; ok && b.IsNil() {
					out[obj] = true // x := []T(nil)
				}
			}
		case *ast.Ident:
			if b, ok := info.Types[v]; ok && b.IsNil() {
				out[obj] = true // var x []T = nil
			}
		}
	}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					mark(name, rhs)
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if name, ok := lhs.(*ast.Ident); ok && info.Defs[name] != nil {
					mark(name, s.Rhs[i])
				}
			}
		}
		return true
	})
	return out
}

// paramType returns the declared type of the parameter bound to argument i,
// unwrapping the variadic element type. Nil when the call shape does not
// bind it (or the argument is spread with ...).
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if sig.Variadic() {
		last := params.Len() - 1
		if i >= last {
			if call.Ellipsis.IsValid() {
				return nil // spread: the slice is passed, nothing boxes here
			}
			return params.At(last).Type().(*types.Slice).Elem()
		}
		return params.At(i).Type()
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

// boxes reports whether storing a value of type from into a location of
// type to allocates: to is an interface and from is a concrete value type.
// Pointer-shaped operands (pointers, maps, channels, functions) fit in the
// interface word and stay allocation-free, as does nil.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch u := from.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}
