package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"benchpress/internal/analysis"
)

// AtomicConsistency enforces that a struct field accessed atomically
// anywhere in a package is accessed atomically everywhere in it. Two idioms
// are covered:
//
//   - fields passed to sync/atomic functions (atomic.AddInt64(&s.n, 1)):
//     every other access to the same field must also go through a
//     sync/atomic call — a plain s.n read or write races with it;
//   - fields declared with sync/atomic value types (atomic.Int64,
//     atomic.Pointer[T], ...): the field may only be used as the receiver
//     of a method call — copying or reassigning the value defeats the
//     atomicity and trips the vet copylocks check at best.
//
// This protects the lock-free control cluster in internal/core
// (rateBits/mix/pauseGate) and the internal/stats counters as the codebase
// grows.
type AtomicConsistency struct{}

// Name implements analysis.Rule.
func (AtomicConsistency) Name() string { return "atomic-consistency" }

// Doc implements analysis.Rule.
func (AtomicConsistency) Doc() string {
	return "fields accessed via sync/atomic must never be read or written plainly"
}

// Check implements analysis.Rule.
func (AtomicConsistency) Check(pass *analysis.Pass) {
	info := pass.Pkg.Info

	// Fields declared with sync/atomic value types.
	typedFields := map[*types.Var]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					if v, ok := info.Defs[nm].(*types.Var); ok && isAtomicValueType(v.Type()) {
						typedFields[v] = true
					}
				}
			}
			return true
		})
	}

	// Fields whose address is passed to a sync/atomic function; the
	// selectors appearing inside those calls are the sanctioned accesses.
	fnFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || atomicPkgCall(info, call) == "" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := un.X.(*ast.SelectorExpr); ok {
					if v := fieldVar(info, sel); v != nil {
						fnFields[v] = true
						sanctioned[sel] = true
					}
				}
			}
			return true
		})
	}

	parents := pass.Parents()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldVar(info, sel)
			if v == nil {
				return true
			}
			switch {
			case fnFields[v]:
				if !sanctioned[sel] {
					pass.Report(sel.Sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere; this plain access races with it",
						v.Name())
				}
			case typedFields[v]:
				// The only sanctioned use of an atomic-typed field is as
				// the receiver of a method call: x.f.Load(), x.f.Store(v).
				if ps, ok := parents[sel].(*ast.SelectorExpr); !ok || ps.X != sel {
					pass.Report(sel.Sel.Pos(),
						"field %s has atomic type %s; using it as a plain value copies or overwrites the atomic state",
						v.Name(), v.Type())
				}
			}
			return true
		})
	}
}
