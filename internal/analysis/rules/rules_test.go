package rules_test

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/rules"
)

// fixtureCases pairs every rule with its true-positive and true-negative
// fixtures and the synthetic import path the fixture is loaded under (rules
// scope themselves by module-relative path).
var fixtureCases = []struct {
	rule    analysis.Rule
	bad     string
	good    string
	pkgPath string
}{
	{rules.AtomicConsistency{}, "atomic_bad.go", "atomic_good.go", "benchpress/internal/fixture"},
	{rules.TxnHygiene{}, "txn_bad.go", "txn_good.go", "benchpress/internal/fixture"},
	{rules.PinLeak{}, "pinleak_bad.go", "pinleak_good.go", "benchpress/internal/fixture"},
	{rules.PreparedStmtLeak{}, "preparedleak_bad.go", "preparedleak_good.go", "benchpress/internal/fixture"},
	{rules.ErrorDiscard{}, "errdiscard_bad.go", "errdiscard_good.go", "benchpress/internal/fixture"},
	{rules.ErrorSink{}, "errsink_bad.go", "errsink_good.go", "benchpress/internal/fixture"},
	{rules.LatchOrder{}, "latch_bad.go", "latch_good.go", "benchpress/internal/fixture"},
	{rules.DialectBoundary{}, "boundary_bad.go", "boundary_good.go", "benchpress/internal/benchmarks/fixture"},
	{rules.BareGoroutine{}, "goroutine_bad.go", "goroutine_good.go", "benchpress/internal/fixture"},
	{rules.MixParity{}, "mixparity_bad.go", "mixparity_good.go", "benchpress/internal/benchmarks/fixture"},
	{rules.PhaseOrder{}, "phaseorder_bad.go", "phaseorder_good.go", "benchpress/internal/fixture"},
	{rules.StatsWindowLock{}, "statswindow_bad.go", "statswindow_good.go", "benchpress/internal/stats/fixture"},
	{rules.HotpathAlloc{}, "hotpathalloc_bad.go", "hotpathalloc_good.go", "benchpress/internal/sqldb/exec"},
}

func TestRuleFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		tc := tc
		t.Run(tc.rule.Name(), func(t *testing.T) {
			t.Parallel()
			bad := runFixture(t, tc.rule, tc.bad, tc.pkgPath)
			if len(bad) == 0 {
				t.Errorf("%s: failing fixture %s produced no diagnostics", tc.rule.Name(), tc.bad)
			}
			good := runFixtureNoWants(t, tc.rule, tc.good, tc.pkgPath)
			for _, d := range good {
				t.Errorf("%s: clean fixture %s produced diagnostic: %s", tc.rule.Name(), tc.good, d)
			}
		})
	}
}

// TestErrorDiscardScopedToInternalAndCmd checks the rule goes quiet outside
// its layer.
func TestErrorDiscardScopedToInternalAndCmd(t *testing.T) {
	diags := runFixtureNoWants(t, rules.ErrorDiscard{}, "errdiscard_bad.go", "benchpress/examples/fixture")
	if len(diags) != 0 {
		t.Errorf("error-discard fired outside internal/ and cmd/: %v", diags)
	}
}

// TestErrorSinkScopedToInternalAndCmd: sink discards outside internal/ and
// cmd/ (examples, tools) are deliberate and stay quiet.
func TestErrorSinkScopedToInternalAndCmd(t *testing.T) {
	diags := runFixtureNoWants(t, rules.ErrorSink{}, "errsink_bad.go", "benchpress/examples/fixture")
	if len(diags) != 0 {
		t.Errorf("error-sink fired outside internal/ and cmd/: %v", diags)
	}
}

// TestBareGoroutineScopedToInternal likewise.
func TestBareGoroutineScopedToInternal(t *testing.T) {
	diags := runFixtureNoWants(t, rules.BareGoroutine{}, "goroutine_bad.go", "benchpress/examples/fixture")
	if len(diags) != 0 {
		t.Errorf("bare-goroutine fired outside internal/: %v", diags)
	}
}

// TestDialectBoundaryScopedToBenchmarks: the same forbidden imports are
// legal outside internal/benchmarks/.
func TestDialectBoundaryScopedToBenchmarks(t *testing.T) {
	diags := runFixtureNoWants(t, rules.DialectBoundary{}, "boundary_bad.go", "benchpress/internal/experiments")
	if len(diags) != 0 {
		t.Errorf("dialect-boundary fired outside internal/benchmarks/: %v", diags)
	}
}

// TestMixParityScopedToBenchmarks: the rule is silent outside
// internal/benchmarks/.
func TestMixParityScopedToBenchmarks(t *testing.T) {
	diags := runFixtureNoWants(t, rules.MixParity{}, "mixparity_bad.go", "benchpress/internal/fixture")
	if len(diags) != 0 {
		t.Errorf("mix-parity fired outside internal/benchmarks/: %v", diags)
	}
}

// TestStatsWindowLockScopedToStats: the guarded-field convention only binds
// inside internal/stats; the same code elsewhere is silent.
func TestStatsWindowLockScopedToStats(t *testing.T) {
	diags := runFixtureNoWants(t, rules.StatsWindowLock{}, "statswindow_bad.go", "benchpress/internal/fixture")
	if len(diags) != 0 {
		t.Errorf("stats-window-lock fired outside internal/stats/: %v", diags)
	}
}

func TestLookup(t *testing.T) {
	for _, r := range rules.All() {
		if got := rules.Lookup(r.Name()); got == nil {
			t.Errorf("Lookup(%q) = nil", r.Name())
		}
	}
	if rules.Lookup("no-such-rule") != nil {
		t.Error("Lookup of unknown rule returned a rule")
	}
}

// runFixture loads testdata/<name> as a single-file package inside a
// synthetic "benchpress" module, runs one rule, checks the diagnostics
// against the fixture's `// want "substring"` comments, and returns them.
func runFixture(t *testing.T, rule analysis.Rule, name, pkgPath string) []analysis.Diagnostic {
	t.Helper()
	src, diags := loadAndRun(t, rule, name, pkgPath)
	wants := parseWants(src)
	matched := map[int]bool{}
	for _, d := range diags {
		ok := false
		for _, w := range wants[d.Pos.Line] {
			if strings.Contains(d.Message, w) {
				ok = true
				break
			}
		}
		if ok {
			matched[d.Pos.Line] = true
		} else {
			t.Errorf("%s: unexpected diagnostic at line %d: %s", name, d.Pos.Line, d.Message)
		}
	}
	for line := range wants {
		if !matched[line] {
			t.Errorf("%s: expected diagnostic at line %d (want %q), got none", name, line, wants[line])
		}
	}
	return diags
}

// runFixtureNoWants runs a rule over a fixture ignoring its want comments
// (used for scope tests, where the same file must produce nothing).
func runFixtureNoWants(t *testing.T, rule analysis.Rule, name, pkgPath string) []analysis.Diagnostic {
	t.Helper()
	_, diags := loadAndRun(t, rule, name, pkgPath)
	return diags
}

func loadAndRun(t *testing.T, rule analysis.Rule, name, pkgPath string) (string, []analysis.Diagnostic) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	writeStubs(t, tmp)
	rel := strings.TrimPrefix(pkgPath, "benchpress/")
	writeFile(t, tmp, filepath.Join(rel, "fixture.go"), string(data))

	loader, err := analysis.NewLoader(tmp)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture %s does not type-check: %v", name, terr)
	}
	return string(data), analysis.Run([]*analysis.Package{pkg}, []analysis.Rule{rule})
}

// writeStubs lays down a synthetic "benchpress" module with stubs of the
// packages fixtures import, so every fixture type-checks hermetically.
func writeStubs(t *testing.T, tmp string) {
	t.Helper()
	writeFile(t, tmp, "go.mod", "module benchpress\n\ngo 1.22\n")
	writeFile(t, tmp, "internal/sqldb/sqldb.go",
		"// Package sqldb is a fixture stub.\npackage sqldb\n\n// Engine is a stub of the storage engine.\ntype Engine struct{}\n")
	writeFile(t, tmp, "internal/sqldb/txn/txn.go",
		"// Package txn is a fixture stub.\npackage txn\n\n// Mode is a stub.\ntype Mode int\n")
	writeFile(t, tmp, "internal/dbdriver/driver.go",
		"// Package dbdriver is a fixture stub.\npackage dbdriver\n\n// Conn is a stub connection.\ntype Conn struct{}\n")
	writeFile(t, tmp, "internal/core/core.go", `// Package core is a fixture stub.
package core

import "time"

// Phase is a stub of the workload phase descriptor.
type Phase struct {
	Duration    time.Duration
	Rate        float64
	Mix         []float64
	Exponential bool
	ThinkTime   time.Duration
}

// Options is a stub.
type Options struct{ Terminals int }

// Manager is a stub.
type Manager struct{}

// NewManager is a stub of the workload manager constructor.
func NewManager(b, db any, phases []Phase, opts Options) *Manager { return &Manager{} }
`)
}

func writeFile(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// parseWants extracts `// want "substring"` expectations per line.
func parseWants(src string) map[int][]string {
	wants := map[int][]string{}
	for i, line := range strings.Split(src, "\n") {
		for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	return wants
}

// TestCrossPackageFixtures proves every rule's interprocedural behavior on a
// two-package module: testdata/xpkg/<rule>/ holds module-relative .go files
// spanning at least two packages, seeded with `// want` findings that only
// fire (or only stay quiet) when facts flow across the package boundary.
func TestCrossPackageFixtures(t *testing.T) {
	for _, r := range rules.All() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			t.Parallel()
			runXpkgFixture(t, r)
		})
	}
}

// runXpkgFixture copies testdata/xpkg/<rule>/ into a synthetic module,
// type-checks and runs the one rule over every fixture package with the full
// program in view, and matches diagnostics against per-file want comments.
func runXpkgFixture(t *testing.T, rule analysis.Rule) {
	t.Helper()
	root := filepath.Join("testdata", "xpkg", rule.Name())
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("rule %s has no cross-package fixture tree: %v", rule.Name(), err)
	}

	tmp := t.TempDir()
	writeStubs(t, tmp)

	// Copy the fixture tree, collecting want expectations keyed by
	// module-relative path and the set of package directories it spans.
	wants := map[string]map[int][]string{} // rel file -> line -> substrings
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		writeFile(t, tmp, rel, string(data))
		if w := parseWants(string(data)); len(w) > 0 {
			wants[rel] = w
		}
		dirs[pathDir(rel)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 2 {
		t.Fatalf("cross-package fixture for %s spans %d package(s), want >= 2", rule.Name(), len(dirs))
	}

	loader, err := analysis.NewLoader(tmp)
	if err != nil {
		t.Fatal(err)
	}
	var targets []*analysis.Package
	for _, dir := range sortedKeys(dirs) {
		pkg, err := loader.Load("benchpress/" + dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture package %s does not type-check: %v", dir, terr)
		}
		targets = append(targets, pkg)
	}

	prog := analysis.NewProgram(loader.Loaded())
	diags := analysis.RunProgram(prog, targets, []analysis.Rule{rule})

	matched := map[string]map[int]bool{}
	for _, d := range diags {
		rel, err := filepath.Rel(tmp, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		ok := false
		for _, w := range wants[rel][d.Pos.Line] {
			if strings.Contains(d.Message, w) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", rel, d.Pos.Line, d.Message)
			continue
		}
		if matched[rel] == nil {
			matched[rel] = map[int]bool{}
		}
		matched[rel][d.Pos.Line] = true
	}
	total := 0
	for rel, byLine := range wants {
		for line := range byLine {
			total++
			if !matched[rel][line] {
				t.Errorf("expected diagnostic at %s:%d (want %q), got none", rel, line, byLine[line])
			}
		}
	}
	if total == 0 {
		t.Errorf("cross-package fixture for %s seeds no want expectations", rule.Name())
	}
}

func pathDir(rel string) string {
	if i := strings.LastIndex(rel, "/"); i >= 0 {
		return rel[:i]
	}
	return "."
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Ensure fixture diagnostics render with positions (smoke test for the
// Diagnostic formatting contract used by benchlint output).
func TestDiagnosticRendering(t *testing.T) {
	_, diags := loadAndRun(t, rules.ErrorDiscard{}, "errdiscard_bad.go", "benchpress/internal/fixture")
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "fixture.go:") || !strings.Contains(s, "[error-discard]") {
		t.Errorf("unexpected rendering: %s", fmt.Sprintf("%q", s))
	}
}
