// Fixture: true positives for the latch-order rule — acquisitions against
// the documented order (primary → secondary → segment → row), same-class
// re-entry on singleton latches, and order-inverting calls and closures.
package fixture

import "sync"

type Latched struct{ sync.RWMutex }

type table struct {
	primary   Latched
	secondary Latched
}

type segment struct{ mu sync.Mutex }

type Row struct{ mu sync.Mutex }

func (r *Row) Lock()   { r.mu.Lock() }
func (r *Row) Unlock() { r.mu.Unlock() }

func badSegmentThenSecondary(t *table, seg *segment) {
	seg.mu.Lock()
	t.secondary.Lock() // want "inverts the documented latch order"
	t.secondary.Unlock()
	seg.mu.Unlock()
}

func badRowThenPrimary(t *table, r *Row) {
	r.Lock()
	t.primary.RLock() // want "inverts the documented latch order"
	t.primary.RUnlock()
	r.Unlock()
}

func badPrimaryTwice(t *table) {
	t.primary.RLock()
	t.primary.RLock() // want "already held"
	t.primary.RUnlock()
	t.primary.RUnlock()
}

func lockSegment(seg *segment) {
	seg.mu.Lock()
	seg.mu.Unlock()
}

func badCallUnderRow(seg *segment, r *Row) {
	r.Lock()
	lockSegment(seg) // want "may acquire the segment latch while the row latch is held"
	r.Unlock()
}

func run(fn func()) { fn() }

func badClosureUnderRow(seg *segment, r *Row) {
	r.Lock()
	run(func() { lockSegment(seg) }) // want "may acquire the segment latch while the row latch is held"
	r.Unlock()
}

func badInsideClosure(t *table, r *Row) func() {
	return func() {
		r.Lock()
		t.primary.Lock() // want "inverts the documented latch order"
		t.primary.Unlock()
		r.Unlock()
	}
}
