// Cross-package fixture, consumer side: pin obligations settled through
// (and inherited from) helpers in the pool package.
package app

import "benchpress/internal/xpin/pool"

// helperReleased discharges its Pin through pool.Release in the other
// package — no suppression needed under the interprocedural rule.
func helperReleased(p *pool.Pool) error {
	f, err := p.Pin(1)
	if err != nil {
		return err
	}
	_ = f.Data()
	pool.Release(p, f)
	return nil
}

// leak never unpins and never hands the frame anywhere.
func leak(p *pool.Pool) ([]byte, error) {
	f, err := p.Pin(2) // want "never unpinned"
	if err != nil {
		return nil, err
	}
	return f.Data(), nil
}

// leakFromMeta inherits the obligation from pool.Meta's opens fact and
// drops it.
func leakFromMeta(p *pool.Pool) error {
	f, err := pool.Meta(p) // want "never unpinned"
	if err != nil {
		return err
	}
	_ = f.Data()
	return nil
}

// releasedFromMeta inherits the same obligation and discharges it.
func releasedFromMeta(p *pool.Pool) error {
	f, err := pool.Meta(p)
	if err != nil {
		return err
	}
	defer p.Unpin(f, false)
	_ = f.Data()
	return nil
}
