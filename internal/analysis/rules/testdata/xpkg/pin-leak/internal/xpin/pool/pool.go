// Cross-package fixture, provider side: a buffer pool, an unpinning helper
// (exports a pin.settles fact), and a pinning helper that hands back a
// still-pinned frame (exports a pin.opens fact).
package pool

// Frame is one pinned buffer-pool page.
type Frame struct{ pins int }

// Data exposes the frame bytes.
func (f *Frame) Data() []byte { return nil }

// Pool is a fixed-size buffer pool.
type Pool struct{}

// Pin pins a page into a frame; the caller owns the pin.
func (p *Pool) Pin(id uint32) (*Frame, error) { return &Frame{pins: 1}, nil }

// PinNew pins a fresh zeroed page; the caller owns the pin.
func (p *Pool) PinNew(id uint32) (*Frame, error) { return &Frame{pins: 1}, nil }

// Unpin releases one pin.
func (p *Pool) Unpin(f *Frame, dirty bool) { f.pins-- }

// Release unpins f: callers in other packages discharge their Pin
// obligation through this helper's exported fact.
func Release(p *Pool, f *Frame) { p.Unpin(f, false) }

// Meta returns the metadata page still pinned. The returned frame carries
// the obligation: callers must unpin it.
func Meta(p *Pool) (*Frame, error) {
	return p.Pin(0)
}
