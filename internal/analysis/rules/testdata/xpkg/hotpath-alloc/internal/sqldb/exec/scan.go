// Cross-package hot-path fixture: the batch loop lives here, the per-row
// allocation lives in the sibling rowutil package. The finding only fires if
// reachability flows across the package boundary.
package exec

import "benchpress/internal/sqldb/rowutil"

// rowBatch stands in for the storage batch scratch.
type rowBatch struct {
	ids [64]int64
	n   int
}

type table struct{}

func (t *table) ScanBatch(g int, cursor int64, b *rowBatch) int64 { return -1 }

// scanLoop roots the hot set and crosses into rowutil for its per-row work.
func scanLoop(t *table) int64 {
	var b rowBatch
	var total int64
	for cursor := int64(0); cursor >= 0; {
		cursor = t.ScanBatch(0, cursor, &b)
		for i := 0; i < b.n; i++ {
			total += rowutil.Project(b.ids[i])
		}
	}
	return total
}
