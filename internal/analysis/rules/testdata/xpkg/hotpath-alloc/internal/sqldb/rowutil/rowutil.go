// Package rowutil holds the per-row helpers the exec fixture calls from its
// batch loop. The allocation defects live here, one package away from the
// root, so the rule only finds them through cross-package reachability.
package rowutil

// Project is hot solely because exec.scanLoop calls it per row.
func Project(id int64) int64 {
	var out []int64
	out = append(out, id) // want "append grows out"
	record(id)            // want "boxes int64"
	return out[0]
}

// record boxes its argument into an empty interface per call.
func record(v any) { _ = v }

// ColdSummary is never called from a batch loop: its uncapped append must
// stay quiet.
func ColdSummary(n int) []int64 {
	var acc []int64
	for i := 0; i < n; i++ {
		acc = append(acc, int64(i))
	}
	return acc
}
