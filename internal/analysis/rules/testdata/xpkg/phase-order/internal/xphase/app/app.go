// Cross-package fixture, consumer side: the Phase type and NewManager both
// resolve from internal/core; the bad literals are here.
package app

import (
	"time"

	"benchpress/internal/core"
	"benchpress/internal/xphase/mk"
)

func launch() *core.Manager {
	return core.NewManager(nil, nil, []core.Phase{
		{Duration: 0, Rate: 100},              // want "needs a positive duration"
		{Duration: time.Second, Rate: -1},     // want "negative rate"
		{Duration: 5 * time.Second, Rate: 50}, // fine
	}, mk.Options())
}
