// Cross-package fixture, provider side: options helper so the manager call
// spans two packages.
package mk

import "benchpress/internal/core"

// Options returns the fixture's manager options.
func Options() core.Options { return core.Options{Terminals: 1} }
