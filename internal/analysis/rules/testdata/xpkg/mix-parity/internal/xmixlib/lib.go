// Cross-package fixture, provider side: the procedure descriptor the
// benchmark's slices are built from.
package xmixlib

// Proc names one transaction procedure.
type Proc struct{ Name string }
