// Cross-package fixture, consumer side: the paired literals use a type from
// another package; the weights still must stay parallel to the procedures.
package xmix

import "benchpress/internal/xmixlib"

// Bench is a benchmark with a mismatched mix.
type Bench struct{}

// Procedures lists three transactions.
func (b *Bench) Procedures() []xmixlib.Proc {
	return []xmixlib.Proc{{Name: "new-order"}, {Name: "payment"}, {Name: "stock-level"}}
}

// DefaultMix has one weight too few.
func (b *Bench) DefaultMix() []float64 {
	return []float64{0.6, 0.4} // want "pair by index"
}
