// Cross-package fixture, consumer side: obligations settled through (and
// inherited from) helpers in the conn package.
package app

import "benchpress/internal/xtxn/conn"

// helperSettled discharges its Begin through conn.Finish in the other
// package — no suppression needed under the interprocedural rule.
func helperSettled(c *conn.Conn) error {
	if err := c.Begin(); err != nil {
		return err
	}
	if err := c.Exec("update t set v = v + 1"); err != nil {
		return conn.Finish(c, false)
	}
	return conn.Finish(c, true)
}

// leak never settles and never hands the transaction anywhere.
func leak(c *conn.Conn) error {
	if err := c.Begin(); err != nil { // want "never committed or rolled back"
		return err
	}
	return c.Exec("update t set v = v + 1")
}

// leakFromOpen inherits the obligation from conn.Open's opens fact and
// drops it.
func leakFromOpen() error {
	c, err := conn.Open() // want "never committed or rolled back"
	if err != nil {
		return err
	}
	return c.Exec("insert into t values (1)")
}

// settledFromOpen inherits the same obligation and discharges it.
func settledFromOpen() error {
	c, err := conn.Open()
	if err != nil {
		return err
	}
	if err := c.Exec("insert into t values (1)"); err != nil {
		return conn.Finish(c, false)
	}
	return conn.Finish(c, true)
}
