// Cross-package fixture, provider side: a transactional connection, a
// settling helper (exports a txn.settles fact), and a constructor that hands
// back an open transaction (exports a txn.opens fact).
package conn

// Conn is a transactional connection.
type Conn struct{ open bool }

// Begin opens a transaction; the caller owns it.
func (c *Conn) Begin() error { c.open = true; return nil }

// Commit settles the open transaction.
func (c *Conn) Commit() error { c.open = false; return nil }

// Rollback settles the open transaction.
func (c *Conn) Rollback() error { c.open = false; return nil }

// Exec runs one statement inside the open transaction.
func (c *Conn) Exec(q string) error { return nil }

// Finish settles c's transaction either way: callers in other packages
// discharge their Begin obligation through this helper's exported fact.
func Finish(c *Conn, commit bool) error {
	if commit {
		return c.Commit()
	}
	return c.Rollback()
}

// Open returns a connection with an already-open transaction. The returned
// value carries the obligation: callers must settle it.
func Open() (*Conn, error) {
	c := &Conn{}
	if err := c.Begin(); err != nil {
		return nil, err
	}
	return c, nil
}
