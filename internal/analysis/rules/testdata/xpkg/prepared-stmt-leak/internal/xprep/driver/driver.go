// Cross-package fixture, provider side: the prepared-statement surface.
package driver

// Stmt is a prepared statement pinned to a session.
type Stmt struct{}

// Close releases the statement.
func (s *Stmt) Close() error { return nil }

// Exec runs the statement.
func (s *Stmt) Exec() error { return nil }

// Conn prepares statements.
type Conn struct{}

// Prepare compiles q into a reusable statement.
func (c *Conn) Prepare(q string) (*Stmt, error) { return &Stmt{}, nil }
