// Cross-package fixture, consumer side: the Prepare call resolves through
// the driver package's types.
package app

import "benchpress/internal/xprep/driver"

func leak(c *driver.Conn) error {
	st, err := c.Prepare("select 1") // want "never closed"
	if err != nil {
		return err
	}
	return st.Exec()
}

func closed(c *driver.Conn) error {
	st, err := c.Prepare("select 1")
	if err != nil {
		return err
	}
	defer func() { _ = st.Close() }()
	return st.Exec()
}
