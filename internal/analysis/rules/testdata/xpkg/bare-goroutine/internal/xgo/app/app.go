// Cross-package fixture, consumer side: the launched function lives in lib.
package app

import (
	"sync"

	"benchpress/internal/xgo/lib"
)

func bad() {
	go lib.Run() // want "unsupervised goroutine"
}

func good() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = lib.Run()
	}()
	wg.Wait()
}
