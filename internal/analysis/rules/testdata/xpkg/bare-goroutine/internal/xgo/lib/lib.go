// Cross-package fixture, provider side: a worker entry point whose error
// result evaporates if launched bare.
package lib

// Run processes work until its input is exhausted.
func Run() error { return nil }
