// Cross-package fixture, consumer side: latch-order violations that only a
// call-graph fact can see — the acquisition happens in the other package.
package app

import "benchpress/internal/xlatch/store"

// rowThenSegment calls across the package boundary while holding a row
// latch; LockSegment's fact says it acquires the segment latch, which ranks
// before rows in the documented order.
func rowThenSegment(s *store.Store, r *store.Row) {
	r.Lock()
	s.LockSegment() // want "may acquire the segment latch while the row latch is held"
	r.Unlock()
}

// segmentThenRow follows the documented order.
func segmentThenRow(s *store.Store, r *store.Row) {
	s.LockSegment()
	r.Lock()
	r.Unlock()
}

// closureUnderPrimary is legal: the closure's row latch ranks after the
// primary latch UnderPrimary holds around it.
func closureUnderPrimary(t *store.Table, r *store.Row) {
	store.UnderPrimary(t, func() {
		r.Lock()
		r.Unlock()
	})
}
