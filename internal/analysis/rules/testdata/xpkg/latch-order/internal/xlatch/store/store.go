// Cross-package fixture, provider side: storage-shaped latch types (the
// rule classifies by the Latched/segment/Row naming convention) and helpers
// whose may-acquire facts cross the package boundary.
package store

import "sync"

// Latched is a latch-carrying index tree, mirroring the storage layer.
type Latched struct{ sync.RWMutex }

// Table holds the primary index latch and one secondary.
type Table struct {
	primary Latched
	aux     Latched
}

type segment struct{ mu sync.Mutex }

// Row is a row with its own latch.
type Row struct{ mu sync.Mutex }

// Lock acquires the row latch.
func (r *Row) Lock() { r.mu.Lock() }

// Unlock releases the row latch.
func (r *Row) Unlock() { r.mu.Unlock() }

// Store owns a segment.
type Store struct{ seg segment }

// LockSegment briefly acquires the store's segment latch; its exported fact
// says so.
func (s *Store) LockSegment() {
	s.seg.mu.Lock()
	s.seg.mu.Unlock()
}

// UnderPrimary runs fn with the table's primary latch held.
func UnderPrimary(t *Table, fn func()) {
	t.primary.Lock()
	fn()
	t.primary.Unlock()
}
