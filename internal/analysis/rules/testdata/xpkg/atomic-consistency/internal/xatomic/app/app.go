// Cross-package fixture, consumer side: the field is declared in lib, but
// the mixed atomic/plain accesses happen here — the rule keys facts off the
// field object, not the declaring file.
package app

import (
	"sync/atomic"

	"benchpress/internal/xatomic/lib"
)

func bump(c *lib.Counters) {
	atomic.AddInt64(&c.N, 1)
}

func read(c *lib.Counters) int64 {
	return c.N // want "accessed with sync/atomic elsewhere"
}
