// Cross-package fixture, provider side: a plain counter struct whose field
// identity crosses the package boundary.
package lib

// Counters is shared mutable state.
type Counters struct{ N int64 }
