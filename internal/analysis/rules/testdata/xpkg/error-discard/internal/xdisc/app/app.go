// Cross-package fixture, consumer side: the discarded methods live on a
// type imported from lib.
package app

import "benchpress/internal/xdisc/lib"

func bad(c *lib.Conn) {
	defer c.Commit() // want "silently discarded by defer"
}

func good(c *lib.Conn) error {
	if err := c.Exec("select 1"); err != nil {
		return err
	}
	return c.Commit()
}
