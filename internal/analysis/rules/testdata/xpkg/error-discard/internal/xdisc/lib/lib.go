// Cross-package fixture, provider side: a connection with error-returning
// database-surface methods.
package lib

// Conn is a transactional connection.
type Conn struct{}

// Commit settles the current transaction.
func (c *Conn) Commit() error { return nil }

// Exec runs one statement.
func (c *Conn) Exec(q string) error { return nil }
