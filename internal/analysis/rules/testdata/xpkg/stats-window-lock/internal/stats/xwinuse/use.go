// Cross-package fixture, consumer side: driving the window through its
// locking API from a sibling package produces no findings.
package xwinuse

import "benchpress/internal/stats/xwin"

// Sum folds values through a Window.
func Sum(ns []int64) int64 {
	var w xwin.Window
	for _, n := range ns {
		w.Add(n)
	}
	return w.Total()
}
