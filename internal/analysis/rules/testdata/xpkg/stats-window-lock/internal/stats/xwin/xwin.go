// Cross-package fixture, provider side: a guarded window struct inside the
// internal/stats scope.
package xwin

import "sync"

// Window accumulates totals under mu.
type Window struct {
	mu    sync.Mutex
	total int64
}

// Add accumulates under the lock.
func (w *Window) Add(n int64) {
	w.mu.Lock()
	w.total += n
	w.mu.Unlock()
}

// Total reads the guarded field without the lock.
func (w *Window) Total() int64 {
	return w.total // want "outside the lock region"
}
