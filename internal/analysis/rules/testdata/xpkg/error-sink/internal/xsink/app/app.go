// Cross-package fixture, consumer side: discarding Sync's error loses a
// flush failure from the other package.
package app

import "benchpress/internal/xsink/wal"

func bad(l *wal.Log) {
	wal.Sync(l) // want "forwards a database error"
}

func badDefer(l *wal.Log) {
	defer wal.Sync(l) // want "discarded by defer"
}

func good(l *wal.Log) error {
	return wal.Sync(l)
}

func goodExplicit(l *wal.Log) {
	_ = wal.Sync(l)
}
