// Cross-package fixture, provider side: Sync forwards the log's Flush error
// and therefore carries the errsink.wraps fact.
package wal

// Log is a write-ahead log.
type Log struct{}

// Flush forces buffered records to stable storage.
func (l *Log) Flush() error { return nil }

// Sync flushes the log, forwarding the flush error to the caller.
func Sync(l *Log) error {
	if err := l.Flush(); err != nil {
		return err
	}
	return nil
}
