// Cross-package fixture: the same import is legal outside
// internal/benchmarks/.
package xboundok

import "benchpress/internal/sqldb"

// Engine is allowed here: this package is engine-side, not a benchmark.
type Engine = sqldb.Engine
