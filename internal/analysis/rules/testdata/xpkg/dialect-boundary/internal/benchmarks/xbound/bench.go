// Cross-package fixture: a benchmark package reaching into the engine
// internals it must not import.
package xbound

import "benchpress/internal/sqldb" // want "imports engine internals"

// Engine leaks the embedded engine into a benchmark.
type Engine = sqldb.Engine
