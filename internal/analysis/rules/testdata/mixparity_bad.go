// Package fixture exercises the mix-parity rule: the DefaultMix literal is
// not parallel to the Procedures literal.
package fixture

// Procedure is a local stand-in for core.Procedure; the rule matches the
// Benchmark method shape, not the element type.
type Procedure struct{ Name string }

// Bench declares two procedures but three weights.
type Bench struct{}

// Procedures lists the transaction types.
func (b *Bench) Procedures() []Procedure {
	return []Procedure{{Name: "read"}, {Name: "update"}}
}

// DefaultMix has one weight too many.
func (b *Bench) DefaultMix() []float64 {
	return []float64{50, 30, 20} // want "3 weights but Procedures has 2"
}
