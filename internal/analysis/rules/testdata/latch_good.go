// Fixture: true negatives for the latch-order rule — the documented order,
// sequential (released) acquisitions, deferred unlocks, ordinal same-class
// nesting for secondaries and rows, and helpers called at a legal rank.
package fixture

import "sync"

type Latched struct{ sync.RWMutex }

type table struct {
	primary   Latched
	secondary Latched
}

type segment struct{ mu sync.Mutex }

type Row struct{ mu sync.Mutex }

func (r *Row) Lock()   { r.mu.Lock() }
func (r *Row) Unlock() { r.mu.Unlock() }

func goodFullOrder(t *table, seg *segment, r *Row) {
	t.primary.Lock()
	t.secondary.Lock()
	seg.mu.Lock()
	r.Lock()
	r.Unlock()
	seg.mu.Unlock()
	t.secondary.Unlock()
	t.primary.Unlock()
}

func goodDeferred(t *table) {
	t.primary.RLock()
	defer t.primary.RUnlock()
	t.secondary.RLock()
	t.secondary.RUnlock()
}

func goodSequential(t *table, seg *segment) {
	seg.mu.Lock()
	seg.mu.Unlock()
	t.primary.Lock()
	t.primary.Unlock()
}

// Rows nest in ordinal order by contract; same-class nesting is legal.
func goodRowPair(r1, r2 *Row) {
	r1.Lock()
	r2.Lock()
	r2.Unlock()
	r1.Unlock()
}

func lockSegment2(seg *segment) {
	seg.mu.Lock()
	seg.mu.Unlock()
}

func goodCallUnderPrimary(t *table, seg *segment) {
	t.primary.Lock()
	lockSegment2(seg)
	t.primary.Unlock()
}

func run2(fn func()) { fn() }

func goodClosureUnderPrimary(t *table, seg *segment) {
	t.primary.Lock()
	run2(func() { lockSegment2(seg) })
	t.primary.Unlock()
}
