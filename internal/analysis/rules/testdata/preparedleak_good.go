// Fixture: true negatives for the prepared-stmt-leak rule — every prepared
// statement is closed, returned, or stored in a field.
package fixture

type pconn struct{}

func (c *pconn) Prepare(sql string) (*pstmt, error) { return &pstmt{}, nil }

type pstmt struct{}

func (s *pstmt) Exec(args ...any) error { return nil }
func (s *pstmt) Close()                 {}

func closedWithDefer(c *pconn) error {
	st, err := c.Prepare("SELECT 1")
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Exec()
}

func closedDirectly(c *pconn) error {
	st, err := c.Prepare("SELECT 1")
	if err != nil {
		return err
	}
	if err := st.Exec(); err != nil {
		st.Close()
		return err
	}
	st.Close()
	return nil
}

// returnedToCaller hands ownership out; the caller settles it.
func returnedToCaller(c *pconn) (*pstmt, error) {
	return c.Prepare("SELECT 1")
}

type worker struct {
	stmt *pstmt
}

// storedInField outlives the function; the worker's teardown settles it.
func (w *worker) storedInField(c *pconn) error {
	var err error
	w.stmt, err = c.Prepare("SELECT 1")
	return err
}

// errorOnlyPrepare mimics core.Prepare: no closable result, so the rule
// must stay quiet.
type loader struct{}

func (l *loader) Prepare(sql string) error { return nil }

func usesLoader(l *loader) error {
	return l.Prepare("anything")
}
