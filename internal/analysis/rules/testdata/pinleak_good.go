// Fixture: true negatives for the pin-leak rule — unpinned frames, release
// through a helper's exported fact, an exempt Pin wrapper, and a hand-off of
// a still-pinned frame to the caller.
package fixture

type gframe struct{}

func (f *gframe) touch() error { return nil }

type gpool struct{}

func (p *gpool) Pin(id uint32) (*gframe, error)    { return nil, nil }
func (p *gpool) PinNew(id uint32) (*gframe, error) { return nil, nil }
func (p *gpool) Unpin(f *gframe, dirty bool)       {}

func unpinned(p *gpool) error {
	f, err := p.Pin(1)
	if err != nil {
		return err
	}
	defer p.Unpin(f, false)
	return f.touch()
}

// release unpins whatever frame it is given; callers discharge their pin
// obligation through its exported fact.
func release(p *gpool, f *gframe) { p.Unpin(f, true) }

func helperUnpinned(p *gpool) error {
	f, err := p.PinNew(2)
	if err != nil {
		return err
	}
	if err := f.touch(); err != nil {
		release(p, f)
		return err
	}
	release(p, f)
	return nil
}

// pinnedHandOff returns the frame still pinned: the obligation moves to the
// callers through the exported opens fact. Under a per-function rule this
// would need a //lint:ignore.
func pinnedHandOff(p *gpool) (*gframe, error) {
	f, err := p.Pin(3)
	if err != nil {
		return nil, err
	}
	return f, nil
}

type wrapped struct{ p gpool }

// Pin is a thin wrapper over the pool: its caller owns the pin.
func (w *wrapped) Pin(id uint32) (*gframe, error) { return w.p.Pin(id) }

// Unpin forwards the release to the pool.
func (w *wrapped) Unpin(f *gframe, dirty bool) { w.p.Unpin(f, dirty) }
