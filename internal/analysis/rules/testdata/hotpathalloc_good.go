// Fixture: the same batch-loop shapes written with the presized-buffer and
// pointer-shaped idioms the rule exists to enforce — nothing may fire.
package exec

// rowBatch stands in for the storage batch scratch.
type rowBatch struct {
	ids [64]int64
	n   int
}

type table struct{}

func (t *table) ScanBatch(g int, cursor int64, b *rowBatch) int64 { return -1 }

func (t *table) AppendPrimaryRange(buf []int64, from, to int64) []int64 { return buf }

// scanLoop presizes its output and passes a pointer to the interface sink,
// so neither allocation pattern appears.
func scanLoop(t *table) []int64 {
	var b rowBatch
	out := make([]int64, 0, 256)
	for cursor := int64(0); cursor >= 0; {
		cursor = t.ScanBatch(0, cursor, &b)
		for i := 0; i < b.n; i++ {
			out = append(out, emitRow(&b.ids[i]))
			sink(&b.ids[i]) // pointers fit the interface word: no box
		}
	}
	return out
}

// growBuf appends into a caller-owned buffer — the reuse idiom the batch
// APIs are built on. Appending to a parameter never fires.
func growBuf(t *table, buf []int64) []int64 {
	buf = t.AppendPrimaryRange(buf[:0], 1, 100)
	buf = append(buf, 7)
	return buf
}

// emitRow reads through the pointer; no uncapped local, no boxing.
func emitRow(id *int64) int64 { return *id }

// sink takes the already-pointer-shaped value.
func sink(v any) { _ = v }

// coldAccumulate is NOT reachable from any batch loop: its uncapped append
// is fine, and must stay quiet.
func coldAccumulate(n int) []int64 {
	var out []int64
	for i := 0; i < n; i++ {
		out = append(out, int64(i))
	}
	return out
}
