// Fixture: true positives for the bare-goroutine rule — launches with no
// completion protocol.
package fixture

func work() {}

func launches() {
	go work()   // want "unsupervised goroutine"
	go func() { // want "unsupervised goroutine"
		work()
	}()
}
