// Fixture: true positives for the error-discard rule — database-surface
// errors dropped by expression statements, defer, and go.
package fixture

type dconn struct{}

func (c *dconn) Exec(q string) (int, error) { return 0, nil }
func (c *dconn) Rollback() error            { return nil }
func (c *dconn) Close() error               { return nil }

func discarding(c *dconn) {
	c.Exec("DELETE FROM t") // want "silently discarded"
	c.Rollback()            // want "silently discarded"
	defer c.Close()         // want "discarded by defer"
	go c.Rollback()         // want "discarded by go statement"
}
