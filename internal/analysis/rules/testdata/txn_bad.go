// Fixture: true positives for the txn-hygiene rule — transactions opened
// and never settled: on the connection itself, through a manager-returned
// transaction value, and discarded outright.
package fixture

type conn struct{}

func (c *conn) Begin() error         { return nil }
func (c *conn) BeginReadOnly() error { return nil }
func (c *conn) Commit() error        { return nil }
func (c *conn) Rollback() error      { return nil }
func (c *conn) exec() error          { return nil }

func leaky(c *conn) error {
	if err := c.Begin(); err != nil { // want "never committed or rolled back"
		return err
	}
	return c.exec()
}

func leakyReadOnly(c *conn) error {
	if err := c.BeginReadOnly(); err != nil { // want "never committed or rolled back"
		return err
	}
	return c.exec()
}

type mtxn struct{}

func (t *mtxn) Commit() error { return nil }
func (t *mtxn) Abort()        {}
func (t *mtxn) exec() error   { return nil }

type manager struct{}

func (m *manager) TryBegin() (*mtxn, error) { return nil, nil }

func leakyManager(m *manager) error {
	t, err := m.TryBegin() // want "never committed or rolled back"
	if err != nil {
		return err
	}
	return t.exec()
}

func discards(m *manager) {
	m.TryBegin() // want "immediately discarded"
}

func discardsBlank(m *manager) error {
	_, err := m.TryBegin() // want "immediately discarded"
	return err
}
