// Fixture: true positives for the txn-hygiene rule — transactions opened
// and never settled in the same function.
package fixture

type conn struct{}

func (c *conn) Begin() error         { return nil }
func (c *conn) BeginReadOnly() error { return nil }
func (c *conn) Commit() error        { return nil }
func (c *conn) Rollback() error      { return nil }
func (c *conn) exec() error          { return nil }

func leaky(c *conn) error {
	if err := c.Begin(); err != nil { // want "never committed or rolled back"
		return err
	}
	return c.exec()
}

func leakyReadOnly(c *conn) error {
	if err := c.BeginReadOnly(); err != nil { // want "never committed or rolled back"
		return err
	}
	return c.exec()
}
