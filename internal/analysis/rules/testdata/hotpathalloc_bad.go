// Fixture: exec-style batch loops whose helpers allocate per row. Loaded
// under benchpress/internal/sqldb/exec, so the scan functions below root the
// hot set via their storage batch API calls.
package exec

// rowBatch stands in for the storage batch scratch.
type rowBatch struct {
	ids [64]int64
	n   int
}

// table stands in for storage.Table: the method names are what make
// scanLoop a batch-loop root.
type table struct{}

func (t *table) ScanBatch(g int, cursor int64, b *rowBatch) int64 { return -1 }

func (t *table) AppendPrimaryRange(buf []int64, from, to int64) []int64 { return buf }

// scanLoop is a batch-loop root: it drives ScanBatch and hands every row to
// the per-row helpers.
func scanLoop(t *table) []int64 {
	var b rowBatch
	var out []int64
	for cursor := int64(0); cursor >= 0; {
		cursor = t.ScanBatch(0, cursor, &b)
		for i := 0; i < b.n; i++ {
			out = append(out, emitRow(b.ids[i])) // want "append grows out"
			sink(b.ids[i])                       // want "boxes int64"
		}
	}
	return out
}

// rangeLoop is a second root via the range batch API.
func rangeLoop(t *table) []int64 {
	buf := make([]int64, 0, 64)
	buf = t.AppendPrimaryRange(buf, 1, 100)
	rows := []int64{}
	for _, id := range buf {
		rows = append(rows, emitRow(id)) // want "append grows rows"
	}
	return rows
}

// emitRow is hot because both loops call it: its uncapped growth fires even
// though the declaration looks innocent in isolation.
func emitRow(id int64) int64 {
	vals := make([]int64, 0)
	vals = append(vals, id) // want "append grows vals"
	return vals[0]
}

// sink boxes its argument into an empty interface per call.
func sink(v any) { _ = v }
