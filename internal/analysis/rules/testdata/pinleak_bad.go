// Fixture: true positives for the pin-leak rule — frames pinned and never
// unpinned: held to the end of the function, pinned fresh, and discarded
// outright.
package fixture

type pframe struct{}

func (f *pframe) touch() error { return nil }

type ppool struct{}

func (p *ppool) Pin(id uint32) (*pframe, error)    { return nil, nil }
func (p *ppool) PinNew(id uint32) (*pframe, error) { return nil, nil }
func (p *ppool) Unpin(f *pframe, dirty bool)       {}

func leakyPin(p *ppool) error {
	f, err := p.Pin(7) // want "never unpinned"
	if err != nil {
		return err
	}
	return f.touch()
}

func leakyPinNew(p *ppool) error {
	f, err := p.PinNew(8) // want "never unpinned"
	if err != nil {
		return err
	}
	return f.touch()
}

func discards(p *ppool) {
	p.Pin(9) // want "immediately discarded"
}

func discardsBlank(p *ppool) error {
	_, err := p.Pin(10) // want "immediately discarded"
	return err
}
