// Fixture: true negatives for the txn-hygiene rule — settled transactions,
// an exempt Begin wrapper, settlement through a helper's exported fact, and
// hand-offs the interprocedural rule tracks without suppressions.
package fixture

type session struct{}

func (s *session) begin() error    { return nil }
func (s *session) Commit() error   { return nil }
func (s *session) Rollback() error { return nil }
func (s *session) exec() error     { return nil }

type tconn struct{ s session }

// Begin is a thin wrapper: its caller owns the transaction.
func (c *tconn) Begin() error         { return c.s.begin() }
func (c *tconn) BeginReadOnly() error { return c.s.begin() }
func (c *tconn) Commit() error        { return c.s.Commit() }
func (c *tconn) Rollback() error      { return c.s.Rollback() }

func settled(c *tconn) error {
	if err := c.Begin(); err != nil {
		return err
	}
	if err := c.s.exec(); err != nil {
		_ = c.Rollback()
		return err
	}
	return c.Commit()
}

// finish settles whatever transaction its receiver carries; callers
// discharge their obligation through its exported fact.
func (c *tconn) finish(commit bool) error {
	if commit {
		return c.Commit()
	}
	return c.Rollback()
}

func helperSettled(c *tconn) error {
	if err := c.Begin(); err != nil {
		return err
	}
	return c.finish(true)
}

// handedOff returns the connection with its transaction open: the
// obligation moves to the callers through the exported opens fact. Under
// the v1 per-function rule this needed a //lint:ignore.
func handedOff(c *tconn) (*tconn, error) {
	if err := c.Begin(); err != nil {
		return nil, err
	}
	return c, nil
}

type mtxn2 struct{}

func (t *mtxn2) Commit() error { return nil }
func (t *mtxn2) Abort()        {}

type manager2 struct{}

func (m *manager2) TryBegin() (*mtxn2, error) { return nil, nil }

func managerSettled(m *manager2) error {
	t, err := m.TryBegin()
	if err != nil {
		return err
	}
	defer t.Abort()
	return nil
}
