// Fixture: true negatives for the txn-hygiene rule — settled transactions,
// an exempt Begin wrapper, and a reasoned suppression.
package fixture

type session struct{}

func (s *session) begin() error    { return nil }
func (s *session) Commit() error   { return nil }
func (s *session) Rollback() error { return nil }
func (s *session) exec() error     { return nil }

type tconn struct{ s session }

// Begin is a thin wrapper: its caller owns the transaction.
func (c *tconn) Begin() error         { return c.s.begin() }
func (c *tconn) BeginReadOnly() error { return c.s.begin() }
func (c *tconn) Commit() error        { return c.s.Commit() }
func (c *tconn) Rollback() error      { return c.s.Rollback() }

func settled(c *tconn) error {
	if err := c.Begin(); err != nil {
		return err
	}
	if err := c.s.exec(); err != nil {
		_ = c.Rollback()
		return err
	}
	return c.Commit()
}

func handedOff(c *tconn) (*tconn, error) {
	//lint:ignore txn-hygiene the caller settles this transaction via settled()
	if err := c.Begin(); err != nil {
		return nil, err
	}
	return c, nil
}
