// Fixture: true positives for the atomic-consistency rule. Loaded by the
// test harness as package benchpress/internal/fixture.
package fixture

import "sync/atomic"

type counter struct {
	n    int64
	hits atomic.Int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
	c.hits.Add(1)
}

func (c *counter) bad() int64 {
	c.n++       // want "plain access races"
	v := c.hits // want "plain value"
	_ = v
	return c.n // want "plain access races"
}
