// Fixture: true negative for the dialect-boundary rule — a benchmark
// package touching the database only through the driver surface.
package fixture

import "benchpress/internal/dbdriver"

var _ dbdriver.Conn
