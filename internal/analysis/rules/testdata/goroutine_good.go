// Fixture: true negatives for the bare-goroutine rule — the three accepted
// supervision protocols plus a reasoned suppression.
package fixture

import "sync"

func task() {}

func supervised() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		task()
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		task()
	}()

	results := make(chan int, 1)
	go func() {
		results <- 1
	}()

	//lint:ignore bare-goroutine completion is observable through a side channel the rule cannot see
	go task()

	wg.Wait()
	<-done
	<-results
}
