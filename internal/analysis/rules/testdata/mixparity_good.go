// Package fixture holds mix-parity negatives: parallel literals and shapes
// the rule must not guess at.
package fixture

// Procedure is a local stand-in for core.Procedure.
type Procedure struct{ Name string }

// Bench has matching lengths.
type Bench struct{}

// Procedures lists the transaction types.
func (b *Bench) Procedures() []Procedure {
	return []Procedure{{Name: "read"}, {Name: "update"}}
}

// DefaultMix is parallel to Procedures.
func (b *Bench) DefaultMix() []float64 {
	return []float64{80, 20}
}

// Dynamic computes its mix; the rule skips non-literal bodies.
type Dynamic struct{ n int }

// Procedures lists three types.
func (d *Dynamic) Procedures() []Procedure {
	return []Procedure{{Name: "a"}, {Name: "b"}, {Name: "c"}}
}

// DefaultMix builds the slice at run time.
func (d *Dynamic) DefaultMix() []float64 {
	mix := make([]float64, d.n)
	for i := range mix {
		mix[i] = 1
	}
	return mix
}

// MixOnly has no Procedures method at all; nothing to compare against.
type MixOnly struct{}

// DefaultMix alone is not judged.
func (m *MixOnly) DefaultMix() []float64 {
	return []float64{1, 2, 3, 4}
}
