// Package fixture exercises the phase-order rule with misconfigured phase
// literals passed to core.NewManager.
package fixture

import (
	"time"

	"benchpress/internal/core"
)

func badPhases() *core.Manager {
	return core.NewManager(nil, nil, []core.Phase{
		{Duration: 0, Rate: 50},            // want "positive duration"
		{Duration: -time.Second, Rate: 50}, // want "positive duration"
		{Duration: time.Second, Rate: -1},  // want "negative rate"
		{Rate: 25},                         // want "omits Duration"
		{0, -5, nil, false, 0},             // want "positive duration" // want "negative rate"
	}, core.Options{})
}
