// Fixture: true positives for the error-sink rule — helpers that forward a
// database-surface error get discarded with a bare statement, defer, or go.
package fixture

import "fmt"

type db struct{}

func (d *db) Exec(q string) error { return nil }
func (d *db) Commit() error       { return nil }

// closeAll forwards the commit error directly.
func closeAll(d *db) error {
	return d.Commit()
}

// flushAll forwards a wrapped exec error through a tainted local.
func flushAll(d *db) error {
	err := d.Exec("flush")
	if err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	return nil
}

func bad(d *db) {
	closeAll(d) // want "forwards a database error"
}

func badDefer(d *db) {
	defer closeAll(d) // want "discarded by defer"
}

func badGo(d *db) {
	go flushAll(d) // want "discarded by go statement"
}
