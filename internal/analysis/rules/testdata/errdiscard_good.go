// Fixture: true negatives for the error-discard rule — handled errors,
// explicit blank assignments, and a reasoned suppression. Calls whose
// results carry no error are ignored by the rule.
package fixture

type gconn struct{}

func (c *gconn) Exec(q string) (int, error) { return 0, nil }
func (c *gconn) Rollback() error            { return nil }
func (c *gconn) Close() error               { return nil }
func (c *gconn) Reset()                     {}

func handled(c *gconn) error {
	if _, err := c.Exec("DELETE FROM t"); err != nil {
		_ = c.Rollback()
		return err
	}
	defer func() { _ = c.Close() }()
	c.Reset()
	return nil
}

func waived(c *gconn) {
	//lint:ignore error-discard fixture demonstrating a reasoned suppression
	c.Rollback()
}
