// Package fixture is the clean counterpart for the stats-window-lock rule:
// every guarded access happens inside the owning lock region.
package fixture

import (
	"sync"
	"sync/atomic"
)

type window struct{ n int }

type collector struct {
	name string // before any mutex: unguarded

	mu      sync.Mutex
	liveIdx atomic.Int64 // atomic value types are lock-free by design
	base    int
	history []window

	subMu sync.Mutex
	subs  map[int]chan struct{}
}

// newCollector shows constructors are out of scope: plain functions own the
// struct exclusively before it escapes.
func newCollector() *collector {
	c := &collector{subs: map[int]chan struct{}{}}
	c.base = 1
	c.history = nil
	return c
}

// Snapshot reads rotation state under a deferred unlock.
func (c *collector) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base + len(c.history)
}

// Rotate uses an explicit unlock and only touches guarded state before it.
func (c *collector) Rotate() {
	c.liveIdx.Add(1)
	c.mu.Lock()
	c.base++
	c.history = append(c.history, window{n: c.base})
	c.mu.Unlock()
	_ = c.name
}

// advance is an internal helper invoked under the lock. Callers hold c.mu.
func (c *collector) advance(idx int) {
	c.base = idx
	c.history = c.history[:0]
}

// Subscribe guards the subscriber map with its own mutex.
func (c *collector) Subscribe(id int, ch chan struct{}) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.subs[id] = ch
}
