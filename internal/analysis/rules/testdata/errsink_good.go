// Fixture: true negatives for the error-sink rule — handled or explicitly
// dropped helper errors, and discards of helpers that carry no sink error.
package fixture

import "errors"

type db struct{}

func (d *db) Exec(q string) error { return nil }
func (d *db) Commit() error       { return nil }

func closeAll(d *db) error {
	return d.Commit()
}

func goodHandled(d *db) error {
	if err := closeAll(d); err != nil {
		return err
	}
	return nil
}

func goodExplicit(d *db) {
	_ = closeAll(d)
}

// plain returns an error of its own making — no sink involved, discarding
// it is another rule's business (or nobody's).
func plain() error { return errors.New("benign") }

func goodPlainDiscard() {
	plain()
}
