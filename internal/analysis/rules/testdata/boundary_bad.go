// Fixture: true positives for the dialect-boundary rule. Loaded as package
// benchpress/internal/benchmarks/fixture, where engine internals are
// off-limits.
package fixture

import (
	"benchpress/internal/sqldb" // want "engine internals"

	"benchpress/internal/sqldb/txn" // want "engine internals"
)

var _ *sqldb.Engine

var _ txn.Mode
