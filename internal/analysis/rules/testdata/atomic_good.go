// Fixture: true negatives for the atomic-consistency rule — every access
// to the tracked fields goes through sync/atomic.
package fixture

import "sync/atomic"

type gauge struct {
	n    int64
	hits atomic.Int64
}

func (g *gauge) incr() {
	atomic.AddInt64(&g.n, 1)
	g.hits.Add(1)
}

func (g *gauge) read() int64 {
	return atomic.LoadInt64(&g.n) + g.hits.Load()
}

func (g *gauge) swap(v int64) int64 {
	g.hits.Store(v)
	return atomic.SwapInt64(&g.n, v)
}
