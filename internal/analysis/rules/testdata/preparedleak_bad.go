// Fixture: true positives for the prepared-stmt-leak rule — statements
// prepared and never closed, returned, or stored.
package fixture

type pconn struct{}

func (c *pconn) Prepare(sql string) (*pstmt, error) { return &pstmt{}, nil }

type pstmt struct{}

func (s *pstmt) Exec(args ...any) error { return nil }
func (s *pstmt) Close()                 {}

func leakOnce(c *pconn) error {
	st, err := c.Prepare("SELECT 1") // want "never closed"
	if err != nil {
		return err
	}
	return st.Exec()
}

func leakInLoop(c *pconn) error {
	for i := 0; i < 10; i++ {
		st, err := c.Prepare("UPDATE t SET v = ?") // want "never closed"
		if err != nil {
			return err
		}
		if err := st.Exec(i); err != nil {
			return err
		}
	}
	return nil
}
