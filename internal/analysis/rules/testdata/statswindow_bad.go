// Package fixture exercises the stats-window-lock rule: accesses of
// mutex-guarded window state outside the owning lock region.
package fixture

import "sync"

type window struct{ n int }

type collector struct {
	name    string // before any mutex: unguarded
	mu      sync.Mutex
	base    int
	history []window

	subMu sync.Mutex
	subs  map[int]chan struct{}
}

// Snapshot reads rotation state without taking the lock.
func (c *collector) Snapshot() int {
	return c.base + len(c.history) // want "field base is guarded by mu" // want "field history is guarded by mu"
}

// Rotate takes the lock but keeps touching state after releasing it.
func (c *collector) Rotate() {
	c.mu.Lock()
	c.base++
	c.mu.Unlock()
	c.history = append(c.history, window{n: c.base}) // want "field history is guarded by mu" // want "field base is guarded by mu"
}

// WrongMutex holds subMu while touching mu-guarded state.
func (c *collector) WrongMutex() {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	c.base = 0 // want "field base is guarded by mu"
	for s := range c.subs {
		_ = s
	}
}
