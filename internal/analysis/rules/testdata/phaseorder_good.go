// Package fixture holds phase-order negatives: well-formed literals,
// run-time values, and phase slices the rule cannot see into.
package fixture

import (
	"time"

	"benchpress/internal/core"
)

func goodPhases(d time.Duration, r float64) *core.Manager {
	ramp := []core.Phase{{Duration: time.Minute, Rate: 10}}
	if core.NewManager(nil, nil, ramp, core.Options{}) == nil {
		return nil // slices built elsewhere are not judged at the call
	}
	return core.NewManager(nil, nil, []core.Phase{
		{Duration: time.Second, Rate: 100},
		{Duration: d, Rate: r}, // run-time values are skipped, not guessed
		{Duration: 2 * time.Second, Rate: 0, Exponential: true},
		{3 * time.Second, 5, nil, false, 0},
	}, core.Options{})
}
