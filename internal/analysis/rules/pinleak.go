package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/callgraph"
)

// Fact names exported by PinLeak. Settles uses the unified parameter bit
// layout ("calling this function unpins the frame rooted at parameter i");
// opens uses result indices ("result i of this function carries a pinned
// frame the caller must unpin").
const (
	factPinSettles = "pin.settles"
	factPinOpens   = "pin.opens"
)

// pinBeginNames are the methods that pin a frame; pinSettleNames the ones
// that release it. Unlike transactions, the settle method takes the pinned
// frame as its first argument rather than being invoked on it.
var (
	pinBeginNames  = map[string]bool{"Pin": true, "PinNew": true}
	pinSettleNames = map[string]bool{"Unpin": true}
)

// PinLeak enforces that every buffer-pool frame pinned by Pin/PinNew on a
// pool-like receiver (a type with Unpin and Pin or PinNew) is released
// somewhere the analysis can see: the pinning function must either pass the
// frame to Unpin locally, call a helper whose exported fact says it unpins
// the same root, or visibly hand the frame off (return it, store it into a
// struct, send it away).
//
// A leaked pin is worse than a leaked transaction: a pinned frame can never
// be evicted, so one leak per request eventually wedges the pool and every
// Pin blocks with "all frames pinned". Hand-offs are not free passes: a
// function that returns a pinned frame exports an "opens" fact, so the
// obligation reappears at every call site and follows the frame across
// package boundaries.
type PinLeak struct{}

// Name implements analysis.Rule.
func (PinLeak) Name() string { return "pin-leak" }

// Doc implements analysis.Rule.
func (PinLeak) Doc() string {
	return "every frame pinned by Pin/PinNew must reach an Unpin in this function, an unpinning callee, or the caller it escapes to"
}

// CheckProgram implements analysis.ProgramRule. Summaries are iterated to a
// fixpoint first (facts grow monotonically), then every function is checked
// against the final facts.
func (PinLeak) CheckProgram(pass *analysis.ProgramPass) {
	prog := pass.Prog
	for {
		changed := false
		for _, n := range prog.Graph.Nodes() {
			s := scanPinFunc(prog, n)
			if prog.Facts.ExportBits(n.Func, factPinSettles, s.settleBits()) {
				changed = true
			}
			if prog.Facts.ExportBits(n.Func, factPinOpens, s.opens) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range prog.Graph.Nodes() {
		scanPinFunc(prog, n).report(pass)
	}
}

// pinObligation is one frame pinned in a function: where, the call that
// pinned it, and the variable it is rooted at (nil when the pinned frame is
// discarded on the spot).
type pinObligation struct {
	pos  token.Pos
	root types.Object
	what string
}

// pinReturn records that a return statement hands result index idx the value
// rooted at obj.
type pinReturn struct {
	idx int
	obj types.Object
}

// pinScan is the per-function summary of one fixpoint iteration.
type pinScan struct {
	prog *analysis.Program
	node *callgraph.Node
	info *types.Info

	params      []types.Object
	settleRoots map[types.Object]bool
	coarse      bool // an Unpin is called somewhere (same-root fallback)
	escaped     map[types.Object]bool
	opens       uint64
	obligations []pinObligation
}

// scanPinFunc walks one declaration (function literals included — an Unpin
// inside a deferred closure still releases) and computes its pin summary
// under the current facts.
func scanPinFunc(prog *analysis.Program, n *callgraph.Node) *pinScan {
	s := &pinScan{
		prog:        prog,
		node:        n,
		info:        n.Info,
		params:      paramObjs(n.Info, n.Decl),
		settleRoots: map[types.Object]bool{},
		escaped:     map[types.Object]bool{},
	}
	var returns []pinReturn
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			s.visitCall(x)
		case *ast.AssignStmt:
			s.visitAssign(x)
		case *ast.ValueSpec:
			s.visitValueSpec(x)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				for range s.pinnedResults(call) {
					s.obligations = append(s.obligations,
						pinObligation{pos: call.Pos(), what: calleeName(call)})
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, s.visitReturn(x)...)
		case *ast.CompositeLit:
			// Anything folded into a composite literal escapes linear sight.
			for _, elt := range x.Elts {
				ast.Inspect(elt, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if o := s.info.Uses[id]; o != nil {
							s.escaped[o] = true
						}
					}
					return true
				})
			}
		case *ast.SendStmt:
			if o := identObj(s.info, x.Value); o != nil {
				s.escaped[o] = true
			}
		}
		return true
	})
	// A return of an obligation root re-exports the obligation to callers.
	roots := map[types.Object]bool{}
	for _, ob := range s.obligations {
		if ob.root != nil {
			roots[ob.root] = true
		}
	}
	for _, r := range returns {
		if roots[r.obj] && r.idx < 64 {
			s.opens |= 1 << r.idx
		}
	}
	return s
}

// isPoolType reports whether t looks like a buffer pool: it can Unpin and it
// can Pin or PinNew.
func isPoolType(t types.Type) bool {
	return hasMethod(t, nil, "Unpin") &&
		(hasMethod(t, nil, "Pin") || hasMethod(t, nil, "PinNew"))
}

// visitCall records unpins (direct and via callee facts), and the hand-off
// of roots into dynamic calls. Unpin takes the frame as an argument, so the
// settled roots come from the argument list, not the receiver.
func (s *pinScan) visitCall(call *ast.CallExpr) {
	name := calleeName(call)
	if pinSettleNames[name] {
		s.coarse = true
		for _, a := range call.Args {
			if o := rootObj(s.info, a); o != nil {
				s.settleRoots[o] = true
			}
		}
	}
	resolved := s.prog.Graph.Resolve(call)
	for _, callee := range resolved {
		eachBit(s.prog.Facts.Bits(callee, factPinSettles), func(bit int) {
			if arg := argForBit(call, callee, bit); arg != nil {
				if o := rootObj(s.info, arg); o != nil {
					s.settleRoots[o] = true
				}
			}
		})
	}
	if len(resolved) == 0 {
		// Dynamic call (function value, conversion, builtin): a frame passed
		// into it is out of linear sight — hand-off, not a leak.
		for _, a := range call.Args {
			if o := identObj(s.info, a); o != nil {
				s.escaped[o] = true
			}
		}
	}
}

// pinnedResults returns the result indices of call that carry a pinned
// frame: every non-error result of a Pin-family call on a pool-like
// receiver, plus every callee "opens" fact.
func (s *pinScan) pinnedResults(call *ast.CallExpr) []int {
	seen := map[int]bool{}
	var idx []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	name := calleeName(call)
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if pinBeginNames[name] && isSel && isPoolType(s.info.TypeOf(sel.X)) {
		if sig, ok := s.info.TypeOf(call.Fun).(*types.Signature); ok {
			res := sig.Results()
			for i := 0; i < res.Len(); i++ {
				if !types.Identical(res.At(i).Type(), errorType) {
					add(i)
				}
			}
		}
	}
	for _, callee := range s.prog.Graph.Resolve(call) {
		eachBit(s.prog.Facts.Bits(callee, factPinOpens), add)
	}
	sort.Ints(idx)
	return idx
}

// visitAssign handles both sides of an assignment: storing a tracked root
// into differently-rooted memory is an escape; a call on the right-hand side
// that pins a frame creates an obligation on the left-hand side.
func (s *pinScan) visitAssign(a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for j, rhs := range a.Rhs {
			o := identObj(s.info, rhs)
			if o == nil {
				continue
			}
			// Assigning to blank drops the value — that is not a hand-off,
			// the obligation stays live.
			if id, ok := ast.Unparen(a.Lhs[j]).(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if rootObj(s.info, a.Lhs[j]) != o {
				s.escaped[o] = true
			}
		}
	}
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			for _, i := range s.pinnedResults(call) {
				s.addLhsObligation(call, a.Lhs, i)
			}
		}
		return
	}
	for j, rhs := range a.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			for _, i := range s.pinnedResults(call) {
				if i == 0 {
					s.addLhsObligation(call, a.Lhs[j:j+1], 0)
				}
			}
		}
	}
}

// visitValueSpec handles `var f = pool.Pin(id)` declarations.
func (s *pinScan) visitValueSpec(spec *ast.ValueSpec) {
	if len(spec.Values) != 1 {
		return
	}
	call, ok := ast.Unparen(spec.Values[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	for _, i := range s.pinnedResults(call) {
		ob := pinObligation{pos: call.Pos(), what: calleeName(call)}
		if i < len(spec.Names) && spec.Names[i].Name != "_" {
			ob.root = s.info.Defs[spec.Names[i]]
		}
		s.obligations = append(s.obligations, ob)
	}
}

// addLhsObligation attaches the obligation for result index i of call to the
// assignment target. A blank target is an immediate discard; a field or
// element target moves the frame into memory (escape), which silences the
// local obligation rather than creating an untrackable one.
func (s *pinScan) addLhsObligation(call *ast.CallExpr, lhs []ast.Expr, i int) {
	ob := pinObligation{pos: call.Pos(), what: calleeName(call)}
	if i < len(lhs) {
		target := ast.Unparen(lhs[i])
		if id, ok := target.(*ast.Ident); ok {
			if id.Name != "_" {
				ob.root = rootObj(s.info, id)
			}
			s.obligations = append(s.obligations, ob)
			return
		}
		// Stored straight into a struct field, map, or slice: out of scope
		// for linear tracking.
		return
	}
	s.obligations = append(s.obligations, ob)
}

// visitReturn records hand-offs through return statements: returned roots
// (plain or folded into a composite literal) and forwarded callee opens.
func (s *pinScan) visitReturn(r *ast.ReturnStmt) []pinReturn {
	if len(r.Results) == 1 {
		if call, ok := ast.Unparen(r.Results[0]).(*ast.CallExpr); ok {
			// Forwarding a call's results re-exports its opens bits verbatim.
			for _, i := range s.pinnedResults(call) {
				if i < 64 {
					s.opens |= 1 << i
				}
			}
			return nil
		}
	}
	var out []pinReturn
	for j, e := range r.Results {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			for _, i := range s.pinnedResults(call) {
				if i == 0 && j < 64 {
					s.opens |= 1 << j
				}
			}
			continue
		}
		if o := identObj(s.info, e); o != nil {
			s.escaped[o] = true
			out = append(out, pinReturn{idx: j, obj: o})
			continue
		}
		// A composite literal in a return carries every root folded into it.
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if o := s.info.Uses[id]; o != nil {
					out = append(out, pinReturn{idx: j, obj: o})
				}
			}
			return true
		})
	}
	return out
}

// settleBits projects settled roots onto the function's own parameters for
// export.
func (s *pinScan) settleBits() uint64 {
	var bits uint64
	for i, o := range s.params {
		if o != nil && i < 64 && s.settleRoots[o] {
			bits |= 1 << i
		}
	}
	return bits
}

// report flags every obligation that is neither unpinned nor handed off.
// Functions that ARE the pin operation (a wrapper Pin forwarding to the
// pool's Pin) are exempt: their caller owns the pin.
func (s *pinScan) report(pass *analysis.ProgramPass) {
	if pinBeginNames[s.node.Decl.Name.Name] {
		return
	}
	for _, ob := range s.obligations {
		if ob.root == nil {
			pass.Report(ob.pos, "frame pinned by %s is immediately discarded", ob.what)
			continue
		}
		if s.coarse || s.settleRoots[ob.root] || s.escaped[ob.root] {
			continue
		}
		pass.Report(ob.pos,
			"frame pinned by %s is never unpinned in %s and does not escape to a caller",
			ob.what, s.node.Decl.Name.Name)
	}
}
