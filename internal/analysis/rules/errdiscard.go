package rules

import (
	"go/ast"
	"strings"

	"benchpress/internal/analysis"
)

// discardNames are the database-surface methods whose errors must never be
// dropped on the floor: a silently failed Commit or Exec corrupts every
// measurement downstream of it.
var discardNames = map[string]bool{
	"Exec": true, "Query": true, "QueryRow": true,
	"Commit": true, "Rollback": true, "Close": true,
	"Begin": true, "BeginReadOnly": true, "Flush": true,
}

// ErrorDiscard flags calls to Exec/Query/Commit/Rollback/Close (and
// friends) whose error result is implicitly discarded: a bare expression
// statement, a defer, or a go statement. Explicitly assigning the error to
// the blank identifier (`_ = conn.Rollback()`) is allowed — it documents a
// deliberate decision — and anything else requires a //lint:ignore with a
// reason. The rule is scoped to internal/ and cmd/; examples are exempt.
type ErrorDiscard struct{}

// Name implements analysis.Rule.
func (ErrorDiscard) Name() string { return "error-discard" }

// Doc implements analysis.Rule.
func (ErrorDiscard) Doc() string {
	return "no silently discarded errors from Exec/Query/Commit/Rollback/Close in internal/ and cmd/"
}

// Check implements analysis.Rule.
func (ErrorDiscard) Check(pass *analysis.Pass) {
	rel := pass.RelPath()
	if !strings.HasPrefix(rel, "internal/") && !strings.HasPrefix(rel, "cmd/") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch s := n.(type) {
			case *ast.ExprStmt:
				if c, ok := s.X.(*ast.CallExpr); ok {
					call, how = c, "discarded"
				}
			case *ast.DeferStmt:
				call, how = s.Call, "discarded by defer"
			case *ast.GoStmt:
				call, how = s.Call, "discarded by go statement"
			}
			if call == nil {
				return true
			}
			name := calleeName(call)
			if discardNames[name] && returnsError(info, call) {
				pass.Report(call.Pos(),
					"error returned by %s is silently %s; handle it or assign it to _ explicitly",
					name, how)
			}
			return true
		})
	}
}
