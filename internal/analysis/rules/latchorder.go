package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/callgraph"
)

// Latch classes, in the documented acquisition order of the storage layer
// (see internal/sqldb/storage): primary index latch before secondary index
// latches (ordinal order), before a segment's mu, before row latches.
const (
	latchPrimary = iota
	latchSecondary
	latchSegment
	latchRow
	latchClasses
)

// factLatchAcquires is the may-acquire bitset: "calling this function may
// acquire a latch of class i" (transitively, closures included).
const factLatchAcquires = "latch.acquires"

var latchClassName = [latchClasses]string{
	"primary index latch",
	"secondary index latch",
	"segment latch",
	"row latch",
}

// latchSingleton marks classes with a single instance per table, where
// acquiring while already holding the same class is a self-deadlock.
// Secondary and row latches exist per index/per row and may legally nest in
// ordinal order, so same-class nesting is allowed there.
var latchSingleton = [latchClasses]bool{latchPrimary: true, latchSegment: true}

// LatchOrder statically verifies the storage layer's documented lock order:
// within one function the latch classes must be acquired in rank order
// (primary → secondary → segment → row), and a call made while holding a
// latch must not — directly or transitively — acquire a latch of equal or
// lower rank. Held sets are inferred linearly (Lock opens, Unlock closes,
// deferred Unlock holds to the end), matching the stats-window rule;
// function literals are scanned as their own linear bodies and their
// may-acquire effect is charged to the call they are passed to.
//
// Latches are classified by the storage layer's naming convention, so the
// rule needs no dependency on the storage package itself: methods on a
// Latched value reached through a field named "primary" are the primary
// latch and any other Latched is a secondary latch; "mu" fields of segment
// and Row are the segment and row latches; Lock/RLock on a Row is the row
// latch.
type LatchOrder struct{}

// Name implements analysis.Rule.
func (LatchOrder) Name() string { return "latch-order" }

// Doc implements analysis.Rule.
func (LatchOrder) Doc() string {
	return "storage latches must be acquired in the documented order: primary, secondary, segment, row"
}

// CheckProgram implements analysis.ProgramRule.
func (LatchOrder) CheckProgram(pass *analysis.ProgramPass) {
	prog := pass.Prog
	for {
		changed := false
		for _, n := range prog.Graph.Nodes() {
			bits := directLatchAcquires(n.Info, n.Decl.Body)
			for _, e := range n.Out {
				for _, callee := range e.Callees {
					bits |= prog.Facts.Bits(callee, factLatchAcquires)
				}
			}
			if prog.Facts.ExportBits(n.Func, factLatchAcquires, bits) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range prog.Graph.Nodes() {
		checkLatchBody(pass, n, n.Decl.Body)
		ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				checkLatchBody(pass, n, lit.Body)
			}
			return true
		})
	}
}

const (
	latchOpNone = iota
	latchOpAcquire
	latchOpRelease
)

// classifyLatch matches Lock/RLock/Unlock/RUnlock calls against the storage
// naming convention, returning the latch class and the operation.
func classifyLatch(info *types.Info, call *ast.CallExpr) (int, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, latchOpNone
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = latchOpAcquire
	case "Unlock", "RUnlock":
		op = latchOpRelease
	default:
		return 0, latchOpNone
	}
	pkg, name := latchNamed(info.TypeOf(sel.X))
	switch name {
	case "Latched":
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "primary" {
			return latchPrimary, op
		}
		return latchSecondary, op
	case "Row":
		return latchRow, op
	case "Mutex", "RWMutex":
		if pkg != "sync" {
			return 0, latchOpNone
		}
		// x.mu.Lock(): classify by the type owning the mu field.
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "mu" {
			return 0, latchOpNone
		}
		switch _, owner := latchNamed(info.TypeOf(inner.X)); owner {
		case "segment":
			return latchSegment, op
		case "Row":
			return latchRow, op
		}
	}
	return 0, latchOpNone
}

// latchNamed unwraps pointers and reports the named type's package path and
// name, or empty strings for unnamed types.
func latchNamed(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return pkgPath, obj.Name()
}

// directLatchAcquires scans a body (function literals included) for latch
// acquisitions, for the may-acquire summary.
func directLatchAcquires(info *types.Info, body *ast.BlockStmt) uint64 {
	var bits uint64
	ast.Inspect(body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if class, op := classifyLatch(info, call); op == latchOpAcquire {
				bits |= 1 << class
			}
		}
		return true
	})
	return bits
}

// funcLitAcquires is the may-acquire effect of one function literal: its
// direct acquisitions plus its callees' facts. Used to charge a closure's
// latches to the call site it is passed to (the closure's own edges are
// folded into the enclosing declaration and would otherwise be missed
// mid-body).
func funcLitAcquires(prog *analysis.Program, info *types.Info, lit *ast.FuncLit) uint64 {
	var bits uint64
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op := classifyLatch(info, call); op != latchOpNone {
			if op == latchOpAcquire {
				bits |= 1 << class
			}
			return true
		}
		for _, callee := range prog.Graph.Resolve(call) {
			bits |= prog.Facts.Bits(callee, factLatchAcquires)
		}
		return true
	})
	return bits
}

// latchEvent is one position-ordered occurrence in a body: a latch
// acquire/release, or a call with a may-acquire effect.
type latchEvent struct {
	pos   token.Pos
	kind  int // evLatchAcq, evLatchRel, evLatchDeferRel, evLatchCall
	class int
	bits  uint64 // for evLatchCall
	call  *ast.CallExpr
}

const (
	evLatchAcq = iota
	evLatchRel
	evLatchDeferRel
	evLatchCall
)

// checkLatchBody runs linear held-set inference over one body, skipping
// nested function literals (they are checked as their own bodies and their
// effect is applied at the call they are an argument of).
func checkLatchBody(pass *analysis.ProgramPass, n *callgraph.Node, body *ast.BlockStmt) {
	prog := pass.Prog
	info := n.Info
	var events []latchEvent
	var visit func(root ast.Node, deferred bool)
	visit = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				visit(x.Call, true)
				return false
			case *ast.CallExpr:
				if class, op := classifyLatch(info, x); op != latchOpNone {
					kind := evLatchAcq
					if op == latchOpRelease {
						kind = evLatchRel
						if deferred {
							kind = evLatchDeferRel
						}
					}
					events = append(events, latchEvent{pos: x.Pos(), kind: kind, class: class})
					return true
				}
				var bits uint64
				for _, callee := range prog.Graph.Resolve(x) {
					bits |= prog.Facts.Bits(callee, factLatchAcquires)
				}
				for _, a := range x.Args {
					if lit, ok := a.(*ast.FuncLit); ok {
						bits |= funcLitAcquires(prog, info, lit)
					}
				}
				if bits != 0 {
					events = append(events, latchEvent{pos: x.Pos(), kind: evLatchCall, bits: bits, call: x})
				}
			}
			return true
		})
	}
	visit(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	var held [latchClasses]int
	for _, ev := range events {
		switch ev.kind {
		case evLatchAcq:
			for a := 0; a < latchClasses; a++ {
				if held[a] == 0 {
					continue
				}
				if a > ev.class {
					pass.Report(ev.pos,
						"acquiring the %s while the %s is held inverts the documented latch order (primary → secondary → segment → row)",
						latchClassName[ev.class], latchClassName[a])
				} else if a == ev.class && latchSingleton[a] {
					pass.Report(ev.pos,
						"acquiring the %s while it is already held (self-deadlock)",
						latchClassName[ev.class])
				}
			}
			held[ev.class]++
		case evLatchRel:
			if held[ev.class] > 0 {
				held[ev.class]--
			}
		case evLatchDeferRel:
			// Deferred unlock: the latch stays held to the end of the body.
		case evLatchCall:
			eachBit(ev.bits, func(class int) {
				for a := class + 1; a < latchClasses; a++ {
					if held[a] > 0 {
						pass.Report(ev.pos,
							"call to %s may acquire the %s while the %s is held, inverting the documented latch order",
							calleeName(ev.call), latchClassName[class], latchClassName[a])
					}
				}
			})
		}
	}
}
