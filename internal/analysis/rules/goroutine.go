package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"benchpress/internal/analysis"
)

// BareGoroutine flags unsupervised goroutine launches in internal/: a `go`
// statement whose goroutine has no completion protocol. Accepted protocols,
// checked syntactically inside the launched function literal:
//
//   - a deferred Done() on a sync.WaitGroup (the dominant pattern in
//     internal/core);
//   - a deferred close(ch), signalling termination through a channel;
//   - a final statement that sends on a channel (result-delivery
//     goroutines like the autopilot's).
//
// Launching a named function directly (`go m.Run(ctx)`) is always flagged:
// nothing can observe when — or whether — it finished, and any error it
// returns evaporates.
type BareGoroutine struct{}

// Name implements analysis.Rule.
func (BareGoroutine) Name() string { return "bare-goroutine" }

// Doc implements analysis.Rule.
func (BareGoroutine) Doc() string {
	return "goroutines in internal/ must be supervised (WaitGroup, close, or completion send)"
}

// Check implements analysis.Rule.
func (BareGoroutine) Check(pass *analysis.Pass) {
	if !strings.HasPrefix(pass.RelPath(), "internal/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !supervised(pass, g) {
				pass.Report(g.Pos(),
					"unsupervised goroutine: add a WaitGroup (Add before go, deferred Done inside), a deferred close, or a completion send")
			}
			return true
		})
	}
}

// supervised reports whether the goroutine body declares a completion
// protocol.
func supervised(pass *analysis.Pass, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	body := lit.Body.List
	if len(body) > 0 {
		if _, ok := body[len(body)-1].(*ast.SendStmt); ok {
			return true
		}
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		switch calleeName(d.Call) {
		case "Done":
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
				if isWaitGroup(pass.Pkg.Info.TypeOf(sel.X)) {
					found = true
				}
			}
		case "close":
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
