// Package analysis is a from-scratch, stdlib-only static-analysis engine
// for this repository. It loads packages with go/parser and type-checks them
// with go/types (source importer), then runs pluggable rules that report
// position-accurate diagnostics. Findings can be silenced in source with
//
//	//lint:ignore <rule>[,<rule>] <reason>
//
// placed on the flagged line or on the line directly above it. The reason is
// mandatory: a suppression without one is itself reported.
//
// The engine exists because the benchmark harness's credibility rests on the
// harness itself being correct under heavy concurrency — the domain rules in
// the sibling rules package enforce the atomics, transaction-hygiene, and
// layering invariants that ordinary go vet cannot see.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a source position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Rule)
}

// Rule is one analysis pass. Implementations inspect a type-checked package
// through the Pass and call Report for each finding.
type Rule interface {
	// Name is the identifier used in output and //lint:ignore directives.
	Name() string
	// Doc is a one-line description shown by benchlint -list.
	Doc() string
	// Check runs the rule over pass.Pkg.
	Check(pass *Pass)
}

// Pass carries one rule's view of one package.
type Pass struct {
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	rule    Rule
	sink    func(Diagnostic)
	parents map[ast.Node]ast.Node
}

// Report records a finding at pos. The message is formatted with fmt.Sprintf.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.sink(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule.Name(),
		Message: fmt.Sprintf(format, args...),
	})
}

// RelPath is the package path relative to the module root ("internal/core"
// for module path "benchpress" and package "benchpress/internal/core").
// Rules use it to scope themselves to repository layers.
func (p *Pass) RelPath() string {
	rel := strings.TrimPrefix(p.Pkg.Path, p.Pkg.ModulePath)
	return strings.TrimPrefix(rel, "/")
}

// Parents returns a child-to-parent map over every file's AST, built lazily
// once per pass. Rules use it to inspect the syntactic context of a node.
func (p *Pass) Parents() map[ast.Node]ast.Node {
	if p.parents == nil {
		p.parents = map[ast.Node]ast.Node{}
		for _, f := range p.Pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					p.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents
}

// Run executes every rule over every package, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppression directives are reported under the "lint-directive"
// pseudo-rule, which cannot itself be suppressed.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		supp, malformed := collectSuppressions(pkg)
		out = append(out, malformed...)
		for _, r := range rules {
			pass := &Pass{Pkg: pkg, rule: r}
			pass.sink = func(d Diagnostic) {
				if !supp.covers(d.Pos, d.Rule) {
					out = append(out, d)
				}
			}
			r.Check(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
