// Package analysis is a from-scratch, stdlib-only static-analysis engine
// for this repository. It loads packages with go/parser and type-checks them
// with go/types (source importer), then runs pluggable rules that report
// position-accurate diagnostics. Findings can be silenced in source with
//
//	//lint:ignore <rule>[,<rule>] <reason>
//
// placed on the flagged line or on the line directly above it. The reason is
// mandatory: a suppression without one is itself reported.
//
// Rules come in two shapes. A PackageRule sees one type-checked package at a
// time — the right altitude for syntactic and single-package invariants. A
// ProgramRule sees the whole loaded program at once: every package, a
// CHA-style call graph (internal/analysis/callgraph), and a fact store
// (internal/analysis/facts) through which rules export per-function summaries
// and consume them at call sites in other packages. That is how the
// transaction-hygiene, latch-order, and error-sink rules follow transactions,
// locks, and errors across function and package boundaries.
//
// The engine exists because the benchmark harness's credibility rests on the
// harness itself being correct under heavy concurrency — the domain rules in
// the sibling rules package enforce the atomics, transaction-hygiene, and
// layering invariants that ordinary go vet cannot see.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"benchpress/internal/analysis/callgraph"
	"benchpress/internal/analysis/facts"
)

// Diagnostic is one finding: a source position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Rule)
}

// Rule is the identity every analysis pass carries; concrete rules implement
// PackageRule or ProgramRule (or both) on top of it.
type Rule interface {
	// Name is the identifier used in output and //lint:ignore directives.
	Name() string
	// Doc is a one-line description shown by benchlint -list.
	Doc() string
}

// PackageRule is an analysis pass over one package. Implementations inspect
// a type-checked package through the Pass and call Report for each finding.
type PackageRule interface {
	Rule
	// Check runs the rule over pass.Pkg.
	Check(pass *Pass)
}

// ProgramRule is an interprocedural analysis pass. It runs once per
// invocation over the whole program — target packages plus every
// module-internal dependency the loader pulled in — with the call graph and
// fact store at hand. Diagnostics reported outside the target packages are
// dropped, so a rule may freely traverse dependency bodies to compute facts
// and report only where the user asked.
type ProgramRule interface {
	Rule
	// CheckProgram runs the rule over pass.Prog.
	CheckProgram(pass *ProgramPass)
}

// Pass carries one rule's view of one package.
type Pass struct {
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	rule    Rule
	sink    func(Diagnostic)
	parents map[ast.Node]ast.Node
}

// Report records a finding at pos. The message is formatted with fmt.Sprintf.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.sink(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule.Name(),
		Message: fmt.Sprintf(format, args...),
	})
}

// RelPath is the package path relative to the module root ("internal/core"
// for module path "benchpress" and package "benchpress/internal/core").
// Rules use it to scope themselves to repository layers.
func (p *Pass) RelPath() string {
	rel := strings.TrimPrefix(p.Pkg.Path, p.Pkg.ModulePath)
	return strings.TrimPrefix(rel, "/")
}

// Parents returns a child-to-parent map over every file's AST, built lazily
// once per pass. Rules use it to inspect the syntactic context of a node.
func (p *Pass) Parents() map[ast.Node]ast.Node {
	if p.parents == nil {
		p.parents = map[ast.Node]ast.Node{}
		for _, f := range p.Pkg.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					p.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents
}

// Program is the whole-program view handed to interprocedural rules.
type Program struct {
	// Pkgs is every loaded module package: analysis targets plus their
	// module-internal dependencies, in load order.
	Pkgs []*Package
	// ModulePath is the module all packages belong to.
	ModulePath string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Graph is the CHA call graph over Pkgs.
	Graph *callgraph.Graph
	// Facts is the summary store rules export to and consume from.
	Facts *facts.Store
}

// NewProgram builds the interprocedural view over the given packages: the
// call graph is constructed eagerly, the fact store starts empty.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, Facts: facts.NewStore()}
	srcs := make([]callgraph.Source, 0, len(pkgs))
	for _, p := range pkgs {
		if prog.ModulePath == "" {
			prog.ModulePath = p.ModulePath
		}
		if prog.Fset == nil {
			prog.Fset = p.Fset
		}
		srcs = append(srcs, callgraph.Source{Path: p.Path, Files: p.Files, Info: p.Info, Pkg: p.Types})
	}
	prog.Graph = callgraph.Build(srcs)
	return prog
}

// RelPath shortens a package import path to its module-relative form, the
// same convention as Pass.RelPath.
func (p *Program) RelPath(importPath string) string {
	rel := strings.TrimPrefix(importPath, p.ModulePath)
	return strings.TrimPrefix(rel, "/")
}

// ProgramPass carries one interprocedural rule's view of the program.
type ProgramPass struct {
	// Prog is the program under analysis.
	Prog *Program

	rule Rule
	sink func(Diagnostic)
}

// Report records a finding at pos. Findings outside the invocation's target
// packages are discarded by the engine.
func (p *ProgramPass) Report(pos token.Pos, format string, args ...any) {
	p.sink(Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Rule:    p.rule.Name(),
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes every rule with pkgs as both the program and the reporting
// targets, applies //lint:ignore suppressions, and returns the surviving
// diagnostics sorted by position. Callers that loaded dependency packages
// beyond the targets should use RunProgram so interprocedural rules see the
// dependencies' function bodies.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	return RunProgram(NewProgram(pkgs), pkgs, rules)
}

// RunProgram executes every rule over the program, reporting only into the
// target packages. Package rules run once per target package; program rules
// run once with the full program and their diagnostics are filtered to
// target files. Malformed suppression directives in target packages are
// reported under the "lint-directive" pseudo-rule, which cannot itself be
// suppressed.
func RunProgram(prog *Program, targets []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic

	// Suppressions and target files span the whole target set: a program
	// rule may report into any target file, wherever its analysis started.
	supp := suppressions{}
	targetFiles := map[string]bool{}
	for _, pkg := range targets {
		pkgSupp, malformed := collectSuppressions(pkg)
		out = append(out, malformed...)
		for file, lines := range pkgSupp {
			supp[file] = lines
		}
		for _, f := range pkg.Files {
			targetFiles[pkg.Fset.Position(f.Pos()).Filename] = true
		}
	}

	for _, r := range rules {
		if pr, ok := r.(PackageRule); ok {
			for _, pkg := range targets {
				pass := &Pass{Pkg: pkg, rule: r}
				pass.sink = func(d Diagnostic) {
					if !supp.covers(d.Pos, d.Rule) {
						out = append(out, d)
					}
				}
				pr.Check(pass)
			}
		}
		if pr, ok := r.(ProgramRule); ok {
			pass := &ProgramPass{Prog: prog, rule: r}
			pass.sink = func(d Diagnostic) {
				if targetFiles[d.Pos.Filename] && !supp.covers(d.Pos, d.Rule) {
					out = append(out, d)
				}
			}
			pr.CheckProgram(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
