package callgraph_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"benchpress/internal/analysis"
	"benchpress/internal/analysis/callgraph"
)

// buildGraph lays files out as a synthetic module, loads every package, and
// builds the graph over all of them.
func buildGraph(t *testing.T, files map[string]string, load ...string) (*callgraph.Graph, []*analysis.Package) {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.test/m\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*analysis.Package
	for _, path := range load {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", path, pkg.TypeErrors)
		}
		pkgs = append(pkgs, pkg)
	}
	all := loader.Loaded()
	srcs := make([]callgraph.Source, len(all))
	for i, p := range all {
		srcs[i] = callgraph.Source{Path: p.Path, Files: p.Files, Info: p.Info, Pkg: p.Types}
	}
	return callgraph.Build(srcs), pkgs
}

// findNode locates a node by "pkgname.FuncName" or method "Type.Method".
func findNode(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes() {
		full := n.Func.Name()
		if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil {
			rt := recv.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				full = named.Obj().Name() + "." + full
			}
		}
		if full == name {
			return n
		}
	}
	t.Fatalf("node %q not found", name)
	return nil
}

// calleeNames flattens a node's outgoing edges to callee names.
func calleeNames(n *callgraph.Node) []string {
	var out []string
	for _, e := range n.Out {
		for _, c := range e.Callees {
			out = append(out, c.Name())
		}
	}
	return out
}

func TestDirectAndCrossPackageCalls(t *testing.T) {
	g, _ := buildGraph(t, map[string]string{
		"lib/lib.go": "package lib\n\n// Helper is called across packages.\nfunc Helper() {}\n",
		"app/app.go": `package app

import "example.test/m/lib"

func local() {}

func Caller() {
	local()
	lib.Helper()
}
`,
	}, "example.test/m/app")
	names := strings.Join(calleeNames(findNode(t, g, "Caller")), ",")
	if names != "local,Helper" {
		t.Fatalf("Caller callees = %q, want local,Helper", names)
	}
}

func TestMethodAndInterfaceDispatch(t *testing.T) {
	g, _ := buildGraph(t, map[string]string{
		"shapes/shapes.go": `package shapes

// Closer is the dispatch interface.
type Closer interface{ Close() error }

// A and B both implement Closer.
type A struct{}

func (A) Close() error { return nil }

type B struct{}

func (*B) Close() error { return nil }

// NotIt has the method name but not the full interface? It does implement
// (single-method interface), so it is a legitimate CHA target too.
type NotIt struct{}

func (NotIt) Close() error { return nil }

func Use(c Closer, a A) {
	_ = c.Close()
	_ = a.Close()
}
`,
	}, "example.test/m/shapes")
	n := findNode(t, g, "Use")
	if len(n.Out) != 2 {
		t.Fatalf("Use has %d edges, want 2", len(n.Out))
	}
	// Edge 0: interface dispatch — the interface method plus all three
	// implementations.
	if got := len(n.Out[0].Callees); got != 4 {
		t.Fatalf("interface call resolved to %d callees, want 4 (decl + 3 impls)", got)
	}
	// Edge 1: concrete method call — exactly one callee.
	if got := len(n.Out[1].Callees); got != 1 {
		t.Fatalf("concrete call resolved to %d callees, want 1", got)
	}
}

func TestFuncLitCallsFoldIntoEnclosingDecl(t *testing.T) {
	g, _ := buildGraph(t, map[string]string{
		"p/p.go": `package p

func inner() {}

func Outer() {
	fn := func() { inner() }
	fn()
}
`,
	}, "example.test/m/p")
	names := strings.Join(calleeNames(findNode(t, g, "Outer")), ",")
	if !strings.Contains(names, "inner") {
		t.Fatalf("Outer callees = %q, want to contain inner (closure folded)", names)
	}
}

func TestResolveMemoizesCallSites(t *testing.T) {
	g, pkgs := buildGraph(t, map[string]string{
		"p/p.go": "package p\n\nfunc callee() {}\n\nfunc caller() { callee() }\n",
	}, "example.test/m/p")
	var call *ast.CallExpr
	ast.Inspect(pkgs[0].Files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call expression found")
	}
	callees := g.Resolve(call)
	if len(callees) != 1 || callees[0].Name() != "callee" {
		t.Fatalf("Resolve = %v, want [callee]", callees)
	}
}
