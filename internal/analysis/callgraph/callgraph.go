// Package callgraph builds a whole-program call graph over type-checked
// packages, for the interprocedural rules in internal/analysis/rules.
//
// Resolution is CHA-style (class-hierarchy analysis): static calls and
// concrete method calls resolve to exactly one callee; a call through an
// interface method resolves to that method on every loaded concrete type
// whose method set implements the interface. The graph is therefore an
// over-approximation — every call edge that can happen at runtime is present,
// plus possibly some that cannot — which is the right polarity for rules that
// prove the absence of bad call chains (lock-order inversion, escaped
// transactions, swallowed errors).
//
// Function literals are folded into their enclosing declaration: a call made
// inside a closure is an edge out of the function that syntactically contains
// the closure. Rules that need may-happen behavior (fact summaries) want
// exactly this; rules that need linear in-function reasoning skip literal
// bodies themselves.
//
// The package deliberately depends only on go/ast and go/types, not on the
// analysis engine, so the engine can build a Program on top of it without an
// import cycle.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
)

// Source is one package's contribution to the graph.
type Source struct {
	// Path is the package's import path.
	Path string
	// Files are the package's parsed, type-checked sources.
	Files []*ast.File
	// Info is the go/types result for Files.
	Info *types.Info
	// Pkg is the type-checked package.
	Pkg *types.Package
}

// Node is one declared function or method with a body in the loaded sources.
type Node struct {
	// Func is the function's type-checker object.
	Func *types.Func
	// Decl is the function's declaration (Body is non-nil).
	Decl *ast.FuncDecl
	// Path is the import path of the defining package.
	Path string
	// Info is the type info of the defining package (for resolving
	// expressions inside Decl).
	Info *types.Info
	// Out lists the node's call sites in source order, including calls made
	// inside function literals declared in the body.
	Out []Edge
}

// Edge is one call site and the callees it may reach.
type Edge struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callees are the possible targets: one for static and concrete-method
	// calls, every implementing method for interface dispatch. Targets
	// without a body in the loaded sources still appear (stdlib calls,
	// interface methods with no loaded implementation resolve to the
	// interface method itself).
	Callees []*types.Func
}

// Graph is the program call graph.
type Graph struct {
	nodes map[*types.Func]*Node
	// methods indexes every loaded concrete method by name, for CHA
	// interface dispatch.
	methods map[string][]*types.Func
	// resolved memoizes Resolve per call site.
	resolved map[*ast.CallExpr][]*types.Func
}

// Build constructs the call graph over the given sources.
func Build(sources []Source) *Graph {
	g := &Graph{
		nodes:    map[*types.Func]*Node{},
		methods:  map[string][]*types.Func{},
		resolved: map[*ast.CallExpr][]*types.Func{},
	}
	// Pass 1: collect nodes and the concrete-method index.
	for _, src := range sources {
		for _, f := range src.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &Node{Func: fn, Decl: fd, Path: src.Path, Info: src.Info}
				if fd.Recv != nil {
					g.methods[fn.Name()] = append(g.methods[fn.Name()], fn)
				}
			}
		}
	}
	// Pass 2: resolve call sites into edges.
	for _, n := range g.nodes {
		n.Out = g.collectEdges(n)
	}
	return g
}

// Node returns the graph node for fn, or nil when fn has no body in the
// loaded sources.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node, sorted by package path then position for
// deterministic iteration.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}

// Resolve returns the possible callees of a call site anywhere in the loaded
// sources, or nil for calls the graph cannot resolve (dynamic calls through
// function values, conversions, built-ins).
func (g *Graph) Resolve(call *ast.CallExpr) []*types.Func {
	return g.resolved[call]
}

// collectEdges walks one declaration body (function literals included) and
// resolves every call.
func (g *Graph) collectEdges(n *Node) []Edge {
	var out []Edge
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees := g.resolveCall(n.Info, call)
		if len(callees) > 0 {
			g.resolved[call] = callees
			out = append(out, Edge{Site: call, Callees: callees})
		}
		return true
	})
	return out
}

// resolveCall maps one call expression to its possible targets.
func (g *Graph) resolveCall(info *types.Info, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		sel := info.Selections[fun]
		if sel == nil {
			// Package-qualified call (pkg.F) or conversion.
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				return []*types.Func{fn}
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
			return g.dispatch(iface, fn)
		}
		return []*types.Func{fn}
	}
	return nil
}

// dispatch resolves an interface method call to the matching method of every
// loaded concrete type that implements the interface (CHA). The interface
// method itself is always included so that callers can still see the call
// when no implementation is loaded.
func (g *Graph) dispatch(iface *types.Interface, decl *types.Func) []*types.Func {
	out := []*types.Func{decl}
	seen := map[*types.Func]bool{decl: true}
	for _, impl := range g.methods[decl.Name()] {
		recv := impl.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		if !seen[impl] {
			seen[impl] = true
			out = append(out, impl)
		}
	}
	return out
}
