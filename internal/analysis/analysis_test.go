package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// funcRule reports one diagnostic at every function declaration; used to
// exercise the engine without depending on the real rule set.
type funcRule struct{ name string }

func (r funcRule) Name() string { return r.name }
func (r funcRule) Doc() string  { return "test rule: flags every func decl" }
func (r funcRule) Check(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				p.Report(fd.Pos(), "func %s flagged", fd.Name.Name)
			}
		}
	}
}

// writeModule lays out a synthetic module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderResolvesModuleImports(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":           "module example.test/m\n\ngo 1.22\n",
		"lib/lib.go":       "package lib\n\n// V is exported.\nconst V = 42\n",
		"app/app.go":       "package app\n\nimport \"example.test/m/lib\"\n\n// N uses the sibling package.\nconst N = lib.V + 1\n",
		"app/skip_test.go": "package app\n\nconst broken = undefinedSymbol\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "example.test/m" {
		t.Fatalf("module path = %q", l.ModulePath)
	}
	pkg, err := l.Load("example.test/m/app")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors (test files must be excluded): %v", pkg.TypeErrors)
	}
	if pkg.Types == nil || pkg.Types.Name() != "app" {
		t.Fatalf("types package = %v", pkg.Types)
	}
	// Loading again returns the memoized package.
	again, err := l.Load("example.test/m/app")
	if err != nil || again != pkg {
		t.Fatalf("memoization broken: %v %v", again, err)
	}
}

func TestLoaderReportsTypeErrors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/p.go": "package p\n\nconst C = undefinedSymbol\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("example.test/m/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("expected type errors")
	}
}

func TestExpandSkipsTestdataAndHiddenDirs(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":             "module example.test/m\n\ngo 1.22\n",
		"a/a.go":             "package a\n",
		"a/testdata/fix.go":  "package notapackage\n",
		"a/.hidden/h.go":     "package h\n",
		"b/b.go":             "package b\n",
		"docsonly/readme.md": "no go files here\n",
		"c/only_test.go":     "package c\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Expand([]string{"./..."}, root)
	if err != nil {
		t.Fatal(err)
	}
	var rels []string
	for _, d := range dirs {
		rel, _ := filepath.Rel(root, d)
		rels = append(rels, filepath.ToSlash(rel))
	}
	got := strings.Join(rels, ",")
	if got != "a,b" {
		t.Fatalf("Expand = %q, want \"a,b\"", got)
	}
}

func TestRunAppliesSuppressionSameAndNextLine(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/p.go": `package p

func flagged() {}

//lint:ignore flagger covered by the directive on the line above
func coveredAbove() {}

func coveredInline() {} //lint:ignore flagger trailing directive on the same line

//lint:ignore otherrule directive for a different rule does not apply
func wrongRule() {}

//lint:ignore flagger
func missingReason() {}
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("example.test/m/p")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Rule{funcRule{name: "flagger"}})
	var got []string
	for _, d := range diags {
		got = append(got, d.Rule+":"+strings.TrimPrefix(d.Message, "func "))
	}
	want := []string{
		"flagger:flagged flagged",
		"flagger:wrongRule flagged",
		"lint-directive:malformed directive: want //lint:ignore <rule>[,<rule>] <reason>",
		"flagger:missingReason flagged",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("diagnostics:\n got %q\nwant %q", got, want)
	}
}

// TestSuppressionMultipleRulesInOneDirective: one directive can silence
// several rules; the first space ends the rule list, so a space after a
// comma pushes the next name into the reason; a rule not in the list still
// fires; and a directive does not reach past the adjacent line.
func TestSuppressionMultipleRulesInOneDirective(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/p.go": `package p

//lint:ignore flagger,blocker both rules share one reason
func both() {}

//lint:ignore flagger, blocker is reason text here, not a rule name
func spaced() {}

//lint:ignore blocker only blocker is named, flagger still fires
func partial() {}

//lint:ignore flagger,blocker a blank line breaks adjacency

func tooFar() {}
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("example.test/m/p")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Rule{funcRule{name: "flagger"}, funcRule{name: "blocker"}})
	var got []string
	for _, d := range diags {
		got = append(got, d.Rule+":"+strings.TrimPrefix(strings.TrimSuffix(d.Message, " flagged"), "func "))
	}
	want := []string{"blocker:spaced", "flagger:partial", "blocker:tooFar", "flagger:tooFar"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("diagnostics:\n got %q\nwant %q", got, want)
	}
}

// TestSuppressionBareDirectiveIsMalformed: a directive with no rule list at
// all is reported under lint-directive and suppresses nothing.
func TestSuppressionBareDirectiveIsMalformed(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/p.go": "package p\n\n//lint:ignore\nfunc f() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("example.test/m/p")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Rule{funcRule{name: "flagger"}})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want malformed directive + finding: %v", len(diags), diags)
	}
	if diags[0].Rule != "lint-directive" || diags[1].Rule != "flagger" {
		t.Fatalf("unexpected rules: %s, %s", diags[0].Rule, diags[1].Rule)
	}
}

func TestRunSortsDiagnosticsByPosition(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/a.go": "package p\n\nfunc a() {}\n\nfunc b() {}\n",
		"p/b.go": "package p\n\nfunc c() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("example.test/m/p")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []Rule{funcRule{name: "flagger"}})
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1].Pos, diags[i].Pos
		if prev.Filename > cur.Filename || (prev.Filename == cur.Filename && prev.Line > cur.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

func TestLoadFileSyntheticPath(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module example.test/m\n\ngo 1.22\n",
		"lib/lib.go": "package lib\n\n// V is exported.\nconst V = 1\n",
		"fix.go":     "package fix\n\nimport \"example.test/m/lib\"\n\nvar _ = lib.V\n\nfunc f() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadFile(filepath.Join(root, "fix.go"), "example.test/m/internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	pass := &Pass{Pkg: pkg, rule: funcRule{name: "r"}, sink: func(Diagnostic) {}}
	if rel := pass.RelPath(); rel != "internal/fixture" {
		t.Fatalf("RelPath = %q", rel)
	}
}

func TestLoadDirOutsideModuleFails(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(os.TempDir()); err == nil {
		t.Fatal("expected error for directory outside the module")
	}
}

func TestParentsMapsChildToParent(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.test/m\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc f() { _ = len(\"x\") }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("example.test/m/p")
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Pkg: pkg, rule: funcRule{name: "r"}, sink: func(Diagnostic) {}}
	parents := pass.Parents()
	found := false
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := parents[call].(*ast.AssignStmt); ok {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Fatal("parent of call expression not an assignment")
	}
}
