package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix is the directive marker, written as //lint:ignore in source.
const ignorePrefix = "//lint:ignore "

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	rules  map[string]bool
	reason string
}

// suppressions indexes directives by file and line. A directive covers its
// own line (trailing comment) and the line directly below it (comment on its
// own line above the flagged statement).
type suppressions map[string]map[int]suppression

// covers reports whether a diagnostic for rule at pos is silenced.
func (s suppressions) covers(pos token.Position, rule string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if sup, ok := lines[line]; ok && sup.rules[rule] {
			return true
		}
	}
	return false
}

// collectSuppressions parses every //lint:ignore directive in the package.
// Directives missing a rule name or a reason are returned as diagnostics
// under the "lint-directive" pseudo-rule so they cannot silently rot.
func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	supp := suppressions{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, strings.TrimSuffix(ignorePrefix, " ")) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, strings.TrimSuffix(ignorePrefix, " "))
				rest = strings.TrimSpace(rest)
				ruleList, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if ruleList == "" || reason == "" {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Rule:    "lint-directive",
						Message: "malformed directive: want //lint:ignore <rule>[,<rule>] <reason>",
					})
					continue
				}
				sup := suppression{rules: map[string]bool{}, reason: reason}
				for _, r := range strings.Split(ruleList, ",") {
					if r = strings.TrimSpace(r); r != "" {
						sup.rules[r] = true
					}
				}
				if supp[pos.Filename] == nil {
					supp[pos.Filename] = map[int]suppression{}
				}
				supp[pos.Filename][pos.Line] = sup
			}
		}
	}
	return supp, malformed
}
