package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("benchpress/internal/core").
	Path string
	// ModulePath is the module the package belongs to ("benchpress").
	ModulePath string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the loader-wide file set (shared across packages).
	Fset *token.FileSet
	// Files are the parsed sources, test files excluded.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds type-checking failures. Rules still run on packages
	// with type errors, but callers should surface these first: rule output
	// on a broken package is unreliable.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module. Imports within
// the module are resolved recursively from source; everything else is
// delegated to the standard library's source importer, so the loader needs
// no compiled export data and no network.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod; ModulePath its module line.
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from source;
	// with cgo enabled it would need to run the cgo preprocessor for
	// packages like net. The pure-Go variants are all we need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module line from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from source
// through this loader; all other paths go to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load returns the package with the given module-internal import path.
func (l *Loader) Load(path string) (*Package, error) { return l.load(path) }

// Loaded returns every module-internal package the loader has type-checked
// so far — explicit Load/LoadDir targets plus the dependencies they pulled
// in — sorted by import path. Interprocedural analysis builds its Program
// over this set so callee bodies outside the analysis targets are visible.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, p := range paths {
		out[i] = l.pkgs[p]
	}
	return out
}

// LoadDir loads the package in dir, deriving its import path from the
// directory's location under the module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.load(l.ModulePath)
	}
	return l.load(l.ModulePath + "/" + filepath.ToSlash(rel))
}

// LoadFile type-checks a single file as its own package under the synthetic
// import path pkgPath. Module-internal imports in the file resolve against
// the loader's module. This is how fixture files and benchlint's single-file
// mode work.
func (l *Loader) LoadFile(filename, pkgPath string) (*Package, error) {
	f, err := parser.ParseFile(l.Fset, filename, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return l.check(pkgPath, filepath.Dir(filename), []*ast.File{f}), nil
}

// load parses and type-checks the module package at the given import path,
// memoizing the result and detecting import cycles.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	pkg := l.check(path, dir, files)
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !buildableGoFile(name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// buildableGoFile mirrors the go tool's file selection for this module:
// plain .go files, no tests, no editor droppings.
func buildableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// check runs go/types over the files, collecting rather than aborting on
// type errors.
func (l *Loader) check(path, dir string, files []*ast.File) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	return &Package{
		Path:       path,
		ModulePath: l.ModulePath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: terrs,
	}
}

// Expand resolves package patterns relative to baseDir into package
// directories. A pattern ending in "/..." walks recursively; other patterns
// name a single directory. Directories named testdata or vendor, hidden
// directories, and directories without buildable Go files are skipped.
func (l *Loader) Expand(patterns []string, baseDir string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "." || root == "" {
			root = baseDir
		} else if !filepath.IsAbs(root) {
			root = filepath.Join(baseDir, root)
		}
		if !recursive {
			ok, err := hasBuildableGoFiles(root)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasBuildableGoFiles(p)
			if err != nil {
				return err
			}
			if ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGoFiles reports whether dir directly contains a non-test Go
// file.
func hasBuildableGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && buildableGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}
