package monitor

import (
	"testing"
	"time"
)

func TestMonitorSamples(t *testing.T) {
	m := New(20 * time.Millisecond)
	m.Start()
	time.Sleep(120 * time.Millisecond)
	m.Stop()
	samples := m.Samples()
	if len(samples) < 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	last := m.Latest()
	if last.Goroutines <= 0 || last.HeapMB <= 0 {
		t.Fatalf("runtime stats missing: %+v", last)
	}
	// Elapsed must be monotone.
	for i := 1; i < len(samples); i++ {
		if samples[i].Elapsed <= samples[i-1].Elapsed {
			t.Fatal("elapsed not monotone")
		}
	}
}

func TestMonitorHostStatsOnLinux(t *testing.T) {
	if _, ok := readCPU(); !ok {
		t.Skip("/proc/stat unavailable")
	}
	m := New(20 * time.Millisecond)
	m.Start()
	time.Sleep(80 * time.Millisecond)
	m.Stop()
	if !m.Latest().HostStats {
		t.Fatal("host stats expected on this platform")
	}
	if m.Latest().MemUsedPct <= 0 || m.Latest().MemUsedPct > 100 {
		t.Fatalf("mem = %v", m.Latest().MemUsedPct)
	}
}

func TestStopIdempotent(t *testing.T) {
	m := New(10 * time.Millisecond)
	m.Start()
	m.Stop()
	m.Stop()
}

func TestDefaultInterval(t *testing.T) {
	m := New(0)
	if m.interval != time.Second {
		t.Fatalf("interval = %v", m.interval)
	}
}
