// Package monitor implements the server-side resource monitoring component
// of the testbed (the paper uses dstat [7]): a sampler that collects host
// CPU, memory, and runtime statistics in parallel with the benchmark and
// exposes them as a real-time series.
//
// On Linux the sampler reads /proc; elsewhere (or when /proc is missing) it
// degrades to Go-runtime statistics so the interface stays uniform.
package monitor

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sample is one resource observation.
type Sample struct {
	// Elapsed is the offset since the monitor started.
	Elapsed time.Duration
	// CPUUserPct and CPUSystemPct are host CPU utilization percentages
	// since the previous sample (0 when /proc is unavailable).
	CPUUserPct   float64
	CPUSystemPct float64
	// MemUsedPct is the host memory utilization (0 when unavailable).
	MemUsedPct float64
	// HeapMB is the Go heap in MiB (always available).
	HeapMB float64
	// Goroutines is the process goroutine count.
	Goroutines int
	// HostStats reports whether host-level numbers are genuine.
	HostStats bool
}

// cpuTimes are cumulative jiffies from /proc/stat.
type cpuTimes struct {
	user, nice, system, idle, iowait, irq, softirq, steal uint64
}

func (c cpuTimes) total() uint64 {
	return c.user + c.nice + c.system + c.idle + c.iowait + c.irq + c.softirq + c.steal
}

// Monitor samples resources at a fixed interval.
type Monitor struct {
	interval time.Duration
	start    time.Time

	mu      sync.Mutex
	samples []Sample
	last    Sample

	prevCPU cpuTimes
	haveCPU bool

	stop chan struct{}
	done sync.WaitGroup
}

// New creates a monitor sampling at interval (default 1s when zero).
func New(interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = time.Second
	}
	return &Monitor{interval: interval, stop: make(chan struct{})}
}

// Start begins sampling in the background.
func (m *Monitor) Start() {
	m.start = time.Now()
	if cpu, ok := readCPU(); ok {
		m.prevCPU, m.haveCPU = cpu, true
	}
	m.done.Add(1)
	go func() {
		defer m.done.Done()
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				m.sample()
			case <-m.stop:
				return
			}
		}
	}()
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	select {
	case <-m.stop:
		return
	default:
	}
	close(m.stop)
	m.done.Wait()
}

// sample takes one observation.
func (m *Monitor) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Sample{
		Elapsed:    time.Since(m.start),
		HeapMB:     float64(ms.HeapAlloc) / (1 << 20),
		Goroutines: runtime.NumGoroutine(),
	}
	if cpu, ok := readCPU(); ok && m.haveCPU {
		dTotal := float64(cpu.total() - m.prevCPU.total())
		if dTotal > 0 {
			s.CPUUserPct = 100 * float64(cpu.user+cpu.nice-m.prevCPU.user-m.prevCPU.nice) / dTotal
			s.CPUSystemPct = 100 * float64(cpu.system-m.prevCPU.system) / dTotal
			s.HostStats = true
		}
		m.prevCPU = cpu
	}
	if used, ok := readMemUsedPct(); ok {
		s.MemUsedPct = used
		s.HostStats = true
	}
	m.mu.Lock()
	m.samples = append(m.samples, s)
	m.last = s
	m.mu.Unlock()
}

// Latest returns the most recent sample.
func (m *Monitor) Latest() Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Samples returns the collected series.
func (m *Monitor) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// readCPU parses the aggregate cpu line of /proc/stat.
func readCPU() (cpuTimes, bool) {
	f, err := os.Open("/proc/stat")
	if err != nil {
		return cpuTimes{}, false
	}
	//lint:ignore error-discard read-only /proc handle; close cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 8 || fields[0] != "cpu" {
			continue
		}
		var vals [8]uint64
		for i := 0; i < 8 && i+1 < len(fields); i++ {
			vals[i], _ = strconv.ParseUint(fields[i+1], 10, 64)
		}
		return cpuTimes{
			user: vals[0], nice: vals[1], system: vals[2], idle: vals[3],
			iowait: vals[4], irq: vals[5], softirq: vals[6], steal: vals[7],
		}, true
	}
	return cpuTimes{}, false
}

// readMemUsedPct parses /proc/meminfo.
func readMemUsedPct() (float64, bool) {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0, false
	}
	//lint:ignore error-discard read-only /proc handle; close cannot lose data
	defer f.Close()
	var total, avail float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		v, _ := strconv.ParseFloat(fields[1], 64)
		switch fields[0] {
		case "MemTotal:":
			total = v
		case "MemAvailable:":
			avail = v
		}
	}
	if total <= 0 {
		return 0, false
	}
	return 100 * (total - avail) / total, true
}
