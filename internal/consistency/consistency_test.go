package consistency

import (
	"flag"
	"os"
	"strconv"
	"testing"

	"benchpress/internal/sqldb/txn"
)

// long scales the harness up for soak runs: go test -consistency.long.
var long = flag.Bool("consistency.long", false, "run the consistency harness with larger workloads")

// harnessSeed returns the fixed gate seed, overridable with CONSISTENCY_SEED
// for exploratory runs.
func harnessSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("CONSISTENCY_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CONSISTENCY_SEED=%q: %v", s, err)
		}
		t.Logf("using CONSISTENCY_SEED=%d", v)
		return v
	}
	return 20260805
}

// seedOverridden reports whether the run uses a non-default seed, which
// relaxes the anomaly-presence assertions (they are tuned for the gate seed).
func seedOverridden() bool { return os.Getenv("CONSISTENCY_SEED") != "" }

// gateConfig is the standard conformance shape for one personality.
func gateConfig(t *testing.T, personality string) Config {
	cfg := Config{
		Personality: personality,
		Seed:        harnessSeed(t),
		BaseKeys:    12,
		ChurnKeys:   8,
	}
	if personality == "golock" {
		// The 2PL engine has no next-key locks; operations on absent keys
		// (inserts/deletes) open phantom windows outside its serializable
		// envelope, so its conformance workload sticks to present keys.
		cfg.ChurnKeys = 0
	}
	if *long {
		cfg.Txns = 3000
	}
	return cfg
}

// TestConformanceSerializable replays goserial and golock histories against
// the single-threaded oracle: commit-order replay must reproduce every
// observation exactly.
func TestConformanceSerializable(t *testing.T) {
	for _, personality := range []string{"goserial", "golock"} {
		t.Run(personality, func(t *testing.T) {
			h, err := Run(gateConfig(t, personality))
			if err != nil {
				t.Fatal(err)
			}
			t.Log(h.Stats())
			if r := CheckSerializable(h); !r.Empty() {
				t.Fatal(r.String())
			}
		})
	}
}

// TestConformanceSnapshotIsolation checks the gomvcc history against the SI
// anomaly taxonomy: snapshot reads/scans, G0/lost updates, G1a, G1b.
func TestConformanceSnapshotIsolation(t *testing.T) {
	h, err := Run(gateConfig(t, "gomvcc"))
	if err != nil {
		t.Fatal(err)
	}
	t.Log(h.Stats())
	if r := CheckSnapshotIsolation(h); !r.Empty() {
		t.Fatal(r.String())
	}
}

// TestHarnessContention guards the harness against becoming vacuous: the
// gate workload must actually produce concurrency conflicts on each
// personality, otherwise the checkers verify nothing interesting.
func TestHarnessContention(t *testing.T) {
	if seedOverridden() {
		t.Skip("contention thresholds are tuned for the gate seed")
	}
	aborted := func(h *History) int {
		n := 0
		for i := range h.Txns {
			if !h.Txns[i].Committed() {
				n++
			}
		}
		return n
	}
	hSerial, err := Run(gateConfig(t, "goserial"))
	if err != nil {
		t.Fatal(err)
	}
	if hSerial.BusyBegins == 0 {
		t.Error("goserial run saw no busy begins; the stepper is not creating lock pressure")
	}
	hLock, err := Run(gateConfig(t, "golock"))
	if err != nil {
		t.Fatal(err)
	}
	if aborted(hLock) == 0 {
		t.Error("golock run saw no aborts; no lock conflicts were generated")
	}
	hMVCC, err := Run(gateConfig(t, "gomvcc"))
	if err != nil {
		t.Fatal(err)
	}
	if aborted(hMVCC) == 0 {
		t.Error("gomvcc run saw no aborts; no write-write conflicts were generated")
	}
}

// TestDeterminism runs the stepper twice per personality with the same seed
// and requires bit-identical history fingerprints: the property the fixed
// kill-point and regression seeds rely on.
func TestDeterminism(t *testing.T) {
	for _, personality := range []string{"goserial", "golock", "gomvcc"} {
		t.Run(personality, func(t *testing.T) {
			cfg := gateConfig(t, personality)
			h1, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			f1, f2 := h1.Fingerprint(), h2.Fingerprint()
			if f1 != f2 {
				t.Fatalf("same seed produced different histories: %#x vs %#x", f1, f2)
			}
		})
	}
}

// TestConcurrentConformance is the stress arm: real goroutine concurrency,
// normal blocking engine mode, same checkers. Run under -race this doubles
// as the engine's isolation race detector.
func TestConcurrentConformance(t *testing.T) {
	for _, personality := range []string{"goserial", "golock", "gomvcc"} {
		t.Run(personality, func(t *testing.T) {
			cfg := gateConfig(t, personality)
			cfg.Txns = 400
			if *long {
				cfg.Txns = 4000
			}
			h, err := RunConcurrent(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(h.Stats())
			if personality == "gomvcc" {
				if r := CheckSnapshotIsolation(h); !r.Empty() {
					t.Fatal(r.String())
				}
			} else {
				if r := CheckSerializable(h); !r.Empty() {
					t.Fatal(r.String())
				}
			}
		})
	}
}

// TestMutationSelfValidation proves the harness detects the bug classes it
// claims to: flipping one engine invariant off must make the corresponding
// checker report violations. A harness that stays green here would be
// vacuous.
func TestMutationSelfValidation(t *testing.T) {
	cases := []struct {
		name        string
		personality string
		mutation    txn.Mutation
		si          bool
		class       string
	}{
		{
			name:        "mvcc-skip-first-updater-wins",
			personality: "gomvcc",
			mutation:    txn.MutateSkipFirstUpdaterWins,
			si:          true,
			class:       "G0-lost-update",
		},
		{
			name:        "locking-skip-read-locks",
			personality: "golock",
			mutation:    txn.MutateSkipReadLocks,
			class:       "replay-read",
		},
		{
			name:        "serial-shared-writers",
			personality: "goserial",
			mutation:    txn.MutateSharedSerialWriters,
			class:       "replay-read",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := gateConfig(t, tc.personality)
			cfg.Mutation = tc.mutation
			// Concentrate contention so the injected bug manifests.
			cfg.BaseKeys = 4
			cfg.ChurnKeys = 0
			h, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var r *Report
			if tc.si {
				r = CheckSnapshotIsolation(h)
			} else {
				r = CheckSerializable(h)
			}
			if r.Empty() {
				t.Fatalf("mutation %v produced a clean report; the checker is blind to this bug class", tc.mutation)
			}
			if r.Count(tc.class) == 0 {
				t.Fatalf("mutation %v produced no %q violations; got:\n%s", tc.mutation, tc.class, r.String())
			}
			t.Logf("detected %d violations (%d of class %s)", len(r.Violations), r.Count(tc.class), tc.class)
		})
	}
}

// TestBankWriteSkew is the differential anomaly assertion: the same bank
// workload must stay invariant-clean on the serializable personalities and
// materialize write skew (a negative account pair) on gomvcc under
// contention.
func TestBankWriteSkew(t *testing.T) {
	seed := harnessSeed(t)
	for _, personality := range []string{"goserial", "golock"} {
		t.Run(personality, func(t *testing.T) {
			for i := int64(0); i < 3; i++ {
				res, err := RunBank(BankConfig{Personality: personality, Seed: seed + i})
				if err != nil {
					t.Fatal(err)
				}
				if res.NegativePairs != 0 {
					t.Fatalf("seed %d: serializable personality produced %d negative pairs (committed=%d aborted=%d)",
						seed+i, res.NegativePairs, res.Committed, res.Aborted)
				}
			}
		})
	}
	t.Run("gomvcc", func(t *testing.T) {
		if seedOverridden() {
			t.Skip("write-skew presence is asserted for the gate seed only")
		}
		found := 0
		for i := int64(0); i < 10; i++ {
			res, err := RunBank(BankConfig{Personality: "gomvcc", Seed: seed + i})
			if err != nil {
				t.Fatal(err)
			}
			found += res.NegativePairs
			if found > 0 {
				t.Logf("write skew materialized at seed %d (%d negative pairs)", seed+i, res.NegativePairs)
				break
			}
		}
		if found == 0 {
			t.Fatal("no write skew across 10 seeds on gomvcc; SI write-skew permissiveness is not being exercised")
		}
	})
}
