package consistency

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"

	"benchpress/internal/sqldb"
	"benchpress/internal/sqldb/storage/heap"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/wal"
)

// Disk-resident crash torture. Where crash.go tears only the log of a RAM
// engine and replays the records, this harness tortures the full recovery
// path: a disk-resident engine (slotted-page heap behind a buffer pool,
// ARIES-style physical logging) runs a seeded workload while ONE shared byte
// budget meters every durable write — WAL appends and heap page flushes
// alike. The write that crosses the budget is torn (a partial frame in the
// log, a half-written page on the device) and everything after it is
// rejected, exactly as if the machine lost power at that byte. The surviving
// WAL image and device then go through real recovery (sqldb.OpenDisk), and
// the recovered engine is checked against the durability contract:
//
//	acked ⊆ winners ⊆ acked ∪ uncertain
//
// plus byte-exact row contents (every winner's writes, nothing else) and a
// fully verifiable page image. Because the workload is single-sessioned and
// the WAL policy is write-through, the same seed and budget reproduce the
// same byte stream, making a kill-point sweep across the whole stream —
// including cuts inside page flushes and checkpoint records — deterministic.

// crashBudget is the shared byte meter: WAL writes and device page writes
// draw from the same pool, so a kill point is a single global byte offset in
// the engine's combined durable-write stream.
type crashBudget struct {
	mu    sync.Mutex
	limit int64 // total bytes allowed; negative = unlimited
	used  int64
	dead  bool
}

func newCrashBudget(limit int64) *crashBudget { return &crashBudget{limit: limit} }

// take reserves n bytes, returning the global offset at which the write
// begins, the bytes granted, and whether the full request fit. The first
// short grant kills the budget forever.
func (b *crashBudget) take(n int) (start int64, granted int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	start = b.used
	if b.dead {
		return start, 0, false
	}
	if b.limit < 0 || b.used+int64(n) <= b.limit {
		b.used += int64(n)
		return start, n, true
	}
	granted = int(b.limit - b.used)
	b.used = b.limit
	b.dead = true
	return start, granted, false
}

func (b *crashBudget) killed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

func (b *crashBudget) usedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// sinkWrite records one accepted WAL sink write. Under write-through policy
// every write is exactly one record frame, so the harness can classify the
// frame (update, commit, checkpoint) from its payload's first byte.
type sinkWrite struct {
	global int64 // offset in the shared budget stream
	local  int   // offset within this run's sink bytes
	n      int   // bytes accepted (the full frame unless this write tore)
}

// budgetWriter is the WAL sink: it charges the shared budget and keeps the
// accepted bytes as the surviving log image.
type budgetWriter struct {
	budget *crashBudget
	mu     sync.Mutex
	buf    []byte
	writes []sinkWrite
}

func (w *budgetWriter) Write(p []byte) (int, error) {
	start, granted, ok := w.budget.take(len(p))
	w.mu.Lock()
	if granted > 0 {
		w.writes = append(w.writes, sinkWrite{global: start, local: len(w.buf), n: granted})
		w.buf = append(w.buf, p[:granted]...)
	}
	w.mu.Unlock()
	if !ok {
		return granted, ErrKilled
	}
	return len(p), nil
}

// budgetDevice charges heap page writes against the shared budget, tearing
// the crossing write into the underlying MemDevice (the granted prefix lands,
// the rest never does) and rejecting everything after.
type budgetDevice struct {
	mem    *heap.MemDevice
	budget *crashBudget
	mu     sync.Mutex
	writes []int64 // global offsets at which page writes began
}

func (d *budgetDevice) ReadPage(id uint32, buf []byte) error { return d.mem.ReadPage(id, buf) }

func (d *budgetDevice) WritePage(id uint32, buf []byte) error {
	start, granted, ok := d.budget.take(heap.PageSize)
	d.mu.Lock()
	d.writes = append(d.writes, start)
	d.mu.Unlock()
	if granted > 0 {
		if err := d.mem.WritePartial(id, buf, granted); err != nil {
			return err
		}
	}
	if !ok {
		return ErrKilled
	}
	return nil
}

func (d *budgetDevice) Pages() (uint32, error) { return d.mem.Pages() }

func (d *budgetDevice) Sync() error {
	if d.budget.killed() {
		return ErrKilled
	}
	return nil
}

func (d *budgetDevice) Close() error { return nil }

// DiskCrashConfig parameterizes one disk-resident crash-torture run.
type DiskCrashConfig struct {
	// Seed drives the workload.
	Seed int64
	// Txns is the number of transactions to attempt.
	Txns int
	// Budget is the shared byte budget across WAL appends and heap page
	// writes (negative = never dies).
	Budget int64
	// PoolPages sizes the buffer pool; the default of 2 frames keeps the
	// working set larger than the pool so page flushes happen mid-run, not
	// just at shutdown.
	PoolPages int
	// CheckpointEvery is the fuzzy-checkpoint cadence in commits; the
	// default of 10 puts several checkpoints inside a run.
	CheckpointEvery int
	// Device and WAL resume a previous run's surviving image (chained
	// restarts through repeated crashes); nil starts fresh.
	Device *heap.MemDevice
	// WAL is the surviving log image accompanying Device.
	WAL []byte
}

func (c DiskCrashConfig) withDefaults() DiskCrashConfig {
	if c.Txns == 0 {
		c.Txns = 140
	}
	if c.PoolPages == 0 {
		c.PoolPages = 2
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	return c
}

// DiskCrashResult is the outcome of one disk crash-torture run.
type DiskCrashResult struct {
	// Attempts records every transaction with its expected write set and
	// commit outcome (acked, uncertain, or rolled back).
	Attempts []CommitAttempt
	// WALImage is the surviving log: the clean prefix of the run's input
	// plus every byte the sink accepted.
	WALImage []byte
	// Device is the surviving heap device, torn pages and all.
	Device *heap.MemDevice
	// Killed reports whether the budget ran out.
	Killed bool
	// Used is the total durable bytes accepted by the run.
	Used int64
	// SchemaFloor is the budget level at which the schema (and any prior
	// recovery write-back) was durable; kill points below it crash before
	// the workload starts and are not interesting to sweep.
	SchemaFloor int64
	// PageWrites holds the global offset at which each heap page write
	// began: a budget inside (off, off+PageSize) tears that very write.
	PageWrites []int64

	sinkBytes []byte
	walWrites []sinkWrite
}

// CheckpointWrites returns the global offset and accepted length of every
// checkpoint record frame the run wrote, for aiming mid-checkpoint tears.
func (r *DiskCrashResult) CheckpointWrites() [][2]int64 {
	var out [][2]int64
	for _, w := range r.walWrites {
		if w.n <= wal.PayloadHeaderSize {
			continue // torn before the payload: kind unknowable
		}
		if wal.RecKind(r.sinkBytes[w.local+wal.PayloadHeaderSize]) == wal.KindCheckpoint {
			out = append(out, [2]int64{w.global, int64(w.n)})
		}
	}
	return out
}

// diskCrashPad derives the pad column deterministically from the row value,
// so content verification can check recovered rows byte-for-byte without the
// workload tracking pad strings.
func diskCrashPad(v int64) string {
	b := make([]byte, 160)
	for i := range b {
		b[i] = 'a' + byte((v+int64(i))%26)
	}
	return string(b)
}

// RunDiskCrash opens a disk-resident engine over the budgeted device and WAL
// sink (recovering any prior image first), drives the seeded workload on
// table crashkv, and captures the surviving disk state after the crash. The
// engine runs row-locking mode with write-through WAL on a single session,
// so the durable byte stream is a pure function of seed and budget.
func RunDiskCrash(cfg DiskCrashConfig) (*DiskCrashResult, error) {
	cfg = cfg.withDefaults()
	budget := newCrashBudget(cfg.Budget)
	mem := cfg.Device
	if mem == nil {
		mem = heap.NewMemDevice()
	}
	dev := &budgetDevice{mem: mem, budget: budget}
	sink := &budgetWriter{budget: budget}
	eng, err := sqldb.OpenDisk(sqldb.Config{
		Name:            "disk-crash",
		Mode:            txn.Locking,
		WALPolicy:       wal.SyncNone,
		DiskDevice:      dev,
		DiskWAL:         cfg.WAL,
		WALSink:         sink,
		BufferPoolPages: cfg.PoolPages,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("consistency: disk crash open: %w", err)
	}
	cleanLen := eng.DiskRecovery().CleanWALLen

	res := &DiskCrashResult{Device: mem}
	attempts, runErr := runDiskCrashWorkload(eng, cfg)
	res.Attempts = attempts
	// Close before capturing: the shutdown flush is part of the byte stream
	// (a kill point can land inside it), and nothing may move afterwards.
	eng.Close()
	if runErr != nil {
		return nil, runErr
	}

	res.WALImage = append(append([]byte(nil), cfg.WAL[:cleanLen]...), sink.buf...)
	res.sinkBytes = sink.buf
	res.walWrites = sink.writes
	res.PageWrites = dev.writes
	res.Used = budget.usedBytes()
	res.Killed = budget.killed()
	res.SchemaFloor = res.schemaFloor()
	return res, nil
}

// schemaFloor finds the budget level after which the schema is durable: the
// end of the last system-transaction update frame in the first run, or the
// recovery write-back floor for chained runs (first workload WAL write).
func (r *DiskCrashResult) schemaFloor() int64 {
	for _, w := range r.walWrites {
		if w.n <= wal.PayloadHeaderSize {
			continue
		}
		if wal.RecKind(r.sinkBytes[w.local+wal.PayloadHeaderSize]) == wal.KindCommit {
			// First commit record: everything before it is schema/bootstrap.
			return w.global
		}
	}
	return r.Used
}

// runDiskCrashWorkload drives the seeded single-session workload, tolerating
// commit failures (the crash) but not statement failures (those would be
// engine bugs: statements never touch the durable path).
func runDiskCrashWorkload(eng *sqldb.Engine, cfg DiskCrashConfig) ([]CommitAttempt, error) {
	sess := eng.Session()
	live := map[int64]bool{}
	if !eng.Catalog().HasTable("crashkv") {
		_, err := sess.Exec(`CREATE TABLE crashkv (
			k BIGINT NOT NULL, v BIGINT, pad VARCHAR(200), PRIMARY KEY (k))`)
		if err != nil {
			return nil, fmt.Errorf("consistency: disk crash schema: %w", err)
		}
	} else {
		// Chained run: seed liveness from the recovered table.
		q, err := sess.Query("SELECT k FROM crashkv")
		if err != nil {
			return nil, err
		}
		for _, row := range q.Rows {
			live[row[0].Int()] = true
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var attempts []CommitAttempt
	for i := 0; i < cfg.Txns; i++ {
		if err := sess.Begin(); err != nil {
			return attempts, fmt.Errorf("consistency: disk crash begin: %w", err)
		}
		id := sess.TxnInfo().ID
		att := CommitAttempt{ID: id}
		nops := 1 + rng.Intn(4)
		touched := map[int64]bool{}
		for j := 0; j < nops; j++ {
			key := rng.Int63n(40)
			for touched[key] {
				key = rng.Int63n(40)
			}
			touched[key] = true
			var (
				err error
				op  WalOp
			)
			switch {
			case !live[key]:
				op = WalOp{Kind: byte(txn.WriteInsert), K: key, V: MakeTag(id, j)}
				_, err = sess.Exec("INSERT INTO crashkv (k, v, pad) VALUES (?, ?, ?)",
					key, op.V, diskCrashPad(op.V))
				live[key] = true
			case rng.Intn(100) < 70:
				op = WalOp{Kind: byte(txn.WriteUpdate), K: key, V: MakeTag(id, j)}
				_, err = sess.Exec("UPDATE crashkv SET v = ?, pad = ? WHERE k = ?",
					op.V, diskCrashPad(op.V), key)
			default:
				op = WalOp{Kind: byte(txn.WriteDelete), K: key}
				_, err = sess.Exec("DELETE FROM crashkv WHERE k = ?", key)
				live[key] = false
			}
			if err != nil {
				return attempts, fmt.Errorf("consistency: disk crash op: %w", err)
			}
			att.Ops = append(att.Ops, op)
		}
		finish := func(undo bool) {
			if !undo {
				return
			}
			for _, op := range att.Ops {
				switch txn.WriteKind(op.Kind) {
				case txn.WriteInsert:
					live[op.K] = false
				case txn.WriteDelete:
					live[op.K] = true
				}
			}
		}
		if rng.Intn(100) < 10 {
			if err := sess.Rollback(); err != nil {
				return attempts, err
			}
			att.RolledBack = true
			finish(true)
		} else if err := sess.Commit(); err == nil {
			att.Acked = true
		} else {
			// The commit record may or may not be durable; recovery decides.
			att.Uncertain = true
			finish(true)
		}
		attempts = append(attempts, att)
	}
	return attempts, nil
}

// RecoverDiskCrash reopens an engine over a run's surviving disk image,
// running the full ARIES restart (analysis, redo, undo, page write-back).
// The caller owns the returned engine.
func RecoverDiskCrash(res *DiskCrashResult, poolPages int) (*sqldb.Engine, error) {
	if poolPages == 0 {
		poolPages = 8
	}
	return sqldb.OpenDisk(sqldb.Config{
		Name:            "disk-crash-recovered",
		Mode:            txn.Locking,
		WALPolicy:       wal.SyncNone,
		DiskDevice:      res.Device,
		DiskWAL:         res.WALImage,
		WALSink:         &bytes.Buffer{},
		BufferPoolPages: poolPages,
	})
}

// VerifyDiskCrash checks a recovered engine against the durability contract
// of the attempts that produced its disk image (pass cumulative attempts for
// chained runs):
//
//   - every acknowledged commit is a recovery winner, every rolled-back
//     transaction is not, and every winner is an acked or uncertain commit
//     (acked ⊆ winners ⊆ acked ∪ uncertain — an uncertain commit whose
//     record reached the log before the crash legitimately wins);
//   - the recovered table holds exactly the winners' writes replayed in
//     order, value- and pad-byte-exact;
//   - every page of the recovered device verifies (recovery reformatted and
//     rebuilt any torn page from the log).
func VerifyDiskCrash(res *DiskCrashResult, attempts []CommitAttempt, eng *sqldb.Engine) error {
	rec := eng.DiskRecovery()
	if rec == nil {
		return fmt.Errorf("consistency: recovered engine has no recovery result")
	}
	winners := map[uint64]bool{}
	for _, id := range rec.Winners {
		winners[id] = true
	}
	known := map[uint64]bool{}
	for i := range attempts {
		att := &attempts[i]
		if known[att.ID] {
			return fmt.Errorf("consistency: duplicate attempt txn id %d (id reuse across restarts)", att.ID)
		}
		known[att.ID] = true
		switch {
		case att.Acked && !winners[att.ID]:
			return fmt.Errorf("consistency: acked txn %d lost by recovery", att.ID)
		case att.RolledBack && winners[att.ID]:
			return fmt.Errorf("consistency: rolled-back txn %d won recovery", att.ID)
		}
	}
	for id := range winners {
		att := findAttempt(attempts, id)
		if att == nil {
			return fmt.Errorf("consistency: recovery winner %d is not a known attempt", id)
		}
		if !att.Acked && !att.Uncertain {
			return fmt.Errorf("consistency: recovery winner %d was rolled back", id)
		}
	}

	// Replay the winners over the model and compare with the recovered table.
	model := map[int64]int64{}
	for i := range attempts {
		att := &attempts[i]
		if !winners[att.ID] {
			continue
		}
		for _, op := range att.Ops {
			switch txn.WriteKind(op.Kind) {
			case txn.WriteInsert, txn.WriteUpdate:
				model[op.K] = op.V
			case txn.WriteDelete:
				delete(model, op.K)
			}
		}
	}
	if !eng.Catalog().HasTable("crashkv") {
		if len(model) != 0 {
			return fmt.Errorf("consistency: crashkv lost but %d rows expected", len(model))
		}
	} else {
		q, err := eng.Session().Query("SELECT k, v, pad FROM crashkv")
		if err != nil {
			return fmt.Errorf("consistency: recovered scan: %w", err)
		}
		if len(q.Rows) != len(model) {
			return fmt.Errorf("consistency: recovered %d rows, want %d", len(q.Rows), len(model))
		}
		for _, row := range q.Rows {
			k, v, pad := row[0].Int(), row[1].Int(), row[2].Str()
			want, ok := model[k]
			if !ok {
				return fmt.Errorf("consistency: recovered key %d should not exist", k)
			}
			if v != want {
				return fmt.Errorf("consistency: recovered key %d holds %d, want %d", k, v, want)
			}
			if pad != diskCrashPad(v) {
				return fmt.Errorf("consistency: recovered key %d pad bytes corrupted", k)
			}
		}
	}

	// Every device page must verify post-recovery: tears were rebuilt.
	n, err := res.Device.Pages()
	if err != nil {
		return err
	}
	buf := make([]byte, heap.PageSize)
	for id := uint32(0); id < n; id++ {
		if err := res.Device.ReadPage(id, buf); err != nil {
			return fmt.Errorf("consistency: recovered page %d: %w", id, err)
		}
		if err := heap.Verify(buf); err != nil {
			return fmt.Errorf("consistency: recovered page %d fails verification: %w", id, err)
		}
	}
	return nil
}

// MergeAttempts combines the attempt histories of chained runs (crash →
// recover → run → crash ...). Recovery restarts the transaction-id source
// above the log's high-water mark, so every LOGGED id is unique across
// lives; but an id that never reached the log (a rollback, or a commit
// attempted after the log died) is invisible to the next life and may be
// reused. Such an attempt can never win recovery or contribute contents, so
// on collision the later life's attempt is the one that counts.
func MergeAttempts(prev, next []CommitAttempt) []CommitAttempt {
	reused := map[uint64]bool{}
	for i := range next {
		reused[next[i].ID] = true
	}
	out := make([]CommitAttempt, 0, len(prev)+len(next))
	for i := range prev {
		if !reused[prev[i].ID] {
			out = append(out, prev[i])
		}
	}
	return append(out, next...)
}

// findAttempt returns the attempt with the given txn id, or nil.
func findAttempt(attempts []CommitAttempt, id uint64) *CommitAttempt {
	for i := range attempts {
		if attempts[i].ID == id {
			return &attempts[i]
		}
	}
	return nil
}
