package consistency

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"benchpress/internal/sqldb"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/wal"
)

// ErrKilled is the persistent error a KillWriter returns once its byte
// budget is exhausted - the emulation of a device that died mid-write.
var ErrKilled = errors.New("consistency: simulated crash: log device killed")

// KillWriter is an io.Writer that accepts a fixed byte budget, then fails
// forever: the write that crosses the budget is truncated (a torn tail) and
// every later write is rejected outright. The accepted bytes are the
// "surviving disk image" that recovery replays.
type KillWriter struct {
	mu     sync.Mutex
	budget int64 // remaining bytes; negative means unlimited
	killed bool
	buf    []byte
}

// NewKillWriter returns a writer that accepts budget bytes before dying.
// A negative budget never dies.
func NewKillWriter(budget int64) *KillWriter {
	return &KillWriter{budget: budget}
}

// Write implements io.Writer with the kill semantics above.
func (w *KillWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		return 0, ErrKilled
	}
	if w.budget < 0 || int64(len(p)) <= w.budget {
		w.buf = append(w.buf, p...)
		if w.budget >= 0 {
			w.budget -= int64(len(p))
		}
		return len(p), nil
	}
	n := int(w.budget)
	w.buf = append(w.buf, p[:n]...)
	w.budget = 0
	w.killed = true
	return n, ErrKilled
}

// Bytes returns a copy of the surviving disk image.
func (w *KillWriter) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf...)
}

// Killed reports whether the budget was exhausted.
func (w *KillWriter) Killed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.killed
}

// WalOp is one decoded logical write from a commit record.
type WalOp struct {
	// Kind is the txn.WriteKind of the write.
	Kind byte
	// K and V are the kv-row key and value (V is the pre-image for deletes).
	K, V int64
}

// LoggedTxn is one decoded commit record.
type LoggedTxn struct {
	// ID is the committing transaction's engine id.
	ID uint64
	// Seq is the WAL sequence number of the record.
	Seq uint64
	// Ops are the transaction's logical writes in program order.
	Ops []WalOp
}

// EncodeCommitPayload serializes a committing transaction's id and write set
// for the kv table: 8-byte txn id, then per write a kind byte plus two
// 8-byte little-endian integers (key, value). This is the CommitPayload hook
// the crash harness installs on the engine.
func EncodeCommitPayload(t *txn.Txn) []byte {
	ws := t.WriteSet()
	buf := make([]byte, 8, 8+len(ws)*17)
	binary.LittleEndian.PutUint64(buf, t.ID())
	for _, w := range ws {
		var rec [17]byte
		rec[0] = byte(w.Kind)
		binary.LittleEndian.PutUint64(rec[1:], uint64(w.Data[0].Int()))
		binary.LittleEndian.PutUint64(rec[9:], uint64(w.Data[1].Int()))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodeLog parses a surviving disk image into commit records, tolerating a
// torn tail (the expected result of a mid-write crash). Any other framing
// damage is a hard error: checksummed records that parsed must decode.
func DecodeLog(image []byte) ([]LoggedTxn, error) {
	recs, err := wal.ReadRecords(bytes.NewReader(image))
	if err != nil && !errors.Is(err, wal.ErrTorn) {
		return nil, err
	}
	out := make([]LoggedTxn, 0, len(recs))
	for _, rec := range recs {
		p := rec.Payload
		if len(p) < 8 || (len(p)-8)%17 != 0 {
			return nil, fmt.Errorf("consistency: malformed commit payload (%d bytes) at seq %d", len(p), rec.Seq)
		}
		lt := LoggedTxn{ID: binary.LittleEndian.Uint64(p), Seq: rec.Seq}
		for off := 8; off < len(p); off += 17 {
			lt.Ops = append(lt.Ops, WalOp{
				Kind: p[off],
				K:    int64(binary.LittleEndian.Uint64(p[off+1:])),
				V:    int64(binary.LittleEndian.Uint64(p[off+9:])),
			})
		}
		out = append(out, lt)
	}
	return out, nil
}

// CrashConfig parameterizes one crash-torture run.
type CrashConfig struct {
	// Mode selects the engine personality's concurrency control.
	Mode txn.Mode
	// Policy is the WAL sync policy under test. SyncNone gives write-through
	// appends (deterministic kill points); SyncGroup exercises group commit
	// failure propagation.
	Policy wal.SyncPolicy
	// GroupInterval is the group-commit flush interval for SyncGroup.
	GroupInterval time.Duration
	// Seed drives the workload.
	Seed int64
	// Txns is the number of transactions to attempt.
	Txns int
	// Workers is the number of concurrent sessions (1 = sequential,
	// deterministic; >1 exercises multi-record group-commit generations on
	// disjoint key ranges).
	Workers int
	// KillBudget is the log device's byte budget (negative = never dies).
	KillBudget int64
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.Txns == 0 {
		c.Txns = 120
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.GroupInterval == 0 {
		c.GroupInterval = 200 * time.Microsecond
	}
	return c
}

// CommitAttempt is one transaction the crash workload tried to commit.
type CommitAttempt struct {
	// ID is the engine transaction id.
	ID uint64
	// Ops is the expected logical write set, mirroring the WAL payload.
	Ops []WalOp
	// Acked reports that Commit returned nil: the durability contract says
	// the transaction must survive recovery.
	Acked bool
	// Uncertain reports that Commit returned a durability error: the
	// transaction aborted in memory and may or may not be on disk (the
	// classic commit-uncertainty window).
	Uncertain bool
	// RolledBack reports a voluntary rollback: the transaction must never
	// appear in the log.
	RolledBack bool
}

// CrashResult is the outcome of one crash-torture run.
type CrashResult struct {
	Attempts []CommitAttempt
	// Image is the surviving disk image.
	Image []byte
	// Killed reports whether the budget ran out during the run.
	Killed bool
}

// RunCrash drives a seeded single-table workload into an engine whose WAL
// sink is a KillWriter, recording for every transaction whether its commit
// was acknowledged, rejected (uncertain), or voluntarily rolled back,
// together with the exact write set that should have been logged.
func RunCrash(cfg CrashConfig) (*CrashResult, error) {
	cfg = cfg.withDefaults()
	kw := NewKillWriter(cfg.KillBudget)
	eng := sqldb.Open(sqldb.Config{
		Name:                "crash-torture",
		Mode:                cfg.Mode,
		WALPolicy:           cfg.Policy,
		GroupCommitInterval: cfg.GroupInterval,
		WALSink:             kw,
		CommitPayload:       EncodeCommitPayload,
	})
	defer eng.Close()

	setup := eng.Session()
	if _, err := setup.Exec("CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))"); err != nil {
		return nil, fmt.Errorf("consistency: crash schema: %w", err)
	}

	res := &CrashResult{}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	perWorker := cfg.Txns / cfg.Workers
	if perWorker == 0 {
		perWorker = 1
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Disjoint key range per worker: the torture targets the
			// durability path, so the workload is kept conflict-free.
			base := int64(worker) * 1000
			attempts, err := crashWorker(eng, cfg.Seed+int64(worker)*104729, base, perWorker)
			mu.Lock()
			res.Attempts = append(res.Attempts, attempts...)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Image = kw.Bytes()
	res.Killed = kw.Killed()
	return res, nil
}

// crashWorker runs one session's share of the torture workload over its own
// key range, tracking live keys so every statement succeeds and the expected
// write set is exactly the statement sequence.
func crashWorker(eng *sqldb.Engine, seed, base int64, txns int) ([]CommitAttempt, error) {
	sess := eng.Session()
	rng := rand.New(rand.NewSource(seed))
	live := map[int64]bool{}
	var attempts []CommitAttempt
	for i := 0; i < txns; i++ {
		if err := sess.Begin(); err != nil {
			return attempts, fmt.Errorf("consistency: crash begin: %w", err)
		}
		id := sess.TxnInfo().ID
		att := CommitAttempt{ID: id}
		nops := 1 + rng.Intn(4)
		touched := map[int64]bool{}
		for j := 0; j < nops; j++ {
			key := base + rng.Int63n(20)
			// One op per key per transaction: the engine's uniqueness check
			// is live-or-pending, so deleting and re-inserting a key inside
			// one transaction is rejected, and the torture targets the
			// durability path, not intra-txn churn.
			for touched[key] {
				key = base + rng.Int63n(20)
			}
			touched[key] = true
			var (
				err error
				op  WalOp
			)
			switch {
			case !live[key]:
				op = WalOp{Kind: byte(txn.WriteInsert), K: key, V: MakeTag(id, j)}
				_, err = sess.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", key, op.V)
				live[key] = true
			case rng.Intn(100) < 70:
				op = WalOp{Kind: byte(txn.WriteUpdate), K: key, V: MakeTag(id, j)}
				_, err = sess.Exec("UPDATE kv SET v = ? WHERE k = ?", op.V, key)
			default:
				// The payload logs the pre-image for deletes; recovery only
				// checks the key, so the harness records V=0 and the
				// comparison masks delete values.
				op = WalOp{Kind: byte(txn.WriteDelete), K: key}
				_, err = sess.Exec("DELETE FROM kv WHERE k = ?", key)
				live[key] = false
			}
			if err != nil {
				return attempts, fmt.Errorf("consistency: crash op: %w", err)
			}
			att.Ops = append(att.Ops, op)
		}
		if rng.Intn(100) < 10 {
			if err := sess.Rollback(); err != nil {
				return attempts, err
			}
			att.RolledBack = true
			// Roll live-key tracking back too.
			for _, op := range att.Ops {
				switch txn.WriteKind(op.Kind) {
				case txn.WriteInsert:
					live[op.K] = false
				case txn.WriteDelete:
					live[op.K] = true
				}
			}
			attempts = append(attempts, att)
			continue
		}
		err := sess.Commit()
		if err == nil {
			att.Acked = true
		} else {
			att.Uncertain = true
			// The engine aborted the transaction; undo key tracking.
			for _, op := range att.Ops {
				switch txn.WriteKind(op.Kind) {
				case txn.WriteInsert:
					live[op.K] = false
				case txn.WriteDelete:
					live[op.K] = true
				}
			}
		}
		attempts = append(attempts, att)
	}
	return attempts, nil
}

// VerifyCrash checks the durability contract of a finished run against its
// surviving disk image:
//
//   - every acknowledged commit is fully present in the replayed log with
//     exactly the write set the workload performed (payload integrity);
//   - no voluntarily rolled-back transaction appears;
//   - every replayed record belongs to an acknowledged or uncertain commit
//     (uncertain = the commit returned a durability error; group commit may
//     have flushed part of that generation before the device died).
//
// Under SyncNone the uncertainty window is empty by construction (a record
// is written in one append; a partial write is torn and dropped), so
// replayed == acked exactly.
func VerifyCrash(res *CrashResult, exactUncertainty bool) error {
	logged, err := DecodeLog(res.Image)
	if err != nil {
		return err
	}
	byID := map[uint64]*LoggedTxn{}
	lastSeq := uint64(0)
	for i := range logged {
		lt := &logged[i]
		if lt.Seq <= lastSeq {
			return fmt.Errorf("consistency: log sequence not increasing at txn %d", lt.ID)
		}
		lastSeq = lt.Seq
		if byID[lt.ID] != nil {
			return fmt.Errorf("consistency: txn %d logged twice", lt.ID)
		}
		byID[lt.ID] = lt
	}
	status := map[uint64]*CommitAttempt{}
	for i := range res.Attempts {
		att := &res.Attempts[i]
		status[att.ID] = att
		lt := byID[att.ID]
		switch {
		case att.Acked:
			if lt == nil {
				return fmt.Errorf("consistency: acked txn %d missing from replayed log", att.ID)
			}
			if err := sameOps(att.Ops, lt.Ops); err != nil {
				return fmt.Errorf("consistency: acked txn %d payload mismatch: %w", att.ID, err)
			}
		case att.RolledBack:
			if lt != nil {
				return fmt.Errorf("consistency: rolled-back txn %d appears in replayed log", att.ID)
			}
		case att.Uncertain && exactUncertainty:
			if lt != nil {
				return fmt.Errorf("consistency: unacked txn %d fully present in write-through log", att.ID)
			}
		}
	}
	for id := range byID {
		att := status[id]
		if att == nil {
			return fmt.Errorf("consistency: replayed log contains unknown txn %d", id)
		}
		if !att.Acked && !att.Uncertain {
			return fmt.Errorf("consistency: replayed log contains rolled-back txn %d", id)
		}
	}
	return nil
}

// sameOps compares an expected write set with a decoded one, masking values
// for deletes (the log records the pre-image, the workload does not track it).
func sameOps(want, got []WalOp) error {
	if len(want) != len(got) {
		return fmt.Errorf("op count %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Kind != g.Kind || w.K != g.K {
			return fmt.Errorf("op %d: got kind=%d k=%d, want kind=%d k=%d", i, g.Kind, g.K, w.Kind, w.K)
		}
		if txn.WriteKind(w.Kind) != txn.WriteDelete && w.V != g.V {
			return fmt.Errorf("op %d: got v=%d, want v=%d", i, g.V, w.V)
		}
	}
	return nil
}
