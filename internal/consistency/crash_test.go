package consistency

import (
	"bytes"
	"testing"
	"time"

	"benchpress/internal/sqldb/txn"
	"benchpress/internal/wal"
)

// crashBase is the baseline crash workload: write-through WAL, one session,
// no kill - used to measure the full log size for the kill-point sweep.
func crashBase(t *testing.T, seed int64) CrashConfig {
	t.Helper()
	cfg := CrashConfig{
		Mode:       txn.MVCC,
		Policy:     wal.SyncNone,
		Seed:       seed,
		KillBudget: -1,
	}
	if *long {
		cfg.Txns = 1200
	}
	return cfg
}

// TestKillWriter exercises the device-death contract directly.
func TestKillWriter(t *testing.T) {
	w := NewKillWriter(10)
	if n, err := w.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("worldwide")); n != 5 || err != ErrKilled {
		t.Fatalf("budget-crossing write: n=%d err=%v, want 5, ErrKilled", n, err)
	}
	if n, err := w.Write([]byte("x")); n != 0 || err != ErrKilled {
		t.Fatalf("post-kill write: n=%d err=%v", n, err)
	}
	if got := string(w.Bytes()); got != "helloworld" {
		t.Fatalf("surviving image %q, want %q", got, "helloworld")
	}
	if !w.Killed() {
		t.Fatal("writer not marked killed")
	}
}

// TestCrashRecoveryClean verifies the no-crash baseline: every acknowledged
// commit replays exactly, rolled-back transactions never appear.
func TestCrashRecoveryClean(t *testing.T) {
	res, err := RunCrash(crashBase(t, harnessSeed(t)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed {
		t.Fatal("unlimited budget run reported a kill")
	}
	var acked, rolledBack int
	for i := range res.Attempts {
		if res.Attempts[i].Acked {
			acked++
		}
		if res.Attempts[i].RolledBack {
			rolledBack++
		}
		if res.Attempts[i].Uncertain {
			t.Fatalf("txn %d uncertain without a crash", res.Attempts[i].ID)
		}
	}
	if acked == 0 || rolledBack == 0 {
		t.Fatalf("workload shape degenerate: acked=%d rolledBack=%d", acked, rolledBack)
	}
	if err := VerifyCrash(res, true); err != nil {
		t.Fatal(err)
	}
}

// TestCrashKillPointSweep is the torture core: the same seeded workload runs
// against log devices that die at byte budgets swept across the whole log,
// including cuts inside record frames. At every kill point, each
// acknowledged commit must survive replay byte-exactly and nothing
// rolled-back or unacknowledged may surface (write-through appends make the
// uncertainty window empty).
func TestCrashKillPointSweep(t *testing.T) {
	seed := harnessSeed(t)
	base, err := RunCrash(crashBase(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(base.Image))
	if total == 0 {
		t.Fatal("baseline produced an empty log")
	}
	points := 14
	if *long {
		points = 60
	}
	for i := 0; i <= points; i++ {
		budget := total * int64(i) / int64(points)
		// Probe both the aligned cut and one byte short of it, so both
		// record-boundary and mid-frame tears are covered.
		for _, b := range []int64{budget, budget - 3} {
			if b < 0 {
				continue
			}
			cfg := crashBase(t, seed)
			cfg.KillBudget = b
			res, err := RunCrash(cfg)
			if err != nil {
				t.Fatalf("budget %d: %v", b, err)
			}
			if err := VerifyCrash(res, true); err != nil {
				t.Fatalf("budget %d: %v", b, err)
			}
		}
	}
}

// TestCrashDeterminism pins the property the sweep relies on: the same seed
// and budget reproduce the same surviving disk image bit-for-bit.
func TestCrashDeterminism(t *testing.T) {
	cfg := crashBase(t, harnessSeed(t))
	cfg.KillBudget = 777
	a, err := RunCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Image, b.Image) {
		t.Fatalf("same seed+budget produced different disk images (%d vs %d bytes)", len(a.Image), len(b.Image))
	}
}

// TestCrashGroupCommit tortures the group-commit path with concurrent
// sessions: a died device must fail every waiter of the affected generation
// (no acknowledged-but-lost commits), while complete records from the
// partially flushed generation are attributed to the uncertainty window.
func TestCrashGroupCommit(t *testing.T) {
	seed := harnessSeed(t)
	base, err := RunCrash(CrashConfig{
		Mode: txn.MVCC, Policy: wal.SyncGroup, GroupInterval: 100 * time.Microsecond,
		Seed: seed, Workers: 4, KillBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCrash(base, false); err != nil {
		t.Fatal(err)
	}
	total := int64(len(base.Image))
	sweeps := []int64{total / 5, total / 2, total * 4 / 5}
	if *long {
		for i := int64(1); i < 20; i++ {
			sweeps = append(sweeps, total*i/20-1)
		}
	}
	for _, budget := range sweeps {
		if budget < 0 {
			continue
		}
		res, err := RunCrash(CrashConfig{
			Mode: txn.MVCC, Policy: wal.SyncGroup, GroupInterval: 100 * time.Microsecond,
			Seed: seed, Workers: 4, KillBudget: budget,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := VerifyCrash(res, false); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
	}
}
