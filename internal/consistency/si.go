package consistency

import "sort"

// verRec is one committed version of a key, derived from the recorded
// history: the final effect a committed transaction had on that key.
type verRec struct {
	ts      uint64 // commit (serialization) timestamp
	txnID   uint64
	val     int64
	deleted bool
	// claimed marks effects that went through the engine's write-claim
	// (update/delete). First-updater-wins protects claimed writes; inserts
	// are constraint-checked against live state instead.
	claimed bool
	snap    uint64 // writer's snapshot, for overlap checks
}

// keyWrites is the committed version timeline of one key, sorted by ts.
type keyWrites []verRec

// visibleAt returns the version visible to a snapshot: the latest version
// with ts <= snap that is not a tombstone.
func (kw keyWrites) visibleAt(snap uint64) (int64, bool) {
	for i := len(kw) - 1; i >= 0; i-- {
		if kw[i].ts <= snap {
			if kw[i].deleted {
				return 0, false
			}
			return kw[i].val, true
		}
	}
	return 0, false
}

// ovEntry is an own-write overlay entry during per-transaction replay.
type ovEntry struct {
	val     int64
	deleted bool
}

// siState is the precomputed index over a history that the SI checks share.
type siState struct {
	byID   map[uint64]*TxnRec
	writes map[int64]keyWrites
	// finalVal is, per committed txn and key, the last value the txn wrote
	// to the key (used to distinguish G1b intermediate reads from other
	// snapshot violations).
	finalVal map[uint64]map[int64]int64
}

// buildSI indexes the history's committed effects.
func buildSI(h *History) *siState {
	st := &siState{
		byID:     map[uint64]*TxnRec{},
		writes:   map[int64]keyWrites{},
		finalVal: map[uint64]map[int64]int64{},
	}
	for i := range h.Txns {
		t := &h.Txns[i]
		st.byID[t.Info.ID] = t
		if !t.Committed() {
			continue
		}
		// Final effect per key, in op order so later ops win.
		type eff struct {
			val     int64
			deleted bool
			claimed bool
		}
		effects := map[int64]eff{}
		for j := range t.Ops {
			op := &t.Ops[j]
			if op.Err != "" {
				continue
			}
			switch op.Kind {
			case OpWrite:
				if op.Affected > 0 {
					effects[op.Key] = eff{val: op.Val, claimed: true}
					st.noteFinal(t.Info.ID, op.Key, op.Val)
				}
			case OpInsert:
				if op.Affected > 0 {
					e := effects[op.Key]
					effects[op.Key] = eff{val: op.Val, claimed: e.claimed}
					st.noteFinal(t.Info.ID, op.Key, op.Val)
				}
			case OpDelete:
				if op.Affected > 0 {
					effects[op.Key] = eff{deleted: true, claimed: true}
				}
			}
		}
		for k, e := range effects {
			st.writes[k] = append(st.writes[k], verRec{
				ts: t.Info.SerialTS, txnID: t.Info.ID, val: e.val,
				deleted: e.deleted, claimed: e.claimed, snap: t.Info.Snapshot,
			})
		}
	}
	for k := range st.writes {
		kw := st.writes[k]
		sort.Slice(kw, func(i, j int) bool { return kw[i].ts < kw[j].ts })
		st.writes[k] = kw
	}
	return st
}

// noteFinal records the last value a committed txn wrote to a key.
func (st *siState) noteFinal(txnID uint64, key, val int64) {
	m := st.finalVal[txnID]
	if m == nil {
		m = map[int64]int64{}
		st.finalVal[txnID] = m
	}
	m[key] = val
}

// CheckSnapshotIsolation verifies a gomvcc history against the snapshot
// isolation contract:
//
//   - every read and scan of a committed transaction observes exactly the
//     database state at its snapshot timestamp, overlaid with its own writes;
//   - no read observes a value written by an aborted transaction (G1a) or a
//     non-final value of a committed transaction (G1b);
//   - no two overlapping committed transactions claim-write the same key
//     (G0 dirty write / lost update - first-updater-wins must abort one);
//   - an insert that succeeded over a snapshot-visible row is explained by a
//     concurrent committed delete (inserts are checked against live state,
//     not the snapshot, mirroring how SQL engines enforce unique
//     constraints).
//
// Write skew is legal under SI and is deliberately not flagged here; the
// bank workload asserts its presence separately.
func CheckSnapshotIsolation(h *History) *Report {
	r := &Report{}
	st := buildSI(h)
	for _, t := range h.CommittedTxns() {
		checkSITxn(r, st, t)
	}
	checkLostUpdates(r, st)
	return r
}

// checkSITxn replays one committed transaction at its snapshot.
func checkSITxn(r *Report, st *siState, t *TxnRec) {
	snap := t.Info.Snapshot
	overlay := map[int64]ovEntry{}
	lookup := func(k int64) (int64, bool) {
		if e, ok := overlay[k]; ok {
			if e.deleted {
				return 0, false
			}
			return e.val, true
		}
		return st.writes[k].visibleAt(snap)
	}
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Err != "" {
			r.add("si-internal", t.Info.ID, i, "committed txn contains errored op %s: %s", op.Kind, op.Err)
			continue
		}
		switch op.Kind {
		case OpRead, OpReadForUpdate:
			want, ok := lookup(op.Key)
			if ok == op.Found && (!ok || want == op.ReadVal) {
				break
			}
			classifyBadRead(r, st, t, i, op, want, ok)
		case OpWrite:
			_, ok := lookup(op.Key)
			want := 0
			if ok {
				want = 1
				overlay[op.Key] = ovEntry{val: op.Val}
			}
			if op.Affected != want {
				r.add("si-affected", t.Info.ID, i,
					"update k=%d affected %d rows, snapshot expects %d", op.Key, op.Affected, want)
			}
		case OpDelete:
			_, ok := lookup(op.Key)
			want := 0
			if ok {
				want = 1
				overlay[op.Key] = ovEntry{deleted: true}
			}
			if op.Affected != want {
				r.add("si-affected", t.Info.ID, i,
					"delete k=%d affected %d rows, snapshot expects %d", op.Key, op.Affected, want)
			}
		case OpInsert:
			if _, visible := lookup(op.Key); visible {
				// Inserts check uniqueness against live state, not the
				// snapshot: a concurrent delete committed after our snapshot
				// (but before we ran) legitimately frees the key.
				if !explainedByDelete(st, op.Key, snap, t.Info.SerialTS) {
					r.add("si-insert-dup", t.Info.ID, i,
						"insert k=%d succeeded over a snapshot-visible row with no concurrent committed delete", op.Key)
				}
			}
			overlay[op.Key] = ovEntry{val: op.Val}
			if op.Affected != 1 {
				r.add("si-affected", t.Info.ID, i, "insert k=%d affected %d rows, want 1", op.Key, op.Affected)
			}
		case OpScan:
			want := siRange(st, overlay, snap, op.Key, op.Key2)
			if !kvEqual(want, op.Rows) {
				r.add("si-scan", t.Info.ID, i,
					"scan [%d,%d] saw %v, snapshot expects %v", op.Key, op.Key2, op.Rows, want)
			}
		}
	}
}

// classifyBadRead labels a read that diverged from its snapshot expectation,
// using the value tag to identify the writer the read actually observed.
func classifyBadRead(r *Report, st *siState, t *TxnRec, opIdx int, op *Op, want int64, wantOK bool) {
	if !op.Found {
		r.add("si-snapshot-read", t.Info.ID, opIdx,
			"read k=%d missing, snapshot expects v=%d", op.Key, want)
		return
	}
	w := TagWriter(op.ReadVal)
	writer, known := st.byID[w]
	switch {
	case known && !writer.Committed() && w != t.Info.ID:
		r.add("G1a-aborted-read", t.Info.ID, opIdx,
			"read k=%d observed v=%d written by aborted txn %d", op.Key, op.ReadVal, w)
	case known && writer.Committed() && st.finalVal[w] != nil &&
		st.finalVal[w][op.Key] != 0 && st.finalVal[w][op.Key] != op.ReadVal:
		r.add("G1b-intermediate-read", t.Info.ID, opIdx,
			"read k=%d observed v=%d, an intermediate write of txn %d (final %d)",
			op.Key, op.ReadVal, w, st.finalVal[w][op.Key])
	case known && writer.Committed() && writer.Info.SerialTS > t.Info.Snapshot:
		r.add("si-snapshot-read", t.Info.ID, opIdx,
			"read k=%d observed v=%d committed at ts=%d, after snapshot %d",
			op.Key, op.ReadVal, w, t.Info.Snapshot)
	default:
		r.add("si-snapshot-read", t.Info.ID, opIdx,
			"read k=%d saw (found=%v v=%d), snapshot expects (found=%v v=%d)",
			op.Key, op.Found, op.ReadVal, wantOK, want)
	}
}

// explainedByDelete reports whether a committed delete of key landed in
// (snap, ts), which legitimizes an insert over a snapshot-visible row.
func explainedByDelete(st *siState, key int64, snap, ts uint64) bool {
	for _, v := range st.writes[key] {
		if v.deleted && v.ts > snap && v.ts < ts {
			return true
		}
	}
	return false
}

// siRange computes the expected scan result at a snapshot with overlay.
func siRange(st *siState, overlay map[int64]ovEntry, snap uint64, lo, hi int64) []KV {
	out := []KV{}
	for k := lo; k <= hi; k++ {
		if e, ok := overlay[k]; ok {
			if !e.deleted {
				out = append(out, KV{K: k, V: e.val})
			}
			continue
		}
		if v, ok := st.writes[k].visibleAt(snap); ok {
			out = append(out, KV{K: k, V: v})
		}
	}
	return out
}

// checkLostUpdates flags G0 dirty writes / lost updates: two committed
// transactions whose lifetimes overlap both claim-wrote the same key. Under
// first-updater-wins the later claimant must have aborted, so any such pair
// is an engine bug. A claimed write after an earlier writer is legal only
// when the claimant's snapshot already included that writer (snap >= ts).
// Inserts appearing as the later effect are exempt: they are gated by live
// uniqueness, not claims (see explainedByDelete).
func checkLostUpdates(r *Report, st *siState) {
	for key, kw := range st.writes {
		for j := 1; j < len(kw); j++ {
			later := &kw[j]
			if !later.claimed {
				continue
			}
			for i := 0; i < j; i++ {
				prior := &kw[i]
				if prior.ts > later.snap {
					r.add("G0-lost-update", later.txnID, -1,
						"k=%d: txn %d (snap=%d, ts=%d) claim-wrote over txn %d's write at ts=%d inside its lifetime",
						key, later.txnID, later.snap, later.ts, prior.txnID, prior.ts)
				}
			}
		}
	}
}
