package consistency

import (
	"fmt"
	"strings"
)

// Violation is one checker finding.
type Violation struct {
	// Class labels the anomaly ("replay-read", "G1a-aborted-read", ...).
	Class string
	// TxnID is the engine transaction id the finding is anchored to.
	TxnID uint64
	// OpIdx is the index of the offending op within that transaction (-1 for
	// transaction-level findings).
	OpIdx int
	// Detail is a human-readable explanation.
	Detail string
}

// Report collects checker findings.
type Report struct {
	Violations []Violation
}

// add records one violation.
func (r *Report) add(class string, txnID uint64, opIdx int, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Class: class, TxnID: txnID, OpIdx: opIdx, Detail: fmt.Sprintf(format, args...),
	})
}

// Empty reports whether no violations were found.
func (r *Report) Empty() bool { return len(r.Violations) == 0 }

// Count returns the number of violations of one class.
func (r *Report) Count(class string) int {
	n := 0
	for i := range r.Violations {
		if r.Violations[i].Class == class {
			n++
		}
	}
	return n
}

// String renders the report, truncated to the first few violations per class.
func (r *Report) String() string {
	if r.Empty() {
		return "consistency: no violations"
	}
	const perClass = 3
	shown := map[string]int{}
	var b strings.Builder
	fmt.Fprintf(&b, "consistency: %d violations:\n", len(r.Violations))
	for i := range r.Violations {
		v := &r.Violations[i]
		if shown[v.Class] >= perClass {
			continue
		}
		shown[v.Class]++
		fmt.Fprintf(&b, "  [%s] txn %d op %d: %s\n", v.Class, v.TxnID, v.OpIdx, v.Detail)
	}
	for class, n := range shown {
		if total := r.Count(class); total > n {
			fmt.Fprintf(&b, "  [%s] ... and %d more\n", class, total-n)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// CheckSerializable replays the committed transactions of a history in
// serialization-timestamp order against a single-threaded key-value model
// and requires every recorded observation - read values, row presence, scan
// result sets, rows-affected counts - to reproduce exactly. This is the
// differential oracle for the goserial and golock personalities: each claims
// serializability, and the serialization timestamps recorded at commit
// (commit timestamp for writers, clock-at-commit for read-only transactions)
// name the equivalent serial order outright, so conformance reduces to
// deterministic replay.
func CheckSerializable(h *History) *Report {
	r := &Report{}
	model := map[int64]int64{}
	for _, t := range h.SerialOrder() {
		for i := range t.Ops {
			op := &t.Ops[i]
			if op.Err != "" {
				// The harness rolls back on every statement error, so a
				// committed transaction must not contain one.
				r.add("replay-internal", t.Info.ID, i, "committed txn contains errored op %s: %s", op.Kind, op.Err)
				continue
			}
			switch op.Kind {
			case OpRead, OpReadForUpdate:
				want, ok := model[op.Key]
				if ok != op.Found || (ok && want != op.ReadVal) {
					r.add("replay-read", t.Info.ID, i,
						"read k=%d saw (found=%v v=%d), serial replay expects (found=%v v=%d)",
						op.Key, op.Found, op.ReadVal, ok, want)
				}
			case OpWrite:
				_, ok := model[op.Key]
				want := 0
				if ok {
					want = 1
					model[op.Key] = op.Val
				}
				if op.Affected != want {
					r.add("replay-affected", t.Info.ID, i,
						"update k=%d affected %d rows, replay expects %d", op.Key, op.Affected, want)
				}
			case OpInsert:
				if _, ok := model[op.Key]; ok {
					r.add("replay-insert", t.Info.ID, i,
						"insert k=%d succeeded but replay has the key present", op.Key)
				}
				model[op.Key] = op.Val
				if op.Affected != 1 {
					r.add("replay-affected", t.Info.ID, i,
						"insert k=%d affected %d rows, want 1", op.Key, op.Affected)
				}
			case OpDelete:
				_, ok := model[op.Key]
				want := 0
				if ok {
					want = 1
					delete(model, op.Key)
				}
				if op.Affected != want {
					r.add("replay-affected", t.Info.ID, i,
						"delete k=%d affected %d rows, replay expects %d", op.Key, op.Affected, want)
				}
			case OpScan:
				want := modelRange(model, op.Key, op.Key2)
				if !kvEqual(want, op.Rows) {
					r.add("replay-scan", t.Info.ID, i,
						"scan [%d,%d] saw %v, replay expects %v", op.Key, op.Key2, op.Rows, want)
				}
			}
		}
	}
	return r
}

// modelRange returns the model's rows in [lo, hi], sorted by key.
func modelRange(model map[int64]int64, lo, hi int64) []KV {
	out := []KV{}
	for k := lo; k <= hi; k++ {
		if v, ok := model[k]; ok {
			out = append(out, KV{K: k, V: v})
		}
	}
	return out
}

// kvEqual compares two sorted scan results.
func kvEqual(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
