package consistency

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"benchpress/internal/dbdriver"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/wal"
)

// Config parameterizes one harness run.
type Config struct {
	// Personality is the dbdriver target (goserial, golock, gomvcc).
	Personality string
	// Seed drives all randomness: workload content and, under the
	// deterministic stepper, the interleaving.
	Seed int64
	// Slots is the number of concurrently open transactions.
	Slots int
	// Txns is the number of transactions to finish (beyond the populate
	// transaction).
	Txns int
	// MaxOps bounds the operations per transaction.
	MaxOps int
	// BaseKeys is the size of the always-populated key range [0, BaseKeys).
	BaseKeys int64
	// ChurnKeys sizes the insert/delete range [BaseKeys, BaseKeys+ChurnKeys).
	// Zero disables insert/delete operations (used for golock, whose 2PL has
	// no next-key locking and therefore no phantom protection on absent
	// keys).
	ChurnKeys int64
	// Mutation installs a deliberate engine invariant break so the harness
	// can prove its checkers detect the corresponding bug class.
	Mutation txn.Mutation
	// Open, when set, supplies the database instance instead of opening one
	// from Personality — the disk crash sweep uses it to run the conformance
	// workload against an engine recovered from a torn disk image. The run
	// still closes the instance when it finishes.
	Open func() (*dbdriver.DB, error)
}

// withDefaults fills zero fields with the standard conformance shape.
func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.Txns == 0 {
		c.Txns = 300
	}
	if c.MaxOps == 0 {
		c.MaxOps = 8
	}
	if c.BaseKeys == 0 {
		c.BaseKeys = 12
	}
	return c
}

// slotConn is one pseudo-terminal: a connection plus its prepared statements
// and the record of the transaction currently open on it.
type slotConn struct {
	conn *dbdriver.Conn
	read, readFU, write, scan,
	insert, del *dbdriver.Stmt

	active  bool
	rec     TxnRec
	planned int // ops this transaction will attempt before finishing
}

// openSlot connects and prepares the workload statements.
func openSlot(db *dbdriver.DB) (*slotConn, error) {
	s := &slotConn{conn: db.Connect()}
	var err error
	s.read, err = s.conn.Prepare("SELECT v FROM kv WHERE k = ?")
	if err == nil {
		s.readFU, err = s.conn.Prepare("SELECT v FROM kv WHERE k = ? FOR UPDATE")
	}
	if err == nil {
		s.write, err = s.conn.Prepare("UPDATE kv SET v = ? WHERE k = ?")
	}
	if err == nil {
		s.scan, err = s.conn.Prepare("SELECT k, v FROM kv WHERE k BETWEEN ? AND ?")
	}
	if err == nil {
		s.insert, err = s.conn.Prepare("INSERT INTO kv (k, v) VALUES (?, ?)")
	}
	if err == nil {
		s.del, err = s.conn.Prepare("DELETE FROM kv WHERE k = ?")
	}
	if err != nil {
		_ = s.conn.Close()
		return nil, fmt.Errorf("consistency: prepare: %w", err)
	}
	return s, nil
}

// openDB opens the personality configured for harness use: background vacuum
// off and WAL emulation off, so the engine runs no goroutines of its own and
// the deterministic stepper owns every scheduling decision.
func openDB(cfg Config) (*dbdriver.DB, error) {
	if cfg.Open != nil {
		db, err := cfg.Open()
		if err != nil {
			return nil, err
		}
		db.TxnManager().SetMutation(cfg.Mutation)
		return db, nil
	}
	p, err := dbdriver.Lookup(cfg.Personality)
	if err != nil {
		return nil, err
	}
	p.VacuumInterval = 0
	p.WALPolicy = wal.SyncNone
	p.GroupCommitInterval = 0
	p.CommitDelay = 0
	db, err := dbdriver.OpenWith(p)
	if err != nil {
		return nil, err
	}
	db.TxnManager().SetMutation(cfg.Mutation)
	return db, nil
}

// populate creates the schema and seeds the base keys in one recorded
// transaction, so the initial versions participate in the checkers like any
// other committed write.
func populate(db *dbdriver.DB, cfg Config, h *History) error {
	conn := db.Connect()
	defer func() { _ = conn.Close() }()
	if _, err := conn.Exec("CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))"); err != nil {
		return fmt.Errorf("consistency: create schema: %w", err)
	}
	if err := conn.Begin(); err != nil {
		return err
	}
	id := conn.TxnInfo().ID
	rec := TxnRec{Slot: -1}
	for k := int64(0); k < cfg.BaseKeys; k++ {
		val := MakeTag(id, int(k))
		if _, err := conn.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", k, val); err != nil {
			return fmt.Errorf("consistency: populate key %d: %w", k, err)
		}
		rec.Ops = append(rec.Ops, Op{Kind: OpInsert, Key: k, Val: val, Affected: 1})
	}
	if err := conn.Commit(); err != nil {
		return fmt.Errorf("consistency: populate commit: %w", err)
	}
	rec.Info = conn.TxnInfo()
	h.Txns = append(h.Txns, rec)
	return nil
}

// execOp runs one generator choice on an open transaction, appending the
// recorded ops. A non-nil return means the statement failed and the
// transaction must be rolled back; the failing op (with Err set) has already
// been recorded.
func (s *slotConn) execOp(ch opChoice, txnID uint64) error {
	switch ch.kind {
	case chooseRead:
		return s.pointRead(s.read, OpRead, ch.key)
	case chooseRMW:
		// FOR UPDATE read, then overwrite the same key if present.
		if err := s.pointRead(s.readFU, OpReadForUpdate, ch.key); err != nil {
			return err
		}
		if !s.rec.Ops[len(s.rec.Ops)-1].Found {
			return nil
		}
		return s.pointWrite(ch.key, txnID)
	case chooseWrite:
		return s.pointWrite(ch.key, txnID)
	case chooseScan:
		op := Op{Kind: OpScan, Key: ch.key, Key2: ch.key2}
		res, err := s.scan.Query(ch.key, ch.key2)
		if err != nil {
			return s.fail(op, err)
		}
		op.Rows = make([]KV, 0, len(res.Rows))
		for _, r := range res.Rows {
			op.Rows = append(op.Rows, KV{K: r[0].Int(), V: r[1].Int()})
		}
		sort.Slice(op.Rows, func(i, j int) bool { return op.Rows[i].K < op.Rows[j].K })
		s.rec.Ops = append(s.rec.Ops, op)
		return nil
	case chooseInsert:
		op := Op{Kind: OpInsert, Key: ch.key, Val: MakeTag(txnID, len(s.rec.Ops))}
		res, err := s.insert.Exec(ch.key, op.Val)
		if err != nil {
			return s.fail(op, err)
		}
		op.Affected = res.RowsAffected
		s.rec.Ops = append(s.rec.Ops, op)
		return nil
	case chooseDelete:
		op := Op{Kind: OpDelete, Key: ch.key}
		res, err := s.del.Exec(ch.key)
		if err != nil {
			return s.fail(op, err)
		}
		op.Affected = res.RowsAffected
		s.rec.Ops = append(s.rec.Ops, op)
		return nil
	default:
		return fmt.Errorf("consistency: unknown op choice %d", ch.kind)
	}
}

// pointRead runs a single-key select and records the outcome.
func (s *slotConn) pointRead(st *dbdriver.Stmt, kind OpKind, key int64) error {
	op := Op{Kind: kind, Key: key}
	res, err := st.Query(key)
	if err != nil {
		return s.fail(op, err)
	}
	if len(res.Rows) > 0 {
		op.Found = true
		op.ReadVal = res.Rows[0][0].Int()
	}
	s.rec.Ops = append(s.rec.Ops, op)
	return nil
}

// pointWrite updates one key with a freshly tagged value.
func (s *slotConn) pointWrite(key int64, txnID uint64) error {
	op := Op{Kind: OpWrite, Key: key, Val: MakeTag(txnID, len(s.rec.Ops))}
	res, err := s.write.Exec(op.Val, key)
	if err != nil {
		return s.fail(op, err)
	}
	op.Affected = res.RowsAffected
	s.rec.Ops = append(s.rec.Ops, op)
	return nil
}

// fail records the failing op and returns the error that ends the txn.
func (s *slotConn) fail(op Op, err error) error {
	op.Err = err.Error()
	s.rec.Ops = append(s.rec.Ops, op)
	return err
}

// finishTxn closes out the slot's transaction: commit (or roll back when
// commitIt is false, or when abortErr reports a failed statement), then stamp
// the engine outcome into the record.
func (s *slotConn) finishTxn(commitIt bool, abortErr error) (TxnRec, error) {
	var err error
	if abortErr != nil || !commitIt {
		err = s.conn.Rollback()
	} else {
		// A commit rejection (e.g. durability failure) aborts the txn; the
		// engine outcome recorded below reflects it.
		_ = s.conn.Commit()
	}
	if abortErr != nil {
		s.rec.AbortErr = abortErr.Error()
	}
	s.rec.Info = s.conn.TxnInfo()
	rec := s.rec
	s.rec = TxnRec{}
	s.active = false
	return rec, err
}

// Run executes the deterministic conformance workload: a single goroutine
// steps Config.Slots concurrently-open transactions in PRNG order, with the
// engine in nowait mode so no operation ever blocks. The same seed therefore
// reproduces the same interleaving, the same engine decisions, and the same
// history fingerprint.
func Run(cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	db, err := openDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	db.TxnManager().SetNoWait(true)

	h := &History{Personality: cfg.Personality, Mode: db.Personality().Mode, Seed: cfg.Seed}
	if err := populate(db, cfg, h); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := &generator{rng: rng, baseKeys: cfg.BaseKeys, churnKeys: cfg.ChurnKeys}
	slots := make([]*slotConn, cfg.Slots)
	for i := range slots {
		if slots[i], err = openSlot(db); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, s := range slots {
			if s != nil {
				_ = s.conn.Close()
			}
		}
	}()

	finished := 0
	for finished < cfg.Txns {
		s := slots[rng.Intn(cfg.Slots)]
		switch {
		case !s.active:
			readonly := rng.Intn(100) < 20
			var err error
			if readonly {
				err = s.conn.BeginReadOnly()
			} else {
				err = s.conn.Begin()
			}
			if err != nil {
				if dbdriver.IsRetryable(err) {
					h.BusyBegins++
					continue
				}
				return nil, fmt.Errorf("consistency: begin: %w", err)
			}
			s.active = true
			s.rec = TxnRec{Slot: slotIndex(slots, s), ReadOnly: readonly}
			s.planned = 1 + rng.Intn(cfg.MaxOps)
		case len(s.rec.Ops) < s.planned:
			ch := gen.next(s.rec.ReadOnly)
			if err := s.execOp(ch, s.conn.TxnInfo().ID); err != nil {
				rec, rbErr := s.finishTxn(false, err)
				if rbErr != nil {
					return nil, fmt.Errorf("consistency: rollback: %w", rbErr)
				}
				h.Txns = append(h.Txns, rec)
				finished++
			}
		default:
			commitIt := rng.Intn(100) < 85
			rec, err := s.finishTxn(commitIt, nil)
			if err != nil {
				return nil, fmt.Errorf("consistency: finish: %w", err)
			}
			h.Txns = append(h.Txns, rec)
			finished++
		}
	}
	// Roll back whatever is still open so aborted in-flight writes are
	// recorded (the G1a checker wants aborted writers on the books).
	for _, s := range slots {
		if s.active {
			rec, err := s.finishTxn(false, nil)
			if err != nil {
				return nil, err
			}
			h.Txns = append(h.Txns, rec)
		}
	}
	return h, nil
}

// slotIndex returns s's position in slots.
func slotIndex(slots []*slotConn, s *slotConn) int {
	for i := range slots {
		if slots[i] == s {
			return i
		}
	}
	return -1
}

// RunConcurrent executes the same workload shape with one goroutine per slot
// and the engine in its normal blocking mode. Interleaving is no longer
// deterministic - fingerprints are meaningless here - but every recorded
// outcome still carries engine timestamps, so the oracle and SI checkers
// apply unchanged. This is the stress arm that shakes out races the
// deterministic stepper cannot reach.
func RunConcurrent(cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	db, err := openDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	h := &History{Personality: cfg.Personality, Mode: db.Personality().Mode, Seed: cfg.Seed}
	if err := populate(db, cfg, h); err != nil {
		return nil, err
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	perSlot := cfg.Txns / cfg.Slots
	if perSlot == 0 {
		perSlot = 1
	}
	for i := 0; i < cfg.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			s, err := openSlot(db)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer func() { _ = s.conn.Close() }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(slot)*7919))
			gen := &generator{rng: rng, baseKeys: cfg.BaseKeys, churnKeys: cfg.ChurnKeys}
			for done := 0; done < perSlot; done++ {
				rec, err := s.runOneTxn(rng, gen, slot, cfg)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					h.Txns = append(h.Txns, rec)
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return h, nil
}

// runOneTxn runs a complete transaction on the slot (concurrent mode).
func (s *slotConn) runOneTxn(rng *rand.Rand, gen *generator, slot int, cfg Config) (TxnRec, error) {
	readonly := rng.Intn(100) < 20
	var err error
	if readonly {
		err = s.conn.BeginReadOnly()
	} else {
		err = s.conn.Begin()
	}
	if err != nil {
		return TxnRec{}, fmt.Errorf("consistency: begin: %w", err)
	}
	s.active = true
	s.rec = TxnRec{Slot: slot, ReadOnly: readonly}
	planned := 1 + rng.Intn(cfg.MaxOps)
	for len(s.rec.Ops) < planned {
		if err := s.execOp(gen.next(readonly), s.conn.TxnInfo().ID); err != nil {
			return s.finishTxn(false, err)
		}
	}
	return s.finishTxn(rng.Intn(100) < 85, nil)
}
