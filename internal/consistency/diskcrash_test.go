package consistency

import (
	"bytes"
	"testing"

	"benchpress/internal/dbdriver"
	"benchpress/internal/sqldb/storage/heap"
	"benchpress/internal/sqldb/txn"
)

// recoverVerifyConform recovers a crash run's disk image, checks the
// durability contract, optionally runs the isolation-conformance oracle on
// the recovered engine (proving it is a fully working database, not just a
// readable one), and returns the number of torn pages recovery rebuilt.
func recoverVerifyConform(t *testing.T, res *DiskCrashResult, attempts []CommitAttempt, conformTxns int, seed int64) int {
	t.Helper()
	eng, err := RecoverDiskCrash(res, 8)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	torn := len(eng.DiskRecovery().TornPages)
	if err := VerifyDiskCrash(res, attempts, eng); err != nil {
		eng.Close()
		t.Fatal(err)
	}
	if conformTxns == 0 {
		eng.Close()
		return torn
	}
	// The conformance workload uses its own table (kv), so the recovered
	// crashkv rows ride along untouched; ChurnKeys is 0 because the locking
	// engine has no phantom protection on absent keys. Run closes the engine.
	h, err := Run(Config{
		Personality: "golock-disk-recovered",
		Seed:        seed,
		Txns:        conformTxns,
		ChurnKeys:   0,
		Open: func() (*dbdriver.DB, error) {
			return dbdriver.Wrap(dbdriver.Personality{
				Name: "golock-disk-recovered", Mode: txn.Locking,
			}, eng), nil
		},
	})
	if err != nil {
		t.Fatalf("conformance on recovered engine: %v", err)
	}
	if r := CheckSerializable(h); !r.Empty() {
		for _, v := range r.Violations {
			t.Errorf("recovered-engine %s: txn %d op %d: %s", v.Class, v.TxnID, v.OpIdx, v.Detail)
		}
		t.FailNow()
	}
	return torn
}

// TestDiskCrashClean is the no-crash baseline: with an unlimited budget every
// acked commit wins recovery and the recovered contents match the model.
func TestDiskCrashClean(t *testing.T) {
	res, err := RunDiskCrash(DiskCrashConfig{Seed: harnessSeed(t), Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed {
		t.Fatal("unlimited budget run reported a kill")
	}
	var acked, rolledBack int
	for i := range res.Attempts {
		if res.Attempts[i].Acked {
			acked++
		}
		if res.Attempts[i].RolledBack {
			rolledBack++
		}
		if res.Attempts[i].Uncertain {
			t.Fatalf("txn %d uncertain without a crash", res.Attempts[i].ID)
		}
	}
	if acked == 0 || rolledBack == 0 {
		t.Fatalf("workload shape degenerate: acked=%d rolledBack=%d", acked, rolledBack)
	}
	if len(res.PageWrites) == 0 {
		t.Fatal("no page flushes: the pool never wrote the device")
	}
	recoverVerifyConform(t, res, res.Attempts, 0, harnessSeed(t))
}

// TestDiskCrashDeterminism pins the property the sweep stands on: the same
// seed and budget reproduce the same WAL bytes and the same device image.
func TestDiskCrashDeterminism(t *testing.T) {
	cfg := DiskCrashConfig{Seed: harnessSeed(t), Budget: 9000}
	a, err := RunDiskCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDiskCrash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.WALImage, b.WALImage) {
		t.Fatalf("same seed+budget produced different WAL images (%d vs %d bytes)",
			len(a.WALImage), len(b.WALImage))
	}
	ai, bi := a.Device.Image(), b.Device.Image()
	if len(ai) != len(bi) {
		t.Fatalf("device page counts differ: %d vs %d", len(ai), len(bi))
	}
	for i := range ai {
		if !bytes.Equal(ai[i], bi[i]) {
			t.Fatalf("device page %d differs between identical runs", i)
		}
	}
}

// TestDiskCrashKillPointSweep is the torture core: the seeded workload runs
// against budgets swept across the whole durable byte stream — evenly spaced
// cuts (aligned and mid-frame), cuts inside heap page flushes, and cuts
// inside checkpoint records. Every kill point must recover to an image that
// honors acked ⊆ winners ⊆ acked ∪ uncertain with byte-exact contents, and
// the recovered engine must pass the isolation-conformance oracle.
func TestDiskCrashKillPointSweep(t *testing.T) {
	seed := harnessSeed(t)
	dry, err := RunDiskCrash(DiskCrashConfig{Seed: seed, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	total, floor := dry.Used, dry.SchemaFloor
	if total <= floor {
		t.Fatalf("degenerate stream: total=%d floor=%d", total, floor)
	}

	var points []int64
	add := func(b int64) {
		if b > floor && b < total {
			points = append(points, b)
		}
	}
	fractions := 10
	if *long {
		fractions = 40
	}
	for i := 1; i <= fractions; i++ {
		b := floor + (total-floor)*int64(i)/int64(fractions)
		add(b)
		add(b - 3) // mid-frame: WAL record headers are longer than 3 bytes
	}
	// Mid-page-flush tears: cut inside the first, a middle, and the last
	// page write of the dry run.
	var pw []int64
	for _, off := range dry.PageWrites {
		if off > floor {
			pw = append(pw, off)
		}
	}
	if len(pw) == 0 {
		t.Fatal("no page flushes after the schema floor to tear")
	}
	for _, off := range []int64{pw[0], pw[len(pw)/2], pw[len(pw)-1]} {
		add(off + 1)
		add(off + heap.PageSize/2)
		add(off + heap.PageSize - 1)
	}
	// Mid-checkpoint tears: cut inside checkpoint record frames.
	ckpts := [][2]int64{}
	for _, cw := range dry.CheckpointWrites() {
		if cw[0] > floor {
			ckpts = append(ckpts, cw)
		}
	}
	if len(ckpts) == 0 {
		t.Fatal("no checkpoints after the schema floor to tear")
	}
	for _, cw := range []([2]int64){ckpts[0], ckpts[len(ckpts)-1]} {
		add(cw[0] + 1)
		add(cw[0] + cw[1]/2)
		add(cw[0] + cw[1] - 1)
	}
	if len(points) < 15 {
		t.Fatalf("only %d kill points; the sweep needs at least 15", len(points))
	}

	tornTotal := 0
	for _, b := range points {
		res, err := RunDiskCrash(DiskCrashConfig{Seed: seed, Budget: b})
		if err != nil {
			t.Fatalf("budget %d: %v", b, err)
		}
		if !res.Killed {
			t.Fatalf("budget %d below total %d did not kill", b, total)
		}
		tornTotal += recoverVerifyConform(t, res, res.Attempts, 60, seed+b)
	}
	if tornTotal == 0 {
		t.Fatal("no kill point produced a torn page; mid-page-flush cuts are not biting")
	}
}

// TestDiskCrashChainedRestarts crashes, recovers, keeps running on the
// recovered image, crashes again, and verifies the final recovery against
// the cumulative history. This is also the regression net for transaction-id
// reuse across restarts: a second-life transaction must never be able to
// borrow a first-life commit record.
func TestDiskCrashChainedRestarts(t *testing.T) {
	seed := harnessSeed(t)
	dry1, err := RunDiskCrash(DiskCrashConfig{Seed: seed, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	run1, err := RunDiskCrash(DiskCrashConfig{
		Seed:   seed,
		Budget: dry1.SchemaFloor + (dry1.Used-dry1.SchemaFloor)*3/5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run1.Killed {
		t.Fatal("first run did not crash")
	}

	// Second life: reopen over the surviving image (recovery runs inside)
	// and crash again at a budget found by a chained dry run.
	chain := DiskCrashConfig{Seed: seed + 1, Device: run1.Device, WAL: run1.WALImage}
	// The chained dry run mutates the device via recovery write-back, so run
	// it on a deep copy to keep the real chain pristine.
	dryDev := heap.NewMemDevice()
	for id, pg := range run1.Device.Image() {
		if pg != nil {
			if err := dryDev.WritePage(uint32(id), pg); err != nil {
				t.Fatal(err)
			}
		}
	}
	dry2, err := RunDiskCrash(DiskCrashConfig{Seed: seed + 1, Device: dryDev, WAL: run1.WALImage, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	chain.Budget = dry2.SchemaFloor + (dry2.Used-dry2.SchemaFloor)*3/5
	run2, err := RunDiskCrash(chain)
	if err != nil {
		t.Fatal(err)
	}
	if !run2.Killed {
		t.Fatal("second run did not crash")
	}

	recoverVerifyConform(t, run2, MergeAttempts(run1.Attempts, run2.Attempts), 120, seed+2)
}
