// Package consistency is the isolation-conformance and differential-oracle
// harness for the embedded engine's three personalities. It generates
// seed-deterministic multi-key transactional workloads, executes them through
// the full SQL surface (parser, planner, dbdriver), records a complete
// operation history, and checks that history against the isolation contract
// each personality claims:
//
//   - goserial, golock: serializability, verified by replaying the committed
//     transactions in serialization-timestamp order against a single-threaded
//     model and requiring every recorded read, scan, and rows-affected count
//     to reproduce exactly (see oracle.go).
//   - gomvcc: snapshot isolation, verified by per-transaction snapshot reads
//     plus the SI anomaly taxonomy - G0 dirty writes / lost updates, G1a
//     aborted reads, G1b intermediate reads (see si.go). Write skew is
//     permitted under SI and is separately asserted *present* under
//     contention by the bank workload (see bank.go).
//
// The harness validates itself through the engine's Mutation switches:
// disabling one invariant per engine must make the corresponding checker
// fail (see the self-validation tests).
package consistency

import (
	"fmt"
	"hash/fnv"
	"sort"

	"benchpress/internal/sqldb/txn"
)

// TagBase partitions a written value into a writer transaction id and an
// operation index: value = txnID*TagBase + opIdx. Every value the harness
// writes is a tag, so any value read back identifies exactly which operation
// of which transaction produced it - the mechanism behind the aborted-read
// and intermediate-read checks.
const TagBase = 1 << 20

// MakeTag builds the tagged value for operation opIdx of transaction txnID.
func MakeTag(txnID uint64, opIdx int) int64 {
	return int64(txnID)*TagBase + int64(opIdx)
}

// TagWriter extracts the writing transaction id from a tagged value.
func TagWriter(v int64) uint64 { return uint64(v / TagBase) }

// TagOp extracts the operation index from a tagged value.
func TagOp(v int64) int { return int(v % TagBase) }

// OpKind classifies one recorded operation.
type OpKind uint8

const (
	// OpRead is a point SELECT by primary key.
	OpRead OpKind = iota
	// OpReadForUpdate is a point SELECT ... FOR UPDATE (the read half of a
	// read-modify-write pair).
	OpReadForUpdate
	// OpWrite is a point UPDATE by primary key.
	OpWrite
	// OpScan is a range SELECT with BETWEEN bounds.
	OpScan
	// OpInsert is a point INSERT.
	OpInsert
	// OpDelete is a point DELETE by primary key.
	OpDelete
)

// String returns the kind's short name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpReadForUpdate:
		return "readfu"
	case OpWrite:
		return "write"
	case OpScan:
		return "scan"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// KV is one row observed by a scan.
type KV struct {
	K, V int64
}

// Op is one executed operation and its observed outcome.
type Op struct {
	Kind OpKind
	// Key is the target key (scan lower bound for OpScan).
	Key int64
	// Key2 is the scan upper bound (inclusive); unused otherwise.
	Key2 int64
	// Val is the tagged value written by OpWrite and OpInsert.
	Val int64
	// Found and ReadVal record the outcome of OpRead/OpReadForUpdate.
	Found   bool
	ReadVal int64
	// Rows is the scan result, sorted by key.
	Rows []KV
	// Affected is the row count reported for OpWrite/OpInsert/OpDelete.
	Affected int
	// Err records the statement error that ended the transaction, if any.
	// The harness rolls back on every statement error, so an Err op is
	// always the last op of an aborted transaction.
	Err string
}

// TxnRec is the recorded history of one transaction.
type TxnRec struct {
	// Slot is the harness slot (pseudo-terminal) that ran the transaction.
	Slot int
	// ReadOnly reports whether the transaction was declared read-only.
	ReadOnly bool
	// Ops are the operations in execution order.
	Ops []Op
	// Info is the engine-reported identity and outcome: transaction id,
	// snapshot timestamp, serialization timestamp, and commit flag.
	Info txn.Info
	// AbortErr is the error that ended the transaction ("" for a commit or
	// a voluntary rollback).
	AbortErr string
}

// Committed reports whether the transaction committed.
func (t *TxnRec) Committed() bool { return t.Info.Committed }

// History is the complete recorded execution of one harness run.
type History struct {
	// Personality is the dbdriver personality name the run targeted.
	Personality string
	// Mode is the concurrency-control mode of that personality.
	Mode txn.Mode
	// Seed is the generator seed.
	Seed int64
	// Txns holds every transaction that ran, in finish order. Txns[0] is
	// always the populate transaction that seeded the base keys.
	Txns []TxnRec
	// BusyBegins counts begin attempts rejected with ErrBusy (Serial
	// personality in nowait mode).
	BusyBegins int
}

// CommittedTxns returns the committed transactions in finish order.
func (h *History) CommittedTxns() []*TxnRec {
	out := make([]*TxnRec, 0, len(h.Txns))
	for i := range h.Txns {
		if h.Txns[i].Committed() {
			out = append(out, &h.Txns[i])
		}
	}
	return out
}

// SerialOrder returns the committed transactions sorted into serialization
// order: ascending serialization timestamp; at equal timestamps the writer
// precedes read-only transactions (a read-only commit observes the clock
// value of the last writer it may have read), and remaining ties break by
// transaction id for determinism.
func (h *History) SerialOrder() []*TxnRec {
	txns := h.CommittedTxns()
	sort.SliceStable(txns, func(i, j int) bool {
		a, b := txns[i], txns[j]
		if a.Info.SerialTS != b.Info.SerialTS {
			return a.Info.SerialTS < b.Info.SerialTS
		}
		aw, bw := a.Info.Writes > 0, b.Info.Writes > 0
		if aw != bw {
			return aw // writer first
		}
		return a.Info.ID < b.Info.ID
	})
	return txns
}

// Fingerprint hashes the complete history (every transaction, operation, and
// observed result) into one 64-bit value. Two runs with the same seed must
// produce the same fingerprint under the deterministic harness.
func (h *History) Fingerprint() uint64 {
	fh := fnv.New64a()
	fmt.Fprintf(fh, "%s/%d/busy=%d\n", h.Personality, h.Seed, h.BusyBegins)
	for i := range h.Txns {
		t := &h.Txns[i]
		fmt.Fprintf(fh, "txn slot=%d ro=%v id=%d snap=%d ts=%d c=%v w=%d abort=%q\n",
			t.Slot, t.ReadOnly, t.Info.ID, t.Info.Snapshot, t.Info.SerialTS,
			t.Info.Committed, t.Info.Writes, t.AbortErr)
		for j := range t.Ops {
			op := &t.Ops[j]
			fmt.Fprintf(fh, "  op %s k=%d k2=%d v=%d found=%v rv=%d aff=%d err=%q rows=%v\n",
				op.Kind, op.Key, op.Key2, op.Val, op.Found, op.ReadVal,
				op.Affected, op.Err, op.Rows)
		}
	}
	return fh.Sum64()
}

// Stats summarizes a history for logging.
func (h *History) Stats() string {
	var committed, aborted, ops int
	for i := range h.Txns {
		ops += len(h.Txns[i].Ops)
		if h.Txns[i].Committed() {
			committed++
		} else {
			aborted++
		}
	}
	return fmt.Sprintf("%s seed=%d: %d txns (%d committed, %d aborted), %d ops, %d busy begins",
		h.Personality, h.Seed, len(h.Txns), committed, aborted, ops, h.BusyBegins)
}
