package consistency

import (
	"fmt"
	"math/rand"

	"benchpress/internal/dbdriver"
)

// BankConfig parameterizes the write-skew differential workload.
type BankConfig struct {
	// Personality is the dbdriver target.
	Personality string
	// Seed drives the deterministic stepper.
	Seed int64
	// Pairs is the number of account pairs; pair p owns keys 2p and 2p+1.
	Pairs int64
	// Slots is the number of concurrently open transactions.
	Slots int
	// Txns is the number of withdrawal attempts to finish.
	Txns int
}

func (c BankConfig) withDefaults() BankConfig {
	if c.Pairs == 0 {
		c.Pairs = 2
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.Txns == 0 {
		c.Txns = 200
	}
	return c
}

// BankResult summarizes one bank run.
type BankResult struct {
	// NegativePairs counts account pairs whose final combined balance is
	// negative - each one is a materialized write skew.
	NegativePairs int
	// Committed and Aborted count withdrawal transactions by outcome.
	Committed, Aborted int
	// Busy counts begin attempts rejected in nowait mode.
	Busy int
}

// RunBank runs the classic write-skew bank workload: each account pair (a, b)
// starts at (100, 100) under the invariant a+b >= 0, and every withdrawal
// transaction reads both balances with plain (non-locking) reads, then - if
// the combined balance covers it - withdraws the entire combined balance from
// one side. Serializable engines (goserial, golock) must keep every pair
// non-negative. Snapshot isolation permits two overlapping withdrawals that
// each saw the untouched pair and drained opposite sides, driving the pair
// negative: the write-skew anomaly the harness asserts is *present* on
// gomvcc under contention, making the checker distinction observable rather
// than vacuous.
func RunBank(cfg BankConfig) (*BankResult, error) {
	cfg = cfg.withDefaults()
	db, err := openDB(Config{Personality: cfg.Personality})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	db.TxnManager().SetNoWait(true)

	setup := db.Connect()
	if _, err := setup.Exec("CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))"); err != nil {
		return nil, fmt.Errorf("consistency: bank schema: %w", err)
	}
	for k := int64(0); k < 2*cfg.Pairs; k++ {
		if _, err := setup.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", k, int64(100)); err != nil {
			return nil, fmt.Errorf("consistency: bank populate: %w", err)
		}
	}
	_ = setup.Close()

	type bankSlot struct {
		conn       *dbdriver.Conn
		active     bool
		stage      int // 0: read a; 1: read b; 2: withdraw or commit
		pair, side int64
		balA, balB int64
	}
	slots := make([]*bankSlot, cfg.Slots)
	for i := range slots {
		slots[i] = &bankSlot{conn: db.Connect()}
	}
	defer func() {
		for _, s := range slots {
			_ = s.conn.Close()
		}
	}()

	res := &BankResult{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	abortSlot := func(s *bankSlot) error {
		if err := s.conn.Rollback(); err != nil {
			return err
		}
		s.active = false
		res.Aborted++
		return nil
	}
	finished := 0
	for finished < cfg.Txns {
		s := slots[rng.Intn(cfg.Slots)]
		if !s.active {
			if err := s.conn.Begin(); err != nil {
				if dbdriver.IsRetryable(err) {
					res.Busy++
					continue
				}
				return nil, err
			}
			s.active = true
			s.stage = 0
			s.pair = rng.Int63n(cfg.Pairs)
			s.side = rng.Int63n(2)
			continue
		}
		step := func(key int64) (int64, error) {
			row, err := s.conn.QueryRow("SELECT v FROM kv WHERE k = ?", key)
			if err != nil {
				return 0, err
			}
			if row == nil {
				return 0, fmt.Errorf("consistency: bank account %d missing", key)
			}
			return row[0].Int(), nil
		}
		switch s.stage {
		case 0:
			bal, err := step(2 * s.pair)
			if err != nil {
				if !dbdriver.IsRetryable(err) {
					return nil, err
				}
				if err := abortSlot(s); err != nil {
					return nil, err
				}
				finished++
				continue
			}
			s.balA, s.stage = bal, 1
		case 1:
			bal, err := step(2*s.pair + 1)
			if err != nil {
				if !dbdriver.IsRetryable(err) {
					return nil, err
				}
				if err := abortSlot(s); err != nil {
					return nil, err
				}
				finished++
				continue
			}
			s.balB, s.stage = bal, 2
		default:
			amount := s.balA + s.balB
			commitErr := error(nil)
			if amount > 0 {
				// Withdraw the full combined balance from one side: the
				// invariant a+b >= 0 holds iff no overlapping withdrawal
				// also saw the old balances.
				key, old := 2*s.pair, s.balA
				if s.side == 1 {
					key, old = 2*s.pair+1, s.balB
				}
				_, err := s.conn.Exec("UPDATE kv SET v = ? WHERE k = ?", old-amount, key)
				commitErr = err
			}
			if commitErr != nil {
				if !dbdriver.IsRetryable(commitErr) {
					return nil, commitErr
				}
				if err := abortSlot(s); err != nil {
					return nil, err
				}
				finished++
				continue
			}
			if err := s.conn.Commit(); err != nil {
				return nil, fmt.Errorf("consistency: bank commit: %w", err)
			}
			s.active = false
			res.Committed++
			finished++
		}
	}
	for _, s := range slots {
		if s.active {
			if err := abortSlot(s); err != nil {
				return nil, err
			}
		}
	}

	check := db.Connect()
	defer func() { _ = check.Close() }()
	for p := int64(0); p < cfg.Pairs; p++ {
		a, err := check.QueryRow("SELECT v FROM kv WHERE k = ?", 2*p)
		if err != nil {
			return nil, err
		}
		b, err := check.QueryRow("SELECT v FROM kv WHERE k = ?", 2*p+1)
		if err != nil {
			return nil, err
		}
		if a[0].Int()+b[0].Int() < 0 {
			res.NegativePairs++
		}
	}
	return res, nil
}
