package consistency

import "math/rand"

// opChoice is one generator decision: which operation to run next and on
// which key(s). RMW pairs are expanded by the harness into a FOR UPDATE read
// followed by a write of the same key.
type opChoice struct {
	kind opKindChoice
	key  int64
	key2 int64 // scan upper bound
}

// opKindChoice is the generator-level operation alphabet. It is wider than
// OpKind because a read-modify-write is one choice that records as two ops.
type opKindChoice uint8

const (
	chooseRead opKindChoice = iota
	chooseRMW
	chooseWrite
	chooseScan
	chooseInsert
	chooseDelete
)

// generator draws operations from a seeded PRNG. All randomness of a harness
// run flows through one *rand.Rand, so a seed fully determines the workload
// and - under the deterministic stepper - the interleaving.
type generator struct {
	rng       *rand.Rand
	baseKeys  int64
	churnKeys int64
}

// baseKey picks a key from the always-populated base range.
func (g *generator) baseKey() int64 { return g.rng.Int63n(g.baseKeys) }

// churnKey picks a key from the insert/delete churn range.
func (g *generator) churnKey() int64 { return g.baseKeys + g.rng.Int63n(g.churnKeys) }

// next draws the next operation for a transaction. Read-only transactions
// draw only reads and scans. When the churn range is disabled (golock: the
// 2PL engine has no next-key locks, so operations on absent keys open phantom
// windows that are outside its serializable-conformance envelope), insert and
// delete choices are remapped onto writes and reads of the base range.
func (g *generator) next(readonly bool) opChoice {
	if readonly {
		if g.rng.Intn(100) < 70 {
			return opChoice{kind: chooseRead, key: g.baseKey()}
		}
		return g.scan()
	}
	r := g.rng.Intn(100)
	switch {
	case r < 30:
		return opChoice{kind: chooseRead, key: g.baseKey()}
	case r < 45:
		return opChoice{kind: chooseRMW, key: g.baseKey()}
	case r < 65:
		return opChoice{kind: chooseWrite, key: g.baseKey()}
	case r < 75:
		return g.scan()
	case r < 88:
		if g.churnKeys == 0 {
			return opChoice{kind: chooseWrite, key: g.baseKey()}
		}
		return opChoice{kind: chooseInsert, key: g.churnKey()}
	default:
		if g.churnKeys == 0 {
			return opChoice{kind: chooseRead, key: g.baseKey()}
		}
		return opChoice{kind: chooseDelete, key: g.churnKey()}
	}
}

// scan draws a range over the base keys (churn keys are excluded from scans
// so the same scan envelope applies to every personality).
func (g *generator) scan() opChoice {
	lo := g.rng.Int63n(g.baseKeys)
	width := 1 + g.rng.Int63n(g.baseKeys/2+1)
	hi := lo + width
	if hi >= g.baseKeys {
		hi = g.baseKeys - 1
	}
	return opChoice{kind: chooseScan, key: lo, key2: hi}
}
