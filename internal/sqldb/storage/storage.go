// Package storage implements the in-memory row store of the embedded engine.
//
// Every table row is a chain of immutable versions (newest first). A version
// carries begin/end timestamps in the Hekaton style: values below txnMark are
// commit timestamps; values with the high bit set identify the uncommitted
// transaction that produced (begin) or superseded (end) the version. This one
// representation serves all three concurrency-control engines — MVCC readers
// pick versions by snapshot timestamp, locking and serial engines read the
// newest committed (or self-written) version.
//
// Index entries are maintained eagerly on write and point at row ids; readers
// always re-validate fetched versions against both visibility and the query
// predicate, so a stale index entry can only cause a filtered-out false
// positive, never a wrong result.
package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"benchpress/internal/btree"
	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqlval"
)

// TxnMark flags a begin/end field as holding an uncommitted transaction id
// rather than a commit timestamp.
const TxnMark uint64 = 1 << 63

// DeleteFlag, combined with TxnMark in an End field, records that the owning
// transaction *deleted* the version (invisible to the owner) as opposed to
// merely write-claiming or superseding it (still visible to the owner, whose
// newer version - if any - shadows it).
const DeleteFlag uint64 = 1 << 62

// Infinity is the end timestamp of a live (undeleted) version.
const Infinity uint64 = math.MaxUint64

// Uncommitted reports whether ts is an in-flight transaction mark.
func Uncommitted(ts uint64) bool { return ts >= TxnMark && ts != Infinity }

// MarkOwner extracts the transaction id from an uncommitted mark.
func MarkOwner(ts uint64) uint64 { return ts &^ (TxnMark | DeleteFlag) }

// IsDeleteMark reports whether ts is an uncommitted delete mark.
func IsDeleteMark(ts uint64) bool { return Uncommitted(ts) && ts&DeleteFlag != 0 }

// RowID identifies a row slot within one table.
type RowID = int64

// Version is one version of a row. Data is immutable; the Begin/End
// timestamps and the chain pointer are atomics so that readers may traverse
// chains without latches while writers (who hold the row latch for mutual
// exclusion among themselves) stamp commit timestamps.
type Version struct {
	Data  []sqlval.Value
	begin atomic.Uint64 // commit ts, or TxnMark|txnID while the writer is in flight
	end   atomic.Uint64 // Infinity, commit ts of the deleter, or a txn mark
	next  atomic.Pointer[Version]
}

// NewVersion builds a version with the given stamps and chain successor.
func NewVersion(data []sqlval.Value, begin, end uint64, next *Version) *Version {
	v := &Version{Data: data}
	v.begin.Store(begin)
	v.end.Store(end)
	if next != nil {
		v.next.Store(next)
	}
	return v
}

// Begin returns the begin timestamp or mark.
func (v *Version) Begin() uint64 { return v.begin.Load() }

// SetBegin stamps the begin field. Callers hold the row latch.
func (v *Version) SetBegin(ts uint64) { v.begin.Store(ts) }

// End returns the end timestamp or mark.
func (v *Version) End() uint64 { return v.end.Load() }

// SetEnd stamps the end field. Callers hold the row latch.
func (v *Version) SetEnd(ts uint64) { v.end.Store(ts) }

// Next returns the older version in the chain, if any.
func (v *Version) Next() *Version { return v.next.Load() }

// SetNext replaces the chain successor (used by vacuum pruning).
func (v *Version) SetNext(n *Version) { v.next.Store(n) }

// Row is a version chain plus the latch guarding its mutation.
type Row struct {
	mu     sync.Mutex
	latest atomic.Pointer[Version]
}

// Latest returns the newest version (which may be uncommitted).
func (r *Row) Latest() *Version { return r.latest.Load() }

// Lock/Unlock expose the row latch to the transaction layer, which must hold
// it across check-then-install sequences.
func (r *Row) Lock()   { r.mu.Lock() }
func (r *Row) Unlock() { r.mu.Unlock() }

// SetLatest installs a new head version. Callers must hold the row latch.
func (r *Row) SetLatest(v *Version) { r.latest.Store(v) }

// View selects which versions a reader sees.
type View struct {
	TxnID  uint64 // reader's transaction id
	SnapTS uint64 // snapshot timestamp; used when Snapshot is true
	// Snapshot selects MVCC snapshot visibility. When false the view is
	// "read latest committed or own" as used by the locking and serial
	// engines.
	Snapshot bool
}

// mine reports whether ts is an uncommitted marker belonging to the view's
// transaction (delete or claim).
func (v View) mine(ts uint64) bool { return Uncommitted(ts) && MarkOwner(ts) == v.TxnID }

// committed reports whether ts is a commit timestamp.
func committed(ts uint64) bool { return ts < TxnMark }

// Visible walks the version chain and returns the version this view should
// see, or nil when the row is invisible (deleted or not yet born).
//
// End-field semantics: Infinity = live; a commit timestamp = committed
// delete/supersede at that time; an uncommitted mark = pending delete (with
// DeleteFlag) or a write claim / supersede (without). A pending delete by
// the viewing transaction hides the version from it; a claim does not. Other
// transactions' pending marks never hide a version (they may abort).
func (view View) Visible(r *Row) *Version {
	for v := r.Latest(); v != nil; v = v.Next() {
		begin, end := v.Begin(), v.End()
		if view.Snapshot {
			beginOK := view.mine(begin) || (committed(begin) && begin <= view.SnapTS)
			if !beginOK {
				continue
			}
			endOK := end == Infinity ||
				(committed(end) && end > view.SnapTS) ||
				(Uncommitted(end) && !(view.mine(end) && end&DeleteFlag != 0))
			if endOK {
				return v
			}
			return nil // this version is the visible one but it is deleted
		}
		// Latest-committed mode: skip other transactions' uncommitted
		// versions; the first acceptable version decides.
		if !committed(begin) && !view.mine(begin) {
			continue
		}
		if view.mine(end) && end&DeleteFlag != 0 {
			return nil // deleted by this transaction
		}
		if committed(end) && end != Infinity {
			return nil // committed delete
		}
		return v
	}
	return nil
}

// Table holds the physical state of one table: the row slots, the primary
// index (when a PK is declared), and all secondary indexes.
type Table struct {
	Meta *catalog.Table

	mu        sync.RWMutex
	rows      map[RowID]*Row
	nextRowID atomic.Int64
	autoInc   atomic.Int64

	primary   *btree.Tree // nil when no PK declared
	secondary []*btree.Tree
	// secondaryMeta[i] describes secondary[i]; parallel to Meta.Indexes
	// minus the primary.
	secondaryMeta []*catalog.Index
}

// NewTable allocates physical storage for a catalog table.
func NewTable(meta *catalog.Table) *Table {
	t := &Table{Meta: meta, rows: map[RowID]*Row{}}
	for _, idx := range meta.Indexes {
		if idx.Primary {
			t.primary = btree.New()
		} else {
			t.secondary = append(t.secondary, btree.New())
			t.secondaryMeta = append(t.secondaryMeta, idx)
		}
	}
	return t
}

// AddIndex attaches physical storage for a newly created secondary index and
// backfills it from existing rows.
func (t *Table) AddIndex(idx *catalog.Index) {
	tree := btree.New()
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, row := range t.rows {
		v := row.Latest()
		if v == nil {
			continue
		}
		tree.Insert(indexKey(idx, v.Data, id), id)
	}
	t.secondary = append(t.secondary, tree)
	t.secondaryMeta = append(t.secondaryMeta, idx)
}

// NextAutoInc returns the next auto-increment value for the table.
func (t *Table) NextAutoInc() int64 { return t.autoInc.Add(1) }

// BumpAutoInc raises the auto-increment watermark to at least v.
func (t *Table) BumpAutoInc(v int64) {
	for {
		cur := t.autoInc.Load()
		if cur >= v || t.autoInc.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Row returns the row with the given id, if it exists.
func (t *Table) Row(id RowID) (*Row, bool) {
	t.mu.RLock()
	r, ok := t.rows[id]
	t.mu.RUnlock()
	return r, ok
}

// RowCount returns the number of row slots (including dead rows awaiting GC).
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// pkKey extracts the primary-key composite from a row image.
func (t *Table) pkKey(data []sqlval.Value) []sqlval.Value {
	key := make([]sqlval.Value, len(t.Meta.PKCols))
	for i, c := range t.Meta.PKCols {
		key[i] = data[c]
	}
	return key
}

// indexKey builds a physical secondary-index key: the indexed columns plus
// the row id to keep physical keys unique.
func indexKey(idx *catalog.Index, data []sqlval.Value, id RowID) []sqlval.Value {
	key := make([]sqlval.Value, 0, len(idx.Columns)+1)
	for _, c := range idx.Columns {
		key = append(key, data[c])
	}
	return append(key, sqlval.NewInt(id))
}

// ErrDuplicateKey is returned when an insert violates the primary key or a
// unique index.
type ErrDuplicateKey struct {
	Table string
	Index string
}

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("storage: duplicate key in table %q (index %q)", e.Table, e.Index)
}

// liveOrPending reports whether the row currently has a version that is
// committed-live or uncommitted — i.e. whether an insert of the same key
// must be rejected.
func liveOrPending(r *Row) bool {
	v := r.Latest()
	if v == nil {
		return false
	}
	if !committed(v.Begin()) {
		return true // uncommitted insert/update pending
	}
	if v.End() == Infinity || !committed(v.End()) {
		return true // live, or a delete is pending (may abort)
	}
	return false // newest version is committed-deleted
}

// Insert creates a new row whose single version is marked uncommitted by
// txnID. It installs all index entries. The returned RowID identifies the
// slot; on unique violation an ErrDuplicateKey is returned and nothing is
// modified.
func (t *Table) Insert(txnID uint64, data []sqlval.Value) (RowID, *Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Unique checks first. An index entry only blocks the insert when the
	// row it points at is live (or pending) AND its newest image still
	// holds the conflicting key: stale entries left behind by updates of
	// indexed columns are ignored.
	if t.primary != nil {
		key := t.pkKey(data)
		if existing, ok := t.primary.Get(key); ok {
			if r, live := t.rows[existing]; live && liveOrPending(r) &&
				sqlval.CompareRows(t.pkKey(r.Latest().Data), key) == 0 {
				return 0, nil, &ErrDuplicateKey{Table: t.Meta.Name, Index: t.Meta.Indexes[0].Name}
			}
		}
	}
	for i, idx := range t.secondaryMeta {
		if !idx.Unique {
			continue
		}
		prefix := make([]sqlval.Value, 0, len(idx.Columns))
		for _, c := range idx.Columns {
			prefix = append(prefix, data[c])
		}
		dup := false
		t.secondary[i].AscendPrefix(prefix, func(_ []sqlval.Value, id int64) bool {
			r, ok := t.rows[id]
			if !ok || !liveOrPending(r) {
				return true
			}
			latest := r.Latest().Data
			for ci, c := range idx.Columns {
				if sqlval.Compare(latest[c], prefix[ci]) != 0 {
					return true // stale entry: the row moved off this key
				}
			}
			dup = true
			return false
		})
		if dup {
			return 0, nil, &ErrDuplicateKey{Table: t.Meta.Name, Index: idx.Name}
		}
	}
	id := t.nextRowID.Add(1)
	row := &Row{}
	row.SetLatest(NewVersion(data, TxnMark|txnID, Infinity, nil))
	t.rows[id] = row
	if t.primary != nil {
		t.primary.Insert(t.pkKey(data), id)
	}
	for i, idx := range t.secondaryMeta {
		t.secondary[i].Insert(indexKey(idx, data, id), id)
	}
	return id, row, nil
}

// RemoveRow unlinks a row slot and all its index entries; used when rolling
// back an insert.
func (t *Table) RemoveRow(id RowID, data []sqlval.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rows, id)
	if t.primary != nil {
		key := t.pkKey(data)
		// Only remove the entry if it still points at this row: a
		// concurrent re-insert of the same key may have replaced it.
		if cur, ok := t.primary.Get(key); ok && cur == id {
			t.primary.Delete(key)
		}
	}
	for i, idx := range t.secondaryMeta {
		t.secondary[i].Delete(indexKey(idx, data, id))
	}
}

// AddVersionIndexEntries installs index entries for a new version image
// produced by an update (the row id is unchanged; only changed keys need new
// entries, and unchanged composites are idempotent inserts).
func (t *Table) AddVersionIndexEntries(id RowID, data []sqlval.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.primary != nil {
		t.primary.Insert(t.pkKey(data), id)
	}
	for i, idx := range t.secondaryMeta {
		t.secondary[i].Insert(indexKey(idx, data, id), id)
	}
}

// RemoveVersionIndexEntries removes entries that belong exclusively to the
// given version image (used on rollback of an update whose keys changed, with
// keep holding the image whose entries must survive).
func (t *Table) RemoveVersionIndexEntries(id RowID, data, keep []sqlval.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.primary != nil {
		oldKey, keepKey := t.pkKey(data), t.pkKey(keep)
		if sqlval.CompareRows(oldKey, keepKey) != 0 {
			if cur, ok := t.primary.Get(oldKey); ok && cur == id {
				t.primary.Delete(oldKey)
			}
		}
	}
	for i, idx := range t.secondaryMeta {
		oldKey := indexKey(idx, data, id)
		keepKey := indexKey(idx, keep, id)
		if sqlval.CompareRows(oldKey, keepKey) != 0 {
			t.secondary[i].Delete(oldKey)
		}
	}
}

// PrimaryLookup finds the row id for an exact primary-key match.
func (t *Table) PrimaryLookup(key []sqlval.Value) (RowID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.primary == nil {
		return 0, false
	}
	return t.primary.Get(key)
}

// IndexEntry is one materialized index hit: the physical key and the row id
// it points at. Because updates add entries for every version image, a row
// can appear under several keys of one index; readers must verify the entry
// key against the version they actually see (VerifyPrimary/VerifySecondary)
// or they would observe duplicates.
type IndexEntry struct {
	Key []sqlval.Value
	ID  RowID
}

// ScanPrimaryRange iterates index entries with from <= pk <= to in key
// order. Nil bounds are open; bounds may be key prefixes padded with
// sqlval.Top() to form inclusive upper bounds. Entries are materialized
// under the table latch and the callback runs after its release, so
// callbacks may freely re-enter the table (reads, lock acquisition).
func (t *Table) ScanPrimaryRange(from, to []sqlval.Value, desc bool, fn func(e IndexEntry) bool) {
	t.mu.RLock()
	if t.primary == nil {
		t.mu.RUnlock()
		return
	}
	entries := make([]IndexEntry, 0, 16)
	collect := func(key []sqlval.Value, id int64) bool {
		entries = append(entries, IndexEntry{Key: key, ID: id})
		return true
	}
	if desc {
		t.primary.DescendRange(to, from, collect)
	} else {
		t.primary.AscendRange(from, to, collect)
	}
	t.mu.RUnlock()
	for _, e := range entries {
		if !fn(e) {
			return
		}
	}
}

// VerifyPrimary reports whether a row image still carries the primary key of
// the index entry that produced it. It compares column by column rather than
// materializing a key slice: this runs once per row on every index read.
func (t *Table) VerifyPrimary(e IndexEntry, data []sqlval.Value) bool {
	if len(e.Key) != len(t.Meta.PKCols) {
		return false
	}
	for i, c := range t.Meta.PKCols {
		if sqlval.Compare(data[c], e.Key[i]) != 0 {
			return false
		}
	}
	return true
}

// VerifySecondary reports whether a row image still carries the indexed
// column values of the secondary-index entry that produced it (the entry's
// trailing row id is ignored).
func (t *Table) VerifySecondary(ord int, e IndexEntry, data []sqlval.Value) bool {
	idx := t.secondaryMeta[ord]
	for i, c := range idx.Columns {
		if i >= len(e.Key) {
			return false
		}
		if sqlval.Compare(data[c], e.Key[i]) != 0 {
			return false
		}
	}
	return true
}

// SecondaryIndexes exposes the table's secondary index metadata.
func (t *Table) SecondaryIndexes() []*catalog.Index { return t.secondaryMeta }

// ScanSecondaryRange iterates index entries with from <= key <= to over
// physical secondary-index keys (indexed columns plus a trailing row id).
// Callers build prefix bounds directly: a bare prefix is an inclusive lower
// bound, and a prefix extended with sqlval.Top() is an inclusive upper
// bound. The same materialize-then-callback discipline as ScanPrimaryRange
// applies.
func (t *Table) ScanSecondaryRange(ord int, from, to []sqlval.Value, desc bool, fn func(e IndexEntry) bool) {
	t.mu.RLock()
	tree := t.secondary[ord]
	entries := make([]IndexEntry, 0, 16)
	collect := func(key []sqlval.Value, id int64) bool {
		entries = append(entries, IndexEntry{Key: key, ID: id})
		return true
	}
	if desc {
		tree.DescendRange(to, from, collect)
	} else {
		tree.AscendRange(from, to, collect)
	}
	t.mu.RUnlock()
	for _, e := range entries {
		if !fn(e) {
			return
		}
	}
}

// ScanAll iterates every row slot in unspecified order.
func (t *Table) ScanAll(fn func(id RowID, r *Row) bool) {
	t.mu.RLock()
	ids := make([]RowID, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	for _, id := range ids {
		t.mu.RLock()
		r, ok := t.rows[id]
		t.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(id, r) {
			return
		}
	}
}

// Truncate drops all rows and index entries. Callers must ensure no
// concurrent transactions touch the table (the engine takes care of this).
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = map[RowID]*Row{}
	if t.primary != nil {
		t.primary = btree.New()
	}
	for i := range t.secondary {
		t.secondary[i] = btree.New()
	}
}

// Vacuum removes committed-deleted rows whose delete timestamp is below
// horizon, along with their index entries, and prunes version chains down to
// the newest version visible at horizon. It returns the number of row slots
// reclaimed.
func (t *Table) Vacuum(horizon uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	reclaimed := 0
	for id, row := range t.rows {
		row.Lock()
		v := row.Latest()
		if v != nil && committed(v.Begin()) && committed(v.End()) && v.End() != Infinity && v.End() <= horizon {
			// Entire row is dead to every possible reader.
			delete(t.rows, id)
			for img := v; img != nil; img = img.Next() {
				if t.primary != nil {
					key := t.pkKey(img.Data)
					if cur, ok := t.primary.Get(key); ok && cur == id {
						t.primary.Delete(key)
					}
				}
				for i, idx := range t.secondaryMeta {
					t.secondary[i].Delete(indexKey(idx, img.Data, id))
				}
			}
			reclaimed++
			row.Unlock()
			continue
		}
		// Prune chain tail: keep versions needed by readers at horizon.
		for cur := row.Latest(); cur != nil; cur = cur.Next() {
			if committed(cur.Begin()) && cur.Begin() <= horizon {
				cur.SetNext(nil)
				break
			}
		}
		row.Unlock()
	}
	return reclaimed
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
