// Package storage implements the in-memory row store of the embedded engine.
//
// Every table row is a chain of immutable versions (newest first). A version
// carries begin/end timestamps in the Hekaton style: values below txnMark are
// commit timestamps; values with the high bit set identify the uncommitted
// transaction that produced (begin) or superseded (end) the version. This one
// representation serves all three concurrency-control engines — MVCC readers
// pick versions by snapshot timestamp, locking and serial engines read the
// newest committed (or self-written) version.
//
// Index entries are maintained eagerly on write and point at row ids; readers
// always re-validate fetched versions against both visibility and the query
// predicate, so a stale index entry can only cause a filtered-out false
// positive, never a wrong result.
//
// # Concurrency layout
//
// Row slots live in NumSegments striped segments (segment.go); point reads
// are latch-free and inserts on different segments never contend. Each index
// tree carries its own latch (btree.Latched). No operation holds two index
// latches at once; multi-index updates take latches one at a time in a fixed
// order — primary first, then secondaries in ordinal order — and rely on the
// stale-entry-tolerant read discipline above for atomicity across indexes.
//
// Lock order (any prefix, never reversed):
//
//	primary latch → secondary latch (ordinal order) → segment mu → row latch
//
// In practice writers hold a single index latch at a time and never take a
// row latch under an index latch: uniqueness checks read row chains through
// their atomic fields only. Vacuum takes row latches first but drops them
// before touching index latches (a committed-dead row is immutable, so its
// images can be unindexed outside the row latch).
//
// Writers must install a row version into its chain *before* loading the
// secondary-index list they will maintain (Insert installs the slot first;
// the txn layer installs update versions before calling
// AddVersionIndexEntries). AddIndex relies on this: it publishes the new
// index before backfilling, so under sequentially consistent atomics every
// writer either sees the published index or has already installed a version
// the backfill scan will see.
package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"benchpress/internal/btree"
	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqlval"
)

// TxnMark flags a begin/end field as holding an uncommitted transaction id
// rather than a commit timestamp.
const TxnMark uint64 = 1 << 63

// DeleteFlag, combined with TxnMark in an End field, records that the owning
// transaction *deleted* the version (invisible to the owner) as opposed to
// merely write-claiming or superseding it (still visible to the owner, whose
// newer version - if any - shadows it).
const DeleteFlag uint64 = 1 << 62

// Infinity is the end timestamp of a live (undeleted) version.
const Infinity uint64 = math.MaxUint64

// Uncommitted reports whether ts is an in-flight transaction mark.
func Uncommitted(ts uint64) bool { return ts >= TxnMark && ts != Infinity }

// MarkOwner extracts the transaction id from an uncommitted mark.
func MarkOwner(ts uint64) uint64 { return ts &^ (TxnMark | DeleteFlag) }

// IsDeleteMark reports whether ts is an uncommitted delete mark.
func IsDeleteMark(ts uint64) bool { return Uncommitted(ts) && ts&DeleteFlag != 0 }

// RowID identifies a row slot within one table.
type RowID = int64

// Version is one version of a row. Data is immutable; the Begin/End
// timestamps and the chain pointer are atomics so that readers may traverse
// chains without latches while writers (who hold the row latch for mutual
// exclusion among themselves) stamp commit timestamps.
type Version struct {
	Data  []sqlval.Value
	begin atomic.Uint64 // commit ts, or TxnMark|txnID while the writer is in flight
	end   atomic.Uint64 // Infinity, commit ts of the deleter, or a txn mark
	next  atomic.Pointer[Version]
}

// NewVersion builds a version with the given stamps and chain successor.
func NewVersion(data []sqlval.Value, begin, end uint64, next *Version) *Version {
	v := &Version{Data: data}
	v.begin.Store(begin)
	v.end.Store(end)
	if next != nil {
		v.next.Store(next)
	}
	return v
}

// Begin returns the begin timestamp or mark.
func (v *Version) Begin() uint64 { return v.begin.Load() }

// SetBegin stamps the begin field. Callers hold the row latch.
func (v *Version) SetBegin(ts uint64) { v.begin.Store(ts) }

// End returns the end timestamp or mark.
func (v *Version) End() uint64 { return v.end.Load() }

// SetEnd stamps the end field. Callers hold the row latch.
func (v *Version) SetEnd(ts uint64) { v.end.Store(ts) }

// Next returns the older version in the chain, if any.
func (v *Version) Next() *Version { return v.next.Load() }

// SetNext replaces the chain successor (used by vacuum pruning).
func (v *Version) SetNext(n *Version) { v.next.Store(n) }

// Row is a version chain plus the latch guarding its mutation.
type Row struct {
	mu     sync.Mutex
	latest atomic.Pointer[Version]
}

// Latest returns the newest version (which may be uncommitted).
func (r *Row) Latest() *Version { return r.latest.Load() }

// Lock/Unlock expose the row latch to the transaction layer, which must hold
// it across check-then-install sequences.
func (r *Row) Lock()   { r.mu.Lock() }
func (r *Row) Unlock() { r.mu.Unlock() }

// SetLatest installs a new head version. Callers must hold the row latch.
func (r *Row) SetLatest(v *Version) { r.latest.Store(v) }

// View selects which versions a reader sees.
type View struct {
	TxnID  uint64 // reader's transaction id
	SnapTS uint64 // snapshot timestamp; used when Snapshot is true
	// Snapshot selects MVCC snapshot visibility. When false the view is
	// "read latest committed or own" as used by the locking and serial
	// engines.
	Snapshot bool
}

// mine reports whether ts is an uncommitted marker belonging to the view's
// transaction (delete or claim).
func (v View) mine(ts uint64) bool { return Uncommitted(ts) && MarkOwner(ts) == v.TxnID }

// committed reports whether ts is a commit timestamp.
func committed(ts uint64) bool { return ts < TxnMark }

// Visible walks the version chain and returns the version this view should
// see, or nil when the row is invisible (deleted or not yet born).
//
// End-field semantics: Infinity = live; a commit timestamp = committed
// delete/supersede at that time; an uncommitted mark = pending delete (with
// DeleteFlag) or a write claim / supersede (without). A pending delete by
// the viewing transaction hides the version from it; a claim does not. Other
// transactions' pending marks never hide a version (they may abort).
func (view View) Visible(r *Row) *Version {
	for v := r.Latest(); v != nil; v = v.Next() {
		begin, end := v.Begin(), v.End()
		if view.Snapshot {
			beginOK := view.mine(begin) || (committed(begin) && begin <= view.SnapTS)
			if !beginOK {
				continue
			}
			endOK := end == Infinity ||
				(committed(end) && end > view.SnapTS) ||
				(Uncommitted(end) && !(view.mine(end) && end&DeleteFlag != 0))
			if endOK {
				return v
			}
			return nil // this version is the visible one but it is deleted
		}
		// Latest-committed mode: skip other transactions' uncommitted
		// versions; the first acceptable version decides.
		if !committed(begin) && !view.mine(begin) {
			continue
		}
		if view.mine(end) && end&DeleteFlag != 0 {
			return nil // deleted by this transaction
		}
		if committed(end) && end != Infinity {
			return nil // committed delete
		}
		return v
	}
	return nil
}

// secondaryIndex pairs one secondary tree with its metadata. The slice of
// these is copy-on-write published (see Table.secondaries) so the write path
// reads it with a single atomic load.
type secondaryIndex struct {
	tree *btree.Latched
	meta *catalog.Index
}

// Table holds the physical state of one table: the striped row slots, the
// primary index (when a PK is declared), and all secondary indexes.
type Table struct {
	Meta *catalog.Table

	segs    [NumSegments]segment
	nextSeg atomic.Uint32 // round-robin segment pick for new rows
	autoInc atomic.Int64

	primary *btree.Latched // nil when no PK declared

	// secondaries is the COW-published index list: ordinals are stable
	// because DDL only appends. idxMu serializes publishers (AddIndex);
	// every reader takes one atomic load and never blocks on DDL.
	idxMu       sync.Mutex
	secondaries atomic.Pointer[[]secondaryIndex]

	// vacMu serializes vacuum passes (manual and background) against each
	// other; vacuum never blocks readers or writers. It also guards limbo,
	// the retired-slot batches awaiting the epoch low-watermark.
	vacMu sync.Mutex
	limbo []limboBatch
}

// NewTable allocates physical storage for a catalog table.
func NewTable(meta *catalog.Table) *Table {
	t := &Table{Meta: meta}
	t.initSegments()
	secs := []secondaryIndex{}
	for _, idx := range meta.Indexes {
		if idx.Primary {
			t.primary = btree.NewLatched()
		} else {
			secs = append(secs, secondaryIndex{tree: btree.NewLatched(), meta: idx})
		}
	}
	t.secondaries.Store(&secs)
	return t
}

// secondaryList returns the current published index list.
func (t *Table) secondaryList() []secondaryIndex { return *t.secondaries.Load() }

// AddIndex attaches physical storage for a newly created secondary index and
// backfills it from existing rows. Publication happens first: once the new
// list is visible, concurrent writers maintain the index themselves, and the
// write-path invariant (install version, then load the index list) plus
// sequentially consistent atomics guarantee the backfill scan observes every
// version whose writer missed the publication. Backfill may record images
// that concurrent writers also recorded, or images that died meanwhile; both
// are stale entries that readers filter out.
func (t *Table) AddIndex(idx *catalog.Index) {
	sec := secondaryIndex{tree: btree.NewLatched(), meta: idx}
	t.idxMu.Lock()
	old := t.secondaryList()
	grown := make([]secondaryIndex, len(old), len(old)+1)
	copy(grown, old)
	grown = append(grown, sec)
	t.secondaries.Store(&grown)
	t.idxMu.Unlock()

	t.ScanAll(func(id RowID, row *Row) bool {
		v := row.Latest()
		if v == nil {
			return true
		}
		key := indexKey(idx, v.Data, id)
		sec.tree.Lock()
		sec.tree.Insert(key, id)
		sec.tree.Unlock()
		return true
	})
}

// NextAutoInc returns the next auto-increment value for the table.
func (t *Table) NextAutoInc() int64 { return t.autoInc.Add(1) }

// BumpAutoInc raises the auto-increment watermark to at least v.
func (t *Table) BumpAutoInc(v int64) {
	for {
		cur := t.autoInc.Load()
		if cur >= v || t.autoInc.CompareAndSwap(cur, v) {
			return
		}
	}
}

// pkKey extracts the primary-key composite from a row image.
func (t *Table) pkKey(data []sqlval.Value) []sqlval.Value {
	key := make([]sqlval.Value, len(t.Meta.PKCols))
	for i, c := range t.Meta.PKCols {
		key[i] = data[c]
	}
	return key
}

// indexKey builds a physical secondary-index key: the indexed columns plus
// the row id to keep physical keys unique.
func indexKey(idx *catalog.Index, data []sqlval.Value, id RowID) []sqlval.Value {
	key := make([]sqlval.Value, 0, len(idx.Columns)+1)
	for _, c := range idx.Columns {
		key = append(key, data[c])
	}
	return append(key, sqlval.NewInt(id))
}

// ErrDuplicateKey is returned when an insert violates the primary key or a
// unique index.
type ErrDuplicateKey struct {
	Table string
	Index string
}

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("storage: duplicate key in table %q (index %q)", e.Table, e.Index)
}

// liveOrPending reports whether the row currently has a version that is
// committed-live or uncommitted — i.e. whether an insert of the same key
// must be rejected.
func liveOrPending(r *Row) bool {
	v := r.Latest()
	if v == nil {
		return false
	}
	if !committed(v.Begin()) {
		return true // uncommitted insert/update pending
	}
	if v.End() == Infinity || !committed(v.End()) {
		return true // live, or a delete is pending (may abort)
	}
	return false // newest version is committed-deleted
}

// primaryConflict reports whether the primary index maps key to a different
// row that is live or pending and still carries key. Callers hold the
// primary latch; row state is read through atomics only.
func (t *Table) primaryConflict(key []sqlval.Value, self RowID) bool {
	existing, ok := t.primary.Get(key)
	if !ok || existing == self {
		return false
	}
	r, live := t.Row(existing)
	return live && liveOrPending(r) &&
		sqlval.CompareRows(t.pkKey(r.Latest().Data), key) == 0
}

// secondaryConflict reports whether a unique secondary index already holds a
// live row with the same indexed column values. Callers hold sec's latch.
// An index entry only blocks the insert when the row it points at is live
// (or pending) AND its newest image still holds the conflicting key: stale
// entries left behind by updates of indexed columns are ignored.
func (t *Table) secondaryConflict(sec secondaryIndex, data []sqlval.Value, self RowID) bool {
	prefix := make([]sqlval.Value, 0, len(sec.meta.Columns))
	for _, c := range sec.meta.Columns {
		prefix = append(prefix, data[c])
	}
	dup := false
	sec.tree.AscendPrefix(prefix, func(_ []sqlval.Value, id int64) bool {
		if id == self {
			return true
		}
		r, ok := t.Row(id)
		if !ok || !liveOrPending(r) {
			return true
		}
		latest := r.Latest().Data
		for ci, c := range sec.meta.Columns {
			if sqlval.Compare(latest[c], prefix[ci]) != 0 {
				return true // stale entry: the row moved off this key
			}
		}
		dup = true
		return false
	})
	return dup
}

// Displaced records the primary-index mapping an Insert overwrote. A
// committed-dead row keeps its primary entry until vacuum so that older
// snapshots can still resolve its key; an insert reusing that key steals the
// entry, and if the insert later rolls back the stolen mapping must be put
// back (RollbackInsert) rather than deleted outright.
type Displaced struct {
	Prev    RowID
	HadPrev bool
}

// Insert creates a new row whose single version is marked uncommitted by
// txnID. It installs all index entries. The returned RowID identifies the
// slot; on unique violation an ErrDuplicateKey is returned and nothing
// observable is left behind. The returned Displaced must be handed back to
// RollbackInsert if the transaction aborts.
//
// The slot is installed before any index work: the version's uncommitted
// mark keeps it invisible to every reader, and installing first upholds the
// install-then-load-index-list invariant AddIndex backfill depends on. Each
// uniqueness check and the matching entry insert happen under one continuous
// hold of that index's latch, so two racing inserts of the same key always
// serialize there; no operation holds two index latches at once.
func (t *Table) Insert(txnID uint64, data []sqlval.Value) (RowID, *Row, Displaced, error) {
	row := &Row{}
	row.SetLatest(NewVersion(data, TxnMark|txnID, Infinity, nil))
	id := t.installRow(row)
	secs := t.secondaryList()

	var disp Displaced
	if t.primary != nil {
		key := t.pkKey(data)
		t.primary.Lock()
		if t.primaryConflict(key, id) {
			t.primary.Unlock()
			t.freeRow(id, row)
			return 0, nil, disp, &ErrDuplicateKey{Table: t.Meta.Name, Index: t.Meta.Indexes[0].Name}
		}
		if prev, ok := t.primary.Get(key); ok && prev != id {
			disp = Displaced{Prev: prev, HadPrev: true}
		}
		t.primary.Insert(key, id)
		t.primary.Unlock()
	}
	for ord := range secs {
		sec := secs[ord]
		key := indexKey(sec.meta, data, id)
		sec.tree.Lock()
		if sec.meta.Unique && t.secondaryConflict(sec, data, id) {
			sec.tree.Unlock()
			// Roll back the entries installed so far (the rollback
			// tolerates the ones never installed) and release the slot.
			t.RollbackInsert(id, data, disp)
			return 0, nil, Displaced{}, &ErrDuplicateKey{Table: t.Meta.Name, Index: sec.meta.Name}
		}
		sec.tree.Insert(key, id)
		sec.tree.Unlock()
	}
	return id, row, disp, nil
}

// removeSecondaryEntries deletes one version image's secondary entries.
// Secondary keys carry the row id, so an entry can never be claimed by
// another row and an unconditional delete is safe.
func (t *Table) removeSecondaryEntries(id RowID, data []sqlval.Value) {
	for _, sec := range t.secondaryList() {
		key := indexKey(sec.meta, data, id)
		sec.tree.Lock()
		sec.tree.Delete(key)
		sec.tree.Unlock()
	}
}

// RollbackInsert unlinks an aborted insert's row slot and index entries,
// restoring the primary mapping the insert displaced. The restore is
// guarded under the primary latch: if the displaced row has been vacuumed
// away or its slot recycled for a different key, the entry is dropped
// instead of re-pointed. A vacuum pass can still free the displaced slot
// right after the check; the restored entry then dangles, which the
// package's read discipline tolerates — readers re-validate fetched rows
// against the entry key, and the next insert of the key overwrites it.
func (t *Table) RollbackInsert(id RowID, data []sqlval.Value, disp Displaced) {
	if t.primary != nil {
		key := t.pkKey(data)
		t.primary.Lock()
		// Only touch the entry if it still points at this row: a
		// concurrent re-insert of the same key may have replaced it.
		if cur, ok := t.primary.Get(key); ok && cur == id {
			restored := false
			if disp.HadPrev {
				if r, ok := t.Row(disp.Prev); ok {
					if v := r.Latest(); v != nil && sqlval.CompareRows(t.pkKey(v.Data), key) == 0 {
						t.primary.Insert(key, disp.Prev)
						restored = true
					}
				}
			}
			if !restored {
				t.primary.Delete(key)
			}
		}
		t.primary.Unlock()
	}
	t.removeSecondaryEntries(id, data)
	if row, ok := t.Row(id); ok {
		t.freeRow(id, row)
	}
}

// RemoveRow unlinks a row slot and all its index entries; used when rolling
// back an insert that displaced nothing.
func (t *Table) RemoveRow(id RowID, data []sqlval.Value) {
	t.RollbackInsert(id, data, Displaced{})
}

// AddVersionIndexEntries installs index entries for a new version image
// produced by an update (the row id is unchanged; only changed keys need new
// entries, and unchanged composites are idempotent inserts). oldData is the
// image being replaced: a unique secondary whose key changed is checked
// before its entry is installed, so an update cannot move a row onto a key
// held by another live or pending row — the check-and-insert happens under
// one continuous hold of that index's latch, mirroring Insert. On a
// violation the entries already installed for the new image are unwound
// (entries shared with the old image are left in place) and ErrDuplicateKey
// is returned with the row image unchanged in the indexes. Callers must
// have installed the image into the row chain already — see the package
// comment's write-path invariant.
func (t *Table) AddVersionIndexEntries(id RowID, oldData, data []sqlval.Value) error {
	if t.primary != nil {
		key := t.pkKey(data)
		t.primary.Lock()
		t.primary.Insert(key, id)
		t.primary.Unlock()
	}
	secs := t.secondaryList()
	for ord := range secs {
		sec := secs[ord]
		key := indexKey(sec.meta, data, id)
		sec.tree.Lock()
		if sec.meta.Unique &&
			sqlval.CompareRows(indexKey(sec.meta, oldData, id), key) != 0 &&
			t.secondaryConflict(sec, data, id) {
			sec.tree.Unlock()
			t.unwindVersionEntries(id, oldData, data, ord)
			return &ErrDuplicateKey{Table: t.Meta.Name, Index: sec.meta.Name}
		}
		sec.tree.Insert(key, id)
		sec.tree.Unlock()
	}
	return nil
}

// unwindVersionEntries removes the entries AddVersionIndexEntries installed
// for the new image before failing at secondary ordinal stop — only those
// not shared with the old image, which must keep its entries.
func (t *Table) unwindVersionEntries(id RowID, oldData, data []sqlval.Value, stop int) {
	if t.primary != nil {
		newKey, oldKey := t.pkKey(data), t.pkKey(oldData)
		if sqlval.CompareRows(newKey, oldKey) != 0 {
			t.primary.Lock()
			if cur, ok := t.primary.Get(newKey); ok && cur == id {
				t.primary.Delete(newKey)
			}
			t.primary.Unlock()
		}
	}
	secs := t.secondaryList()
	for ord := 0; ord < stop && ord < len(secs); ord++ {
		sec := secs[ord]
		newKey := indexKey(sec.meta, data, id)
		if sqlval.CompareRows(indexKey(sec.meta, oldData, id), newKey) == 0 {
			continue
		}
		sec.tree.Lock()
		sec.tree.Delete(newKey)
		sec.tree.Unlock()
	}
}

// RemoveVersionIndexEntries removes entries that belong exclusively to the
// given version image (used on rollback of an update whose keys changed, with
// keep holding the image whose entries must survive).
func (t *Table) RemoveVersionIndexEntries(id RowID, data, keep []sqlval.Value) {
	if t.primary != nil {
		oldKey, keepKey := t.pkKey(data), t.pkKey(keep)
		if sqlval.CompareRows(oldKey, keepKey) != 0 {
			t.primary.Lock()
			if cur, ok := t.primary.Get(oldKey); ok && cur == id {
				t.primary.Delete(oldKey)
			}
			t.primary.Unlock()
		}
	}
	for _, sec := range t.secondaryList() {
		oldKey := indexKey(sec.meta, data, id)
		keepKey := indexKey(sec.meta, keep, id)
		if sqlval.CompareRows(oldKey, keepKey) != 0 {
			sec.tree.Lock()
			sec.tree.Delete(oldKey)
			sec.tree.Unlock()
		}
	}
}

// PrimaryLookup finds the row id for an exact primary-key match.
func (t *Table) PrimaryLookup(key []sqlval.Value) (RowID, bool) {
	if t.primary == nil {
		return 0, false
	}
	t.primary.RLock()
	id, ok := t.primary.Get(key)
	t.primary.RUnlock()
	return id, ok
}

// IndexEntry is one materialized index hit: the physical key and the row id
// it points at. Because updates add entries for every version image, a row
// can appear under several keys of one index; readers must verify the entry
// key against the version they actually see (VerifyPrimary/VerifySecondary)
// or they would observe duplicates.
type IndexEntry struct {
	Key []sqlval.Value
	ID  RowID
}

// ScanPrimaryRange iterates index entries with from <= pk <= to in key
// order. Nil bounds are open; bounds may be key prefixes padded with
// sqlval.Top() to form inclusive upper bounds. Entries are materialized
// under the index latch and the callback runs after its release, so
// callbacks may freely re-enter the table (reads, lock acquisition).
func (t *Table) ScanPrimaryRange(from, to []sqlval.Value, desc bool, fn func(e IndexEntry) bool) {
	for _, e := range t.AppendPrimaryRange(make([]IndexEntry, 0, 16), from, to, desc) {
		if !fn(e) {
			return
		}
	}
}

// VerifyPrimary reports whether a row image still carries the primary key of
// the index entry that produced it. It compares column by column rather than
// materializing a key slice: this runs once per row on every index read.
func (t *Table) VerifyPrimary(e IndexEntry, data []sqlval.Value) bool {
	if len(e.Key) != len(t.Meta.PKCols) {
		return false
	}
	for i, c := range t.Meta.PKCols {
		if sqlval.Compare(data[c], e.Key[i]) != 0 {
			return false
		}
	}
	return true
}

// VerifySecondary reports whether a row image still carries the indexed
// column values of the secondary-index entry that produced it (the entry's
// trailing row id is ignored).
func (t *Table) VerifySecondary(ord int, e IndexEntry, data []sqlval.Value) bool {
	idx := t.secondaryList()[ord].meta
	for i, c := range idx.Columns {
		if i >= len(e.Key) {
			return false
		}
		if sqlval.Compare(data[c], e.Key[i]) != 0 {
			return false
		}
	}
	return true
}

// SecondaryIndexes exposes the table's secondary index metadata, in ordinal
// order. The slice is freshly built; callers may keep it.
func (t *Table) SecondaryIndexes() []*catalog.Index {
	secs := t.secondaryList()
	metas := make([]*catalog.Index, len(secs))
	for i, sec := range secs {
		metas[i] = sec.meta
	}
	return metas
}

// ScanSecondaryRange iterates index entries with from <= key <= to over
// physical secondary-index keys (indexed columns plus a trailing row id).
// Callers build prefix bounds directly: a bare prefix is an inclusive lower
// bound, and a prefix extended with sqlval.Top() is an inclusive upper
// bound. The same materialize-then-callback discipline as ScanPrimaryRange
// applies.
func (t *Table) ScanSecondaryRange(ord int, from, to []sqlval.Value, desc bool, fn func(e IndexEntry) bool) {
	for _, e := range t.AppendSecondaryRange(make([]IndexEntry, 0, 16), ord, from, to, desc) {
		if !fn(e) {
			return
		}
	}
}

// Truncate drops all rows and index entries. Callers must ensure no
// concurrent transactions touch the table (the engine takes care of this).
func (t *Table) Truncate() {
	// Drop retired slots with the segments they point into, and hold off a
	// concurrent background vacuum pass for the duration.
	t.vacMu.Lock()
	defer t.vacMu.Unlock()
	t.limbo = nil
	if t.primary != nil {
		t.primary.Lock()
		t.primary.Tree = *btree.New()
		t.primary.Unlock()
	}
	for _, sec := range t.secondaryList() {
		sec.tree.Lock()
		sec.tree.Tree = *btree.New()
		sec.tree.Unlock()
	}
	t.resetSegments()
}
