package storage

import (
	"sync"
	"sync/atomic"
)

// Row slots are striped across NumSegments segments. A RowID encodes its
// segment in the low segShift bits (after subtracting the 1-based offset), so
// decoding an id never consults shared state. Within a segment, slots live in
// fixed-size pages reached through an atomically published page directory:
// point lookups are latch-free (directory load + slot load), while slot
// allocation and release serialize on the segment's private mutex. New rows
// pick segments round-robin, which keeps segments balanced and — a pleasant
// accident of the encoding — hands out ids 1,2,3,… for purely sequential
// insert streams, matching the previous allocator.
const (
	segShift    = 5
	NumSegments = 1 << segShift
	segMask     = NumSegments - 1
	pageShift   = 8
	pageSize    = 1 << pageShift
	pageMask    = pageSize - 1
)

// page is one fixed block of row slots. Slots are atomic so readers need no
// latch; nil means free.
type page [pageSize]atomic.Pointer[Row]

// segment is one stripe of the row store. The trailing pad keeps the hot
// mutable fields of neighboring segments in the embedding array off each
// other's cache lines.
type segment struct {
	mu    sync.Mutex
	dir   atomic.Pointer[[]*page] // published directory; grown under mu
	used  int64                   // high-water local slot count, guarded by mu
	free  []int64                 // reclaimed local slot indexes, guarded by mu
	count atomic.Int64            // occupied (non-nil) slots
	_     [64]byte
}

// initSegments publishes an empty directory in every segment so lookups
// never see a nil pointer.
func (t *Table) initSegments() {
	for i := range t.segs {
		empty := make([]*page, 0)
		t.segs[i].dir.Store(&empty)
	}
}

// resetSegments empties every segment (Truncate).
func (t *Table) resetSegments() {
	for i := range t.segs {
		seg := &t.segs[i]
		seg.mu.Lock()
		empty := make([]*page, 0)
		seg.dir.Store(&empty)
		seg.used = 0
		seg.free = nil
		seg.count.Store(0)
		seg.mu.Unlock()
	}
}

// rowAddr decodes a RowID into its segment index and local slot index.
func rowAddr(id RowID) (seg, local int64) {
	id--
	return id & segMask, id >> segShift
}

// makeRowID encodes a segment and local slot index into a 1-based RowID.
func makeRowID(seg, local int64) RowID {
	return (local<<segShift | seg) + 1
}

// installRow places a row into a fresh or recycled slot and returns its id.
// Slot recycling is safe under the package's read discipline: any reader
// holding a stale index entry for a recycled id re-validates the fetched
// version against both visibility and the entry key, so it filters the new
// occupant out.
func (t *Table) installRow(row *Row) RowID {
	g := int64(t.nextSeg.Add(1)-1) & segMask
	seg := &t.segs[g]
	seg.mu.Lock()
	var local int64
	if n := len(seg.free); n > 0 {
		local = seg.free[n-1]
		seg.free = seg.free[:n-1]
	} else {
		local = seg.used
		seg.used++
		dir := *seg.dir.Load()
		if int(local>>pageShift) >= len(dir) {
			grown := make([]*page, len(dir)+1)
			copy(grown, dir)
			grown[len(dir)] = new(page)
			seg.dir.Store(&grown)
		}
	}
	dir := *seg.dir.Load()
	dir[local>>pageShift][local&pageMask].Store(row)
	seg.count.Add(1)
	seg.mu.Unlock()
	return makeRowID(g, local)
}

// freeRow releases a slot, but only while it still holds the expected row:
// the compare-and-swap makes racing releases (rollback vs. vacuum) and
// already-recycled slots harmless.
func (t *Table) freeRow(id RowID, row *Row) {
	g, local := rowAddr(id)
	seg := &t.segs[g]
	seg.mu.Lock()
	dir := *seg.dir.Load()
	if pi := local >> pageShift; pi >= 0 && pi < int64(len(dir)) &&
		dir[pi][local&pageMask].CompareAndSwap(row, nil) {
		seg.free = append(seg.free, local)
		seg.count.Add(-1)
	}
	seg.mu.Unlock()
}

// unlinkRow empties a slot lock-free, without recycling it: the local index
// goes back to the allocator only via recycleLocals, once the epoch
// low-watermark proves no reader can still resolve a stale reference to it.
// The compare-and-swap keeps racing releases harmless, like freeRow.
func (t *Table) unlinkRow(id RowID, row *Row) (int64, bool) {
	g, local := rowAddr(id)
	dir := *t.segs[g].dir.Load()
	pi := local >> pageShift
	if pi < 0 || pi >= int64(len(dir)) || !dir[pi][local&pageMask].CompareAndSwap(row, nil) {
		return 0, false
	}
	t.segs[g].count.Add(-1)
	return local, true
}

// recycleLocals returns a batch of unlinked slot indexes of one segment to
// its free list in a single lock hold.
func (t *Table) recycleLocals(g int64, locals []int64) {
	seg := &t.segs[g]
	seg.mu.Lock()
	seg.free = append(seg.free, locals...)
	seg.mu.Unlock()
}

// Row returns the row with the given id, if it exists. Latch-free.
func (t *Table) Row(id RowID) (*Row, bool) {
	if id <= 0 {
		return nil, false
	}
	g, local := rowAddr(id)
	dir := *t.segs[g].dir.Load()
	pi := local >> pageShift
	if pi >= int64(len(dir)) {
		return nil, false
	}
	r := dir[pi][local&pageMask].Load()
	return r, r != nil
}

// RowCount returns the number of occupied row slots (including dead rows
// awaiting GC).
func (t *Table) RowCount() int {
	var n int64
	for i := range t.segs {
		n += t.segs[i].count.Load()
	}
	return int(n)
}

// Segments returns the number of row-store stripes, for callers that iterate
// or vacuum one stripe at a time.
func (t *Table) Segments() int { return NumSegments }

// ScanSegment iterates every occupied slot of one segment in local order,
// latch-free against a directory snapshot. It returns false when fn stopped
// the scan. Rows installed concurrently may or may not be visited; their
// uncommitted versions are invisible to the scanning transaction either way.
func (t *Table) ScanSegment(g int, fn func(id RowID, r *Row) bool) bool {
	dir := *t.segs[g].dir.Load()
	for pi := range dir {
		pg := dir[pi]
		base := int64(pi) << pageShift
		for si := range pg {
			r := pg[si].Load()
			if r == nil {
				continue
			}
			if !fn(makeRowID(int64(g), base+int64(si)), r) {
				return false
			}
		}
	}
	return true
}

// ScanAll iterates every occupied row slot, segment by segment.
func (t *Table) ScanAll(fn func(id RowID, r *Row) bool) {
	for g := 0; g < NumSegments; g++ {
		if !t.ScanSegment(g, fn) {
			return
		}
	}
}
