package heap

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrPageMissing reports a read of a page the device has never stored. The
// pool and recovery treat it as "format fresh", distinct from corruption.
var ErrPageMissing = errors.New("heap: page not on device")

// Device is the page-granular persistence surface under the buffer pool.
// Implementations must allow concurrent calls; the crash-torture harness
// wraps one with a byte-budget kill switch to tear writes mid-page.
type Device interface {
	// ReadPage fills buf (PageSize bytes) with page id, or ErrPageMissing.
	ReadPage(id uint32, buf []byte) error
	// WritePage stores buf (PageSize bytes) as page id, extending the
	// device as needed.
	WritePage(id uint32, buf []byte) error
	// Pages returns the number of pages the device holds (highest id + 1).
	Pages() (uint32, error)
	// Sync flushes device buffers to stable storage.
	Sync() error
	// Close releases the device.
	Close() error
}

// FileDevice stores pages in one flat file at PageSize-aligned offsets.
type FileDevice struct {
	f *os.File
}

// OpenFileDevice opens (creating if absent) a heap file.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		// A torn tail page from a crash mid-extend: pad to a page boundary
		// so the partial page reads back (and fails Verify) instead of
		// shearing every later page's offset.
		if err := f.Truncate((st.Size()/PageSize + 1) * PageSize); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return &FileDevice{f: f}, nil
}

// ReadPage implements Device.
func (d *FileDevice) ReadPage(id uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("heap: read buffer is %d bytes", len(buf))
	}
	n, err := d.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && n == 0 {
		return fmt.Errorf("%w: page %d: %v", ErrPageMissing, id, err)
	}
	if n < PageSize {
		// Partial tail page (crash mid-extend); zero-fill so Verify sees a
		// deterministically torn image.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	return nil
}

// WritePage implements Device.
func (d *FileDevice) WritePage(id uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("heap: write buffer is %d bytes", len(buf))
	}
	_, err := d.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

// Pages implements Device.
func (d *FileDevice) Pages() (uint32, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return uint32(st.Size() / PageSize), nil
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// MemDevice is an in-memory Device. The crash harness uses it as the
// surviving "disk image": a kill-injecting wrapper tears writes into it, and
// recovery then reopens the same MemDevice unwrapped.
type MemDevice struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadPage implements Device.
func (d *MemDevice) ReadPage(id uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("heap: read buffer is %d bytes", len(buf))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) || d.pages[id] == nil {
		return fmt.Errorf("%w: page %d", ErrPageMissing, id)
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements Device.
func (d *MemDevice) WritePage(id uint32, buf []byte) error {
	return d.WritePartial(id, buf, PageSize)
}

// WritePartial stores only the first n bytes of buf into page id, leaving
// the rest of the page as it was (zeroes for a fresh page) — the shape of a
// torn write. The kill-injecting wrapper is its only intended caller.
func (d *MemDevice) WritePartial(id uint32, buf []byte, n int) error {
	if len(buf) != PageSize {
		return fmt.Errorf("heap: write buffer is %d bytes", len(buf))
	}
	if n < 0 || n > PageSize {
		return fmt.Errorf("heap: partial write of %d bytes", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for int(id) >= len(d.pages) {
		d.pages = append(d.pages, nil)
	}
	if d.pages[id] == nil {
		d.pages[id] = make([]byte, PageSize)
	}
	copy(d.pages[id][:n], buf[:n])
	return nil
}

// Pages implements Device.
func (d *MemDevice) Pages() (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint32(len(d.pages)), nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error { return nil }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Image returns a deep copy of the device contents, for the determinism
// checks of the crash sweep (bit-identical images per seed and budget).
func (d *MemDevice) Image() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, len(d.pages))
	for i, p := range d.pages {
		if p != nil {
			out[i] = append([]byte(nil), p...)
		}
	}
	return out
}
