package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"benchpress/internal/sqlval"
)

func TestPagePutGetDelete(t *testing.T) {
	buf := make([]byte, PageSize)
	p := Format(buf, 7)
	if p.ID() != 7 || p.NumSlots() != 0 {
		t.Fatalf("fresh page: id=%d slots=%d", p.ID(), p.NumSlots())
	}
	if err := p.Put(0, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(3, []byte("delta")); err != nil { // slots 1,2 become dead
		t.Fatal(err)
	}
	if got, ok := p.Slot(0); !ok || string(got) != "alpha" {
		t.Fatalf("slot 0: %q %v", got, ok)
	}
	if _, ok := p.Slot(1); ok {
		t.Fatal("dead slot 1 reads live")
	}
	if got, ok := p.Slot(3); !ok || string(got) != "delta" {
		t.Fatalf("slot 3: %q %v", got, ok)
	}
	// Replace with a longer record, then delete.
	if err := p.Put(0, []byte("a much longer record image")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Slot(0); string(got) != "a much longer record image" {
		t.Fatalf("replaced slot 0: %q", got)
	}
	p.Delete(3)
	if _, ok := p.Slot(3); ok {
		t.Fatal("deleted slot 3 reads live")
	}
	// Seal/Verify round trip, and LSN persistence.
	p.SetLSN(0xDEADBEEF)
	Seal(buf)
	if err := Verify(buf); err != nil {
		t.Fatalf("verify sealed page: %v", err)
	}
	if p.LSN() != 0xDEADBEEF {
		t.Fatalf("LSN = %#x", p.LSN())
	}
	// One flipped byte must fail verification (torn-write detection).
	buf[PageSize-1] ^= 0x40
	if err := Verify(buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("corrupt page verified: %v", err)
	}
}

func TestPageCompaction(t *testing.T) {
	buf := make([]byte, PageSize)
	p := Format(buf, 1)
	// Fill with records, delete every other one, then insert a record that
	// only fits after compaction reclaims the garbage.
	rec := bytes.Repeat([]byte{0xAA}, 100)
	n := 0
	for ; ; n++ {
		if err := p.Put(n, rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatal(err)
			}
			break
		}
	}
	if n < 30 {
		t.Fatalf("only %d 100-byte records fit a %d-byte page", n, PageSize)
	}
	for i := 0; i < n; i += 2 {
		p.Delete(i)
	}
	big := bytes.Repeat([]byte{0xBB}, 120)
	if err := p.Put(0, big); err != nil {
		t.Fatalf("post-delete insert needing compaction: %v", err)
	}
	if got, ok := p.Slot(0); !ok || !bytes.Equal(got, big) {
		t.Fatal("compacted insert lost")
	}
	// Survivors intact after compaction.
	for i := 1; i < n; i += 2 {
		if got, ok := p.Slot(i); !ok || !bytes.Equal(got, rec) {
			t.Fatalf("slot %d corrupted by compaction", i)
		}
	}
}

func TestPagePutOversized(t *testing.T) {
	buf := make([]byte, PageSize)
	p := Format(buf, 1)
	if err := p.Put(0, bytes.Repeat([]byte{1}, PageSize)); !errors.Is(err, ErrPageFull) {
		t.Fatalf("oversized record accepted: %v", err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := [][]sqlval.Value{
		{sqlval.NewInt(42), sqlval.NewString("hello"), sqlval.Null()},
		{sqlval.NewFloat(3.25), sqlval.NewBool(true), sqlval.NewBool(false)},
		{},
		{sqlval.NewString(""), sqlval.NewInt(-1)},
	}
	for i, row := range rows {
		got, err := DecodeRow(EncodeRow(row))
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if len(got) != len(row) {
			t.Fatalf("row %d: %d values, want %d", i, len(got), len(row))
		}
		for j := range row {
			if row[j].IsNull() != got[j].IsNull() || (!row[j].IsNull() && sqlval.Compare(row[j], got[j]) != 0) {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[j], row[j])
			}
		}
	}
	for i, bad := range [][]byte{nil, {1}, {2, 0, byte(sqlval.KindInt), 1}, {1, 0, 99}} {
		if _, err := DecodeRow(bad); err == nil {
			t.Errorf("bad row %d decoded", i)
		}
	}
}

// TestPageRandomizedOps drives a page against a map model with a mixed
// workload of puts, replacements, and deletes at random slots.
func TestPageRandomizedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, PageSize)
	p := Format(buf, 3)
	model := map[int][]byte{}
	for step := 0; step < 5000; step++ {
		slot := rng.Intn(40)
		switch rng.Intn(3) {
		case 0, 1:
			rec := make([]byte, 1+rng.Intn(60))
			for i := range rec {
				rec[i] = byte(rng.Intn(256))
			}
			if err := p.Put(slot, rec); err != nil {
				if !errors.Is(err, ErrPageFull) {
					t.Fatal(err)
				}
				continue
			}
			model[slot] = rec
		case 2:
			p.Delete(slot)
			delete(model, slot)
		}
	}
	for slot := 0; slot < 40; slot++ {
		want, live := model[slot]
		got, ok := p.Slot(slot)
		if ok != live || (live && !bytes.Equal(got, want)) {
			t.Fatalf("slot %d: model live=%v page live=%v", slot, live, ok)
		}
	}
	Seal(buf)
	if err := Verify(buf); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsCraftedGeometry(t *testing.T) {
	buf := make([]byte, PageSize)
	p := Format(buf, 1)
	if err := p.Put(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Point the slot outside the records area and re-seal: checksum is
	// valid, geometry is not.
	p.setSlotEntry(0, PageSize-1, 40)
	Seal(buf)
	if err := Verify(buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("crafted geometry verified: %v", err)
	}
}

func ExampleFormat() {
	buf := make([]byte, PageSize)
	p := Format(buf, 12)
	_ = p.Put(0, []byte("row"))
	rec, _ := p.Slot(0)
	fmt.Println(p.ID(), string(rec))
	// Output: 12 row
}
