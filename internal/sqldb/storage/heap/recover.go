package heap

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"benchpress/internal/wal"
)

// Recovery: the ARIES three-pass restart protocol over physical slot-image
// records.
//
//   - Analysis scans the log for the last fuzzy checkpoint, splits
//     transactions into winners (commit record present) and losers, and
//     collects the dirty page table.
//   - Redo repeats history for winner updates from the redo point (the
//     checkpoint's minimum recLSN), guarded by page LSNs so it is
//     idempotent. Any torn page found on the device is reformatted and the
//     redo point falls back to the log start, because the tear destroyed
//     durable state older than the checkpoint bound.
//   - Undo walks loser updates in reverse LSN order restoring before-images.
//     The engine applies page changes only after the commit record is
//     durable (a no-steal policy for uncommitted data), so undo finds
//     nothing to revert in practice; it stays defensive — a before-image is
//     restored only when the slot still holds the loser's after-image.
//
// The active transaction table is empty by construction at every checkpoint
// (updates are logged and applied inside the commit window, never before),
// which is why the checkpoint record carries only the dirty page table.

// RecoveryResult summarizes one restart.
type RecoveryResult struct {
	// Winners holds committed transaction ids in commit-record LSN order.
	Winners []uint64
	// Losers holds transaction ids with updates but no commit record.
	Losers []uint64
	// MaxLSN is the last complete record's LSN; reopen the log with
	// StartSeq=MaxLSN to continue the sequence.
	MaxLSN uint64
	// MaxTxnID is the highest transaction id appearing in the log. The
	// engine restarts its id source above it: a post-restart transaction
	// that reused the id of a pre-crash committed one would have its
	// updates replayed as committed by the next recovery even if it lost.
	MaxTxnID uint64
	// CleanWALLen is the byte length of the log's intact prefix; the
	// caller truncates the physical log file to it before appending.
	CleanWALLen int
	// TornPages lists pages whose device image failed verification and
	// were rebuilt from the log.
	TornPages []uint32
	// Redone and Undone count applied redo and undo actions.
	Redone, Undone int
	// Updates holds every winner update in LSN order; the engine replays
	// them to rebuild in-memory state (tables, free-space map) without a
	// second log scan.
	Updates []RecoveredUpdate
}

// RecoveredUpdate is one winner update as recovery applied it.
type RecoveredUpdate struct {
	LSN    uint64
	TxnID  uint64
	PageID uint32
	Slot   uint16
	After  []byte // nil for deletes
}

// Recover runs the three passes against dev using the decoded log records
// and writes every touched page back, sealed and synced. It returns hard
// errors only for states a crash cannot produce (undecodable record bodies
// behind valid frame checksums, device write failures).
func Recover(dev Device, records []wal.Record) (*RecoveryResult, error) {
	res := &RecoveryResult{}

	// Decode every record once; frame checksums already vouched for the
	// bytes, so a decode failure is corruption, not a tear.
	type logRec struct {
		lsn uint64
		rec wal.ARIESRecord
	}
	decoded := make([]logRec, 0, len(records))
	for _, r := range records {
		ar, err := wal.DecodeARIES(r.Payload)
		if err != nil {
			return nil, fmt.Errorf("heap: recovery: record %d: %w", r.Seq, err)
		}
		decoded = append(decoded, logRec{lsn: r.Seq, rec: ar})
		res.MaxLSN = r.Seq
	}

	// --- Analysis ---
	committed := map[uint64]bool{wal.SystemTxnID: true}
	seen := map[uint64]bool{}
	var ckptLSN uint64
	var ckpt wal.CheckpointRec
	for _, lr := range decoded {
		switch lr.rec.Kind {
		case wal.KindUpdate:
			seen[lr.rec.Update.TxnID] = true
			if lr.rec.Update.TxnID > res.MaxTxnID {
				res.MaxTxnID = lr.rec.Update.TxnID
			}
		case wal.KindCommit:
			if !committed[lr.rec.Commit] {
				committed[lr.rec.Commit] = true
				res.Winners = append(res.Winners, lr.rec.Commit)
			}
			if lr.rec.Commit > res.MaxTxnID {
				res.MaxTxnID = lr.rec.Commit
			}
		case wal.KindCheckpoint:
			ckptLSN = lr.lsn
			ckpt = lr.rec.Checkpoint
		}
	}
	for id := range seen {
		if !committed[id] {
			res.Losers = append(res.Losers, id)
		}
	}
	sort.Slice(res.Losers, func(i, j int) bool { return res.Losers[i] < res.Losers[j] })

	// The redo point: the checkpoint's minimum recLSN (pages dirtied before
	// it may still miss durable updates from that point on). Everything
	// older is on disk — unless a torn page says otherwise below.
	redoLSN := ckptLSN
	for _, d := range ckpt.Dirty {
		if d.RecLSN < redoLSN {
			redoLSN = d.RecLSN
		}
	}

	// Page cache for the passes: load on demand, verify, reformat tears.
	devPages, err := dev.Pages()
	if err != nil {
		return nil, err
	}
	pages := map[uint32][]byte{}
	load := func(id uint32) (Page, error) {
		if b, ok := pages[id]; ok {
			return AsPage(b), nil
		}
		b := make([]byte, PageSize)
		if id >= devPages {
			pages[id] = b
			return Format(b, id), nil
		}
		switch err := dev.ReadPage(id, b); {
		case err == nil:
			if verr := Verify(b); verr != nil {
				res.TornPages = append(res.TornPages, id)
				Format(b, id)
			}
		case isMissing(err):
			Format(b, id)
		default:
			return Page{}, err
		}
		pages[id] = b
		return AsPage(b), nil
	}

	// A torn page lost durable history from before the checkpoint bound,
	// so probe every page the log might redo into before fixing the redo
	// start; any tear forces a full-log replay (the log is never truncated
	// past its last recovery, so the history is there).
	for _, lr := range decoded {
		if lr.rec.Kind == wal.KindUpdate && committed[lr.rec.Update.TxnID] {
			if _, err := load(lr.rec.Update.PageID); err != nil {
				return nil, err
			}
		}
	}
	start := redoLSN
	if len(res.TornPages) > 0 {
		start = 0
	}

	// --- Redo (repeat history for winners, page-LSN guarded) ---
	for _, lr := range decoded {
		if lr.rec.Kind != wal.KindUpdate || lr.lsn < start {
			continue
		}
		u := lr.rec.Update
		if !committed[u.TxnID] {
			continue
		}
		pg, err := load(u.PageID)
		if err != nil {
			return nil, err
		}
		if pg.LSN() >= lr.lsn {
			continue // already on disk
		}
		if err := pg.Put(int(u.Slot), u.After); err != nil {
			return nil, fmt.Errorf("heap: redo LSN %d page %d slot %d: %w", lr.lsn, u.PageID, u.Slot, err)
		}
		pg.SetLSN(lr.lsn)
		res.Redone++
	}

	// --- Undo (losers in reverse LSN order, defensive) ---
	for i := len(decoded) - 1; i >= 0; i-- {
		lr := decoded[i]
		if lr.rec.Kind != wal.KindUpdate || committed[lr.rec.Update.TxnID] {
			continue
		}
		u := lr.rec.Update
		pg, err := load(u.PageID)
		if err != nil {
			return nil, err
		}
		cur, ok := pg.Slot(int(u.Slot))
		present := ok && bytes.Equal(cur, u.After)
		if len(u.After) == 0 {
			present = !ok // a loser delete "took": the slot is gone
		}
		if pg.LSN() < lr.lsn || !present {
			continue // the effect never reached a page
		}
		if err := pg.Put(int(u.Slot), u.Before); err != nil {
			return nil, fmt.Errorf("heap: undo LSN %d page %d slot %d: %w", lr.lsn, u.PageID, u.Slot, err)
		}
		res.Undone++
	}

	// Materialize the winner updates for the engine's state rebuild.
	for _, lr := range decoded {
		if lr.rec.Kind != wal.KindUpdate || !committed[lr.rec.Update.TxnID] {
			continue
		}
		u := lr.rec.Update
		res.Updates = append(res.Updates, RecoveredUpdate{
			LSN: lr.lsn, TxnID: u.TxnID, PageID: u.PageID, Slot: u.Slot, After: u.After,
		})
	}

	// Write back every touched page sealed, in page order, and sync: the
	// recovered image is fully durable before the engine accepts traffic.
	ids := make([]uint32, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		Seal(pages[id])
		if err := dev.WritePage(id, pages[id]); err != nil {
			return nil, err
		}
	}
	if err := dev.Sync(); err != nil {
		return nil, err
	}
	sort.Slice(res.TornPages, func(i, j int) bool { return res.TornPages[i] < res.TornPages[j] })
	return res, nil
}

func isMissing(err error) bool { return errors.Is(err, ErrPageMissing) }
