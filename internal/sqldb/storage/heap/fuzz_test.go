package heap

import (
	"bytes"
	"testing"
)

// FuzzPageRoundTrip exercises the slotted-page codec from two directions.
// First the input is treated as a raw device image: Verify must reject or
// accept it without panicking, and an accepted page must survive a full slot
// walk plus further mutations. Then the input is replayed as an operation
// script against a fresh page and the result is checked against a map model,
// sealed, verified, and finally corrupted by one byte — which must always
// fail verification (the torn-write detector).
func FuzzPageRoundTrip(f *testing.F) {
	// Seeds: a sealed empty page, a sealed populated page, an unsealed page,
	// a truncated image, and raw garbage doubling as an op script.
	empty := make([]byte, PageSize)
	Format(empty, 1)
	Seal(empty)
	f.Add(append([]byte(nil), empty...))

	popBuf := make([]byte, PageSize)
	pop := Format(popBuf, 2)
	_ = pop.Put(0, []byte("alpha"))
	_ = pop.Put(4, bytes.Repeat([]byte{0xCD}, 300))
	Seal(popBuf)
	f.Add(append([]byte(nil), popBuf...))

	unsealed := make([]byte, PageSize)
	Format(unsealed, 3)
	_ = AsPage(unsealed).Put(0, []byte("no checksum"))
	f.Add(append([]byte(nil), unsealed...))

	f.Add(popBuf[:100])
	f.Add([]byte{0x01, 0x40, 0xFF, 0x00, 0x07, 0x03, 0xAA, 0xBB, 0xCC, 0x02, 0x05})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: data as a device image. Pad/truncate to PageSize the
		// way a torn tail read does (zero fill).
		img := make([]byte, PageSize)
		copy(img, data)
		if err := Verify(img); err == nil {
			p := AsPage(img)
			for i, n := 0, p.NumSlots(); i < n; i++ {
				if rec, ok := p.Slot(i); ok && len(rec) == 0 {
					t.Fatalf("slot %d live with zero length", i)
				}
			}
			// A verified page must accept further redo-style mutations.
			if err := p.Put(0, []byte("redo")); err == nil {
				if rec, ok := p.Slot(0); !ok || string(rec) != "redo" {
					t.Fatal("put on verified page lost the record")
				}
			}
		}

		// Direction 2: data as an op script against a fresh page.
		buf := make([]byte, PageSize)
		p := Format(buf, 9)
		model := map[int][]byte{}
		in := data
		for len(in) >= 2 {
			slot := int(in[0] % 32)
			ln := int(in[1])
			in = in[2:]
			if ln > len(in) {
				ln = len(in)
			}
			if ln == 0 {
				p.Delete(slot)
				delete(model, slot)
				continue
			}
			rec := append([]byte(nil), in[:ln]...)
			in = in[ln:]
			if err := p.Put(slot, rec); err != nil {
				continue // page full is a legal outcome, not a bug
			}
			model[slot] = rec
		}
		for slot := 0; slot < 32; slot++ {
			want, live := model[slot]
			got, ok := p.Slot(slot)
			if ok != live {
				t.Fatalf("slot %d: model live=%v page live=%v", slot, live, ok)
			}
			if live && !bytes.Equal(got, want) {
				t.Fatalf("slot %d: %q != %q", slot, got, want)
			}
		}
		Seal(buf)
		if err := Verify(buf); err != nil {
			t.Fatalf("built page fails verification: %v", err)
		}
		// Any single corrupted byte must be caught: the checksum covers the
		// entire page.
		if len(data) > 0 {
			pos := int(data[0]) % PageSize
			buf[pos] ^= 1 + data[len(data)-1]%255
			if err := Verify(buf); err == nil {
				t.Fatalf("flipped byte at %d not detected", pos)
			}
		}
	})
}
