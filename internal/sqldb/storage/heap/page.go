// Package heap implements the disk-resident storage layer: a slotted-page
// heap file with a checksummed page codec, a pin/unpin buffer pool with
// clock-LRU eviction, and ARIES-style three-pass recovery over the WAL's
// physical slot-image records.
//
// A page is a fixed-size byte array:
//
//	[ header 24B ][ slot directory, 4B/slot, growing up ] ... [ records, growing down ]
//
// Header layout (big-endian):
//
//	0:2   magic
//	2:4   flags (reserved, zero)
//	4:8   page id
//	8:16  page LSN — the LSN of the last update applied to the page
//	16:18 slot count
//	18:20 free pointer — offset of the lowest record byte
//	20:24 FNV-32a checksum over the page with this field zeroed
//
// The checksum is stamped by Seal immediately before a page goes to the
// device, and verified by Verify when it comes back; a failed Verify is how
// recovery detects a torn (partially written) page. Slot directory entries
// are (offset u16, length u16); offset zero marks a dead slot. Records never
// move except during compaction, which only reshuffles within the page.
//
// Every accessor bounds-checks against the raw bytes and returns an error or
// a false ok instead of panicking: recovery feeds pages read straight off a
// crashed device, and the fuzz harness feeds arbitrary garbage.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// PageSize is the fixed on-device page size.
const PageSize = 4096

// PageCapacity is the record space of a freshly formatted page (PageSize
// minus the header); allocators bound record sizes and fresh-page free space
// with it.
const PageCapacity = PageSize - headerSize

const (
	pageMagic  = 0x50C4
	headerSize = 24
	slotSize   = 4

	offMagic    = 0
	offFlags    = 2
	offPageID   = 4
	offLSN      = 8
	offSlots    = 16
	offFreePtr  = 18
	offChecksum = 20
)

// ErrPageFull is returned when a record cannot fit even after compaction.
var ErrPageFull = errors.New("heap: page full")

// ErrBadPage reports a page image whose geometry is inconsistent — a
// checksum mismatch, bad magic, or slot metadata pointing outside the page.
var ErrBadPage = errors.New("heap: corrupt page")

// Page is a view over one PageSize byte buffer. The zero value is invalid;
// wrap a buffer with AsPage after Format or a verified device read.
type Page struct {
	b []byte
}

// AsPage wraps a PageSize buffer. It does not validate contents; use Verify.
func AsPage(b []byte) Page { return Page{b: b} }

// Format initializes b as an empty page with the given id.
func Format(b []byte, id uint32) Page {
	for i := range b {
		b[i] = 0
	}
	binary.BigEndian.PutUint16(b[offMagic:], pageMagic)
	binary.BigEndian.PutUint32(b[offPageID:], id)
	binary.BigEndian.PutUint16(b[offFreePtr:], PageSize)
	return Page{b: b}
}

// checksum computes the page checksum with the checksum field zeroed.
func checksum(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b[:offChecksum])
	var zero [4]byte
	h.Write(zero[:])
	h.Write(b[offChecksum+4:])
	return h.Sum32()
}

// Seal stamps the page checksum; call immediately before a device write.
func Seal(b []byte) {
	binary.BigEndian.PutUint32(b[offChecksum:], checksum(b))
}

// Verify checks length, magic, checksum, and slot-directory geometry. A page
// that passes Verify can be walked with Slot without further checks failing.
func Verify(b []byte) error {
	if len(b) != PageSize {
		return fmt.Errorf("%w: %d bytes, want %d", ErrBadPage, len(b), PageSize)
	}
	if binary.BigEndian.Uint16(b[offMagic:]) != pageMagic {
		return fmt.Errorf("%w: bad magic 0x%04x", ErrBadPage, binary.BigEndian.Uint16(b[offMagic:]))
	}
	if got, want := binary.BigEndian.Uint32(b[offChecksum:]), checksum(b); got != want {
		return fmt.Errorf("%w: checksum 0x%08x, want 0x%08x (torn write)", ErrBadPage, got, want)
	}
	p := Page{b: b}
	n := p.NumSlots()
	free := int(binary.BigEndian.Uint16(b[offFreePtr:]))
	if dirEnd := headerSize + n*slotSize; dirEnd > free || free > PageSize {
		return fmt.Errorf("%w: %d slots overlap free pointer %d", ErrBadPage, n, free)
	}
	for i := 0; i < n; i++ {
		off, ln := p.slotEntry(i)
		if off == 0 {
			continue
		}
		if int(off) < free || int(off)+int(ln) > PageSize {
			return fmt.Errorf("%w: slot %d spans [%d,%d) outside records area [%d,%d)",
				ErrBadPage, i, off, int(off)+int(ln), free, PageSize)
		}
		if ln == 0 {
			// Zero-length live records are unrepresentable: Put treats an
			// empty record as a delete.
			return fmt.Errorf("%w: slot %d live with zero length", ErrBadPage, i)
		}
	}
	return nil
}

// ID returns the page id stored in the header.
func (p Page) ID() uint32 { return binary.BigEndian.Uint32(p.b[offPageID:]) }

// LSN returns the page LSN.
func (p Page) LSN() uint64 { return binary.BigEndian.Uint64(p.b[offLSN:]) }

// SetLSN stamps the page LSN.
func (p Page) SetLSN(lsn uint64) { binary.BigEndian.PutUint64(p.b[offLSN:], lsn) }

// NumSlots returns the slot directory length (live and dead slots).
func (p Page) NumSlots() int { return int(binary.BigEndian.Uint16(p.b[offSlots:])) }

func (p Page) slotEntry(i int) (off, ln uint16) {
	base := headerSize + i*slotSize
	return binary.BigEndian.Uint16(p.b[base:]), binary.BigEndian.Uint16(p.b[base+2:])
}

func (p Page) setSlotEntry(i int, off, ln uint16) {
	base := headerSize + i*slotSize
	binary.BigEndian.PutUint16(p.b[base:], off)
	binary.BigEndian.PutUint16(p.b[base+2:], ln)
}

func (p Page) freePtr() int      { return int(binary.BigEndian.Uint16(p.b[offFreePtr:])) }
func (p Page) setFreePtr(v int)  { binary.BigEndian.PutUint16(p.b[offFreePtr:], uint16(v)) }
func (p Page) setNumSlots(n int) { binary.BigEndian.PutUint16(p.b[offSlots:], uint16(n)) }

// Slot returns the record stored at slot i. ok is false for dead slots,
// out-of-range indexes, and geometry that points outside the page (possible
// only on unverified images). The returned bytes alias the page buffer.
func (p Page) Slot(i int) (rec []byte, ok bool) {
	if i < 0 || i >= p.NumSlots() {
		return nil, false
	}
	off, ln := p.slotEntry(i)
	if off == 0 {
		return nil, false
	}
	if int(off) < headerSize || int(off)+int(ln) > len(p.b) {
		return nil, false
	}
	return p.b[off : int(off)+int(ln)], true
}

// FreeSpace returns the bytes available for new records counting compactable
// garbage, excluding the directory growth a fresh slot would need (the
// allocator budgets slotSize per insert on top of the record length).
func (p Page) FreeSpace() int {
	dirEnd := headerSize + p.NumSlots()*slotSize
	return PageSize - dirEnd - p.liveBytes(-1)
}

// SlotDirSize is the per-slot directory overhead an insert adds when it
// extends the directory; allocators budget RecordOverhead = len(rec) +
// SlotDirSize per fresh slot.
const SlotDirSize = slotSize

// liveBytes sums live record lengths (compaction target size).
func (p Page) liveBytes(excludeSlot int) int {
	total := 0
	for i, n := 0, p.NumSlots(); i < n; i++ {
		if i == excludeSlot {
			continue
		}
		if _, ln := p.slotEntry(i); ln > 0 {
			if off, _ := p.slotEntry(i); off != 0 {
				total += int(ln)
			}
		}
	}
	return total
}

// FreeFor reports whether a record of n bytes can be placed at slot, counting
// the directory growth a fresh slot needs and the space reclaimable by
// compaction. Replacing an existing record credits its current length.
func (p Page) FreeFor(slot, n int) bool {
	dirSlots := p.NumSlots()
	if slot >= dirSlots {
		dirSlots = slot + 1
	}
	dirEnd := headerSize + dirSlots*slotSize
	return dirEnd+p.liveBytes(slot)+n <= PageSize
}

// Put stores rec at slot i, growing the slot directory as needed (skipped
// indexes become dead slots) and compacting when the contiguous gap is too
// small. An empty rec deletes the slot. Put is the redo primitive: it must
// be applicable to any verified page at any slot index, so recovery can
// replay update records idempotently.
func (p Page) Put(i int, rec []byte) error {
	if i < 0 || i > 0xFFFF-1 {
		return fmt.Errorf("heap: slot index %d out of range", i)
	}
	if len(rec) == 0 {
		p.Delete(i)
		return nil
	}
	if !p.FreeFor(i, len(rec)) {
		return fmt.Errorf("%w: %d-byte record at slot %d", ErrPageFull, len(rec), i)
	}
	// Kill the old image first; its bytes become garbage that compaction
	// reclaims, and FreeFor already credited them.
	if i < p.NumSlots() {
		p.setSlotEntry(i, 0, 0)
	}
	// Directory growth may cross the free pointer into record bytes, so
	// compact before zeroing the new entries, not after.
	if n := p.NumSlots(); i >= n {
		if headerSize+(i+1)*slotSize > p.freePtr() {
			p.compact()
		}
		for j := n; j <= i; j++ {
			p.setSlotEntry(j, 0, 0)
		}
		p.setNumSlots(i + 1)
	}
	dirEnd := headerSize + p.NumSlots()*slotSize
	if p.freePtr()-dirEnd < len(rec) {
		p.compact()
	}
	off := p.freePtr() - len(rec)
	copy(p.b[off:], rec)
	p.setFreePtr(off)
	p.setSlotEntry(i, uint16(off), uint16(len(rec)))
	return nil
}

// Delete kills slot i; its bytes are reclaimed by a later compaction. The
// slot index remains occupied (dead) so redo's slot addressing stays stable.
func (p Page) Delete(i int) {
	if i < 0 || i >= p.NumSlots() {
		return
	}
	p.setSlotEntry(i, 0, 0)
}

// compact rewrites live records contiguously at the page tail, reclaiming
// garbage left by deletes and replacements. Slot order is preserved.
func (p Page) compact() {
	var scratch [PageSize]byte
	w := PageSize
	n := p.NumSlots()
	type placed struct{ off, ln uint16 }
	entries := make([]placed, n)
	for i := 0; i < n; i++ {
		off, ln := p.slotEntry(i)
		if off == 0 {
			continue
		}
		w -= int(ln)
		copy(scratch[w:], p.b[off:int(off)+int(ln)])
		entries[i] = placed{off: uint16(w), ln: ln}
	}
	copy(p.b[w:], scratch[w:])
	for i := 0; i < n; i++ {
		if e := entries[i]; e.off != 0 {
			p.setSlotEntry(i, e.off, e.ln)
		}
	}
	p.setFreePtr(w)
}
