package heap

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"benchpress/internal/wal"
)

// ErrNoFrames is returned when every frame is pinned and a new page cannot
// be brought in. It indicates a pin leak or a pool sized below the
// transaction's working set.
var ErrNoFrames = errors.New("heap: all buffer-pool frames pinned")

// Frame is one buffer-pool slot holding a page image. Callers access Data
// only between Pin and Unpin; the pin count keeps the frame resident, and
// the dirty flag handed to Unpin schedules the page for write-back.
type Frame struct {
	id     uint32
	data   []byte
	pins   int
	dirty  bool
	ref    bool   // clock reference bit
	recLSN uint64 // LSN when the frame first became dirty (checkpoint DPT)
}

// ID returns the page id the frame holds.
func (f *Frame) ID() uint32 { return f.id }

// Data returns the frame's page bytes. Valid only while pinned.
func (f *Frame) Data() []byte { return f.data }

// Page returns the frame's bytes as a Page view. Valid only while pinned.
func (f *Frame) Page() Page { return AsPage(f.data) }

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Pages is the frame count (the buffer-pool budget). Minimum 1.
	Pages int
	// Device backs the pool.
	Device Device
	// FlushWAL enforces write-ahead logging: it is called with a dirty
	// page's LSN immediately before the page is written to the device and
	// must ensure the log is durable through that LSN (or fail, which
	// aborts the eviction). Nil skips the check.
	FlushWAL func(lsn uint64) error
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	Hits, Misses, Evictions, Flushes uint64
	Pinned, Dirty                    int
}

// Pool is a buffer pool: a fixed set of page frames over a Device with
// pin/unpin discipline, dirty tracking, and clock-LRU eviction. All methods
// are safe for concurrent use; one mutex serializes metadata (page fetches
// and write-backs happen under it too — the pool optimizes for correctness
// and deterministic replay, not for overlapping device IO).
type Pool struct {
	mu     sync.Mutex
	dev    Device
	flush  func(uint64) error
	frames []*Frame
	table  map[uint32]*Frame
	hand   int

	hits, misses, evictions, flushes uint64
}

// NewPool builds a pool with o.Pages frames.
func NewPool(o PoolOptions) *Pool {
	if o.Pages < 1 {
		o.Pages = 1
	}
	return &Pool{
		dev:    o.Device,
		flush:  o.FlushWAL,
		frames: make([]*Frame, 0, o.Pages),
		table:  make(map[uint32]*Frame, o.Pages),
	}
}

// Pin fetches page id into a frame, pinning it. The page must exist on the
// device (or still be resident); a torn on-device image surfaces the Verify
// error. Use PinNew for pages being created.
func (p *Pool) Pin(id uint32) (*Frame, error) { return p.pin(id, false) }

// PinNew pins a frame holding a freshly formatted page id, without reading
// the device. The caller is creating the page; its first Unpin(dirty=true)
// schedules the initial write-back.
func (p *Pool) PinNew(id uint32) (*Frame, error) { return p.pin(id, true) }

func (p *Pool) pin(id uint32, fresh bool) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.table[id]; ok {
		f.pins++
		f.ref = true
		p.hits++
		return f, nil
	}
	p.misses++
	f, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	if fresh {
		Format(f.data, id)
	} else if err := p.dev.ReadPage(id, f.data); err != nil {
		p.releaseVictimLocked(f)
		return nil, err
	} else if err := Verify(f.data); err != nil {
		p.releaseVictimLocked(f)
		return nil, fmt.Errorf("heap: page %d: %w", id, err)
	}
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = false
	f.recLSN = 0
	p.table[id] = f
	return f, nil
}

// victimLocked returns an empty frame: a never-used one while the pool is
// below budget, else a clock-LRU victim (unpinned, reference bit clear),
// flushing it first when dirty. The victim is removed from the page table
// before its contents are replaced.
func (p *Pool) victimLocked() (*Frame, error) {
	if len(p.frames) < cap(p.frames) {
		f := &Frame{data: make([]byte, PageSize)}
		p.frames = append(p.frames, f)
		return f, nil
	}
	// Two full sweeps: the first clears reference bits, the second takes
	// the first unpinned frame. 2n+1 checks bound the walk when every
	// frame is referenced but some are unpinned.
	for i := 0; i < 2*len(p.frames)+1; i++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if err := p.flushFrameLocked(f); err != nil {
				return nil, err
			}
		}
		delete(p.table, f.id)
		p.evictions++
		return f, nil
	}
	return nil, ErrNoFrames
}

// releaseVictimLocked returns a victim whose load failed to the pool as an
// empty, immediately reusable frame.
func (p *Pool) releaseVictimLocked(f *Frame) {
	f.id = 0
	f.pins = 0
	f.dirty = false
	f.ref = false
	Format(f.data, 0)
	// Leave it out of the table; the clock will hand it out again.
}

// flushFrameLocked writes one dirty frame back: WAL first (write-ahead
// check against the page LSN), then seal and device write.
func (p *Pool) flushFrameLocked(f *Frame) error {
	if p.flush != nil {
		if err := p.flush(AsPage(f.data).LSN()); err != nil {
			return fmt.Errorf("heap: WAL-before-data flush for page %d: %w", f.id, err)
		}
	}
	Seal(f.data)
	if err := p.dev.WritePage(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	f.recLSN = 0
	p.flushes++
	return nil
}

// Unpin releases one pin. dirty marks the frame as modified since its last
// write-back; the first dirtying records the page LSN as the frame's recLSN
// (the checkpoint dirty-page-table entry). Unpinning an unpinned frame
// panics: it is a balance bug the pin-leak lint exists to prevent.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("heap: unpin of unpinned page %d", f.id))
	}
	f.pins--
	if dirty && !f.dirty {
		f.dirty = true
		f.recLSN = AsPage(f.data).LSN()
	}
}

// FlushAll writes every dirty frame back and syncs the device (clean
// shutdown and the forced flush after recovery).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Deterministic order: ascending page id.
	dirty := make([]*Frame, 0, len(p.frames))
	for _, f := range p.frames {
		if f.dirty {
			dirty = append(dirty, f)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].id < dirty[j].id })
	for _, f := range dirty {
		if err := p.flushFrameLocked(f); err != nil {
			return err
		}
	}
	return p.dev.Sync()
}

// DirtyPages snapshots the dirty page table for a fuzzy checkpoint, sorted
// by page id so the encoded record is deterministic.
func (p *Pool) DirtyPages() []wal.DirtyPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]wal.DirtyPage, 0, len(p.frames))
	for _, f := range p.frames {
		if f.dirty {
			out = append(out, wal.DirtyPage{PageID: f.id, RecLSN: f.recLSN})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PageID < out[j].PageID })
	return out
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Flushes: p.flushes}
	for _, f := range p.frames {
		if f.pins > 0 {
			s.Pinned++
		}
		if f.dirty {
			s.Dirty++
		}
	}
	return s
}
