package heap

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"benchpress/internal/sqlval"
)

// Row codec: the byte form of one row image inside a heap record. Layout is
// a u16 column count followed by one kind byte per value and a fixed or
// length-prefixed payload. Decoding bounds-checks everything and returns
// errors, never panics — recovery decodes records straight off a crashed
// device and the page fuzz target feeds garbage.

// EncodeRow serializes a row image.
func EncodeRow(vals []sqlval.Value) []byte {
	b := make([]byte, 0, 2+len(vals)*9)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(vals)))
	for _, v := range vals {
		b = append(b, byte(v.Kind()))
		switch v.Kind() {
		case sqlval.KindNull:
		case sqlval.KindInt:
			b = binary.LittleEndian.AppendUint64(b, uint64(v.Int()))
		case sqlval.KindFloat:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float()))
		case sqlval.KindString:
			s := v.Str()
			b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
			b = append(b, s...)
		case sqlval.KindBool:
			if v.Bool() {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		case sqlval.KindTime:
			b = binary.LittleEndian.AppendUint64(b, uint64(v.Time().UnixNano()))
		default:
			// Unstorable kinds (KindTop) never reach committed rows; encode
			// as NULL so the record stays decodable.
			b[len(b)-1] = byte(sqlval.KindNull)
		}
	}
	return b
}

// DecodeRow deserializes a row image produced by EncodeRow.
func DecodeRow(b []byte) ([]sqlval.Value, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("heap: row image of %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	vals := make([]sqlval.Value, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("heap: row image truncated at column %d", i)
		}
		kind := sqlval.Kind(b[0])
		b = b[1:]
		switch kind {
		case sqlval.KindNull:
			vals = append(vals, sqlval.Null())
		case sqlval.KindInt, sqlval.KindFloat, sqlval.KindTime:
			if len(b) < 8 {
				return nil, fmt.Errorf("heap: row image truncated at column %d payload", i)
			}
			u := binary.LittleEndian.Uint64(b)
			b = b[8:]
			switch kind {
			case sqlval.KindInt:
				vals = append(vals, sqlval.NewInt(int64(u)))
			case sqlval.KindFloat:
				vals = append(vals, sqlval.NewFloat(math.Float64frombits(u)))
			default:
				vals = append(vals, sqlval.NewTime(time.Unix(0, int64(u)).UTC()))
			}
		case sqlval.KindString:
			if len(b) < 4 {
				return nil, fmt.Errorf("heap: row image truncated at column %d length", i)
			}
			ln := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if ln < 0 || ln > len(b) {
				return nil, fmt.Errorf("heap: column %d string length %d exceeds %d bytes", i, ln, len(b))
			}
			vals = append(vals, sqlval.NewString(string(b[:ln])))
			b = b[ln:]
		case sqlval.KindBool:
			if len(b) < 1 {
				return nil, fmt.Errorf("heap: row image truncated at column %d payload", i)
			}
			vals = append(vals, sqlval.NewBool(b[0] != 0))
			b = b[1:]
		default:
			return nil, fmt.Errorf("heap: row image column %d has unknown kind %d", i, kind)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("heap: %d trailing bytes after row image", len(b))
	}
	return vals, nil
}
