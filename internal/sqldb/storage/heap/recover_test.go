package heap

import (
	"bytes"
	"reflect"
	"testing"

	"benchpress/internal/wal"
)

// rec builds one decoded-log entry for Recover.
func rec(seq uint64, payload []byte) wal.Record { return wal.Record{Seq: seq, Payload: payload} }

func upd(txn uint64, page uint32, slot uint16, before, after []byte) []byte {
	return wal.EncodeUpdate(wal.UpdateRec{TxnID: txn, PageID: page, Slot: slot, Before: before, After: after})
}

func readPage(t *testing.T, dev Device, id uint32) Page {
	t.Helper()
	buf := make([]byte, PageSize)
	if err := dev.ReadPage(id, buf); err != nil {
		t.Fatalf("read page %d: %v", id, err)
	}
	if err := Verify(buf); err != nil {
		t.Fatalf("recovered page %d: %v", id, err)
	}
	return AsPage(buf)
}

func slotString(t *testing.T, p Page, i int) string {
	t.Helper()
	rec, ok := p.Slot(i)
	if !ok {
		return "<dead>"
	}
	return string(rec)
}

// TestRecoverRedoWinnersSkipLosers: committed updates are replayed onto an
// empty device; updates of a transaction without a commit record are not.
func TestRecoverRedoWinnersSkipLosers(t *testing.T) {
	dev := NewMemDevice()
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("a"))),
		rec(2, upd(1, 0, 1, nil, []byte("b"))),
		rec(3, wal.EncodeCommit(1)),
		rec(4, upd(2, 0, 0, []byte("a"), []byte("loser"))), // no commit follows
	}
	res, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Winners, []uint64{1}) || !reflect.DeepEqual(res.Losers, []uint64{2}) {
		t.Fatalf("winners=%v losers=%v", res.Winners, res.Losers)
	}
	if res.Redone != 2 || res.Undone != 0 || res.MaxLSN != 4 {
		t.Fatalf("redone=%d undone=%d maxLSN=%d", res.Redone, res.Undone, res.MaxLSN)
	}
	p := readPage(t, dev, 0)
	if slotString(t, p, 0) != "a" || slotString(t, p, 1) != "b" {
		t.Fatalf("page: slot0=%q slot1=%q", slotString(t, p, 0), slotString(t, p, 1))
	}
	if len(res.Updates) != 2 || res.Updates[0].LSN != 1 || res.Updates[1].LSN != 2 {
		t.Fatalf("materialized updates: %+v", res.Updates)
	}
}

// TestRecoverCheckpointBoundsRedo: updates older than the checkpoint's redo
// point are trusted to be on disk and skipped.
func TestRecoverCheckpointBoundsRedo(t *testing.T) {
	dev := NewMemDevice()
	// Flushed state: page 0 holds txn 1's update, pageLSN 1.
	buf := make([]byte, PageSize)
	p := Format(buf, 0)
	if err := p.Put(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	p.SetLSN(1)
	Seal(buf)
	if err := dev.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("v1"))),
		rec(2, wal.EncodeCommit(1)),
		rec(3, wal.EncodeCheckpoint(wal.CheckpointRec{})), // clean DPT: page flushed
		rec(4, upd(2, 0, 1, nil, []byte("v2"))),
		rec(5, wal.EncodeCommit(2)),
	}
	res, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 1 {
		t.Fatalf("redone=%d, want only the post-checkpoint update", res.Redone)
	}
	p = readPage(t, dev, 0)
	if slotString(t, p, 0) != "v1" || slotString(t, p, 1) != "v2" {
		t.Fatalf("slot0=%q slot1=%q", slotString(t, p, 0), slotString(t, p, 1))
	}
	if p.LSN() != 4 {
		t.Fatalf("pageLSN=%d", p.LSN())
	}
}

// TestRecoverDirtyPageTableLowersRedoPoint: a checkpoint whose DPT carries a
// recLSN below the checkpoint forces redo from that recLSN, repairing a page
// that was dirty (not yet flushed) at checkpoint time.
func TestRecoverDirtyPageTableLowersRedoPoint(t *testing.T) {
	dev := NewMemDevice() // page 0 never made it to disk
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("dirty"))),
		rec(2, wal.EncodeCommit(1)),
		rec(3, wal.EncodeCheckpoint(wal.CheckpointRec{Dirty: []wal.DirtyPage{{PageID: 0, RecLSN: 1}}})),
	}
	res, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 1 {
		t.Fatalf("redone=%d", res.Redone)
	}
	if got := slotString(t, readPage(t, dev, 0), 0); got != "dirty" {
		t.Fatalf("slot0=%q", got)
	}
}

// TestRecoverTornPageForcesFullReplay: a page that fails verification is
// rebuilt from the log start even when a checkpoint would bound redo later.
func TestRecoverTornPageForcesFullReplay(t *testing.T) {
	dev := NewMemDevice()
	// A flushed-then-torn image of page 0.
	buf := make([]byte, PageSize)
	p := Format(buf, 0)
	if err := p.Put(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	p.SetLSN(1)
	Seal(buf)
	if err := dev.WritePartial(0, buf, 100); err != nil { // torn mid-write
		t.Fatal(err)
	}
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("v1"))),
		rec(2, wal.EncodeCommit(1)),
		rec(3, wal.EncodeCheckpoint(wal.CheckpointRec{})),
		rec(4, upd(2, 0, 1, nil, []byte("v2"))),
		rec(5, wal.EncodeCommit(2)),
	}
	res, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.TornPages, []uint32{0}) {
		t.Fatalf("torn pages: %v", res.TornPages)
	}
	if res.Redone != 2 {
		t.Fatalf("redone=%d, want full-history replay", res.Redone)
	}
	p = readPage(t, dev, 0)
	if slotString(t, p, 0) != "v1" || slotString(t, p, 1) != "v2" {
		t.Fatalf("slot0=%q slot1=%q", slotString(t, p, 0), slotString(t, p, 1))
	}
}

// TestRecoverUndoRestoresBeforeImage: if a loser's after-image somehow
// reached a page (a stolen write), undo restores the before-image — but only
// when the slot actually holds the loser's after-image.
func TestRecoverUndoRestoresBeforeImage(t *testing.T) {
	dev := NewMemDevice()
	// Device state: loser txn 3's after-image is on the page at pageLSN 3.
	buf := make([]byte, PageSize)
	p := Format(buf, 0)
	if err := p.Put(0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	p.SetLSN(3)
	Seal(buf)
	if err := dev.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("old"))),
		rec(2, wal.EncodeCommit(1)),
		rec(3, upd(3, 0, 0, []byte("old"), []byte("new"))), // loser, stolen
	}
	res, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undone != 1 {
		t.Fatalf("undone=%d", res.Undone)
	}
	if got := slotString(t, readPage(t, dev, 0), 0); got != "old" {
		t.Fatalf("slot0=%q after undo", got)
	}

	// Same log against a device where the steal never happened: undo must
	// not fire (the slot holds the winner's image, not the loser's).
	dev2 := NewMemDevice()
	res2, err := Recover(dev2, log)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Undone != 0 {
		t.Fatalf("undone=%d on a no-steal device", res2.Undone)
	}
	if got := slotString(t, readPage(t, dev2, 0), 0); got != "old" {
		t.Fatalf("slot0=%q", got)
	}
}

// TestRecoverWinnerDelete: a committed delete (empty after-image) removes the
// slot during redo.
func TestRecoverWinnerDelete(t *testing.T) {
	dev := NewMemDevice()
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("gone soon"))),
		rec(2, wal.EncodeCommit(1)),
		rec(3, upd(2, 0, 0, []byte("gone soon"), nil)),
		rec(4, wal.EncodeCommit(2)),
	}
	if _, err := Recover(dev, log); err != nil {
		t.Fatal(err)
	}
	if _, ok := readPage(t, dev, 0).Slot(0); ok {
		t.Fatal("deleted slot survived recovery")
	}
}

// TestRecoverIdempotent: recovering an already-recovered device is a no-op
// and yields a bit-identical image.
func TestRecoverIdempotent(t *testing.T) {
	dev := NewMemDevice()
	log := []wal.Record{
		rec(1, upd(1, 0, 0, nil, []byte("a"))),
		rec(2, upd(1, 1, 0, nil, []byte("b"))),
		rec(3, wal.EncodeCommit(1)),
		rec(4, upd(2, 0, 1, nil, []byte("c"))),
		rec(5, wal.EncodeCommit(2)),
	}
	if _, err := Recover(dev, log); err != nil {
		t.Fatal(err)
	}
	img1 := dev.Image()
	res2, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Redone != 0 || res2.Undone != 0 {
		t.Fatalf("second recovery redid work: redone=%d undone=%d", res2.Redone, res2.Undone)
	}
	img2 := dev.Image()
	if len(img1) != len(img2) {
		t.Fatalf("image page counts differ: %d vs %d", len(img1), len(img2))
	}
	for i := range img1 {
		if !bytes.Equal(img1[i], img2[i]) {
			t.Fatalf("page %d differs after re-recovery", i)
		}
	}
}

// TestRecoverSystemTxnAlwaysWins: SystemTxnID updates (catalog records) are
// replayed without a commit record.
func TestRecoverSystemTxnAlwaysWins(t *testing.T) {
	dev := NewMemDevice()
	log := []wal.Record{
		rec(1, upd(wal.SystemTxnID, 0, 0, nil, []byte("schema"))),
	}
	res, err := Recover(dev, log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 1 || len(res.Losers) != 0 {
		t.Fatalf("redone=%d losers=%v", res.Redone, res.Losers)
	}
	if got := slotString(t, readPage(t, dev, 0), 0); got != "schema" {
		t.Fatalf("slot0=%q", got)
	}
}

// TestRecoverUndecodableRecord: garbage behind a valid frame checksum is a
// hard error, not a silent skip.
func TestRecoverUndecodableRecord(t *testing.T) {
	if _, err := Recover(NewMemDevice(), []wal.Record{rec(1, []byte{0xFF, 0x00})}); err == nil {
		t.Fatal("undecodable record accepted")
	}
}
