package heap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// checkedDevice asserts write-ahead logging on every page write: a page may
// only reach the device once the WAL is durable through its LSN.
type checkedDevice struct {
	*MemDevice
	walDurable *atomic.Uint64
	violations atomic.Int32
}

func (d *checkedDevice) WritePage(id uint32, buf []byte) error {
	if lsn := AsPage(buf).LSN(); lsn > d.walDurable.Load() {
		d.violations.Add(1)
	}
	if err := Verify(buf); err != nil {
		d.violations.Add(1) // unsealed page reached the device
	}
	return d.MemDevice.WritePage(id, buf)
}

// TestPoolPropertyConcurrent drives the pool with randomized concurrent
// pin/write/unpin load well past the frame budget and checks the core
// invariants: pinned pages are never evicted or relocated, pin/unpin counts
// balance, and dirty pages hit the WAL before the device (run with -race).
func TestPoolPropertyConcurrent(t *testing.T) {
	const (
		frames  = 4
		pages   = 64
		workers = 4
		iters   = 2000
	)
	var walDurable atomic.Uint64
	dev := &checkedDevice{MemDevice: NewMemDevice(), walDurable: &walDurable}
	pool := NewPool(PoolOptions{
		Pages:  frames,
		Device: dev,
		FlushWAL: func(lsn uint64) error {
			for {
				cur := walDurable.Load()
				if lsn <= cur || walDurable.CompareAndSwap(cur, lsn) {
					return nil
				}
			}
		},
	})

	var (
		nextLSN  atomic.Uint64
		versions [pages]atomic.Uint64
		pageMu   [pages]sync.Mutex // content writers need external coordination
		created  [pages]atomic.Bool
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := uint32(rng.Intn(pages))
				pageMu[id].Lock()
				var (
					f   *Frame
					err error
				)
				creating := created[id].CompareAndSwap(false, true)
				if creating {
					f, err = pool.PinNew(id)
				} else {
					f, err = pool.Pin(id)
				}
				if err != nil {
					pageMu[id].Unlock()
					t.Errorf("pin page %d: %v", id, err)
					return
				}
				// Pinned means resident and stable: the frame must keep
				// holding our page across the whole critical section.
				if f.ID() != id {
					t.Errorf("pinned frame relocated: holds %d, want %d", f.ID(), id)
				}
				pg := f.Page()
				if rec, ok := pg.Slot(0); ok {
					gotID := binary.BigEndian.Uint32(rec)
					gotVer := binary.BigEndian.Uint64(rec[4:])
					if gotID != id || gotVer != versions[id].Load() {
						t.Errorf("page %d content: id=%d ver=%d, want ver=%d",
							id, gotID, gotVer, versions[id].Load())
					}
				} else if versions[id].Load() != 0 {
					t.Errorf("page %d lost its record at version %d", id, versions[id].Load())
				}
				// Creation must be a dirty unpin: a clean eviction would drop
				// the only copy of a page the device has never seen.
				dirty := creating || rng.Intn(2) == 0
				if dirty {
					ver := versions[id].Add(1)
					var rec [12]byte
					binary.BigEndian.PutUint32(rec[:], id)
					binary.BigEndian.PutUint64(rec[4:], ver)
					if err := pg.Put(0, rec[:]); err != nil {
						t.Errorf("put page %d: %v", id, err)
					}
					pg.SetLSN(nextLSN.Add(1))
				}
				if f.ID() != id {
					t.Errorf("frame stolen while pinned: holds %d, want %d", f.ID(), id)
				}
				pool.Unpin(f, dirty)
				pageMu[id].Unlock()
			}
		}(int64(w + 1))
	}
	wg.Wait()

	if n := dev.violations.Load(); n != 0 {
		t.Fatalf("%d WAL-before-data violations (dirty page hit the device before its log records)", n)
	}
	st := pool.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pin/unpin imbalance: %d frames still pinned after all workers unpinned", st.Pinned)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions with %d pages over %d frames — the test exerted no pressure", pages, frames)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Dirty != 0 {
		t.Fatalf("%d dirty frames after FlushAll", st.Dirty)
	}
	// Every created page's durable image holds its final version.
	for id := 0; id < pages; id++ {
		if !created[id].Load() {
			continue
		}
		buf := make([]byte, PageSize)
		if err := dev.ReadPage(uint32(id), buf); err != nil {
			t.Fatalf("read back page %d: %v", id, err)
		}
		if err := Verify(buf); err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		want := versions[id].Load()
		rec, ok := AsPage(buf).Slot(0)
		if want == 0 {
			continue // page was created but never dirtied
		}
		if !ok || binary.BigEndian.Uint64(rec[4:]) != want {
			t.Fatalf("page %d durable version != %d", id, want)
		}
	}
}

func TestPoolPinnedNeverEvicted(t *testing.T) {
	dev := NewMemDevice()
	pool := NewPool(PoolOptions{Pages: 2, Device: dev})
	f1, err := pool.PinNew(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Page().Put(0, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	// Churn many pages through the one remaining frame.
	for id := uint32(10); id < 30; id++ {
		f, err := pool.PinNew(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		pool.Unpin(f, true)
	}
	if st := pool.Stats(); st.Evictions == 0 {
		t.Fatal("churn caused no evictions")
	}
	if f1.ID() != 1 {
		t.Fatalf("pinned frame now holds page %d", f1.ID())
	}
	if rec, ok := f1.Page().Slot(0); !ok || string(rec) != "pinned" {
		t.Fatal("pinned frame contents clobbered")
	}
	pool.Unpin(f1, true)
}

func TestPoolAllPinned(t *testing.T) {
	pool := NewPool(PoolOptions{Pages: 2, Device: NewMemDevice()})
	f1, _ := pool.PinNew(1)
	f2, _ := pool.PinNew(2)
	if _, err := pool.PinNew(3); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("pin over budget: %v", err)
	}
	pool.Unpin(f2, false)
	if _, err := pool.PinNew(3); err != nil {
		t.Fatalf("pin after release: %v", err)
	}
	pool.Unpin(f1, false)
}

func TestPoolUnpinImbalancePanics(t *testing.T) {
	pool := NewPool(PoolOptions{Pages: 1, Device: NewMemDevice()})
	f, err := pool.PinNew(1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Unpin did not panic")
		}
	}()
	pool.Unpin(f, false)
}

// TestPoolFlushFailureAbortsEviction: when the WAL cannot be made durable,
// the dirty page must stay resident rather than reach the device.
func TestPoolFlushFailureAbortsEviction(t *testing.T) {
	dev := NewMemDevice()
	walErr := fmt.Errorf("log device dead")
	pool := NewPool(PoolOptions{
		Pages:    1,
		Device:   dev,
		FlushWAL: func(uint64) error { return walErr },
	})
	f, err := pool.PinNew(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Page().Put(0, []byte("unflushable")); err != nil {
		t.Fatal(err)
	}
	f.Page().SetLSN(7)
	pool.Unpin(f, true)

	if _, err := pool.Pin(2); err == nil || !strings.Contains(err.Error(), "log device dead") {
		t.Fatalf("eviction with dead WAL: %v", err)
	}
	if n, _ := dev.Pages(); n != 0 {
		t.Fatal("dirty page reached the device without a durable log")
	}
	// The page is still resident and intact.
	f, err = pool.Pin(1)
	if err != nil {
		t.Fatal(err)
	}
	if rec, ok := f.Page().Slot(0); !ok || !bytes.Equal(rec, []byte("unflushable")) {
		t.Fatal("dirty page lost after failed eviction")
	}
	pool.Unpin(f, false)
	if err := pool.FlushAll(); err == nil {
		t.Fatal("FlushAll succeeded with a dead WAL")
	}
}

func TestPoolDirtyPageTable(t *testing.T) {
	pool := NewPool(PoolOptions{Pages: 4, Device: NewMemDevice()})
	for _, id := range []uint32{5, 3} {
		f, err := pool.PinNew(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Page().SetLSN(uint64(100 + id))
		pool.Unpin(f, true)
	}
	dpt := pool.DirtyPages()
	if len(dpt) != 2 || dpt[0].PageID != 3 || dpt[1].PageID != 5 {
		t.Fatalf("DPT = %+v", dpt)
	}
	if dpt[0].RecLSN != 103 || dpt[1].RecLSN != 105 {
		t.Fatalf("DPT recLSNs = %+v", dpt)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := t.TempDir() + "/heap.db"
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for id := uint32(0); id < 3; id++ {
		p := Format(buf, id)
		if err := p.Put(0, []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
		Seal(buf)
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	dev, err = OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if n, _ := dev.Pages(); n != 3 {
		t.Fatalf("Pages() = %d", n)
	}
	for id := uint32(0); id < 3; id++ {
		if err := dev.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if err := Verify(buf); err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		if rec, ok := AsPage(buf).Slot(0); !ok || rec[0] != byte(id) {
			t.Fatalf("page %d contents wrong", id)
		}
	}
	if err := dev.ReadPage(9, buf); !errors.Is(err, ErrPageMissing) {
		t.Fatalf("read past end: %v", err)
	}
}
