package storage

import (
	"testing"
	"testing/quick"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqlval"
)

func newTable(t *testing.T, pk bool) *Table {
	t.Helper()
	cat := catalog.New()
	cols := []catalog.Column{
		{Name: "id", Kind: sqlval.KindInt, NotNull: true},
		{Name: "grp", Kind: sqlval.KindInt},
		{Name: "name", Kind: sqlval.KindString},
	}
	var pkCols []string
	if pk {
		pkCols = []string{"id"}
	}
	meta, err := cat.CreateTable("t", cols, pkCols)
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(meta)
}

func mkRow(id, grp int64, name string) []sqlval.Value {
	return []sqlval.Value{sqlval.NewInt(id), sqlval.NewInt(grp), sqlval.NewString(name)}
}

func commitVersion(r *Row, ts uint64) {
	r.Latest().SetBegin(ts)
}

func TestInsertAndPrimaryLookup(t *testing.T) {
	tbl := newTable(t, true)
	id, r, _, err := tbl.Insert(7, mkRow(1, 10, "a"))
	if err != nil {
		t.Fatal(err)
	}
	commitVersion(r, 5)
	got, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(1)})
	if !ok || got != id {
		t.Fatalf("lookup = %d,%v", got, ok)
	}
	if _, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(2)}); ok {
		t.Fatal("phantom lookup")
	}
}

func TestDuplicatePendingInsert(t *testing.T) {
	tbl := newTable(t, true)
	if _, _, _, err := tbl.Insert(1, mkRow(1, 0, "x")); err != nil {
		t.Fatal(err)
	}
	// Same PK while the first is still uncommitted: duplicate.
	if _, _, _, err := tbl.Insert(2, mkRow(1, 0, "y")); err == nil {
		t.Fatal("pending duplicate accepted")
	}
}

func TestSecondaryIndexBackfillAndScan(t *testing.T) {
	tbl := newTable(t, true)
	for i := int64(0); i < 20; i++ {
		_, r, _, err := tbl.Insert(1, mkRow(i, i%4, "n"))
		if err != nil {
			t.Fatal(err)
		}
		commitVersion(r, 2)
	}
	idx := &catalog.Index{Name: "t_grp", Table: "t", Columns: []int{1}}
	tbl.Meta.Indexes = append(tbl.Meta.Indexes, idx)
	tbl.AddIndex(idx)

	var ids []RowID
	prefix := []sqlval.Value{sqlval.NewInt(2)}
	hi := []sqlval.Value{sqlval.NewInt(2), sqlval.Top()}
	tbl.ScanSecondaryRange(0, prefix, hi, false, func(e IndexEntry) bool {
		ids = append(ids, e.ID)
		return true
	})
	if len(ids) != 5 {
		t.Fatalf("prefix scan found %d rows, want 5", len(ids))
	}
}

func TestSecondaryRangeScan(t *testing.T) {
	tbl := newTable(t, true)
	idx := &catalog.Index{Name: "t_grp", Table: "t", Columns: []int{1}}
	tbl.Meta.Indexes = append(tbl.Meta.Indexes, idx)
	tbl.AddIndex(idx)
	for i := int64(0); i < 30; i++ {
		_, r, _, err := tbl.Insert(1, mkRow(i, i, "n"))
		if err != nil {
			t.Fatal(err)
		}
		commitVersion(r, 2)
	}
	var n int
	tbl.ScanSecondaryRange(0, []sqlval.Value{sqlval.NewInt(10)}, []sqlval.Value{sqlval.NewInt(19), sqlval.Top()}, false, func(e IndexEntry) bool {
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("range scan found %d, want 10", n)
	}
	n = 0
	tbl.ScanSecondaryRange(0, []sqlval.Value{sqlval.NewInt(25)}, nil, false, func(e IndexEntry) bool {
		n++
		return true
	})
	if n != 5 {
		t.Fatalf("open-ended range found %d, want 5", n)
	}
	// Descending with an upper bound.
	var got []RowID
	tbl.ScanSecondaryRange(0, nil, []sqlval.Value{sqlval.NewInt(5), sqlval.Top()}, true, func(e IndexEntry) bool {
		got = append(got, e.ID)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("descending bounded scan found %d, want 6", len(got))
	}
}

func TestPrimaryRangeScan(t *testing.T) {
	tbl := newTable(t, true)
	for i := int64(0); i < 10; i++ {
		_, r, _, _ := tbl.Insert(1, mkRow(i, 0, "x"))
		commitVersion(r, 2)
	}
	var asc, desc []RowID
	tbl.ScanPrimaryRange([]sqlval.Value{sqlval.NewInt(3)}, []sqlval.Value{sqlval.NewInt(6)}, false, func(e IndexEntry) bool {
		asc = append(asc, e.ID)
		return true
	})
	tbl.ScanPrimaryRange([]sqlval.Value{sqlval.NewInt(3)}, []sqlval.Value{sqlval.NewInt(6)}, true, func(e IndexEntry) bool {
		desc = append(desc, e.ID)
		return true
	})
	if len(asc) != 4 || len(desc) != 4 {
		t.Fatalf("asc=%d desc=%d, want 4 each", len(asc), len(desc))
	}
	for i := range desc {
		if desc[i] != asc[len(asc)-1-i] {
			t.Fatal("desc is not the reverse of asc")
		}
	}
}

func TestVisibilitySnapshot(t *testing.T) {
	r := &Row{}
	// v1 committed at ts=5, superseded at ts=10 by v2.
	v1 := NewVersion(mkRow(1, 0, "v1"), 5, 10, nil)
	v2 := NewVersion(mkRow(1, 0, "v2"), 10, Infinity, v1)
	r.SetLatest(v2)

	see := func(snap uint64) string {
		v := View{TxnID: 99, SnapTS: snap, Snapshot: true}.Visible(r)
		if v == nil {
			return ""
		}
		return v.Data[2].Str()
	}
	if got := see(4); got != "" {
		t.Fatalf("snap=4 sees %q, want nothing", got)
	}
	if got := see(5); got != "v1" {
		t.Fatalf("snap=5 sees %q, want v1", got)
	}
	if got := see(9); got != "v1" {
		t.Fatalf("snap=9 sees %q, want v1", got)
	}
	if got := see(10); got != "v2" {
		t.Fatalf("snap=10 sees %q, want v2", got)
	}
}

func TestVisibilityUncommitted(t *testing.T) {
	r := &Row{}
	v1 := NewVersion(mkRow(1, 0, "old"), 5, TxnMark|7, nil) // superseded by txn 7
	v2 := NewVersion(mkRow(1, 0, "new"), TxnMark|7, Infinity, v1)
	r.SetLatest(v2)

	// Txn 7 sees its own new version in both modes.
	for _, snapshot := range []bool{true, false} {
		v := View{TxnID: 7, SnapTS: 5, Snapshot: snapshot}.Visible(r)
		if v == nil || v.Data[2].Str() != "new" {
			t.Fatalf("snapshot=%v: writer does not see own write", snapshot)
		}
	}
	// Txn 9 sees the old committed version in both modes.
	for _, snapshot := range []bool{true, false} {
		v := View{TxnID: 9, SnapTS: 5, Snapshot: snapshot}.Visible(r)
		if v == nil || v.Data[2].Str() != "old" {
			t.Fatalf("snapshot=%v: reader does not see committed version", snapshot)
		}
	}
}

func TestVisibilityDeletePendingOwn(t *testing.T) {
	r := &Row{}
	v1 := NewVersion(mkRow(1, 0, "x"), 5, TxnMark|DeleteFlag|3, nil)
	r.SetLatest(v1)
	// The deleting transaction must not see the row.
	if v := (View{TxnID: 3, SnapTS: 6, Snapshot: true}).Visible(r); v != nil {
		t.Fatal("deleter sees its own deleted row (snapshot)")
	}
	if v := (View{TxnID: 3, SnapTS: 6, Snapshot: false}).Visible(r); v != nil {
		t.Fatal("deleter sees its own deleted row (latest)")
	}
}

func TestTruncate(t *testing.T) {
	tbl := newTable(t, true)
	for i := int64(0); i < 5; i++ {
		_, r, _, _ := tbl.Insert(1, mkRow(i, 0, "x"))
		commitVersion(r, 2)
	}
	tbl.Truncate()
	if tbl.RowCount() != 0 {
		t.Fatalf("RowCount = %d after truncate", tbl.RowCount())
	}
	if _, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)}); ok {
		t.Fatal("index survived truncate")
	}
	// Table must be reusable.
	if _, _, _, err := tbl.Insert(1, mkRow(0, 0, "y")); err != nil {
		t.Fatal(err)
	}
}

func TestAutoInc(t *testing.T) {
	tbl := newTable(t, true)
	if tbl.NextAutoInc() != 1 || tbl.NextAutoInc() != 2 {
		t.Fatal("auto-inc sequence")
	}
	tbl.BumpAutoInc(100)
	if tbl.NextAutoInc() != 101 {
		t.Fatal("bump")
	}
	tbl.BumpAutoInc(50) // lower bump must not regress
	if tbl.NextAutoInc() != 102 {
		t.Fatal("bump regressed")
	}
}

// Property: after inserting n distinct keys and committing them, the primary
// scan returns exactly the sorted keys.
func TestPrimaryScanProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		tbl := newTable(t, true)
		uniq := map[int64]bool{}
		for _, k := range raw {
			key := int64(k)
			if uniq[key] {
				continue
			}
			uniq[key] = true
			_, r, _, err := tbl.Insert(1, mkRow(key, 0, "p"))
			if err != nil {
				return false
			}
			commitVersion(r, 2)
		}
		prev := int64(-1 << 62)
		n := 0
		ok := true
		tbl.ScanPrimaryRange(nil, nil, false, func(e IndexEntry) bool {
			r, _ := tbl.Row(e.ID)
			key := r.Latest().Data[0].Int()
			if key <= prev {
				ok = false
				return false
			}
			prev = key
			n++
			return true
		})
		return ok && n == len(uniq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
