package storage

// Vacuum removes committed-deleted rows whose delete timestamp is below
// horizon, along with their index entries, and prunes version chains down to
// the newest version visible at horizon. It returns the number of row slots
// reclaimed. Vacuum runs online: it never blocks readers, and writers only
// ever contend with it on individual row latches and index latches.
func (t *Table) Vacuum(horizon uint64) int {
	reclaimed := 0
	for g := 0; g < NumSegments; g++ {
		reclaimed += t.VacuumSegment(g, horizon)
	}
	return reclaimed
}

// VacuumSegment vacuums one row-store stripe, so a background vacuum can
// spread its work over time. Passes serialize on vacMu; within the pass,
// each row latch is held only long enough to classify the row or cut its
// chain tail. A row whose newest version is committed-dead below horizon can
// never change again (no engine revives a committed delete), so its index
// entries are removed and its slot released after the latch is dropped.
func (t *Table) VacuumSegment(g int, horizon uint64) int {
	t.vacMu.Lock()
	defer t.vacMu.Unlock()

	var deadIDs []RowID
	var deadRows []*Row
	t.ScanSegment(g, func(id RowID, row *Row) bool {
		row.Lock()
		v := row.Latest()
		if v != nil && committed(v.Begin()) && committed(v.End()) &&
			v.End() != Infinity && v.End() <= horizon {
			// Entire row is dead to every possible reader.
			deadIDs = append(deadIDs, id)
			deadRows = append(deadRows, row)
			row.Unlock()
			return true
		}
		// Prune chain tail: keep versions needed by readers at horizon.
		for cur := row.Latest(); cur != nil; cur = cur.Next() {
			if committed(cur.Begin()) && cur.Begin() <= horizon {
				cur.SetNext(nil)
				break
			}
		}
		row.Unlock()
		return true
	})

	for i, row := range deadRows {
		id := deadIDs[i]
		for img := row.Latest(); img != nil; img = img.Next() {
			t.removeSecondaryEntries(id, img.Data)
			if t.primary != nil {
				key := t.pkKey(img.Data)
				t.primary.Lock()
				if cur, ok := t.primary.Get(key); ok && cur == id {
					t.primary.Delete(key)
				}
				t.primary.Unlock()
			}
		}
		t.freeRow(id, row)
	}
	return len(deadRows)
}
