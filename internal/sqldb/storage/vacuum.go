package storage

// Version-chain reclamation is epoch-based. A vacuum pass unlinks dead rows
// immediately — index entries deleted in one batched latch hold per index,
// row slots emptied with a lock-free compare-and-swap — but does NOT hand
// the slots back to the allocator. Instead the pass retires them to a limbo
// batch stamped with the commit clock at unlink time ("now"). Every
// transaction that was active at the unlink, and so could still resolve a
// stale index entry or scan cursor to one of those slots, has a snapshot at
// or below that stamp; once the transaction low-watermark (txn.Horizon)
// advances strictly past it, nothing that could observe the old occupant is
// alive, and a later pass recycles the whole batch onto the segment free
// list in a single lock hold.
//
// Compared with the previous design — which classified every row under its
// latch and paid one segment-mutex acquisition per freed slot — a pass now
// takes no row latches at all (classification reads the atomic timestamps;
// a committed-dead version can never be revived, so the verdict is stable),
// one latch hold per index per pass, and one segment-mutex hold per reaped
// batch. Readers never block either way: stale index entries and detached
// chain tails are tolerated by the package's re-validation discipline, and
// limbo deferral guarantees a slot is never recycled while a transaction
// that saw its previous occupant's index entries is still running.

// limboBatch is one vacuum pass's worth of unlinked slots from a single
// segment, awaiting the epoch low-watermark. Guarded by Table.vacMu.
type limboBatch struct {
	retireTS uint64 // commit clock at unlink time
	seg      int64
	locals   []int64
}

// Vacuum removes committed-deleted rows whose delete timestamp is below
// horizon, along with their index entries, and prunes version chains down to
// the newest version visible at horizon. now is the current commit clock,
// used to stamp retired slots (see Manager.Clock). It returns the number of
// rows retired. Vacuum runs online: it never blocks readers, and writers
// only ever contend with it on index latches.
func (t *Table) Vacuum(horizon, now uint64) int {
	retired := 0
	for g := 0; g < NumSegments; g++ {
		retired += t.VacuumSegment(g, horizon, now)
	}
	return retired
}

// VacuumSegment vacuums one row-store stripe, so a background vacuum can
// spread its work over time. Passes serialize on vacMu. A row whose newest
// version is committed-dead below horizon can never change again (no engine
// revives a committed delete), so the classification needs no row latch;
// the row's index entries are removed, its slot emptied, and the slot
// retired to limbo until the low-watermark passes now.
func (t *Table) VacuumSegment(g int, horizon, now uint64) int {
	t.vacMu.Lock()
	defer t.vacMu.Unlock()

	t.reapLimbo(horizon)

	var deadIDs []RowID
	var deadRows []*Row
	t.ScanSegment(g, func(id RowID, row *Row) bool {
		v := row.Latest()
		if v != nil && committed(v.Begin()) && committed(v.End()) &&
			v.End() != Infinity && v.End() <= horizon {
			// Entire row is dead to every possible reader, permanently.
			deadIDs = append(deadIDs, id)
			deadRows = append(deadRows, row)
			return true
		}
		// Prune the chain tail: keep versions needed by readers at horizon.
		// Only this pass writes next pointers (vacMu), and a reader that
		// already loaded the cut point's next keeps a coherent detached
		// tail, so no latch is needed.
		for cur := row.Latest(); cur != nil; cur = cur.Next() {
			if committed(cur.Begin()) && cur.Begin() <= horizon {
				if cur.Next() != nil {
					cur.SetNext(nil)
				}
				break
			}
		}
		return true
	})
	if len(deadRows) == 0 {
		return 0
	}

	// Unlink index entries in one latch hold per index. The primary entry
	// is guarded (a concurrent re-insert of the key may own it now); the
	// secondary keys carry the row id, so unconditional deletes are safe.
	if t.primary != nil {
		t.primary.Lock()
		for i, row := range deadRows {
			for img := row.Latest(); img != nil; img = img.Next() {
				key := t.pkKey(img.Data)
				if cur, ok := t.primary.Get(key); ok && cur == deadIDs[i] {
					t.primary.Delete(key)
				}
			}
		}
		t.primary.Unlock()
	}
	for _, sec := range t.secondaryList() {
		sec.tree.Lock()
		for i, row := range deadRows {
			for img := row.Latest(); img != nil; img = img.Next() {
				sec.tree.Delete(indexKey(sec.meta, img.Data, deadIDs[i]))
			}
		}
		sec.tree.Unlock()
	}

	// Empty the slots lock-free and retire them. The compare-and-swap makes
	// a racing release (rollback) harmless, exactly like freeRow; the slot
	// cannot be recycled underneath us because it only reaches the free
	// list when the batch is reaped.
	locals := make([]int64, 0, len(deadRows))
	for i, row := range deadRows {
		if local, ok := t.unlinkRow(deadIDs[i], row); ok {
			locals = append(locals, local)
		}
	}
	if len(locals) > 0 {
		t.limbo = append(t.limbo, limboBatch{retireTS: now, seg: int64(g), locals: locals})
	}
	return len(deadRows)
}

// reapLimbo recycles every limbo batch whose retirement stamp the
// low-watermark has strictly passed. Callers hold vacMu.
func (t *Table) reapLimbo(horizon uint64) {
	if len(t.limbo) == 0 {
		return
	}
	keep := t.limbo[:0]
	for _, b := range t.limbo {
		if b.retireTS < horizon {
			t.recycleLocals(b.seg, b.locals)
		} else {
			keep = append(keep, b)
		}
	}
	t.limbo = keep
}

// LimboSlots reports the number of retired slots awaiting the low-watermark,
// for tests and introspection.
func (t *Table) LimboSlots() int {
	t.vacMu.Lock()
	defer t.vacMu.Unlock()
	n := 0
	for _, b := range t.limbo {
		n += len(b.locals)
	}
	return n
}
