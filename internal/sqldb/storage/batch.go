package storage

import "benchpress/internal/sqlval"

// BatchSize is the number of rows a batched scan hands to the executor at a
// time. 64 ids+pointers is one kilobyte of scratch — small enough to live in
// pooled executor state and stay cache-resident, large enough that the
// per-batch loop overhead (directory load, cursor bookkeeping, callback
// dispatch) is amortized over dozens of rows instead of paid per row.
const BatchSize = 64

// RowBatch is a fixed-capacity scratch buffer for segment-at-a-time batched
// scans. The executor owns and reuses one per scan level.
type RowBatch struct {
	IDs  [BatchSize]RowID
	Rows [BatchSize]*Row
	N    int
}

// ScanBatch fills b with up to BatchSize occupied slots of segment g,
// starting at local slot index cursor, and returns the cursor to resume
// from, or -1 when the segment is exhausted. Like ScanSegment it is
// latch-free against a directory snapshot: rows installed concurrently may
// or may not be visited, and their uncommitted versions are invisible to
// the scanning transaction either way.
func (t *Table) ScanBatch(g int, cursor int64, b *RowBatch) int64 {
	dir := *t.segs[g].dir.Load()
	b.N = 0
	for pi := cursor >> pageShift; pi < int64(len(dir)); pi++ {
		pg := dir[pi]
		si := int64(0)
		if pi == cursor>>pageShift {
			si = cursor & pageMask
		}
		base := pi << pageShift
		for ; si < pageSize; si++ {
			r := pg[si].Load()
			if r == nil {
				continue
			}
			b.IDs[b.N] = makeRowID(int64(g), base+si)
			b.Rows[b.N] = r
			b.N++
			if b.N == BatchSize {
				return base + si + 1
			}
		}
	}
	return -1
}

// AppendPrimaryRange materializes the index entries with from <= pk <= to
// into buf (reusing its capacity) and returns the extended slice, in key
// order, or reversed when desc is set. Nil bounds are open; bounds may be
// key prefixes padded with sqlval.Top() to form inclusive upper bounds.
// Entries are collected under the index read latch and the latch is
// released before return, so callers may freely re-enter the table while
// consuming the batch.
func (t *Table) AppendPrimaryRange(buf []IndexEntry, from, to []sqlval.Value, desc bool) []IndexEntry {
	if t.primary == nil {
		return buf
	}
	collect := func(key []sqlval.Value, id int64) bool {
		buf = append(buf, IndexEntry{Key: key, ID: id})
		return true
	}
	t.primary.RLock()
	if desc {
		t.primary.DescendRange(to, from, collect)
	} else {
		t.primary.AscendRange(from, to, collect)
	}
	t.primary.RUnlock()
	return buf
}

// AppendSecondaryRange is AppendPrimaryRange over a secondary index's
// physical keys (indexed columns plus a trailing row id). Callers build
// prefix bounds directly: a bare prefix is an inclusive lower bound, and a
// prefix extended with sqlval.Top() is an inclusive upper bound.
func (t *Table) AppendSecondaryRange(buf []IndexEntry, ord int, from, to []sqlval.Value, desc bool) []IndexEntry {
	sec := t.secondaryList()[ord]
	collect := func(key []sqlval.Value, id int64) bool {
		buf = append(buf, IndexEntry{Key: key, ID: id})
		return true
	}
	sec.tree.RLock()
	if desc {
		sec.tree.DescendRange(to, from, collect)
	} else {
		sec.tree.AscendRange(from, to, collect)
	}
	sec.tree.RUnlock()
	return buf
}
