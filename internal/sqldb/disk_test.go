package sqldb

import (
	"fmt"
	"testing"

	"benchpress/internal/sqldb/txn"
	"benchpress/internal/wal"
)

func openDiskEngine(t *testing.T, dir string, poolPages int) *Engine {
	t.Helper()
	e, err := OpenDisk(Config{
		Name:            "golock-disk",
		Mode:            txn.Locking,
		WALPolicy:       wal.SyncNone,
		DataDir:         dir,
		BufferPoolPages: poolPages,
	})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return e
}

func setupDiskPeople(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE people (
		id INT NOT NULL,
		name VARCHAR(32) NOT NULL,
		balance DOUBLE DEFAULT 0,
		PRIMARY KEY (id)
	)`)
	for i := 1; i <= 5; i++ {
		mustExec(t, s, "INSERT INTO people (id, name, balance) VALUES (?, ?, ?)",
			i, fmt.Sprintf("p%d", i), float64(i)*10)
	}
}

// TestDiskEngineRestart: rows, updates, and deletes committed before a clean
// close all survive a reopen from the heap file and WAL.
func TestDiskEngineRestart(t *testing.T) {
	dir := t.TempDir()
	e := openDiskEngine(t, dir, 8)
	s := e.Session()
	setupDiskPeople(t, s)
	mustExec(t, s, "UPDATE people SET name = ? WHERE id = ?", "renamed-to-something-longer", 2)
	mustExec(t, s, "DELETE FROM people WHERE id = ?", 4)
	e.Close()

	e2 := openDiskEngine(t, dir, 8)
	defer e2.Close()
	s2 := e2.Session()
	res, err := s2.Query("SELECT id, name FROM people ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows after restart, want 4", len(res.Rows))
	}
	byID := map[int64]string{}
	for _, r := range res.Rows {
		byID[r[0].Int()] = r[1].Str()
	}
	if byID[2] != "renamed-to-something-longer" {
		t.Fatalf("id 2 name = %q", byID[2])
	}
	if _, ok := byID[4]; ok {
		t.Fatal("deleted row 4 resurrected")
	}
	if rec := e2.DiskRecovery(); rec == nil || len(rec.Winners) == 0 {
		t.Fatalf("recovery result: %+v", rec)
	}
	// New writes on the recovered engine keep working and survive another
	// restart (the log continues its sequence).
	mustExec(t, s2, "INSERT INTO people (id, name, balance) VALUES (?, ?, ?)", 9, "late", 90.0)
	e2.Close()

	e3 := openDiskEngine(t, dir, 8)
	defer e3.Close()
	row, err := e3.Session().QueryRow("SELECT name FROM people WHERE id = ?", 9)
	if err != nil || row == nil {
		t.Fatalf("row 9 after second restart: %v %v", row, err)
	}
	if row[0].Str() != "late" {
		t.Fatalf("row 9 name = %q", row[0].Str())
	}
}

// TestDiskEngineCrashWithoutClose: an abandoned engine (no Close, pool never
// flushed) recovers entirely from the WAL.
func TestDiskEngineCrashWithoutClose(t *testing.T) {
	dir := t.TempDir()
	e := openDiskEngine(t, dir, 8)
	s := e.Session()
	setupDiskPeople(t, s)
	// No Close: the heap file may hold nothing at all; the log holds it all.

	e2 := openDiskEngine(t, dir, 8)
	defer e2.Close()
	res, err := e2.Session().Query("SELECT id FROM people ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows recovered, want 5", len(res.Rows))
	}
	if rec := e2.DiskRecovery(); rec == nil || rec.Redone == 0 {
		t.Fatalf("expected redo work, got %+v", rec)
	}
}

// TestDiskEngineLargerThanPool: a dataset spanning more pages than the buffer
// pool's budget forces evictions on the write path and still recovers whole.
func TestDiskEngineLargerThanPool(t *testing.T) {
	dir := t.TempDir()
	e := openDiskEngine(t, dir, 2) // 2 frames = 8 KiB of pool
	s := e.Session()
	mustExec(t, s, `CREATE TABLE blobs (
		id INT NOT NULL,
		payload VARCHAR(512) NOT NULL,
		PRIMARY KEY (id)
	)`)
	payload := make([]byte, 400)
	for i := range payload {
		payload[i] = 'x'
	}
	const rows = 64 // ~26 KiB of records over ~8 pages, 4x the pool
	for i := 0; i < rows; i++ {
		mustExec(t, s, "INSERT INTO blobs (id, payload) VALUES (?, ?)", i, string(payload))
	}
	st, ok := e.DiskPoolStats()
	if !ok {
		t.Fatal("no pool stats on a disk engine")
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions with %d rows over a 2-frame pool: %+v", rows, st)
	}
	e.Close()

	e2 := openDiskEngine(t, dir, 2)
	defer e2.Close()
	res, err := e2.Session().Query("SELECT id FROM blobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rows {
		t.Fatalf("%d rows recovered, want %d", len(res.Rows), rows)
	}
}

// TestDiskEngineSecondaryIndexSurvives: CREATE INDEX is a logged catalog
// change; after restart the index exists and serves lookups.
func TestDiskEngineSecondaryIndexSurvives(t *testing.T) {
	dir := t.TempDir()
	e := openDiskEngine(t, dir, 8)
	s := e.Session()
	setupDiskPeople(t, s)
	mustExec(t, s, "CREATE INDEX idx_people_name ON people (name)")
	e.Close()

	e2 := openDiskEngine(t, dir, 8)
	defer e2.Close()
	meta, err := e2.Catalog().Table("people")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, idx := range meta.Indexes {
		if idx.Name == "idx_people_name" {
			found = true
		}
	}
	if !found {
		t.Fatalf("index lost across restart; have %+v", meta.Indexes)
	}
	row, err := e2.Session().QueryRow("SELECT id FROM people WHERE name = ?", "p3")
	if err != nil || row == nil {
		t.Fatalf("indexed lookup: %v %v", row, err)
	}
	if row[0].Int() != 3 {
		t.Fatalf("lookup returned id %d", row[0].Int())
	}
}

// TestDiskEngineDropAndTruncate: dropped and truncated tables stay gone after
// a restart (their heap records are delete-logged).
func TestDiskEngineDropAndTruncate(t *testing.T) {
	dir := t.TempDir()
	e := openDiskEngine(t, dir, 8)
	s := e.Session()
	setupDiskPeople(t, s)
	mustExec(t, s, `CREATE TABLE scratch (id INT NOT NULL, PRIMARY KEY (id))`)
	mustExec(t, s, "INSERT INTO scratch (id) VALUES (?)", 1)
	mustExec(t, s, "DROP TABLE scratch")
	mustExec(t, s, "TRUNCATE TABLE people")
	e.Close()

	e2 := openDiskEngine(t, dir, 8)
	defer e2.Close()
	if e2.Catalog().HasTable("scratch") {
		t.Fatal("dropped table resurrected")
	}
	res, err := e2.Session().Query("SELECT id FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("truncated table recovered %d rows", len(res.Rows))
	}
}

// TestDiskEngineRollbackNotLogged: aborted transactions leave no trace on
// disk.
func TestDiskEngineRollbackNotLogged(t *testing.T) {
	dir := t.TempDir()
	e := openDiskEngine(t, dir, 8)
	s := e.Session()
	setupDiskPeople(t, s)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO people (id, name, balance) VALUES (?, ?, ?)", 100, "ghost", 0.0)
	mustExec(t, s, "ROLLBACK")
	e.Close()

	e2 := openDiskEngine(t, dir, 8)
	defer e2.Close()
	row, err := e2.Session().QueryRow("SELECT id FROM people WHERE id = ?", 100)
	if err != nil {
		t.Fatal(err)
	}
	if row != nil {
		t.Fatal("rolled-back insert survived restart")
	}
}

// TestDiskEngineGroupCommitPolicy: the disk path also works under SyncGroup,
// where update records ride the commit record's group flush.
func TestDiskEngineGroupCommitPolicy(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDisk(Config{
		Name:      "golock-disk",
		Mode:      txn.Locking,
		WALPolicy: wal.SyncGroup,
		DataDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Session()
	setupDiskPeople(t, s)
	e.Close()

	e2 := openDiskEngine(t, dir, 8)
	defer e2.Close()
	res, err := e2.Session().Query("SELECT id FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
}
