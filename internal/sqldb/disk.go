package sqldb

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqldb/storage/heap"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
	"benchpress/internal/wal"
)

// Disk-resident mode. The engine keeps its in-memory multi-version row store
// as the working representation (reads never touch the device), and mirrors
// every committed row into a slotted-page heap behind a buffer pool, with
// ARIES-style physical logging:
//
//	update records  — per-row slot images (before/after), appended without a
//	                  flush wait (AppendRecordAsync)
//	commit record   — appended with AppendRecord, whose group-commit verdict
//	                  covers the whole batch (sink bytes land in LSN order)
//	checkpoints     — fuzzy: the buffer pool's dirty page table, every
//	                  CheckpointEvery commits
//
// Pages change only after the commit record is durable, so the pool never
// holds uncommitted data (no-steal with respect to losers) and recovery's
// undo pass is degenerate by construction. On reopen, heap.Recover replays
// the log three-pass against the device and the engine rebuilds its RAM
// tables from the winner updates — the log is never truncated past its clean
// prefix, so a torn page can always be rebuilt from LSN 0.
//
// Known bounds, documented rather than hidden: the log is not garbage
// collected (checkpoints bound redo work, not file size), a single row image
// must fit one page, and a device write failure after the commit record is
// durable surfaces as a commit error even though recovery would replay it.

// diskCatalogTable is the reserved heap table id for catalog records (the
// JSON-serialized schema of one table each).
const diskCatalogTable uint32 = 0

// heapRID addresses one record slot in the heap.
type heapRID struct {
	page uint32
	slot uint16
}

// diskTable is the disk-side state of one table: its stable id (heap records
// are tagged with it), the catalog record's location, and the row-id-to-slot
// map.
type diskTable struct {
	id     uint32
	tbl    *storage.Table
	catRID heapRID
	catRec []byte
	rids   map[storage.RowID]heapRID
}

// pageAlloc is the free-space tracking for one heap page. free counts record
// bytes plus directory growth (place budgets SlotDirSize per insert); slots
// are never reused once dead, keeping redo's slot addressing stable.
type pageAlloc struct {
	id       uint32
	free     int
	nextSlot int
	fresh    bool // never written to the device: first pin must PinNew
}

// diskOp is one planned slot mutation, logged then applied.
type diskOp struct {
	rid    heapRID
	before []byte
	after  []byte // nil deletes the slot
	lsn    uint64
}

type diskStore struct {
	eng  *Engine
	dev  heap.Device
	pool *heap.Pool
	log  *wal.Log

	walFile  *os.File // file sink; nil with an injected device
	closeDev bool

	mu          sync.Mutex
	byName      map[string]*diskTable
	byID        map[uint32]*diskTable
	nextTableID uint32
	alloc       []pageAlloc
	allocIdx    map[uint32]int
	nextPageID  uint32
	commits     int
	ckptEvery   int
	recovery    *heap.RecoveryResult
}

// diskSchema is the serialized form of one table's schema, stored as a
// catalog record so recovery can rebuild the catalog before installing rows.
type diskSchema struct {
	TableID uint32
	Name    string
	Columns []diskColumn
	PK      []string
	Indexes []diskIndex
}

type diskColumn struct {
	Name     string
	TypeName string
	Kind     uint8
	Size     int
	NotNull  bool
	AutoInc  bool
	// Default is EncodeRow of the single default value; nil means none.
	Default []byte
}

type diskIndex struct {
	Name    string
	Columns []string
	Unique  bool
}

// OpenDisk creates a disk-resident engine: it recovers the heap image from
// the WAL, rebuilds the in-memory tables, and arranges for every commit to be
// physically logged and applied to heap pages through the buffer pool.
// Without DataDir or an injected device it degrades to Open.
func OpenDisk(cfg Config) (*Engine, error) {
	if cfg.DataDir == "" && cfg.DiskDevice == nil {
		return Open(cfg), nil
	}
	e := &Engine{
		cfg:    cfg,
		cat:    catalog.New(),
		mgr:    txn.NewManager(cfg.Mode),
		tables: map[string]*storage.Table{},
		stmts:  map[string]*cachedStmt{},
	}
	ds := &diskStore{
		eng:      e,
		byName:   map[string]*diskTable{},
		byID:     map[uint32]*diskTable{},
		allocIdx: map[uint32]int{},
	}
	if err := ds.open(cfg); err != nil {
		return nil, err
	}
	e.disk = ds
	e.log = ds.log
	// Never reuse a logged transaction id: an old commit record would make a
	// new transaction's updates replay as committed even if it lost.
	e.mgr.AdvanceTxnID(ds.recovery.MaxTxnID)
	delay := cfg.CommitDelay
	e.mgr.OnCommit = func(t *txn.Txn) error {
		if err := ds.onCommit(t); err != nil {
			return err
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		return nil
	}
	if cfg.VacuumInterval > 0 {
		e.vacStop = make(chan struct{})
		e.vacWG.Add(1)
		go func() {
			defer e.vacWG.Done()
			e.vacuumLoop()
		}()
	}
	return e, nil
}

// DiskRecovery returns the restart summary of a disk-resident engine, or nil
// for a RAM engine. The crash-torture harness inspects it.
func (e *Engine) DiskRecovery() *heap.RecoveryResult {
	if e.disk == nil {
		return nil
	}
	return e.disk.recovery
}

// DiskPoolStats snapshots the buffer pool counters of a disk-resident engine.
func (e *Engine) DiskPoolStats() (heap.PoolStats, bool) {
	if e.disk == nil {
		return heap.PoolStats{}, false
	}
	return e.disk.pool.Stats(), true
}

func (ds *diskStore) open(cfg Config) error {
	// Device and surviving log image.
	var walBytes []byte
	if cfg.DiskDevice != nil {
		ds.dev = cfg.DiskDevice
		walBytes = cfg.DiskWAL
	} else {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return err
		}
		fd, err := heap.OpenFileDevice(filepath.Join(cfg.DataDir, "heap.db"))
		if err != nil {
			return err
		}
		ds.dev = fd
		ds.closeDev = true
		walBytes, err = os.ReadFile(filepath.Join(cfg.DataDir, "wal.log"))
		if err != nil && !os.IsNotExist(err) {
			return err
		}
	}

	// Recover: replay the clean log prefix against the device.
	recs, cleanLen, scanErr := wal.ScanRecords(walBytes)
	if scanErr != nil && !errors.Is(scanErr, wal.ErrTorn) {
		return fmt.Errorf("sqldb: disk recovery: %w", scanErr)
	}
	res, err := heap.Recover(ds.dev, recs)
	if err != nil {
		return fmt.Errorf("sqldb: disk recovery: %w", err)
	}
	res.CleanWALLen = cleanLen
	ds.recovery = res
	if err := ds.rebuild(res); err != nil {
		return fmt.Errorf("sqldb: disk recovery: %w", err)
	}

	// Reopen the log where the surviving prefix left off. The file is
	// truncated to the clean prefix so the next replay never hits mid-file
	// torn garbage; the harness's injected sink receives only new bytes and
	// concatenates them with the prefix itself.
	var sink io.Writer = cfg.WALSink
	if cfg.DiskDevice == nil {
		path := filepath.Join(cfg.DataDir, "wal.log")
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		if err := f.Truncate(int64(cleanLen)); err != nil {
			_ = f.Close()
			return err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			_ = f.Close()
			return err
		}
		ds.walFile = f
		sink = f
	}
	ds.log = wal.New(wal.Options{
		Policy:        cfg.WALPolicy,
		GroupInterval: cfg.GroupCommitInterval,
		W:             sink,
		StartSeq:      res.MaxLSN,
	})

	pages := cfg.BufferPoolPages
	if pages <= 0 {
		pages = 64
	}
	ds.pool = heap.NewPool(heap.PoolOptions{Pages: pages, Device: ds.dev, FlushWAL: ds.flushWAL})
	switch {
	case cfg.CheckpointEvery > 0:
		ds.ckptEvery = cfg.CheckpointEvery
	case cfg.CheckpointEvery == 0:
		ds.ckptEvery = 256
	}

	// Recovery flushed and synced every page, so an empty-DPT checkpoint
	// bounds all future redo at the current LSN.
	if _, err := ds.log.AppendRecordAsync(wal.EncodeCheckpoint(wal.CheckpointRec{})); err != nil {
		return err
	}
	return nil
}

// rebuild reconstructs the engine's in-memory state from a recovery result:
// the log holds full history (it is only ever truncated at a torn tail), so
// replaying the winner updates yields exactly the live heap records.
func (ds *diskStore) rebuild(res *heap.RecoveryResult) error {
	live := map[heapRID][]byte{}
	for _, u := range res.Updates {
		rid := heapRID{page: u.PageID, slot: u.Slot}
		if len(u.After) == 0 {
			delete(live, rid)
		} else {
			live[rid] = u.After
		}
	}
	rids := make([]heapRID, 0, len(live))
	for rid := range live {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool {
		if rids[i].page != rids[j].page {
			return rids[i].page < rids[j].page
		}
		return rids[i].slot < rids[j].slot
	})

	ds.nextTableID = diskCatalogTable + 1
	// Pass 1: catalog records, so tables exist before their rows.
	for _, rid := range rids {
		rec := live[rid]
		tid, body, err := splitHeapRec(rec)
		if err != nil {
			return err
		}
		if tid != diskCatalogTable {
			continue
		}
		var sc diskSchema
		if err := json.Unmarshal(body, &sc); err != nil {
			return fmt.Errorf("catalog record at page %d slot %d: %w", rid.page, rid.slot, err)
		}
		if err := ds.installSchema(sc, rid, rec); err != nil {
			return err
		}
	}
	// Pass 2: rows.
	for _, rid := range rids {
		rec := live[rid]
		tid, body, err := splitHeapRec(rec)
		if err != nil {
			return err
		}
		if tid == diskCatalogTable {
			continue
		}
		dt, ok := ds.byID[tid]
		if !ok {
			return fmt.Errorf("row at page %d slot %d references unknown table %d", rid.page, rid.slot, tid)
		}
		vals, err := heap.DecodeRow(body)
		if err != nil {
			return fmt.Errorf("row at page %d slot %d: %w", rid.page, rid.slot, err)
		}
		id, row, _, err := dt.tbl.Insert(0, vals)
		if err != nil {
			return fmt.Errorf("reinstall row at page %d slot %d: %w", rid.page, rid.slot, err)
		}
		// Clock starts at 1; make the recovered version visible to all.
		row.Latest().SetBegin(1)
		dt.rids[id] = rid
		for ci, col := range dt.tbl.Meta.Columns {
			if col.AutoInc && ci < len(vals) && !vals[ci].IsNull() {
				dt.tbl.BumpAutoInc(vals[ci].Int())
			}
		}
	}

	// Allocator state from the recovered pages themselves.
	n, err := ds.dev.Pages()
	if err != nil {
		return err
	}
	buf := make([]byte, heap.PageSize)
	for id := uint32(0); id < n; id++ {
		a := pageAlloc{id: id}
		switch err := ds.dev.ReadPage(id, buf); {
		case errors.Is(err, heap.ErrPageMissing):
			a.free = heap.PageCapacity
			a.fresh = true
		case err != nil:
			return err
		default:
			if err := heap.Verify(buf); err != nil {
				return fmt.Errorf("post-recovery page %d: %w", id, err)
			}
			p := heap.AsPage(buf)
			a.free = p.FreeSpace()
			a.nextSlot = p.NumSlots()
		}
		ds.allocIdx[id] = len(ds.alloc)
		ds.alloc = append(ds.alloc, a)
	}
	ds.nextPageID = n
	return nil
}

// installSchema recreates one table (catalog entry, storage table, indexes)
// from its serialized schema.
func (ds *diskStore) installSchema(sc diskSchema, rid heapRID, rec []byte) error {
	cols := make([]catalog.Column, len(sc.Columns))
	for i, c := range sc.Columns {
		col := catalog.Column{
			Name:     c.Name,
			TypeName: c.TypeName,
			Kind:     sqlvalKind(c.Kind),
			Size:     c.Size,
			NotNull:  c.NotNull,
			AutoInc:  c.AutoInc,
		}
		if c.Default != nil {
			vals, err := heap.DecodeRow(c.Default)
			if err != nil || len(vals) != 1 {
				return fmt.Errorf("table %q column %q: bad default encoding", sc.Name, c.Name)
			}
			col.HasDefault = true
			col.Default = vals[0]
		}
		cols[i] = col
	}
	meta, err := ds.eng.cat.CreateTable(sc.Name, cols, sc.PK)
	if err != nil {
		return err
	}
	for _, ix := range sc.Indexes {
		if _, err := ds.eng.cat.AddIndex(sc.Name, ix.Name, ix.Columns, ix.Unique); err != nil {
			return err
		}
	}
	tbl := storage.NewTable(meta)
	ds.eng.tables[strings.ToLower(sc.Name)] = tbl
	dt := &diskTable{
		id:     sc.TableID,
		tbl:    tbl,
		catRID: rid,
		catRec: rec,
		rids:   map[storage.RowID]heapRID{},
	}
	ds.byName[strings.ToLower(sc.Name)] = dt
	ds.byID[sc.TableID] = dt
	if sc.TableID >= ds.nextTableID {
		ds.nextTableID = sc.TableID + 1
	}
	return nil
}

// flushWAL is the pool's WAL-before-data enforcement: commits apply pages
// only after their commit record is durable, so the fast path is a counter
// compare; the barrier only fires for out-of-band states.
func (ds *diskStore) flushWAL(lsn uint64) error {
	if ds.log.DurableLSN() >= lsn {
		return nil
	}
	if err := ds.log.Flush(); err != nil {
		return err
	}
	if ds.log.DurableLSN() >= lsn {
		return nil
	}
	return fmt.Errorf("sqldb: WAL durable only through %d, page holds %d", ds.log.DurableLSN(), lsn)
}

// place allocates a slot for an n-byte record: first fit on the lowest page
// id, budgeting directory growth, deterministically (the crash sweep replays
// commits byte-identically).
func (ds *diskStore) place(n int) (heapRID, error) {
	need := n + heap.SlotDirSize
	if need > heap.PageCapacity {
		return heapRID{}, fmt.Errorf("sqldb: %d-byte record exceeds page capacity", n)
	}
	for i := range ds.alloc {
		a := &ds.alloc[i]
		if a.free >= need && a.nextSlot < 0xFFFF {
			rid := heapRID{page: a.id, slot: uint16(a.nextSlot)}
			a.nextSlot++
			a.free -= need
			return rid, nil
		}
	}
	id := ds.nextPageID
	ds.nextPageID++
	ds.allocIdx[id] = len(ds.alloc)
	ds.alloc = append(ds.alloc, pageAlloc{id: id, free: heap.PageCapacity - need, nextSlot: 1, fresh: true})
	return heapRID{page: id, slot: 0}, nil
}

// planUpdate plans a record replacement at rid: in place when the page can
// absorb the growth, otherwise a delete plus a relocated insert.
func (ds *diskStore) planUpdate(rid heapRID, oldRec, newRec []byte) ([]diskOp, heapRID, error) {
	a := &ds.alloc[ds.allocIdx[rid.page]]
	delta := len(newRec) - len(oldRec)
	if delta <= a.free {
		a.free -= delta
		return []diskOp{{rid: rid, before: oldRec, after: newRec}}, rid, nil
	}
	a.free += len(oldRec)
	newRid, err := ds.place(len(newRec))
	if err != nil {
		return nil, heapRID{}, err
	}
	return []diskOp{
		{rid: rid, before: oldRec},
		{rid: newRid, after: newRec},
	}, newRid, nil
}

// logOps appends one update record per op (async) and returns only once all
// are sequenced. Callers buy durability with a subsequent awaited record.
func (ds *diskStore) logOps(txnID uint64, ops []diskOp) error {
	for i := range ops {
		op := &ops[i]
		lsn, err := ds.log.AppendRecordAsync(wal.EncodeUpdate(wal.UpdateRec{
			TxnID:  txnID,
			PageID: op.rid.page,
			Slot:   op.rid.slot,
			Before: op.before,
			After:  op.after,
		}))
		if err != nil {
			return err
		}
		op.lsn = lsn
	}
	return nil
}

// applyOps mutates heap pages through the pool. Called only after the ops'
// durability is settled; a failure here is a device fault, not a crash state.
func (ds *diskStore) applyOps(ops []diskOp) error {
	for _, op := range ops {
		a := &ds.alloc[ds.allocIdx[op.rid.page]]
		var (
			f   *heap.Frame
			err error
		)
		if a.fresh {
			f, err = ds.pool.PinNew(op.rid.page)
			a.fresh = false
		} else {
			f, err = ds.pool.Pin(op.rid.page)
		}
		if err != nil {
			return err
		}
		pg := f.Page()
		if err := pg.Put(int(op.rid.slot), op.after); err != nil {
			ds.pool.Unpin(f, false)
			return err
		}
		pg.SetLSN(op.lsn)
		ds.pool.Unpin(f, true)
	}
	return nil
}

// maybeCheckpointLocked logs a fuzzy checkpoint (the pool's dirty page table)
// every ckptEvery commits. Checkpoints ride the group pipeline; a torn one is
// simply ignored by recovery in favor of its predecessor.
func (ds *diskStore) maybeCheckpointLocked() error {
	ds.commits++
	if ds.ckptEvery <= 0 || ds.commits%ds.ckptEvery != 0 {
		return nil
	}
	_, err := ds.log.AppendRecordAsync(wal.EncodeCheckpoint(wal.CheckpointRec{Dirty: ds.pool.DirtyPages()}))
	return err
}

// onCommit is the disk engine's durability hook: log the transaction's slot
// images, await the commit record (whose verdict covers the batch), then
// apply the images to heap pages. Runs under ds.mu, so commits apply in
// commit order and the dirty page table snapshots are exact.
func (ds *diskStore) onCommit(t *txn.Txn) error {
	writes := t.WriteSet()
	if len(writes) == 0 {
		return nil // claims-only transaction: nothing durable changes
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()

	ops := make([]diskOp, 0, len(writes))
	for _, w := range writes {
		dt, ok := ds.byName[strings.ToLower(w.Table)]
		if !ok {
			return fmt.Errorf("sqldb: commit touches unknown disk table %q", w.Table)
		}
		switch w.Kind {
		case txn.WriteInsert:
			rec := encodeHeapRec(dt.id, heap.EncodeRow(w.Data))
			rid, err := ds.place(len(rec))
			if err != nil {
				return err
			}
			ops = append(ops, diskOp{rid: rid, after: rec})
			dt.rids[w.RowID] = rid
		case txn.WriteUpdate:
			rid, ok := dt.rids[w.RowID]
			if !ok {
				return fmt.Errorf("sqldb: update of unmapped row %d in %q", w.RowID, w.Table)
			}
			oldRec := encodeHeapRec(dt.id, heap.EncodeRow(w.Old))
			newRec := encodeHeapRec(dt.id, heap.EncodeRow(w.Data))
			uops, newRid, err := ds.planUpdate(rid, oldRec, newRec)
			if err != nil {
				return err
			}
			ops = append(ops, uops...)
			dt.rids[w.RowID] = newRid
		case txn.WriteDelete:
			rid, ok := dt.rids[w.RowID]
			if !ok {
				return fmt.Errorf("sqldb: delete of unmapped row %d in %q", w.RowID, w.Table)
			}
			rec := encodeHeapRec(dt.id, heap.EncodeRow(w.Data))
			ops = append(ops, diskOp{rid: rid, before: rec})
			ds.alloc[ds.allocIdx[rid.page]].free += len(rec)
			delete(dt.rids, w.RowID)
		}
	}

	if err := ds.logOps(t.ID(), ops); err != nil {
		return err
	}
	// The awaited commit record: its group-commit verdict covers every
	// update record above (sink writes happen in sequence order).
	if err := ds.log.AppendRecord(wal.EncodeCommit(t.ID())); err != nil {
		return err
	}
	if err := ds.applyOps(ops); err != nil {
		return err
	}
	return ds.maybeCheckpointLocked()
}

// logSystemOps logs ops under SystemTxnID (treated as always committed by
// recovery) and forces them durable before applying — DDL is rare enough to
// pay the barrier.
func (ds *diskStore) logSystemOps(ops []diskOp) error {
	if err := ds.logOps(wal.SystemTxnID, ops); err != nil {
		return err
	}
	if err := ds.log.Flush(); err != nil {
		return err
	}
	return ds.applyOps(ops)
}

// onCreateTable assigns the new table a stable id and logs its catalog
// record.
func (ds *diskStore) onCreateTable(meta *catalog.Table) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	tid := ds.nextTableID
	ds.nextTableID++
	rec, err := encodeCatalogRec(tid, meta)
	if err != nil {
		return err
	}
	rid, err := ds.place(len(rec))
	if err != nil {
		return err
	}
	if err := ds.logSystemOps([]diskOp{{rid: rid, after: rec}}); err != nil {
		return err
	}
	tbl, err := ds.eng.StorageTable(meta.Name)
	if err != nil {
		return err
	}
	dt := &diskTable{
		id:     tid,
		tbl:    tbl,
		catRID: rid,
		catRec: rec,
		rids:   map[storage.RowID]heapRID{},
	}
	ds.byName[strings.ToLower(meta.Name)] = dt
	ds.byID[tid] = dt
	return nil
}

// onSchemaChange re-serializes a table's catalog record in place (or
// relocated) after DDL such as CREATE INDEX.
func (ds *diskStore) onSchemaChange(cat *catalog.Catalog, tableName string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	dt, ok := ds.byName[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("sqldb: schema change on unknown disk table %q", tableName)
	}
	meta, err := cat.Table(tableName)
	if err != nil {
		return err
	}
	rec, err := encodeCatalogRec(dt.id, meta)
	if err != nil {
		return err
	}
	ops, newRid, err := ds.planUpdate(dt.catRID, dt.catRec, rec)
	if err != nil {
		return err
	}
	if err := ds.logSystemOps(ops); err != nil {
		return err
	}
	dt.catRID = newRid
	dt.catRec = rec
	return nil
}

// onDropTable logs deletes for the table's rows and catalog record. Before
// images are omitted: SystemTxnID is always a winner, so undo never consults
// them.
func (ds *diskStore) onDropTable(name string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	dt, ok := ds.byName[strings.ToLower(name)]
	if !ok {
		return nil
	}
	ops := dropOpsLocked(dt)
	ops = append(ops, diskOp{rid: dt.catRID})
	if err := ds.logSystemOps(ops); err != nil {
		return err
	}
	delete(ds.byName, strings.ToLower(name))
	delete(ds.byID, dt.id)
	return nil
}

// onTruncate logs deletes for every row of the table, keeping the heap in
// sync with a TRUNCATE (or the game's reset) so a restart does not resurrect
// the rows.
func (ds *diskStore) onTruncate(name string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	dt, ok := ds.byName[strings.ToLower(name)]
	if !ok {
		return nil
	}
	ops := dropOpsLocked(dt)
	if len(ops) == 0 {
		return nil
	}
	if err := ds.logSystemOps(ops); err != nil {
		return err
	}
	dt.rids = map[storage.RowID]heapRID{}
	return nil
}

// dropOpsLocked builds delete ops for every live row of dt, in deterministic
// slot order.
func dropOpsLocked(dt *diskTable) []diskOp {
	rids := make([]heapRID, 0, len(dt.rids))
	for _, rid := range dt.rids {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool {
		if rids[i].page != rids[j].page {
			return rids[i].page < rids[j].page
		}
		return rids[i].slot < rids[j].slot
	})
	ops := make([]diskOp, len(rids))
	for i, rid := range rids {
		ops[i] = diskOp{rid: rid}
	}
	return ops
}

// close flushes the pool (clean shutdown) and releases file handles. The WAL
// is already closed by Engine.Close, so every page LSN is durable.
func (ds *diskStore) close() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.pool.FlushAll() // best effort: recovery replays whatever this misses
	if ds.walFile != nil {
		_ = ds.walFile.Close()
	}
	if ds.closeDev {
		_ = ds.dev.Close()
	}
}

// encodeHeapRec frames one row image with its table id.
func encodeHeapRec(tableID uint32, body []byte) []byte {
	rec := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(rec, tableID)
	copy(rec[4:], body)
	return rec
}

// splitHeapRec splits a heap record into table id and body.
func splitHeapRec(rec []byte) (uint32, []byte, error) {
	if len(rec) < 4 {
		return 0, nil, fmt.Errorf("heap record of %d bytes", len(rec))
	}
	return binary.LittleEndian.Uint32(rec), rec[4:], nil
}

// encodeCatalogRec serializes a table's schema as a catalog heap record.
func encodeCatalogRec(tableID uint32, meta *catalog.Table) ([]byte, error) {
	sc := diskSchema{TableID: tableID, Name: meta.Name}
	for _, c := range meta.Columns {
		dc := diskColumn{
			Name:     c.Name,
			TypeName: c.TypeName,
			Kind:     uint8(c.Kind),
			Size:     c.Size,
			NotNull:  c.NotNull,
			AutoInc:  c.AutoInc,
		}
		if c.HasDefault {
			dc.Default = heap.EncodeRow([]sqlval.Value{c.Default})
		}
		sc.Columns = append(sc.Columns, dc)
	}
	for _, pi := range meta.PKCols {
		sc.PK = append(sc.PK, meta.Columns[pi].Name)
	}
	for _, idx := range meta.Indexes {
		if idx.Primary {
			continue
		}
		di := diskIndex{Name: idx.Name, Unique: idx.Unique}
		for _, ci := range idx.Columns {
			di.Columns = append(di.Columns, meta.Columns[ci].Name)
		}
		sc.Indexes = append(sc.Indexes, di)
	}
	body, err := json.Marshal(sc)
	if err != nil {
		return nil, err
	}
	return encodeHeapRec(diskCatalogTable, body), nil
}

// sqlvalKind converts a serialized kind byte back. Unknown kinds decode as
// NULL-typed, which CreateTable will reject loudly rather than corrupt.
func sqlvalKind(k uint8) sqlval.Kind { return sqlval.Kind(k) }
