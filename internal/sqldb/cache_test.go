package sqldb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"benchpress/internal/sqldb/txn"
)

// TestPlanCacheDDLInvalidation checks the merged statement cache drops its
// entries on every DDL path, so plans never outlive the schema they were
// compiled against.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	mustExec(t, s, "INSERT INTO kv (k, v) VALUES (1, 10)")

	const q = "SELECT v FROM kv WHERE k = ?"
	row, err := s.QueryRow(q, 1)
	if err != nil || row[0].Int() != 10 {
		t.Fatalf("pre-DDL read: %v %v", row, err)
	}
	e.planMu.RLock()
	if _, ok := e.stmts[q]; !ok {
		e.planMu.RUnlock()
		t.Fatal("statement not cached after execution")
	}
	e.planMu.RUnlock()

	// CREATE INDEX must invalidate: cached plans chose access paths without
	// the new index.
	mustExec(t, s, "CREATE INDEX kv_v ON kv (v)")
	e.planMu.RLock()
	n := len(e.stmts)
	e.planMu.RUnlock()
	if n != 0 {
		t.Fatalf("cache holds %d entries after CREATE INDEX", n)
	}

	// The re-cached plan must pick up the new index.
	byV := "SELECT k FROM kv WHERE v = ?"
	if row, err := s.QueryRow(byV, 10); err != nil || row[0].Int() != 1 {
		t.Fatalf("post-index read: %v %v", row, err)
	}
	cs, err := e.cachedStmt(byV)
	if err != nil {
		t.Fatal(err)
	}
	if got := explainOf(cs.plan); got == "" || got == "seqscan(kv)" {
		t.Fatalf("plan after CREATE INDEX = %q, want index access", got)
	}

	// DROP TABLE + recreate with a different shape: the old plan would read
	// stale storage; the cache must recompile against the new table.
	mustExec(t, s, "DROP TABLE kv")
	mustExec(t, s, "CREATE TABLE kv (k INT NOT NULL, v INT, w INT, PRIMARY KEY (k))")
	mustExec(t, s, "INSERT INTO kv (k, v, w) VALUES (2, 20, 200)")
	row, err = s.QueryRow(q, 2)
	if err != nil || row[0].Int() != 20 {
		t.Fatalf("post-recreate read: %v %v", row, err)
	}
}

// TestPlanCacheErrorNotCached checks a statement that fails to compile (table
// does not exist yet) is evicted, so it succeeds once the table appears even
// without an intervening DDL invalidation on its own connection.
func TestPlanCacheErrorNotCached(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	const q = "SELECT x FROM later WHERE x = ?"
	if _, err := s.Exec(q, 1); err == nil {
		t.Fatal("query against missing table succeeded")
	}
	e.planMu.RLock()
	_, cached := e.stmts[q]
	e.planMu.RUnlock()
	if cached {
		t.Fatal("failed compilation left a cache entry behind")
	}
	mustExec(t, s, "CREATE TABLE later (x INT NOT NULL, PRIMARY KEY (x))")
	if _, err := s.Exec(q, 1); err != nil {
		t.Fatalf("query after CREATE TABLE: %v", err)
	}
}

// TestConcurrentPrepareSingleFlight races many sessions preparing the same
// statement (run under -race in verify.sh) and checks they all share one
// compiled plan: the single-flight path compiled it exactly once.
func TestConcurrentPrepareSingleFlight(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE f (a INT NOT NULL, b INT, PRIMARY KEY (a))")
	mustExec(t, s, "INSERT INTO f (a, b) VALUES (1, 2)")

	const workers = 16
	const q = "SELECT b FROM f WHERE a = ?"
	var wg sync.WaitGroup
	plans := make([]*Stmt, workers)
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := e.Session()
			st, err := sess.Prepare(q)
			if err != nil {
				failed.Add(1)
				return
			}
			plans[w] = st
			for i := 0; i < 50; i++ {
				res, err := st.Exec(1)
				if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
					failed.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d workers failed", failed.Load())
	}
	for w := 1; w < workers; w++ {
		if plans[w].plan != plans[0].plan {
			t.Fatal("workers hold different compiled plans; single-flight did not deduplicate")
		}
	}
	// One entry for the racing query, one for the setup INSERT.
	e.planMu.RLock()
	n := len(e.stmts)
	_, ok := e.stmts[q]
	e.planMu.RUnlock()
	if !ok || n != 2 {
		t.Fatalf("cache holds %d entries (query cached: %v), want 2 with the query present", n, ok)
	}
}

// TestPreparedSelectRunsReadOnly checks Stmt.Exec autocommits bare SELECTs in
// a declared-read-only transaction: on the serial engine, concurrent prepared
// readers must be admitted together instead of serializing on the global
// write lock.
func TestPreparedSelectRunsReadOnly(t *testing.T) {
	e := newEngine(t, txn.Serial)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE r (a INT NOT NULL, PRIMARY KEY (a))")
	mustExec(t, s, "INSERT INTO r (a) VALUES (1)")

	st, err := s.Prepare("SELECT a FROM r WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	if !st.readonly {
		t.Fatal("prepared bare SELECT not classified read-only")
	}
	if st2, err := s.Prepare("SELECT a FROM r WHERE a = ? FOR UPDATE"); err != nil {
		t.Fatal(err)
	} else if st2.readonly {
		t.Fatal("FOR UPDATE SELECT classified read-only")
	}

	// Hold the serial engine's shared lock with an explicit read-only
	// transaction; a read-only prepared exec must proceed, which it only
	// can if it begins its autocommit transaction read-only too.
	blocker := e.Session()
	if err := blocker.BeginReadOnly(); err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan error, 1)
	go func() {
		sess := e.Session()
		st, err := sess.Prepare("SELECT a FROM r WHERE a = ?")
		if err != nil {
			doneCh <- err
			return
		}
		res, err := st.Exec(1)
		if err == nil && len(res.Rows) != 1 {
			err = fmt.Errorf("rows = %d", len(res.Rows))
		}
		doneCh <- err
	}()
	if err := <-doneCh; err != nil {
		t.Fatalf("prepared read under shared lock: %v", err)
	}
	if err := blocker.Commit(); err != nil {
		t.Fatal(err)
	}
}
