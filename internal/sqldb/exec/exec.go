package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"benchpress/internal/sqldb/parser"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
)

// Result is the outcome of executing a statement.
type Result struct {
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int
	LastInsertID int64
}

// Plan is a compiled, reusable statement. Plans are safe for concurrent use
// once compiled: execution state lives on the stack of Execute.
type Plan interface {
	Execute(tx *txn.Txn, params []sqlval.Value) (*Result, error)
}

// errStopScan is the internal sentinel an emit callback returns to end a
// pushed-down-limit scan early.
var errStopScan = fmt.Errorf("exec: stop scan")

// Compile turns a parsed DML statement into an executable plan. DDL and
// transaction-control statements are handled by the engine, not here.
func Compile(stmt parser.Statement, r Resolver) (Plan, error) {
	switch s := stmt.(type) {
	case *parser.Select:
		return compileSelect(s, r)
	case *parser.Insert:
		return compileInsert(s, r)
	case *parser.Update:
		return compileUpdate(s, r)
	case *parser.Delete:
		return compileDelete(s, r)
	default:
		return nil, fmt.Errorf("exec: cannot compile %T", stmt)
	}
}

// ---------------------------------------------------------------- SELECT

type projection struct {
	name string
	fn   EvalFn
}

type selectPlan struct {
	levels  []scanLevel
	schema  *tupleSchema
	projs   []projection
	aggs    []aggCall   // non-empty means grouped/aggregate query
	groupBy []EvalFn    // group key expressions (base env)
	having  EvalFn      // agg-mode predicate
	orderBy []orderSpec // resolved ORDER BY
	limit   EvalFn
	offset  EvalFn
	// orderByOutput is true when sort keys index into the output row
	// (aggregate queries); otherwise sort keys are computed per base tuple.
	orderByOutput bool
	distinct      bool
	forUpdate     bool
	// limitPushdown stops the scan as soon as offset+limit rows qualify.
	// Enabled when output order is the scan order (ORDER BY satisfied by
	// the chosen index, or absent) and no post-processing reorders rows.
	// Critical for FOR UPDATE...LIMIT: without it the scan would lock or
	// claim every qualifying row before discarding all but the first.
	limitPushdown bool
	// colNames is the precomputed output header, shared by every Result
	// this plan produces. Callers treat Result.Columns as read-only.
	colNames []string
	// pool recycles selectExec state (environment, scratch buffers, emit
	// accumulators) across executions.
	pool sync.Pool
	// rowHint is the row count of the previous execution, used as the
	// capacity hint for the next Result.Rows allocation.
	rowHint atomic.Int64
}

// selectExec is one execution's state: the expression environment plus the
// accumulators the per-tuple emit path writes. Keeping these as fields of a
// pooled struct (instead of locals captured by an emit closure) removes the
// per-Execute closure and captured-variable boxing from the hot path.
type selectExec struct {
	p          *selectPlan
	env        Env
	rows       [][]sqlval.Value // projected output (pre order/limit)
	sortKeys   [][]sqlval.Value
	seen       map[string]bool // distinct filter
	groups     map[string]*groupState
	groupOrder []string
	grouped    bool
	rowCap     int // emit stops the scan at this many rows; -1 = unbounded
	// arena is the output-row allocator: projected rows are carved out of
	// BatchSize-row chunks, turning one allocation per row into one per
	// chunk. The chunk tail survives pooling — carved rows escape into
	// Result.Rows, but the unconsumed remainder is still exclusively ours,
	// because every carve is capacity-capped and starts past the last one.
	arena []sqlval.Value
}

// allocRow carves an n-value row out of the arena chunk. The three-index cap
// makes the carved slice appear full to append, so callers can never grow it
// into a neighboring row.
func (se *selectExec) allocRow(n int) []sqlval.Value {
	if len(se.arena)+n > cap(se.arena) {
		se.arena = make([]sqlval.Value, 0, storage.BatchSize*n)
	}
	m := len(se.arena)
	se.arena = se.arena[:m+n]
	return se.arena[m : m+n : m+n]
}

func (p *selectPlan) getExec(params []sqlval.Value) *selectExec {
	se, _ := p.pool.Get().(*selectExec)
	if se == nil {
		se = &selectExec{p: p}
	}
	se.env.reset(p.schema.width, len(p.levels), params)
	return se
}

func (p *selectPlan) putExec(se *selectExec) {
	se.env.Params = nil
	se.env.AggVals = nil
	// rows escapes as Result.Rows and the rest hold caller-visible or
	// query-sized data; drop them rather than reuse.
	se.rows = nil
	se.sortKeys = nil
	se.seen = nil
	se.groups = nil
	se.groupOrder = nil
	p.pool.Put(se)
}

type orderSpec struct {
	fn   EvalFn // non-output ordering
	col  int    // output ordering: column position
	desc bool
}

func compileSelect(sel *parser.Select, r Resolver) (*selectPlan, error) {
	levels, schema, err := planScans(sel, r)
	if err != nil {
		return nil, err
	}
	p := &selectPlan{levels: levels, schema: schema, distinct: sel.Distinct, forUpdate: sel.ForUpdate}

	// Expand projections; compile in aggregate mode so aggregate calls
	// allocate slots.
	for _, se := range sel.Exprs {
		if se.Star {
			for _, bt := range schema.tables {
				if se.Table != "" && !strings.EqualFold(se.Table, bt.alias) {
					continue
				}
				offset := bt.offset
				for i, col := range bt.meta.Columns {
					pos := offset + i
					p.projs = append(p.projs, projection{
						name: col.Name,
						fn:   func(env *Env) (sqlval.Value, error) { return env.Vals[pos], nil },
					})
				}
			}
			continue
		}
		fn, err := compileAggExpr(se.Expr, schema, &p.aggs)
		if err != nil {
			return nil, err
		}
		name := se.Alias
		if name == "" {
			if cr, ok := se.Expr.(*parser.ColumnRef); ok {
				name = cr.Name
			} else {
				name = exprText(se.Expr)
			}
		}
		p.projs = append(p.projs, projection{name: name, fn: fn})
	}

	for _, g := range sel.GroupBy {
		fn, err := compileExpr(g, schema)
		if err != nil {
			return nil, err
		}
		p.groupBy = append(p.groupBy, fn)
	}
	if sel.Having != nil {
		fn, err := compileAggExpr(sel.Having, schema, &p.aggs)
		if err != nil {
			return nil, err
		}
		p.having = fn
	}
	if len(p.groupBy) > 0 && len(p.aggs) == 0 && !p.distinct {
		// GROUP BY without aggregates behaves like DISTINCT over the keys.
		p.distinct = true
	}

	grouped := len(p.aggs) > 0 || len(p.groupBy) > 0
	p.orderByOutput = grouped
	// Order-by pushdown: when the single scan level's index already yields
	// rows in the requested order, the sort (and with it the need to
	// materialize every row before LIMIT) disappears. A sequential scan has
	// no inherent order, but if some index covers the ORDER BY columns it
	// is worth switching to it for the ordering alone — essential for
	// `ORDER BY pk LIMIT n FOR UPDATE`, which must not claim the whole
	// table.
	if !grouped && !p.distinct && len(levels) == 1 && len(sel.OrderBy) > 0 {
		lv := &p.levels[0]
		if lv.access.kind == accessSeq {
			switchToOrderingIndex(sel.OrderBy, lv, schema)
		}
		if desc, ok := orderSatisfiedByIndex(sel.OrderBy, lv, schema); ok {
			lv.access.desc = desc
			sel = shallowCopyWithoutOrder(sel)
		}
	}
	for _, oi := range sel.OrderBy {
		spec := orderSpec{desc: oi.Desc, col: -1}
		if grouped {
			col, err := resolveOutputOrder(oi.Expr, sel, p)
			if err != nil {
				return nil, err
			}
			spec.col = col
		} else if lit, ok := oi.Expr.(*parser.Literal); ok && lit.Val.Kind() == sqlval.KindInt {
			pos := int(lit.Val.Int()) - 1
			if pos < 0 || pos >= len(p.projs) {
				return nil, fmt.Errorf("exec: ORDER BY position %d out of range", pos+1)
			}
			spec.col = pos
			p.orderByOutput = true
		} else {
			fn, err := compileOrderExpr(oi.Expr, sel, p)
			if err != nil {
				return nil, err
			}
			spec.fn = fn
		}
		p.orderBy = append(p.orderBy, spec)
	}
	if sel.Limit != nil {
		fn, err := compileExpr(sel.Limit, &tupleSchema{})
		if err != nil {
			return nil, err
		}
		p.limit = fn
	}
	if sel.Offset != nil {
		fn, err := compileExpr(sel.Offset, &tupleSchema{})
		if err != nil {
			return nil, err
		}
		p.offset = fn
	}
	p.limitPushdown = p.limit != nil && !grouped && !p.distinct && len(p.orderBy) == 0
	p.colNames = make([]string, len(p.projs))
	for i, pr := range p.projs {
		p.colNames[i] = pr.name
	}
	return p, nil
}

// shallowCopyWithoutOrder clones the select without its ORDER BY so that the
// remainder of compilation sees the pushed-down form. The parse cache holds
// the original AST, which must not be mutated.
func shallowCopyWithoutOrder(sel *parser.Select) *parser.Select {
	cp := *sel
	cp.OrderBy = nil
	return &cp
}

// orderSatisfiedByIndex reports whether every ORDER BY item is a bare column
// continuing the chosen index's column list right after the equality prefix,
// with one uniform direction. When it holds, scanning the index in that
// direction yields rows already ordered.
func orderSatisfiedByIndex(items []parser.OrderItem, lv *scanLevel, schema *tupleSchema) (desc, ok bool) {
	var idxCols []int
	switch lv.access.kind {
	case accessPrimary, accessPrimaryEq:
		idxCols = lv.tbl.Meta.PKCols
	case accessSecondary:
		idxCols = lv.tbl.SecondaryIndexes()[lv.access.ord].Columns
	default:
		return false, false
	}
	start := len(lv.access.eq)
	if len(items) > len(idxCols)-start {
		return false, false
	}
	desc = items[0].Desc
	for i, it := range items {
		if it.Desc != desc {
			return false, false
		}
		cr, isCol := it.Expr.(*parser.ColumnRef)
		if !isCol {
			return false, false
		}
		pos, err := schema.resolve(cr.Table, cr.Name)
		if err != nil || pos-lv.offset != idxCols[start+i] {
			return false, false
		}
	}
	// A range bound on the first sort column is fine (scan order holds);
	// anything else past the prefix is not possible by construction.
	return desc, true
}

// switchToOrderingIndex upgrades a sequential scan to a full index scan when
// some index's leading columns cover the ORDER BY list, so that the order
// (and any LIMIT) can be pushed down.
func switchToOrderingIndex(items []parser.OrderItem, lv *scanLevel, schema *tupleSchema) {
	try := func(path accessPath) bool {
		saved := lv.access
		lv.access = path
		if _, ok := orderSatisfiedByIndex(items, lv, schema); ok {
			return true
		}
		lv.access = saved
		return false
	}
	if len(lv.tbl.Meta.PKCols) > 0 && try(accessPath{kind: accessPrimary}) {
		return
	}
	for ord := range lv.tbl.SecondaryIndexes() {
		if try(accessPath{kind: accessSecondary, ord: ord}) {
			return
		}
	}
}

// resolveOutputOrder maps an ORDER BY item of a grouped query onto an output
// column: by position, alias, or matching expression text.
func resolveOutputOrder(e parser.Expr, sel *parser.Select, p *selectPlan) (int, error) {
	if lit, ok := e.(*parser.Literal); ok && lit.Val.Kind() == sqlval.KindInt {
		pos := int(lit.Val.Int()) - 1
		if pos < 0 || pos >= len(p.projs) {
			return 0, fmt.Errorf("exec: ORDER BY position %d out of range", pos+1)
		}
		return pos, nil
	}
	if cr, ok := e.(*parser.ColumnRef); ok && cr.Table == "" {
		for i, se := range sel.Exprs {
			if strings.EqualFold(se.Alias, cr.Name) {
				return i, nil
			}
		}
	}
	want := exprText(e)
	for i, se := range sel.Exprs {
		if se.Expr != nil && exprText(se.Expr) == want {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: ORDER BY %s does not match any output column of the grouped query", want)
}

// compileOrderExpr compiles a non-grouped ORDER BY item, resolving aliases to
// their select expressions first.
func compileOrderExpr(e parser.Expr, sel *parser.Select, p *selectPlan) (EvalFn, error) {
	if cr, ok := e.(*parser.ColumnRef); ok && cr.Table == "" {
		for _, se := range sel.Exprs {
			if strings.EqualFold(se.Alias, cr.Name) {
				return compileExpr(se.Expr, p.schema)
			}
		}
	}
	return compileExpr(e, p.schema)
}

// emit handles one complete tuple: accumulate it into its group, or project
// it into the output rows (applying DISTINCT and collecting sort keys).
func (se *selectExec) emit() error {
	p := se.p
	env := &se.env
	if se.grouped {
		key := ""
		if len(p.groupBy) > 0 {
			kv, err := evalKeyInto(env.keyBuf, p.groupBy, env)
			if err != nil {
				return err
			}
			env.keyBuf = kv
			key = sqlval.EncodeKey(kv)
		}
		g, ok := se.groups[key]
		if !ok {
			g = newGroupState(p.aggs, env.Vals)
			se.groups[key] = g
			se.groupOrder = append(se.groupOrder, key)
		}
		return g.accumulate(p.aggs, env)
	}
	out := se.allocRow(len(p.projs))
	for i, pr := range p.projs {
		v, err := pr.fn(env)
		if err != nil {
			return err
		}
		out[i] = v
	}
	if p.distinct {
		k := sqlval.EncodeKey(out)
		if se.seen[k] {
			// Rebate the carve: out never escaped, so the next row may
			// reuse its arena space.
			se.arena = se.arena[:len(se.arena)-len(out)]
			return nil
		}
		se.seen[k] = true
	}
	if len(p.orderBy) > 0 && !p.orderByOutput {
		keys := make([]sqlval.Value, len(p.orderBy))
		for i, os := range p.orderBy {
			v, err := os.fn(env)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		se.sortKeys = append(se.sortKeys, keys)
	}
	se.rows = append(se.rows, out)
	if se.rowCap >= 0 && len(se.rows) >= se.rowCap {
		return errStopScan
	}
	return nil
}

// Execute runs the select.
func (p *selectPlan) Execute(tx *txn.Txn, params []sqlval.Value) (*Result, error) {
	se := p.getExec(params)
	defer p.putExec(se)
	env := &se.env
	res := &Result{Columns: p.colNames}

	se.grouped = len(p.aggs) > 0 || len(p.groupBy) > 0
	// With limit pushdown, stop scanning once offset+limit rows qualify.
	se.rowCap = -1
	if p.limitPushdown {
		lv, err := p.limit(env)
		if err != nil {
			return nil, err
		}
		se.rowCap = int(lv.Int())
		if p.offset != nil {
			ov, err := p.offset(env)
			if err != nil {
				return nil, err
			}
			se.rowCap += int(ov.Int())
		}
		if se.rowCap < 0 {
			se.rowCap = 0
		}
	}
	if hint := int(p.rowHint.Load()); hint > 0 {
		se.rows = make([][]sqlval.Value, 0, hint)
	}
	if p.distinct {
		se.seen = map[string]bool{}
	}
	if se.grouped {
		se.groups = map[string]*groupState{}
	}

	if se.rowCap == 0 {
		// LIMIT 0: do not touch (or lock) any rows.
	} else if err := p.scan(tx, se, 0); err != nil && err != errStopScan {
		return nil, err
	}

	if se.grouped {
		// Zero-group aggregate query (no GROUP BY, no input rows) still
		// produces one row of aggregates over the empty set.
		if len(se.groups) == 0 && len(p.groupBy) == 0 {
			se.groups[""] = newGroupState(p.aggs, make([]sqlval.Value, p.schema.width))
			se.groupOrder = append(se.groupOrder, "")
		}
		for _, key := range se.groupOrder {
			g := se.groups[key]
			env.Vals = g.firstRow
			env.AggVals = g.finalize(p.aggs)
			if p.having != nil {
				hv, err := p.having(env)
				if err != nil {
					return nil, err
				}
				if !truthy(hv) {
					continue
				}
			}
			out := make([]sqlval.Value, len(p.projs))
			for i, pr := range p.projs {
				v, err := pr.fn(env)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			se.rows = append(se.rows, out)
		}
	}
	rows, sortKeys := se.rows, se.sortKeys

	// Order.
	if len(p.orderBy) > 0 {
		if p.orderByOutput {
			sort.SliceStable(rows, func(i, j int) bool {
				for _, os := range p.orderBy {
					c := sqlval.Compare(rows[i][os.col], rows[j][os.col])
					if os.desc {
						c = -c
					}
					if c != 0 {
						return c < 0
					}
				}
				return false
			})
		} else {
			idx := make([]int, len(rows))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
				for i, os := range p.orderBy {
					c := sqlval.Compare(ka[i], kb[i])
					if os.desc {
						c = -c
					}
					if c != 0 {
						return c < 0
					}
				}
				return false
			})
			sorted := make([][]sqlval.Value, len(rows))
			for i, j := range idx {
				sorted[i] = rows[j]
			}
			rows = sorted
		}
	}

	// Offset / limit.
	if p.offset != nil {
		v, err := p.offset(env)
		if err != nil {
			return nil, err
		}
		n := int(v.Int())
		if n > len(rows) {
			n = len(rows)
		}
		rows = rows[n:]
	}
	if p.limit != nil {
		v, err := p.limit(env)
		if err != nil {
			return nil, err
		}
		if n := int(v.Int()); n >= 0 && n < len(rows) {
			rows = rows[:n]
		}
	}
	res.Rows = rows
	hint := int64(len(rows))
	if hint > 1024 {
		hint = 1024 // bound pre-allocation for occasional huge results
	}
	p.rowHint.Store(hint)
	return res, nil
}

// scan recursively joins levels depth-first, invoking se.emit for each
// complete tuple that passes all filters.
func (p *selectPlan) scan(tx *txn.Txn, se *selectExec, li int) error {
	if li == len(p.levels) {
		return se.emit()
	}
	env := &se.env
	lv := &p.levels[li]
	matched := false
	var scanErr error
	// Plain reads outside the Locking engine resolve visibility directly
	// against the transaction's view — one liveness check per scan instead
	// of a full Read (done-check, mode switch, claim test) per row.
	view, fast := tx.FastReadView()
	fast = fast && !p.forUpdate
	process := func(e storage.IndexEntry, vk verifyKind, row *storage.Row) bool {
		var data []sqlval.Value
		if fast {
			if row == nil {
				var ok bool
				if row, ok = lv.tbl.Row(e.ID); !ok {
					return true
				}
			}
			v := view.Visible(row)
			if v == nil {
				return true
			}
			data = v.Data
		} else {
			var err error
			if data, err = tx.Read(lv.tbl, e.ID, p.forUpdate); err != nil {
				scanErr = err
				return false
			}
			if data == nil {
				return true
			}
		}
		if !entryMatches(lv, e, vk, data) {
			// Stale index entry: the visible image no longer carries the
			// entry's key (an update moved the row within the index).
			return true
		}
		copy(env.Vals[lv.offset:lv.offset+lv.ncols], data)
		if lv.onFilter != nil {
			v, err := lv.onFilter(env)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		matched = true
		if lv.filter != nil {
			v, err := lv.filter(env)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		if err := p.scan(tx, se, li+1); err != nil {
			scanErr = err
			return false
		}
		return true
	}

	if err := scanAccess(lv, env, &env.scratch[li], fast, process); err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if lv.leftJoin && !matched {
		// Null-extend the inner side, then apply WHERE-level filters.
		for i := 0; i < lv.ncols; i++ {
			env.Vals[lv.offset+i] = sqlval.Null()
		}
		if lv.filter != nil {
			v, err := lv.filter(env)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		return p.scan(tx, se, li+1)
	}
	return nil
}

// verifyKind tells process how to check a candidate row image against the
// index entry that produced it. Passing the entry by value with a kind tag
// (instead of a per-entry verification closure) keeps range scans free of
// per-row allocations.
type verifyKind uint8

const (
	verifyNone verifyKind = iota
	verifyPrim
	verifySec
)

// entryMatches reports whether the visible row image still carries the index
// entry's key. Updates leave stale entries behind by design; readers skip
// them here.
func entryMatches(lv *scanLevel, e storage.IndexEntry, vk verifyKind, data []sqlval.Value) bool {
	switch vk {
	case verifyPrim:
		return lv.tbl.VerifyPrimary(e, data)
	case verifySec:
		return lv.tbl.VerifySecondary(lv.access.ord, e, data)
	}
	return true
}

// scanAccess drives one level's access path, feeding candidate index entries
// to process (which returns false to stop). Probe keys and range bounds are
// built in sc, this level's scratch, so repeated probes (inner join levels,
// prepared-statement re-execution) allocate nothing.
//
// Range scans are batch-oriented: the qualifying index entries are
// materialized into sc.entries in one pass under the index latch, then
// consumed latch-free. That holds the latch once per scan instead of once
// per entry, and lets process acquire row locks (the slow path) without an
// index latch held. Sequential scans on the fast read path pull rows
// BatchSize at a time through sc.batch, so process receives the row pointer
// directly and skips the per-row id decode and slot load of Table.Row.
func scanAccess(lv *scanLevel, env *Env, sc *levelScratch, fast bool, process func(e storage.IndexEntry, vk verifyKind, row *storage.Row) bool) error {
	switch lv.access.kind {
	case accessPrimaryEq:
		key, err := evalKeyInto(sc.key, lv.access.eq, env)
		if err != nil {
			return err
		}
		sc.key = key
		if id, ok := lv.tbl.PrimaryLookup(key); ok {
			process(storage.IndexEntry{Key: key, ID: id}, verifyPrim, nil)
		}
		return nil
	case accessPrimary:
		from, to, err := scanBounds(&lv.access, env, sc)
		if err != nil {
			return err
		}
		sc.entries = lv.tbl.AppendPrimaryRange(sc.entries[:0], from, to, lv.access.desc)
		for i := range sc.entries {
			if !process(sc.entries[i], verifyPrim, nil) {
				break
			}
		}
		sc.releaseEntries()
		return nil
	case accessSecondary:
		from, to, err := scanBounds(&lv.access, env, sc)
		if err != nil {
			return err
		}
		sc.entries = lv.tbl.AppendSecondaryRange(sc.entries[:0], lv.access.ord, from, to, lv.access.desc)
		for i := range sc.entries {
			if !process(sc.entries[i], verifySec, nil) {
				break
			}
		}
		sc.releaseEntries()
		return nil
	default:
		// Sequential scan, one latch-free row-store segment at a time.
		if fast {
			b := sc.batch
			if b == nil {
				b = new(storage.RowBatch)
				sc.batch = b
			}
		batched:
			for g, n := 0, lv.tbl.Segments(); g < n; g++ {
				for cursor := int64(0); cursor >= 0; {
					cursor = lv.tbl.ScanBatch(g, cursor, b)
					for i := 0; i < b.N; i++ {
						if !process(storage.IndexEntry{ID: b.IDs[i]}, verifyNone, b.Rows[i]) {
							break batched
						}
					}
				}
			}
			// Drop the row pointers so pooled executor state does not pin
			// reclaimed rows between executions.
			*b = storage.RowBatch{}
			return nil
		}
		// Locking / FOR UPDATE path: per-row visit; process re-reads the
		// row under the transaction's concurrency control. The callback is
		// hoisted out of the segment loop so it is allocated once per scan.
		visit := func(id storage.RowID, _ *storage.Row) bool {
			return process(storage.IndexEntry{ID: id}, verifyNone, nil)
		}
		for g, n := 0, lv.tbl.Segments(); g < n; g++ {
			if !lv.tbl.ScanSegment(g, visit) {
				break
			}
		}
		return nil
	}
}

// ------------------------------------------------------------- aggregation

// groupState accumulates one group's aggregates.
type groupState struct {
	firstRow []sqlval.Value
	counts   []int64
	sums     []sqlval.Value
	mins     []sqlval.Value
	maxs     []sqlval.Value
	distinct []map[string]bool
}

func newGroupState(aggs []aggCall, row []sqlval.Value) *groupState {
	g := &groupState{
		firstRow: append([]sqlval.Value(nil), row...),
		counts:   make([]int64, len(aggs)),
		sums:     make([]sqlval.Value, len(aggs)),
		mins:     make([]sqlval.Value, len(aggs)),
		maxs:     make([]sqlval.Value, len(aggs)),
	}
	g.distinct = make([]map[string]bool, len(aggs))
	for i, a := range aggs {
		if a.distinct {
			g.distinct[i] = map[string]bool{}
		}
		g.sums[i] = sqlval.Null()
		g.mins[i] = sqlval.Null()
		g.maxs[i] = sqlval.Null()
	}
	return g
}

func (g *groupState) accumulate(aggs []aggCall, env *Env) error {
	for i, a := range aggs {
		if a.star {
			g.counts[i]++
			continue
		}
		v, err := a.arg(env)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		if g.distinct[i] != nil {
			k := sqlval.EncodeKey([]sqlval.Value{v})
			if g.distinct[i][k] {
				continue
			}
			g.distinct[i][k] = true
		}
		g.counts[i]++
		if g.sums[i].IsNull() {
			g.sums[i] = v
		} else {
			s, err := sqlval.Add(g.sums[i], v)
			if err != nil {
				return err
			}
			g.sums[i] = s
		}
		if g.mins[i].IsNull() || sqlval.Compare(v, g.mins[i]) < 0 {
			g.mins[i] = v
		}
		if g.maxs[i].IsNull() || sqlval.Compare(v, g.maxs[i]) > 0 {
			g.maxs[i] = v
		}
	}
	return nil
}

func (g *groupState) finalize(aggs []aggCall) []sqlval.Value {
	out := make([]sqlval.Value, len(aggs))
	for i, a := range aggs {
		switch a.fn {
		case "COUNT":
			out[i] = sqlval.NewInt(g.counts[i])
		case "SUM":
			out[i] = g.sums[i]
		case "AVG":
			if g.counts[i] == 0 || g.sums[i].IsNull() {
				out[i] = sqlval.Null()
			} else {
				out[i] = sqlval.NewFloat(g.sums[i].Float() / float64(g.counts[i]))
			}
		case "MIN":
			out[i] = g.mins[i]
		case "MAX":
			out[i] = g.maxs[i]
		}
	}
	return out
}

// ---------------------------------------------------------------- INSERT

type insertPlan struct {
	tbl  *storage.Table
	rows [][]EvalFn // per row, per target column
	cols []int      // target column ordinals, parallel to each row's EvalFns
	pool sync.Pool  // *insertScratch
}

// insertScratch holds the per-execution state an INSERT can reuse. The row
// data slice itself is NOT here: storage retains it inside the new Version
// (Version.Data is immutable), so it must be freshly allocated per row.
type insertScratch struct {
	env      Env
	provided []bool
}

func compileInsert(ins *parser.Insert, r Resolver) (*insertPlan, error) {
	tbl, err := r.StorageTable(ins.Table)
	if err != nil {
		return nil, err
	}
	meta := tbl.Meta
	var cols []int
	if len(ins.Columns) == 0 {
		cols = make([]int, len(meta.Columns))
		for i := range cols {
			cols[i] = i
		}
	} else {
		for _, name := range ins.Columns {
			i := meta.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("exec: unknown column %q in INSERT into %s", name, meta.Name)
			}
			cols = append(cols, i)
		}
	}
	p := &insertPlan{tbl: tbl, cols: cols}
	empty := &tupleSchema{}
	for _, row := range ins.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("exec: INSERT into %s has %d values for %d columns", meta.Name, len(row), len(cols))
		}
		fns := make([]EvalFn, len(row))
		for i, e := range row {
			fn, err := compileExpr(e, empty)
			if err != nil {
				return nil, err
			}
			fns[i] = fn
		}
		p.rows = append(p.rows, fns)
	}
	return p, nil
}

func (p *insertPlan) Execute(tx *txn.Txn, params []sqlval.Value) (*Result, error) {
	st, _ := p.pool.Get().(*insertScratch)
	if st == nil {
		st = &insertScratch{}
	}
	meta := p.tbl.Meta
	env := &st.env
	env.Params = params
	if cap(st.provided) < len(meta.Columns) {
		st.provided = make([]bool, len(meta.Columns))
	}
	defer func() {
		env.Params = nil
		p.pool.Put(st)
	}()
	res := &Result{}
	for _, fns := range p.rows {
		data := make([]sqlval.Value, len(meta.Columns))
		provided := st.provided[:len(meta.Columns)]
		for i := range provided {
			provided[i] = false
		}
		for i, fn := range fns {
			v, err := fn(env)
			if err != nil {
				return nil, err
			}
			data[p.cols[i]] = v
			provided[p.cols[i]] = true
		}
		for ci := range meta.Columns {
			col := &meta.Columns[ci]
			if !provided[ci] || data[ci].IsNull() {
				switch {
				case col.AutoInc && !provided[ci]:
					id := p.tbl.NextAutoInc()
					data[ci] = sqlval.NewInt(id)
					res.LastInsertID = id
				case col.HasDefault:
					data[ci] = col.Default
				default:
					data[ci] = sqlval.Null()
				}
			}
			if !data[ci].IsNull() {
				v, err := sqlval.CoerceKind(data[ci], col.Kind)
				if err != nil {
					return nil, fmt.Errorf("exec: column %s.%s: %w", meta.Name, col.Name, err)
				}
				if col.Size > 0 && v.Kind() == sqlval.KindString && len(v.Str()) > col.Size {
					v = sqlval.NewString(v.Str()[:col.Size])
				}
				data[ci] = v
				if col.AutoInc {
					p.tbl.BumpAutoInc(v.Int())
				}
			} else if col.NotNull {
				return nil, fmt.Errorf("exec: column %s.%s may not be NULL", meta.Name, col.Name)
			}
		}
		if err := tx.Insert(p.tbl, data); err != nil {
			return nil, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// ---------------------------------------------------------------- UPDATE

type updatePlan struct {
	scan *selectPlan // single-level scan with FOR UPDATE semantics
	tbl  *storage.Table
	sets []struct {
		col int
		fn  EvalFn
	}
}

// buildSingleTableScan plans the WHERE of an UPDATE/DELETE as a one-level
// select.
func buildSingleTableScan(table, alias string, where parser.Expr, r Resolver) (*selectPlan, error) {
	sel := &parser.Select{
		Exprs: []parser.SelectExpr{{Star: true}},
		From:  []parser.TableRef{{Table: table, Alias: alias}},
		Where: where,
	}
	p, err := compileSelect(sel, r)
	if err != nil {
		return nil, err
	}
	p.forUpdate = true
	return p, nil
}

func compileUpdate(up *parser.Update, r Resolver) (*updatePlan, error) {
	scan, err := buildSingleTableScan(up.Table, up.Alias, up.Where, r)
	if err != nil {
		return nil, err
	}
	tbl := scan.levels[0].tbl
	p := &updatePlan{scan: scan, tbl: tbl}
	for _, a := range up.Sets {
		ci := tbl.Meta.ColumnIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("exec: unknown column %q in UPDATE %s", a.Column, up.Table)
		}
		fn, err := compileExpr(a.Expr, scan.schema)
		if err != nil {
			return nil, err
		}
		p.sets = append(p.sets, struct {
			col int
			fn  EvalFn
		}{ci, fn})
	}
	return p, nil
}

func (p *updatePlan) Execute(tx *txn.Txn, params []sqlval.Value) (*Result, error) {
	se := p.scan.getExec(params)
	defer p.scan.putExec(se)
	env := &se.env
	// The SET loop points env.Vals at version-owned images; restore the
	// env's own buffer before pooling so a later reset cannot zero
	// storage-owned memory in place.
	saved := env.Vals
	defer func() { env.Vals = saved }()
	ids, images, err := collectMatches(p.scan, tx, env)
	if err != nil {
		return nil, err
	}
	meta := p.tbl.Meta
	res := &Result{}
	for i, id := range ids {
		env.Vals = images[i]
		newData := append([]sqlval.Value(nil), images[i]...)
		for _, set := range p.sets {
			v, err := set.fn(env)
			if err != nil {
				return nil, err
			}
			col := &meta.Columns[set.col]
			if !v.IsNull() {
				cv, err := sqlval.CoerceKind(v, col.Kind)
				if err != nil {
					return nil, fmt.Errorf("exec: column %s.%s: %w", meta.Name, col.Name, err)
				}
				if col.Size > 0 && cv.Kind() == sqlval.KindString && len(cv.Str()) > col.Size {
					cv = sqlval.NewString(cv.Str()[:col.Size])
				}
				v = cv
			} else if col.NotNull {
				return nil, fmt.Errorf("exec: column %s.%s may not be NULL", meta.Name, col.Name)
			}
			newData[set.col] = v
		}
		if err := tx.Update(p.tbl, id, newData); err != nil {
			return nil, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// collectMatches runs the scan of an UPDATE/DELETE plan and materializes the
// matching row ids and images before any mutation, so the write phase never
// runs concurrently with its own index scan. env must come from a
// scan.getExec state.
func collectMatches(scan *selectPlan, tx *txn.Txn, env *Env) ([]storage.RowID, [][]sqlval.Value, error) {
	var ids []storage.RowID
	var images [][]sqlval.Value
	lv := &scan.levels[0]
	var innerErr error
	process := func(e storage.IndexEntry, vk verifyKind, _ *storage.Row) bool {
		data, err := tx.Read(lv.tbl, e.ID, true)
		if err != nil {
			innerErr = err
			return false
		}
		if data == nil {
			return true
		}
		if !entryMatches(lv, e, vk, data) {
			return true
		}
		copy(env.Vals, data)
		if lv.filter != nil {
			v, err := lv.filter(env)
			if err != nil {
				innerErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, e.ID)
		// data is the claimed version's image; Version.Data is immutable
		// and the row is locked FOR UPDATE, so no defensive copy is needed.
		images = append(images, data)
		return true
	}
	if err := scanAccess(lv, env, &env.scratch[0], false, process); err != nil {
		return nil, nil, err
	}
	if innerErr != nil {
		return nil, nil, innerErr
	}
	return ids, images, nil
}

// ---------------------------------------------------------------- DELETE

type deletePlan struct {
	scan *selectPlan
	tbl  *storage.Table
}

func compileDelete(del *parser.Delete, r Resolver) (*deletePlan, error) {
	scan, err := buildSingleTableScan(del.Table, del.Alias, del.Where, r)
	if err != nil {
		return nil, err
	}
	return &deletePlan{scan: scan, tbl: scan.levels[0].tbl}, nil
}

func (p *deletePlan) Execute(tx *txn.Txn, params []sqlval.Value) (*Result, error) {
	se := p.scan.getExec(params)
	ids, _, err := collectMatches(p.scan, tx, &se.env)
	p.scan.putExec(se)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, id := range ids {
		if err := tx.Delete(p.tbl, id); err != nil {
			return nil, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// Explain summarizes a plan's access paths for diagnostics and tests.
func Explain(p Plan) string {
	var b strings.Builder
	describe := func(s *selectPlan) {
		for i, lv := range s.levels {
			if i > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%s(%s", lv.access.kind, lv.tbl.Meta.Name)
			if len(lv.access.eq) > 0 {
				fmt.Fprintf(&b, " eq=%d", len(lv.access.eq))
			}
			if lv.access.lo != nil || lv.access.hi != nil {
				b.WriteString(" range")
			}
			b.WriteString(")")
		}
	}
	switch x := p.(type) {
	case *selectPlan:
		describe(x)
	case *updatePlan:
		b.WriteString("update via ")
		describe(x.scan)
	case *deletePlan:
		b.WriteString("delete via ")
		describe(x.scan)
	case *insertPlan:
		fmt.Fprintf(&b, "insert(%s x%d)", x.tbl.Meta.Name, len(x.rows))
	}
	return b.String()
}
