package exec

import (
	"fmt"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqldb/parser"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqlval"
)

// Resolver supplies physical tables to the planner.
type Resolver interface {
	StorageTable(name string) (*storage.Table, error)
}

// accessKind classifies a table's access path.
type accessKind uint8

const (
	accessSeq       accessKind = iota // full table scan
	accessPrimaryEq                   // unique primary-key lookup
	accessPrimary                     // primary index prefix/range scan
	accessSecondary                   // secondary index prefix/range scan
)

// String names the access kind for EXPLAIN-style output and tests.
func (k accessKind) String() string {
	switch k {
	case accessSeq:
		return "seqscan"
	case accessPrimaryEq:
		return "pk-lookup"
	case accessPrimary:
		return "pk-range"
	case accessSecondary:
		return "index-range"
	default:
		return "?"
	}
}

// accessPath is a compiled index choice for one scan level.
type accessPath struct {
	kind accessKind
	ord  int      // secondary index ordinal for accessSecondary
	eq   []EvalFn // equality values for the index prefix, in index-column order
	lo   EvalFn   // optional range lower bound on the next index column
	hi   EvalFn   // optional range upper bound on the next index column
	desc bool     // scan direction (used by order-by pushdown)
}

// scanLevel is one table in the join pipeline.
type scanLevel struct {
	tbl      *storage.Table
	offset   int // column offset within the joined tuple
	ncols    int
	access   accessPath
	onFilter EvalFn // LEFT JOIN gating predicate (conjuncts from ON)
	filter   EvalFn // WHERE conjuncts fully bound at this level
	leftJoin bool
}

// conjunct is one ANDed term of a WHERE/ON clause with bookkeeping about
// where it can be evaluated.
type conjunct struct {
	expr    parser.Expr
	fromOn  int // join level whose ON clause contributed it; -1 for WHERE
	level   int // earliest level at which all referenced columns are bound
	usable  bool
	compile EvalFn
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e parser.Expr, out *[]parser.Expr) {
	if b, ok := e.(*parser.Binary); ok && b.Op == "AND" {
		splitConjuncts(b.L, out)
		splitConjuncts(b.R, out)
		return
	}
	*out = append(*out, e)
}

// planScans resolves the FROM/JOIN tables, assigns conjuncts to levels, and
// picks an access path per level.
func planScans(sel *parser.Select, r Resolver) ([]scanLevel, *tupleSchema, error) {
	type tableEntry struct {
		ref  parser.TableRef
		left bool
		on   parser.Expr
	}
	var entries []tableEntry
	for _, tr := range sel.From {
		entries = append(entries, tableEntry{ref: tr})
	}
	for _, j := range sel.Joins {
		entries = append(entries, tableEntry{ref: j.Table, left: j.Left, on: j.On})
	}
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("exec: SELECT without FROM is not supported")
	}

	schema := &tupleSchema{}
	levels := make([]scanLevel, 0, len(entries))
	for _, e := range entries {
		tbl, err := r.StorageTable(e.ref.Table)
		if err != nil {
			return nil, nil, err
		}
		alias := e.ref.Alias
		if alias == "" {
			alias = e.ref.Table
		}
		lv := scanLevel{tbl: tbl, offset: schema.width, ncols: len(tbl.Meta.Columns), leftJoin: e.left}
		schema.bind(alias, tbl.Meta)
		levels = append(levels, lv)
	}

	// Gather conjuncts from WHERE and every ON clause.
	var conjs []conjunct
	add := func(e parser.Expr, fromOn int) {
		if e == nil {
			return
		}
		var parts []parser.Expr
		splitConjuncts(e, &parts)
		for _, p := range parts {
			conjs = append(conjs, conjunct{expr: p, fromOn: fromOn})
		}
	}
	add(sel.Where, -1)
	for i, e := range entries {
		add(e.on, i)
	}

	// Assign each conjunct to the earliest level where it compiles.
	for ci := range conjs {
		c := &conjs[ci]
		assigned := false
		for lvl := 1; lvl <= len(levels); lvl++ {
			fn, err := compileExpr(c.expr, schema.prefix(lvl))
			if err == nil {
				c.level = lvl - 1
				c.compile = fn
				c.usable = true
				assigned = true
				break
			}
		}
		if !assigned {
			// Compile against the full schema to surface the real error.
			if _, err := compileExpr(c.expr, schema); err != nil {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("exec: cannot place predicate %s", exprText(c.expr))
		}
		// An ON conjunct can never gate earlier than its join level.
		if c.fromOn >= 0 && c.level < c.fromOn {
			c.level = c.fromOn
			fn, err := compileExpr(c.expr, schema.prefix(c.fromOn+1))
			if err != nil {
				return nil, nil, err
			}
			c.compile = fn
		}
	}

	// Pick access paths and attach residual filters.
	for li := range levels {
		lv := &levels[li]
		lv.access = chooseAccess(lv, li, schema, conjs)
		var onFns, whereFns []EvalFn
		for _, c := range conjs {
			if c.level != li {
				continue
			}
			if lv.leftJoin && c.fromOn != li {
				whereFns = append(whereFns, c.compile)
			} else if lv.leftJoin {
				onFns = append(onFns, c.compile)
			} else {
				whereFns = append(whereFns, c.compile)
			}
		}
		lv.onFilter = andAll(onFns)
		lv.filter = andAll(whereFns)
	}
	return levels, schema, nil
}

// andAll combines predicate closures with AND short-circuiting; nil when the
// list is empty.
func andAll(fns []EvalFn) EvalFn {
	switch len(fns) {
	case 0:
		return nil
	case 1:
		return fns[0]
	}
	return func(env *Env) (sqlval.Value, error) {
		for _, fn := range fns {
			v, err := fn(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if !truthy(v) {
				return sqlval.NewBool(false), nil
			}
		}
		return sqlval.NewBool(true), nil
	}
}

// colEq describes one sargable conjunct on a level's column: col = valueFn,
// or a range bound.
type colBound struct {
	eq EvalFn
	lo EvalFn
	hi EvalFn
}

// chooseAccess inspects the conjuncts assigned at this level for sargable
// predicates on the level's own columns whose other side is computable from
// outer levels, then picks the index with the longest usable equality
// prefix (plus an optional range on the following column).
func chooseAccess(lv *scanLevel, li int, schema *tupleSchema, conjs []conjunct) accessPath {
	outer := schema.prefix(li) // bindings available before this level
	bounds := map[int]*colBound{}
	bound := func(col int) *colBound {
		b, ok := bounds[col]
		if !ok {
			b = &colBound{}
			bounds[col] = b
		}
		return b
	}
	// ownColumn maps an expression to this level's column ordinal when the
	// expression is a bare reference to one of this level's columns.
	ownColumn := func(e parser.Expr) int {
		cr, ok := e.(*parser.ColumnRef)
		if !ok {
			return -1
		}
		pos, err := schema.prefix(li+1).resolve(cr.Table, cr.Name)
		if err != nil || pos < lv.offset || pos >= lv.offset+lv.ncols {
			return -1
		}
		// Unqualified names could also resolve into an outer table; the
		// resolve above already errors on ambiguity.
		return pos - lv.offset
	}
	for _, c := range conjs {
		if c.level != li {
			continue
		}
		switch x := c.expr.(type) {
		case *parser.Binary:
			if x.Op != "=" && x.Op != "<" && x.Op != "<=" && x.Op != ">" && x.Op != ">=" {
				continue
			}
			col, rhs := ownColumn(x.L), x.R
			op := x.Op
			if col < 0 {
				// Try the mirrored form: value op col.
				col, rhs = ownColumn(x.R), x.L
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
			if col < 0 {
				continue
			}
			fn, err := compileExpr(rhs, outer)
			if err != nil {
				continue // rhs needs this level's own columns; not sargable
			}
			b := bound(col)
			switch op {
			case "=":
				b.eq = fn
			case "<", "<=":
				b.hi = fn
			case ">", ">=":
				b.lo = fn
			}
		case *parser.Between:
			col := ownColumn(x.X)
			if col < 0 || x.Not {
				continue
			}
			loFn, err1 := compileExpr(x.Lo, outer)
			hiFn, err2 := compileExpr(x.Hi, outer)
			if err1 != nil || err2 != nil {
				continue
			}
			b := bound(col)
			b.lo, b.hi = loFn, hiFn
		}
	}
	if len(bounds) == 0 {
		return accessPath{kind: accessSeq}
	}

	type candidate struct {
		path  accessPath
		score int
	}
	best := candidate{path: accessPath{kind: accessSeq}, score: 0}
	consider := func(idx *catalog.Index, kind accessKind, ord int) {
		var eq []EvalFn
		k := 0
		for ; k < len(idx.Columns); k++ {
			b, ok := bounds[idx.Columns[k]]
			if !ok || b.eq == nil {
				break
			}
			eq = append(eq, b.eq)
		}
		path := accessPath{kind: kind, ord: ord, eq: eq}
		score := k * 4
		if k == len(idx.Columns) && idx.Unique && k > 0 {
			if kind == accessPrimary {
				path.kind = accessPrimaryEq
			}
			score += 3 // unique exact match beats everything
		} else if k < len(idx.Columns) {
			if b, ok := bounds[idx.Columns[k]]; ok && (b.lo != nil || b.hi != nil) {
				path.lo, path.hi = b.lo, b.hi
				score += 2
			}
		}
		if score > best.score {
			best = candidate{path: path, score: score}
		}
	}
	meta := lv.tbl.Meta
	if len(meta.PKCols) > 0 {
		consider(meta.Indexes[0], accessPrimary, 0)
	}
	for ord, idx := range lv.tbl.SecondaryIndexes() {
		consider(idx, accessSecondary, ord)
	}
	return best.path
}

// evalKeyInto evaluates access-path bound closures into buf, reusing its
// backing array. Callers own buf only until the next evaluation on the same
// buffer; storage never retains probe keys past the lookup/scan call.
func evalKeyInto(buf []sqlval.Value, fns []EvalFn, env *Env) ([]sqlval.Value, error) {
	buf = buf[:0]
	for _, fn := range fns {
		v, err := fn(env)
		if err != nil {
			return nil, err
		}
		buf = append(buf, v)
	}
	return buf, nil
}

// scanBounds builds tree bounds from the access path: eqPrefix [+lo] up to
// eqPrefix [+hi] +Top. A bare prefix is an inclusive lower bound (shorter
// composites sort before their extensions) and Top padding makes the upper
// bound inclusive over longer physical keys. The bounds are written into the
// level's scratch buffers; the btree range scans compare against them during
// iteration but never retain them, and nested levels use their own scratch.
func scanBounds(path *accessPath, env *Env, sc *levelScratch) (from, to []sqlval.Value, err error) {
	sc.from = sc.from[:0]
	sc.to = sc.to[:0]
	for _, fn := range path.eq {
		v, err := fn(env)
		if err != nil {
			return nil, nil, err
		}
		sc.from = append(sc.from, v)
		sc.to = append(sc.to, v)
	}
	if path.lo != nil {
		v, err := path.lo(env)
		if err != nil {
			return nil, nil, err
		}
		sc.from = append(sc.from, v)
	}
	if path.hi != nil {
		v, err := path.hi(env)
		if err != nil {
			return nil, nil, err
		}
		sc.to = append(sc.to, v)
	}
	sc.to = append(sc.to, sqlval.Top())
	from, to = sc.from, sc.to
	if len(from) == 0 {
		from = nil
	}
	if len(to) == 1 {
		to = nil // only the Top pad: open upper bound
	}
	return from, to, nil
}
