// Package exec compiles parsed SQL statements into executable plans and runs
// them against the storage layer under a transaction.
//
// Compilation resolves column references to tuple positions once, so that a
// prepared statement's repeated executions only evaluate closures. Plans pick
// an access path per table: primary-key lookup or range, secondary-index
// prefix or range, or a sequential scan, based on the equality and range
// conjuncts available at that join depth.
package exec

import (
	"fmt"
	"strings"
	"time"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqldb/parser"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqlval"
)

// Env is the runtime environment of one expression evaluation: the
// concatenated column values of all bound tables, the statement parameters,
// and (during aggregation output) the computed aggregate slots. Envs are
// pooled per plan and carry reusable scratch buffers so the per-row hot path
// of a prepared statement allocates nothing for keys or scan bounds.
type Env struct {
	Vals    []sqlval.Value
	Params  []sqlval.Value
	AggVals []sqlval.Value
	// scratch holds one reusable key/bound buffer set per scan level;
	// nested join levels probe concurrently, so the buffers cannot be
	// shared across levels within one tuple descent.
	scratch []levelScratch
	// keyBuf is the reusable group-key evaluation buffer.
	keyBuf []sqlval.Value
}

// levelScratch is one scan level's reusable probe buffers.
type levelScratch struct {
	key  []sqlval.Value
	from []sqlval.Value
	to   []sqlval.Value
	// entries is the range-scan batch buffer: index entries are materialized
	// here under the index latch, then consumed latch-free. Reused across
	// probes and executions; releaseEntries drops key references afterwards.
	entries []storage.IndexEntry
	// batch is the sequential-scan row batch, allocated on first use.
	batch *storage.RowBatch
}

// maxRetainedEntries bounds the entry scratch a pooled execution keeps; a
// scan that materialized more than this hands the buffer back to the GC.
const maxRetainedEntries = 1024

// releaseEntries clears the consumed entry batch so pooled executor state
// does not pin index key slices between executions.
func (sc *levelScratch) releaseEntries() {
	for i := range sc.entries {
		sc.entries[i] = storage.IndexEntry{}
	}
	if cap(sc.entries) > maxRetainedEntries {
		sc.entries = nil
	} else {
		sc.entries = sc.entries[:0]
	}
}

// reset prepares a (possibly pooled) Env for one execution: Vals is sized
// and zeroed to the schema width (matching a freshly allocated slice) and
// the per-level scratch is sized to the plan's scan depth.
func (env *Env) reset(width, levels int, params []sqlval.Value) {
	if cap(env.Vals) < width {
		env.Vals = make([]sqlval.Value, width)
	} else {
		env.Vals = env.Vals[:width]
		for i := range env.Vals {
			env.Vals[i] = sqlval.Value{}
		}
	}
	if cap(env.scratch) < levels {
		env.scratch = make([]levelScratch, levels)
	} else {
		env.scratch = env.scratch[:levels]
	}
	env.Params = params
	env.AggVals = nil
}

// EvalFn evaluates one compiled expression.
type EvalFn func(env *Env) (sqlval.Value, error)

// boundTable is one table bound into a tuple schema at a column offset.
type boundTable struct {
	alias  string // lower-cased alias (or table name)
	meta   *catalog.Table
	offset int
}

// tupleSchema maps qualified column names to tuple positions.
type tupleSchema struct {
	tables []boundTable
	width  int
}

func (s *tupleSchema) bind(alias string, meta *catalog.Table) {
	s.tables = append(s.tables, boundTable{alias: strings.ToLower(alias), meta: meta, offset: s.width})
	s.width += len(meta.Columns)
}

// prefix returns a schema covering only the first n bound tables, used to
// decide whether a conjunct is evaluable at a given join depth.
func (s *tupleSchema) prefix(n int) *tupleSchema {
	p := &tupleSchema{tables: s.tables[:n]}
	if n > 0 {
		last := s.tables[n-1]
		p.width = last.offset + len(last.meta.Columns)
	}
	return p
}

// resolve finds the tuple position of a (possibly qualified) column.
func (s *tupleSchema) resolve(qual, name string) (int, error) {
	qual = strings.ToLower(qual)
	pos, found := -1, 0
	for _, bt := range s.tables {
		if qual != "" && bt.alias != qual {
			continue
		}
		if i := bt.meta.ColumnIndex(name); i >= 0 {
			pos = bt.offset + i
			found++
		}
	}
	switch {
	case found == 0:
		if qual != "" {
			return 0, fmt.Errorf("exec: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("exec: unknown column %s", name)
	case found > 1:
		return 0, fmt.Errorf("exec: ambiguous column %s", name)
	default:
		return pos, nil
	}
}

// aggCall is one aggregate invocation discovered during compilation.
type aggCall struct {
	fn       string // COUNT, SUM, AVG, MIN, MAX
	star     bool
	distinct bool
	arg      EvalFn // nil for COUNT(*)
}

// compiler tracks aggregate slots while compiling expressions.
type compiler struct {
	schema *tupleSchema
	// aggs collects aggregate calls; nil means aggregates are not allowed
	// in this context (e.g. WHERE clauses).
	aggs *[]aggCall
}

// compileExpr compiles e against schema with aggregates disallowed.
func compileExpr(e parser.Expr, schema *tupleSchema) (EvalFn, error) {
	c := &compiler{schema: schema}
	return c.compile(e)
}

// compileAggExpr compiles e allowing aggregate calls, appending their
// definitions to aggs and wiring their results through Env.AggVals.
func compileAggExpr(e parser.Expr, schema *tupleSchema, aggs *[]aggCall) (EvalFn, error) {
	c := &compiler{schema: schema, aggs: aggs}
	return c.compile(e)
}

func (c *compiler) compile(e parser.Expr) (EvalFn, error) {
	switch x := e.(type) {
	case *parser.Literal:
		v := x.Val
		return func(*Env) (sqlval.Value, error) { return v, nil }, nil
	case *parser.Param:
		idx := x.Index
		return func(env *Env) (sqlval.Value, error) {
			if idx >= len(env.Params) {
				return sqlval.Value{}, fmt.Errorf("exec: missing parameter %d", idx+1)
			}
			return env.Params[idx], nil
		}, nil
	case *parser.ColumnRef:
		pos, err := c.schema.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) { return env.Vals[pos], nil }, nil
	case *parser.Binary:
		return c.compileBinary(x)
	case *parser.Unary:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return func(env *Env) (sqlval.Value, error) {
				v, err := inner(env)
				if err != nil {
					return sqlval.Value{}, err
				}
				if v.IsNull() {
					return sqlval.Null(), nil
				}
				return sqlval.NewBool(!v.Bool()), nil
			}, nil
		case "-":
			return func(env *Env) (sqlval.Value, error) {
				v, err := inner(env)
				if err != nil {
					return sqlval.Value{}, err
				}
				return sqlval.Sub(sqlval.NewInt(0), v)
			}, nil
		default:
			return nil, fmt.Errorf("exec: unknown unary operator %q", x.Op)
		}
	case *parser.FuncCall:
		return c.compileFunc(x)
	case *parser.InList:
		return c.compileIn(x)
	case *parser.Between:
		return c.compileBetween(x)
	case *parser.IsNull:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(env *Env) (sqlval.Value, error) {
			v, err := inner(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			return sqlval.NewBool(v.IsNull() != not), nil
		}, nil
	case *parser.Like:
		return c.compileLike(x)
	case *parser.Case:
		return c.compileCase(x)
	default:
		return nil, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func (c *compiler) compileBinary(x *parser.Binary) (EvalFn, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND":
		return func(env *Env) (sqlval.Value, error) {
			lv, err := l(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if !lv.IsNull() && !lv.Bool() {
				return sqlval.NewBool(false), nil
			}
			rv, err := r(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if !rv.IsNull() && !rv.Bool() {
				return sqlval.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil
			}
			return sqlval.NewBool(true), nil
		}, nil
	case "OR":
		return func(env *Env) (sqlval.Value, error) {
			lv, err := l(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if !lv.IsNull() && lv.Bool() {
				return sqlval.NewBool(true), nil
			}
			rv, err := r(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if !rv.IsNull() && rv.Bool() {
				return sqlval.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil
			}
			return sqlval.NewBool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(env *Env) (sqlval.Value, error) {
			lv, err := l(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			rv, err := r(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil
			}
			cmp := sqlval.Compare(lv, rv)
			var out bool
			switch op {
			case "=":
				out = cmp == 0
			case "<>":
				out = cmp != 0
			case "<":
				out = cmp < 0
			case "<=":
				out = cmp <= 0
			case ">":
				out = cmp > 0
			case ">=":
				out = cmp >= 0
			}
			return sqlval.NewBool(out), nil
		}, nil
	case "+", "-", "*", "/":
		return func(env *Env) (sqlval.Value, error) {
			lv, err := l(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			rv, err := r(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			switch op {
			case "+":
				return sqlval.Add(lv, rv)
			case "-":
				return sqlval.Sub(lv, rv)
			case "*":
				return sqlval.Mul(lv, rv)
			default:
				return sqlval.Div(lv, rv)
			}
		}, nil
	case "%":
		return func(env *Env) (sqlval.Value, error) {
			lv, err := l(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			rv, err := r(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil
			}
			if rv.Int() == 0 {
				return sqlval.Value{}, fmt.Errorf("exec: modulo by zero")
			}
			return sqlval.NewInt(lv.Int() % rv.Int()), nil
		}, nil
	case "||":
		return func(env *Env) (sqlval.Value, error) {
			lv, err := l(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			rv, err := r(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqlval.Null(), nil
			}
			return sqlval.NewString(lv.Str() + rv.Str()), nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown binary operator %q", op)
	}
}

// aggregateFuncs is the set of aggregate function names.
var aggregateFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (c *compiler) compileFunc(x *parser.FuncCall) (EvalFn, error) {
	if aggregateFuncs[x.Name] {
		if c.aggs == nil {
			return nil, fmt.Errorf("exec: aggregate %s not allowed here", x.Name)
		}
		call := aggCall{fn: x.Name, star: x.Star, distinct: x.Distinct}
		if !x.Star {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("exec: %s takes one argument", x.Name)
			}
			arg, err := compileExpr(x.Args[0], c.schema)
			if err != nil {
				return nil, err
			}
			call.arg = arg
		}
		slot := len(*c.aggs)
		*c.aggs = append(*c.aggs, call)
		return func(env *Env) (sqlval.Value, error) {
			if slot >= len(env.AggVals) {
				return sqlval.Value{}, fmt.Errorf("exec: aggregate slot %d unbound", slot)
			}
			return env.AggVals[slot], nil
		}, nil
	}
	args := make([]EvalFn, len(x.Args))
	for i, a := range x.Args {
		fn, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = fn
	}
	return compileScalarFunc(x.Name, args)
}

func compileScalarFunc(name string, args []EvalFn) (EvalFn, error) {
	evalAll := func(env *Env) ([]sqlval.Value, error) {
		vals := make([]sqlval.Value, len(args))
		for i, fn := range args {
			v, err := fn(env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("exec: %s takes %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "LOWER":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() {
				return sqlval.Null(), err
			}
			return sqlval.NewString(strings.ToLower(vs[0].Str())), nil
		}, nil
	case "UPPER":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() {
				return sqlval.Null(), err
			}
			return sqlval.NewString(strings.ToUpper(vs[0].Str())), nil
		}, nil
	case "LENGTH", "CHAR_LENGTH":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() {
				return sqlval.Null(), err
			}
			return sqlval.NewInt(int64(len(vs[0].Str()))), nil
		}, nil
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() {
				return sqlval.Null(), err
			}
			if vs[0].Kind() == sqlval.KindFloat {
				f := vs[0].Float()
				if f < 0 {
					f = -f
				}
				return sqlval.NewFloat(f), nil
			}
			n := vs[0].Int()
			if n < 0 {
				n = -n
			}
			return sqlval.NewInt(n), nil
		}, nil
	case "MOD":
		if err := arity(2); err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() || vs[1].IsNull() {
				return sqlval.Null(), err
			}
			if vs[1].Int() == 0 {
				return sqlval.Value{}, fmt.Errorf("exec: MOD by zero")
			}
			return sqlval.NewInt(vs[0].Int() % vs[1].Int()), nil
		}, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("exec: %s takes 2 or 3 arguments", name)
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() {
				return sqlval.Null(), err
			}
			s := vs[0].Str()
			start := int(vs[1].Int()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if len(vs) == 3 {
				if n := int(vs[2].Int()); start+n < end {
					end = start + n
				}
			}
			return sqlval.NewString(s[start:end]), nil
		}, nil
	case "COALESCE", "IFNULL":
		if len(args) == 0 {
			return nil, fmt.Errorf("exec: %s needs arguments", name)
		}
		return func(env *Env) (sqlval.Value, error) {
			for _, fn := range args {
				v, err := fn(env)
				if err != nil {
					return sqlval.Value{}, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return sqlval.Null(), nil
		}, nil
	case "NOW", "CURRENT_TIMESTAMP":
		if err := arity(0); err != nil {
			return nil, err
		}
		return func(*Env) (sqlval.Value, error) { return sqlval.NewTime(time.Now()), nil }, nil
	case "FLOOR":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(env *Env) (sqlval.Value, error) {
			vs, err := evalAll(env)
			if err != nil || vs[0].IsNull() {
				return sqlval.Null(), err
			}
			f := vs[0].Float()
			n := int64(f)
			if f < 0 && float64(n) != f {
				n--
			}
			return sqlval.NewInt(n), nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown function %s", name)
	}
}

func (c *compiler) compileIn(x *parser.InList) (EvalFn, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	list := make([]EvalFn, len(x.List))
	for i, e := range x.List {
		fn, err := c.compile(e)
		if err != nil {
			return nil, err
		}
		list[i] = fn
	}
	not := x.Not
	return func(env *Env) (sqlval.Value, error) {
		v, err := inner(env)
		if err != nil {
			return sqlval.Value{}, err
		}
		if v.IsNull() {
			return sqlval.Null(), nil
		}
		sawNull := false
		for _, fn := range list {
			lv, err := fn(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if lv.IsNull() {
				sawNull = true
				continue
			}
			if sqlval.Compare(v, lv) == 0 {
				return sqlval.NewBool(!not), nil
			}
		}
		if sawNull {
			return sqlval.Null(), nil
		}
		return sqlval.NewBool(not), nil
	}, nil
}

func (c *compiler) compileBetween(x *parser.Between) (EvalFn, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	lo, err := c.compile(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := c.compile(x.Hi)
	if err != nil {
		return nil, err
	}
	not := x.Not
	return func(env *Env) (sqlval.Value, error) {
		v, err := inner(env)
		if err != nil {
			return sqlval.Value{}, err
		}
		lv, err := lo(env)
		if err != nil {
			return sqlval.Value{}, err
		}
		hv, err := hi(env)
		if err != nil {
			return sqlval.Value{}, err
		}
		if v.IsNull() || lv.IsNull() || hv.IsNull() {
			return sqlval.Null(), nil
		}
		in := sqlval.Compare(v, lv) >= 0 && sqlval.Compare(v, hv) <= 0
		return sqlval.NewBool(in != not), nil
	}, nil
}

func (c *compiler) compileLike(x *parser.Like) (EvalFn, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	pat, err := c.compile(x.Pattern)
	if err != nil {
		return nil, err
	}
	not := x.Not
	return func(env *Env) (sqlval.Value, error) {
		v, err := inner(env)
		if err != nil {
			return sqlval.Value{}, err
		}
		pv, err := pat(env)
		if err != nil {
			return sqlval.Value{}, err
		}
		if v.IsNull() || pv.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.NewBool(likeMatch(v.Str(), pv.Str()) != not), nil
	}, nil
}

// likeMatch implements SQL LIKE with % and _ wildcards (case-sensitive),
// using iterative backtracking over the last % seen.
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func (c *compiler) compileCase(x *parser.Case) (EvalFn, error) {
	type arm struct{ cond, then EvalFn }
	arms := make([]arm, len(x.Whens))
	for i, w := range x.Whens {
		cond, err := c.compile(w.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compile(w.Then)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{cond, then}
	}
	var elseFn EvalFn
	if x.Else != nil {
		fn, err := c.compile(x.Else)
		if err != nil {
			return nil, err
		}
		elseFn = fn
	}
	return func(env *Env) (sqlval.Value, error) {
		for _, a := range arms {
			cv, err := a.cond(env)
			if err != nil {
				return sqlval.Value{}, err
			}
			if !cv.IsNull() && cv.Bool() {
				return a.then(env)
			}
		}
		if elseFn != nil {
			return elseFn(env)
		}
		return sqlval.Null(), nil
	}, nil
}

// truthy interprets a predicate result: NULL and false both reject the row.
func truthy(v sqlval.Value) bool { return !v.IsNull() && v.Bool() }

// exprText renders an expression to a canonical string, used to match ORDER
// BY expressions against select-list items in aggregate queries.
func exprText(e parser.Expr) string {
	switch x := e.(type) {
	case *parser.Literal:
		return x.Val.Format()
	case *parser.Param:
		return fmt.Sprintf("?%d", x.Index)
	case *parser.ColumnRef:
		if x.Table != "" {
			return strings.ToLower(x.Table) + "." + strings.ToLower(x.Name)
		}
		return strings.ToLower(x.Name)
	case *parser.Binary:
		return "(" + exprText(x.L) + x.Op + exprText(x.R) + ")"
	case *parser.Unary:
		return x.Op + "(" + exprText(x.X) + ")"
	case *parser.FuncCall:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = exprText(a)
		}
		star := ""
		if x.Star {
			star = "*"
		}
		return x.Name + "(" + star + strings.Join(parts, ",") + ")"
	case *parser.InList:
		return exprText(x.X) + " IN (...)"
	case *parser.Between:
		return exprText(x.X) + " BETWEEN " + exprText(x.Lo) + " AND " + exprText(x.Hi)
	case *parser.IsNull:
		return exprText(x.X) + " IS NULL"
	case *parser.Like:
		return exprText(x.X) + " LIKE " + exprText(x.Pattern)
	case *parser.Case:
		return fmt.Sprintf("CASE(%p)", x)
	default:
		return fmt.Sprintf("%T", e)
	}
}
