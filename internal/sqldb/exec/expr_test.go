package exec

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"benchpress/internal/sqldb/parser"
	"benchpress/internal/sqlval"
)

func TestLikeMatchBasics(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "x%", false},
		{"hello", "hello_", false},
		{"hello", "%x%", false},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"abc", "%%", true},
		{"ab", "a%b", true},
		{"aXXb", "a%b", true},
		{"promo item", "pr%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: likeMatch agrees with the equivalent anchored regexp for
// patterns over a small alphabet.
func TestLikeMatchAgainstRegexp(t *testing.T) {
	translate := func(p string) string {
		var b strings.Builder
		b.WriteString("^")
		for _, c := range p {
			switch c {
			case '%':
				b.WriteString(".*")
			case '_':
				b.WriteString(".")
			default:
				b.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		b.WriteString("$")
		return b.String()
	}
	alphabet := []byte("ab%_")
	prop := func(sRaw, pRaw []byte) bool {
		var s, p strings.Builder
		for _, c := range sRaw {
			s.WriteByte("ab"[int(c)%2])
		}
		for _, c := range pRaw {
			p.WriteByte(alphabet[int(c)%len(alphabet)])
		}
		re := regexp.MustCompile(translate(p.String()))
		return likeMatch(s.String(), p.String()) == re.MatchString(s.String())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// evalStandalone compiles and evaluates a parameterless scalar expression by
// wrapping it in a one-row query context.
func evalStandalone(t *testing.T, exprSQL string, params ...any) (sqlval.Value, error) {
	t.Helper()
	stmt, err := parser.Parse("SELECT " + exprSQL + " FROM t")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel := stmt.(*parser.Select)
	fn, err := compileExpr(sel.Exprs[0].Expr, &tupleSchema{})
	if err != nil {
		return sqlval.Value{}, err
	}
	vals := make([]sqlval.Value, len(params))
	for i, p := range params {
		vals[i] = sqlval.MustFromGo(p)
	}
	return fn(&Env{Params: vals})
}

func TestExpressionEdgeCases(t *testing.T) {
	mustVal := func(sql string, params ...any) sqlval.Value {
		t.Helper()
		v, err := evalStandalone(t, sql, params...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return v
	}
	// Three-valued logic.
	if !mustVal("NULL AND FALSE").Bool() == false && !mustVal("NULL AND FALSE").IsNull() {
		// NULL AND FALSE is FALSE
		t.Error("NULL AND FALSE")
	}
	if v := mustVal("NULL AND TRUE"); !v.IsNull() {
		t.Errorf("NULL AND TRUE = %v, want NULL", v)
	}
	if v := mustVal("NULL OR TRUE"); !v.Bool() {
		t.Errorf("NULL OR TRUE = %v, want TRUE", v)
	}
	if v := mustVal("NULL OR FALSE"); !v.IsNull() {
		t.Errorf("NULL OR FALSE = %v, want NULL", v)
	}
	if v := mustVal("NOT NULL"); !v.IsNull() {
		t.Errorf("NOT NULL = %v", v)
	}
	// NULL comparisons.
	if v := mustVal("NULL = NULL"); !v.IsNull() {
		t.Errorf("NULL = NULL evaluates %v", v)
	}
	if v := mustVal("1 IN (2, NULL)"); !v.IsNull() {
		t.Errorf("1 IN (2, NULL) = %v, want NULL", v)
	}
	if v := mustVal("1 IN (1, NULL)"); !v.Bool() {
		t.Errorf("1 IN (1, NULL) = %v, want TRUE", v)
	}
	if v := mustVal("1 NOT IN (2, 3)"); !v.Bool() {
		t.Errorf("NOT IN = %v", v)
	}
	// Coalesce chain.
	if v := mustVal("COALESCE(NULL, NULL, 7)"); v.Int() != 7 {
		t.Errorf("COALESCE = %v", v)
	}
	// Modulo and division errors.
	if _, err := evalStandalone(t, "5 % 0"); err == nil {
		t.Error("modulo by zero accepted")
	}
	if _, err := evalStandalone(t, "5 / 0"); err == nil {
		t.Error("division by zero accepted")
	}
	// String concatenation operator.
	if v := mustVal("'a' || 'b' || 'c'"); v.Str() != "abc" {
		t.Errorf("|| = %v", v)
	}
	// Parameters.
	if v := mustVal("? + ?", 2, 3); v.Int() != 5 {
		t.Errorf("param add = %v", v)
	}
	if _, err := evalStandalone(t, "? + 1"); err == nil {
		t.Error("missing parameter accepted")
	}
	// CASE without ELSE yields NULL.
	if v := mustVal("CASE WHEN FALSE THEN 1 END"); !v.IsNull() {
		t.Errorf("CASE no-else = %v", v)
	}
	// BETWEEN with NULL bound.
	if v := mustVal("5 BETWEEN NULL AND 10"); !v.IsNull() {
		t.Errorf("BETWEEN NULL = %v", v)
	}
	// Scalar functions.
	if v := mustVal("SUBSTR('hello', 2, 3)"); v.Str() != "ell" {
		t.Errorf("SUBSTR = %v", v)
	}
	if v := mustVal("SUBSTR('hi', 5)"); v.Str() != "" {
		t.Errorf("SUBSTR past end = %q", v.Str())
	}
	if v := mustVal("FLOOR(-1.5)"); v.Int() != -2 {
		t.Errorf("FLOOR(-1.5) = %v", v)
	}
	if v := mustVal("ABS(-2.5)"); v.Float() != 2.5 {
		t.Errorf("ABS = %v", v)
	}
	if v := mustVal("MOD(7, 3)"); v.Int() != 1 {
		t.Errorf("MOD = %v", v)
	}
}

func TestAggregateNotAllowedInWhere(t *testing.T) {
	stmt, err := parser.Parse("SELECT a FROM t WHERE SUM(a) > 1")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*parser.Select)
	if _, err := compileExpr(sel.Where, &tupleSchema{}); err == nil {
		t.Fatal("aggregate in WHERE accepted")
	}
}

func TestExprTextStable(t *testing.T) {
	parse := func(sql string) parser.Expr {
		stmt, err := parser.Parse("SELECT " + sql + " FROM t")
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*parser.Select).Exprs[0].Expr
	}
	a := exprText(parse("SUM(x + 1)"))
	b := exprText(parse("SUM(x + 1)"))
	if a != b {
		t.Fatalf("exprText unstable: %q vs %q", a, b)
	}
	if exprText(parse("SUM(x)")) == exprText(parse("SUM(y)")) {
		t.Fatal("distinct expressions render identically")
	}
}
