// Package parser implements the SQL dialect accepted by the embedded engine:
// the subset of SQL-92 (plus a few common extensions) that the OLTP-Bench
// workloads use — CREATE TABLE/INDEX, INSERT, SELECT with joins, grouping and
// aggregation, UPDATE, DELETE, and transaction control statements.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam // ?
	tokOp    // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int
}

// keywords is the set of reserved words recognized by the lexer.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "ON": true, "DROP": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "DEFAULT": true,
	"AND": true, "OR": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "ORDER": true, "BY": true, "GROUP": true, "HAVING": true,
	"LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"DISTINCT": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"TRANSACTION": true, "WORK": true, "FOR": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "EXISTS": true, "IF": true,
	"TRUE": true, "FALSE": true, "FOREIGN": true, "REFERENCES": true,
	"CONSTRAINT": true, "CHECK": true, "TRUNCATE": true, "VACUUM": true,
	"ALL": true, "UNION": true, "FETCH": true, "FIRST": true, "NEXT": true,
	"ROWS": true, "ROW": true, "ONLY": true, "TOP": true, "CASCADE": true,
	"AUTOINCREMENT": true, "AUTO_INCREMENT": true, "IDENTITY": true,
}

// lexer produces tokens from SQL source text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning an error on malformed input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '"' || c == '`':
			id, err := l.lexQuotedIdent(c)
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: id, pos: start})
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tokParam, text: "?", pos: start})
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			word := l.lexWord()
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string literal at offset %d", l.pos)
}

func (l *lexer) lexQuotedIdent(quote byte) (string, error) {
	l.pos++
	start := l.pos
	for l.pos < len(l.src) {
		if l.src[l.pos] == quote {
			id := l.src[start:l.pos]
			l.pos++
			return id, nil
		}
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return l.src[start:l.pos]
		}
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexWord() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexOp() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		l.pos += 2
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.', ';', '%':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sql: unexpected character %q at offset %d", rune(c), l.pos)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c == '#' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '$' }
