package parser

import (
	"fmt"
	"strconv"
	"strings"

	"benchpress/internal/sqlval"
)

// Parse parses a single SQL statement. A trailing semicolon is permitted.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParamCount returns the number of ? placeholders in the statement.
func ParamCount(stmt Statement) int {
	max := -1
	walkStatement(stmt, func(e Expr) {
		if pr, ok := e.(*Param); ok && pr.Index > max {
			max = pr.Index
		}
	})
	return max + 1
}

// walkStatement visits every expression in the statement tree.
func walkStatement(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *Insert:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *Select:
		for _, se := range s.Exprs {
			walkExpr(se.Expr, fn)
		}
		for _, j := range s.Joins {
			walkExpr(j.On, fn)
		}
		walkExpr(s.Where, fn)
		for _, g := range s.GroupBy {
			walkExpr(g, fn)
		}
		walkExpr(s.Having, fn)
		for _, o := range s.OrderBy {
			walkExpr(o.Expr, fn)
		}
		walkExpr(s.Limit, fn)
		walkExpr(s.Offset, fn)
	case *Update:
		for _, a := range s.Sets {
			walkExpr(a.Expr, fn)
		}
		walkExpr(s.Where, fn)
	case *Delete:
		walkExpr(s.Where, fn)
	case *CreateTable:
		for _, c := range s.Columns {
			walkExpr(c.Default, fn)
		}
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Unary:
		walkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *InList:
		walkExpr(x.X, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
	case *Between:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *IsNull:
		walkExpr(x.X, fn)
	case *Like:
		walkExpr(x.X, fn)
		walkExpr(x.Pattern, fn)
	case *Case:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	}
}

type parser struct {
	src      string
	toks     []token
	pos      int
	paramIdx int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d in %q)", fmt.Sprintf(format, args...), p.peek().pos, truncate(p.src, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// at reports whether the current token matches kind (and text, if non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// acceptKw consumes a keyword.
func (p *parser) acceptKw(kw string) bool { return p.accept(tokKeyword, kw) }

// expect consumes a token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errorf("expected %q, found %q", text, p.peek().text)
}

func (p *parser) expectKw(kw string) error {
	_, err := p.expect(tokKeyword, kw)
	return err
}

// ident consumes an identifier (keywords usable as identifiers are not
// supported; benchmarks quote such names).
func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errorf("expected identifier, found %q", p.peek().text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tokKeyword, "TRUNCATE"):
		p.next()
		p.acceptKw("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &TruncateTable{Name: name}, nil
	case p.acceptKw("BEGIN"):
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &Begin{}, nil
	case p.acceptKw("COMMIT"):
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &Commit{}, nil
	case p.acceptKw("ROLLBACK"):
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &Rollback{}, nil
	default:
		return nil, p.errorf("unsupported statement starting with %q", p.peek().text)
	}
}

// ------------------------------------------------------------------- CREATE

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, p.errorf("CREATE UNIQUE TABLE is not valid")
		}
		return p.parseCreateTable()
	case p.acceptKw("INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	ct := &CreateTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenNameList()
			if err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		case p.acceptKw("UNIQUE"):
			cols, err := p.parseParenNameList()
			if err != nil {
				return nil, err
			}
			ct.Uniques = append(ct.Uniques, cols)
		case p.acceptKw("FOREIGN"):
			// Parsed and ignored: referential actions are not enforced.
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if _, err := p.parseParenNameList(); err != nil {
				return nil, err
			}
			if err := p.expectKw("REFERENCES"); err != nil {
				return nil, err
			}
			if _, err := p.ident(); err != nil {
				return nil, err
			}
			if p.at(tokOp, "(") {
				if _, err := p.parseParenNameList(); err != nil {
					return nil, err
				}
			}
			p.skipForeignKeyActions()
		case p.acceptKw("CONSTRAINT"):
			if _, err := p.ident(); err != nil {
				return nil, err
			}
			continue // re-enter the loop; the constraint body follows
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			if containsFold(colNames(ct.Columns), col.Name) {
				return nil, p.errorf("duplicate column %q", col.Name)
			}
			ct.Columns = append(ct.Columns, col.ColumnDef)
			if col.inlinePK {
				ct.PrimaryKey = append(ct.PrimaryKey, col.Name)
			}
		}
		if p.accept(tokOp, ",") {
			continue
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		break
	}
	return ct, nil
}

func colNames(cols []ColumnDef) []string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names
}

func containsFold(names []string, want string) bool {
	for _, n := range names {
		if strings.EqualFold(n, want) {
			return true
		}
	}
	return false
}

func (p *parser) skipForeignKeyActions() {
	for p.acceptKw("ON") {
		p.acceptKw("DELETE")
		p.acceptKw("UPDATE")
		if !p.acceptKw("CASCADE") {
			p.acceptKw("SET")
			p.acceptKw("NULL")
			p.acceptKw("NOT") // NO ACTION tokens come through as idents; best-effort
		}
	}
}

// inlinePK is carried through parseColumnDef via a shadow field.
type columnDefParse struct {
	ColumnDef
	inlinePK bool
}

func (p *parser) parseColumnDef() (*columnDefParse, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typeName, kind, size, err := p.parseType()
	if err != nil {
		return nil, err
	}
	col := &columnDefParse{ColumnDef: ColumnDef{Name: name, TypeName: typeName, Kind: kind, Size: size}}
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		case p.acceptKw("NULL"):
			// explicit NULL is the default
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			col.inlinePK = true
			col.NotNull = true
		case p.acceptKw("UNIQUE"):
			// treated as informational on single columns
		case p.acceptKw("DEFAULT"):
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			col.Default = e
		case p.acceptKw("AUTOINCREMENT"), p.acceptKw("AUTO_INCREMENT"), p.acceptKw("IDENTITY"):
			col.AutoInc = true
		case p.acceptKw("REFERENCES"):
			if _, err := p.ident(); err != nil {
				return nil, err
			}
			if p.at(tokOp, "(") {
				if _, err := p.parseParenNameList(); err != nil {
					return nil, err
				}
			}
			p.skipForeignKeyActions()
		default:
			return col, nil
		}
	}
}

// parseType recognizes the SQL type names used across the benchmark DDL and
// maps each to a runtime kind.
func (p *parser) parseType() (string, sqlval.Kind, int, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokKeyword {
		return "", 0, 0, p.errorf("expected type name, found %q", t.text)
	}
	p.next()
	name := strings.ToUpper(t.text)
	// Multi-word types.
	switch name {
	case "DOUBLE":
		if p.at(tokIdent, "") && strings.EqualFold(p.peek().text, "precision") {
			p.next()
			name = "DOUBLE PRECISION"
		}
	case "CHARACTER":
		if p.at(tokIdent, "") && strings.EqualFold(p.peek().text, "varying") {
			p.next()
			name = "VARCHAR"
		}
	}
	size := 0
	if p.accept(tokOp, "(") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return "", 0, 0, err
		}
		size, _ = strconv.Atoi(n.text)
		if p.accept(tokOp, ",") { // DECIMAL(p,s) scale: parsed, unused
			if _, err := p.expect(tokNumber, ""); err != nil {
				return "", 0, 0, err
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return "", 0, 0, err
		}
	}
	kind, err := TypeKind(name)
	if err != nil {
		return "", 0, 0, p.errorf("%v", err)
	}
	return name, kind, size, nil
}

// TypeKind maps an upper-cased SQL type name to its runtime kind.
func TypeKind(name string) (sqlval.Kind, error) {
	switch name {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "SERIAL", "BIGSERIAL":
		return sqlval.KindInt, nil
	case "FLOAT", "DOUBLE", "DOUBLE PRECISION", "REAL", "DECIMAL", "NUMERIC", "NUMBER":
		return sqlval.KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "CLOB", "STRING", "LONGTEXT", "MEDIUMTEXT", "TINYTEXT", "VARBINARY", "BLOB":
		return sqlval.KindString, nil
	case "BOOLEAN", "BOOL", "BIT":
		return sqlval.KindBool, nil
	case "TIMESTAMP", "DATETIME", "DATE", "TIME":
		return sqlval.KindTime, nil
	default:
		return 0, fmt.Errorf("unsupported SQL type %q", name)
	}
}

func (p *parser) parseParenNameList() ([]string, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var names []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		// Tolerate per-column ASC/DESC in index definitions.
		p.acceptKw("ASC")
		p.acceptKw("DESC")
		if p.accept(tokOp, ",") {
			continue
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return names, nil
	}
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	ci := &CreateIndex{Unique: unique}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ci.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci.Name = name
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci.Table = table
	cols, err := p.parseParenNameList()
	if err != nil {
		return nil, err
	}
	ci.Columns = cols
	return ci, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if !p.acceptKw("TABLE") {
		return nil, p.errorf("only DROP TABLE is supported")
	}
	dt := &DropTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	p.acceptKw("CASCADE")
	return dt, nil
}

// --------------------------------------------------------------------- DML

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.at(tokOp, "(") {
		cols, err := p.parseParenNameList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokOp, ",") {
				continue
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			break
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	if p.at(tokIdent, "") { // optional alias
		up.Alias, _ = p.ident()
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		// Tolerate alias-qualified assignment targets (t.col = ...).
		if p.accept(tokOp, ".") {
			col, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, Assignment{Column: col, Expr: e})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.at(tokIdent, "") {
		del.Alias, _ = p.ident()
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// ------------------------------------------------------------------- SELECT

func (p *parser) parseSelect() (*Select, error) {
	p.next() // SELECT
	sel := &Select{}
	if p.acceptKw("DISTINCT") {
		sel.Distinct = true
	}
	p.acceptKw("ALL")
	// Projections.
	for {
		se, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		sel.Exprs = append(sel.Exprs, se)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		// Explicit joins.
		for {
			left := false
			switch {
			case p.acceptKw("INNER"):
			case p.acceptKw("LEFT"):
				p.acceptKw("OUTER")
				left = true
			case p.acceptKw("CROSS"):
			case p.at(tokKeyword, "JOIN"):
			default:
				goto joinsDone
			}
			if !p.acceptKw("JOIN") {
				return nil, p.errorf("expected JOIN")
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			j := Join{Left: left, Table: tr}
			if p.acceptKw("ON") {
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				j.On = on
			}
			sel.Joins = append(sel.Joins, j)
		}
	}
joinsDone:
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.acceptKw("OFFSET") {
			o, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			sel.Offset = o
		}
	} else if p.acceptKw("OFFSET") {
		// SQL standard: OFFSET n ROWS FETCH FIRST m ROWS ONLY
		o, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		sel.Offset = o
		p.acceptKw("ROWS")
		p.acceptKw("ROW")
	}
	if p.acceptKw("FETCH") {
		if !p.acceptKw("FIRST") && !p.acceptKw("NEXT") {
			return nil, p.errorf("expected FIRST or NEXT after FETCH")
		}
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		p.acceptKw("ROWS")
		p.acceptKw("ROW")
		if err := p.expectKw("ONLY"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("FOR") {
		if err := p.expectKw("UPDATE"); err != nil {
			return nil, err
		}
		sel.ForUpdate = true
	}
	return sel, nil
}

func (p *parser) parseSelectExpr() (SelectExpr, error) {
	if p.accept(tokOp, "*") {
		return SelectExpr{Star: true}, nil
	}
	// t.* form: identifier '.' '*'
	if p.at(tokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokOp && p.toks[p.pos+2].text == "*" {
		tbl := p.next().text
		p.next()
		p.next()
		return SelectExpr{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectExpr{}, err
	}
	se := SelectExpr{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectExpr{}, err
		}
		se.Alias = a
	} else if p.at(tokIdent, "") {
		se.Alias, _ = p.ident()
	}
	return se, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.at(tokIdent, "") {
		tr.Alias, _ = p.ident()
	}
	return tr, nil
}

// -------------------------------------------------------------- expressions

// parseExpr parses with standard SQL precedence:
// OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < + - || < * / % < unary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "=") || p.at(tokOp, "<>") || p.at(tokOp, "!=") ||
			p.at(tokOp, "<") || p.at(tokOp, "<=") || p.at(tokOp, ">") || p.at(tokOp, ">="):
			op := p.next().text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.at(tokKeyword, "IS"):
			p.next()
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &IsNull{X: l, Not: not}
		case p.at(tokKeyword, "IN"), p.at(tokKeyword, "BETWEEN"), p.at(tokKeyword, "LIKE"),
			p.at(tokKeyword, "NOT"):
			not := p.acceptKw("NOT")
			switch {
			case p.acceptKw("IN"):
				if _, err := p.expect(tokOp, "("); err != nil {
					return nil, err
				}
				var list []Expr
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					list = append(list, e)
					if p.accept(tokOp, ",") {
						continue
					}
					if _, err := p.expect(tokOp, ")"); err != nil {
						return nil, err
					}
					break
				}
				l = &InList{X: l, List: list, Not: not}
			case p.acceptKw("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Between{X: l, Lo: lo, Hi: hi, Not: not}
			case p.acceptKw("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Like{X: l, Pattern: pat, Not: not}
			default:
				return nil, p.errorf("expected IN, BETWEEN, or LIKE after NOT")
			}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") || p.at(tokOp, "||") {
		op := p.next().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals so that DEFAULT -1 and key bounds stay Literal.
		if lit, ok := x.(*Literal); ok {
			switch lit.Val.Kind() {
			case sqlval.KindInt:
				return &Literal{Val: sqlval.NewInt(-lit.Val.Int())}, nil
			case sqlval.KindFloat:
				return &Literal{Val: sqlval.NewFloat(-lit.Val.Float())}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.accept(tokOp, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: sqlval.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return &Literal{Val: sqlval.NewInt(n)}, nil
	case t.kind == tokString:
		p.next()
		return &Literal{Val: sqlval.NewString(t.text)}, nil
	case t.kind == tokParam:
		p.next()
		e := &Param{Index: p.paramIdx}
		p.paramIdx++
		return e, nil
	case p.acceptKw("NULL"):
		return &Literal{Val: sqlval.Null()}, nil
	case p.acceptKw("TRUE"):
		return &Literal{Val: sqlval.NewBool(true)}, nil
	case p.acceptKw("FALSE"):
		return &Literal{Val: sqlval.NewBool(false)}, nil
	case p.acceptKw("CASE"):
		return p.parseCase()
	case p.accept(tokOp, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		// Function call?
		if p.at(tokOp, "(") {
			return p.parseFuncCall(t.text)
		}
		// Qualified column?
		if p.accept(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", t.text)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // (
	fc := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept(tokOp, "*") {
		fc.Star = true
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(tokOp, ")") {
		return fc, nil
	}
	if p.acceptKw("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if p.accept(tokOp, ",") {
			continue
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
}

func (p *parser) parseCase() (Expr, error) {
	c := &Case{}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: val})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
