package parser

import (
	"benchpress/internal/sqlval"
)

// Statement is implemented by every parsed SQL statement.
type Statement interface{ stmt() }

// Expr is implemented by every expression node.
type Expr interface{ expr() }

// ---------------------------------------------------------------- statements

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // column names; may come from inline or table constraint
	Uniques     [][]string
}

// ColumnDef describes one column of a CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string // raw SQL type name as written (upper-cased)
	Kind     sqlval.Kind
	Size     int // VARCHAR(n)/CHAR(n) length; 0 = unbounded
	NotNull  bool
	Default  Expr // nil when absent
	AutoInc  bool
}

// CreateIndex is a CREATE [UNIQUE] INDEX statement.
type CreateIndex struct {
	Name        string
	Table       string
	Columns     []string
	Unique      bool
	IfNotExists bool
}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Name     string
	IfExists bool
}

// TruncateTable removes all rows of a table.
type TruncateTable struct {
	Name string
}

// Insert is an INSERT statement with one or more VALUES rows.
type Insert struct {
	Table   string
	Columns []string // empty = all columns in schema order
	Rows    [][]Expr
}

// Select is a SELECT statement (single query block; no set operations).
type Select struct {
	Distinct  bool
	Exprs     []SelectExpr
	From      []TableRef
	Joins     []Join
	Where     Expr
	GroupBy   []Expr
	Having    Expr
	OrderBy   []OrderItem
	Limit     Expr // nil = no limit
	Offset    Expr
	ForUpdate bool
}

// SelectExpr is one projection of a SELECT list.
type SelectExpr struct {
	Expr  Expr
	Alias string
	Star  bool   // SELECT * or t.*
	Table string // qualifier of a t.* star
}

// TableRef names a table in a FROM clause.
type TableRef struct {
	Table string
	Alias string
}

// Join is an explicit JOIN clause attached after the first FROM table.
type Join struct {
	Left  bool // LEFT OUTER JOIN; false = INNER
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Alias string
	Sets  []Assignment
	Where Expr
}

// Assignment is one SET column = expr of an UPDATE.
type Assignment struct {
	Column string
	Expr   Expr
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Alias string
	Where Expr
}

// Begin starts a transaction.
type Begin struct{}

// Commit commits the current transaction.
type Commit struct{}

// Rollback aborts the current transaction.
type Rollback struct{}

func (*CreateTable) stmt()   {}
func (*CreateIndex) stmt()   {}
func (*DropTable) stmt()     {}
func (*TruncateTable) stmt() {}
func (*Insert) stmt()        {}
func (*Select) stmt()        {}
func (*Update) stmt()        {}
func (*Delete) stmt()        {}
func (*Begin) stmt()         {}
func (*Commit) stmt()        {}
func (*Rollback) stmt()      {}

// --------------------------------------------------------------- expressions

// ColumnRef references a (possibly qualified) column.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Val sqlval.Value
}

// Param is a positional ? placeholder. Index is assigned left to right
// starting at 0.
type Param struct {
	Index int
}

// Binary is a binary operation. Op is one of the lexer's operator spellings
// (comparison operators normalized: != becomes <>) or the keywords AND / OR.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// FuncCall is a function or aggregate invocation.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// InList is x [NOT] IN (a, b, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X      Expr
	Lo, Hi Expr
	Not    bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Like is x [NOT] LIKE pattern.
type Like struct {
	X       Expr
	Pattern Expr
	Not     bool
}

// Case is CASE [WHEN cond THEN val]... [ELSE val] END (searched form).
type Case struct {
	Whens []When
	Else  Expr
}

// When is one WHEN/THEN arm of a CASE.
type When struct {
	Cond Expr
	Then Expr
}

func (*ColumnRef) expr() {}
func (*Literal) expr()   {}
func (*Param) expr()     {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*FuncCall) expr()  {}
func (*InList) expr()    {}
func (*Between) expr()   {}
func (*IsNull) expr()    {}
func (*Like) expr()      {}
func (*Case) expr()      {}
