package parser

import (
	"strings"
	"testing"

	"benchpress/internal/sqlval"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `
		CREATE TABLE warehouse (
			w_id INT NOT NULL,
			w_name VARCHAR(10),
			w_tax DECIMAL(4,4) DEFAULT 0,
			w_ytd DOUBLE PRECISION,
			w_open BOOLEAN DEFAULT TRUE,
			w_since TIMESTAMP,
			PRIMARY KEY (w_id)
		)`)
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "warehouse" || len(ct.Columns) != 6 {
		t.Fatalf("name=%q cols=%d", ct.Name, len(ct.Columns))
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "w_id" {
		t.Fatalf("pk=%v", ct.PrimaryKey)
	}
	if !ct.Columns[0].NotNull {
		t.Error("w_id should be NOT NULL")
	}
	if ct.Columns[1].Kind != sqlval.KindString || ct.Columns[1].Size != 10 {
		t.Errorf("w_name kind=%v size=%d", ct.Columns[1].Kind, ct.Columns[1].Size)
	}
	if ct.Columns[2].Kind != sqlval.KindFloat || ct.Columns[2].Default == nil {
		t.Error("w_tax should be float with default")
	}
	if ct.Columns[3].TypeName != "DOUBLE PRECISION" {
		t.Errorf("w_ytd type = %q", ct.Columns[3].TypeName)
	}
	if ct.Columns[5].Kind != sqlval.KindTime {
		t.Error("w_since should be timestamp")
	}
}

func TestParseCreateTableInlinePKAndFK(t *testing.T) {
	stmt := mustParse(t, `
		CREATE TABLE IF NOT EXISTS district (
			d_id INT PRIMARY KEY AUTO_INCREMENT,
			d_w_id INT NOT NULL REFERENCES warehouse (w_id),
			d_name VARCHAR(10),
			FOREIGN KEY (d_w_id) REFERENCES warehouse (w_id),
			UNIQUE (d_name)
		)`)
	ct := stmt.(*CreateTable)
	if !ct.IfNotExists {
		t.Error("IF NOT EXISTS not recorded")
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "d_id" {
		t.Fatalf("pk=%v", ct.PrimaryKey)
	}
	if !ct.Columns[0].AutoInc {
		t.Error("AUTO_INCREMENT not recorded")
	}
	if len(ct.Uniques) != 1 {
		t.Errorf("uniques=%v", ct.Uniques)
	}
}

func TestParseDuplicateColumn(t *testing.T) {
	if _, err := Parse("CREATE TABLE t (a INT, A INT)"); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt := mustParse(t, "CREATE UNIQUE INDEX idx_cust ON customer (c_w_id, c_d_id, c_last ASC)")
	ci := stmt.(*CreateIndex)
	if !ci.Unique || ci.Table != "customer" || len(ci.Columns) != 3 {
		t.Fatalf("%+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b, c) VALUES (?, 'x', 1.5), (2, ?, NULL)")
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	if ParamCount(stmt) != 2 {
		t.Fatalf("ParamCount = %d", ParamCount(stmt))
	}
	if p, ok := ins.Rows[0][0].(*Param); !ok || p.Index != 0 {
		t.Error("first param index")
	}
	if p, ok := ins.Rows[1][1].(*Param); !ok || p.Index != 1 {
		t.Error("second param index")
	}
}

func TestParseSelectBasic(t *testing.T) {
	stmt := mustParse(t, `SELECT c_first, c_last AS surname, c_balance
		FROM customer
		WHERE c_w_id = ? AND c_d_id = ? AND c_id = ? FOR UPDATE`)
	sel := stmt.(*Select)
	if len(sel.Exprs) != 3 || sel.Exprs[1].Alias != "surname" {
		t.Fatalf("%+v", sel.Exprs)
	}
	if !sel.ForUpdate {
		t.Error("FOR UPDATE not recorded")
	}
	if ParamCount(stmt) != 3 {
		t.Errorf("ParamCount = %d", ParamCount(stmt))
	}
}

func TestParseSelectJoinGroupOrder(t *testing.T) {
	stmt := mustParse(t, `
		SELECT ol_number, SUM(ol_quantity) AS qty, AVG(ol_amount)
		FROM order_line
		JOIN orders ON ol_o_id = o_id
		WHERE ol_delivery_d > ?
		GROUP BY ol_number
		HAVING SUM(ol_quantity) > 5
		ORDER BY qty DESC, ol_number
		LIMIT 10 OFFSET 2`)
	sel := stmt.(*Select)
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Table != "orders" {
		t.Fatalf("joins: %+v", sel.Joins)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order: %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset")
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t").(*Select)
	if len(sel.Exprs) != 1 || !sel.Exprs[0].Star {
		t.Fatal("star not recorded")
	}
	sel = mustParse(t, "SELECT a.*, b.x FROM t1 a, t2 b").(*Select)
	if !sel.Exprs[0].Star || sel.Exprs[0].Table != "a" {
		t.Fatal("qualified star not recorded")
	}
	if len(sel.From) != 2 || sel.From[1].Alias != "b" {
		t.Fatalf("from: %+v", sel.From)
	}
}

func TestParseSelectFetchFirst(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t ORDER BY a FETCH FIRST 5 ROWS ONLY").(*Select)
	if sel.Limit == nil {
		t.Fatal("FETCH FIRST not mapped to limit")
	}
	if lit := sel.Limit.(*Literal); lit.Val.Int() != 5 {
		t.Fatalf("limit = %v", lit.Val)
	}
}

func TestParseUpdate(t *testing.T) {
	stmt := mustParse(t, "UPDATE stock SET s_quantity = s_quantity - ?, s_ytd = s_ytd + ? WHERE s_i_id = ? AND s_w_id = ?")
	up := stmt.(*Update)
	if up.Table != "stock" || len(up.Sets) != 2 {
		t.Fatalf("%+v", up)
	}
	if ParamCount(stmt) != 4 {
		t.Errorf("ParamCount = %d", ParamCount(stmt))
	}
	bin, ok := up.Sets[0].Expr.(*Binary)
	if !ok || bin.Op != "-" {
		t.Errorf("set expr: %+v", up.Sets[0].Expr)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM new_order WHERE no_o_id = ? AND no_d_id = ?").(*Delete)
	if del.Table != "new_order" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
	del = mustParse(t, "DELETE FROM t").(*Delete)
	if del.Where != nil {
		t.Error("whereless delete")
	}
}

func TestParseExpressions(t *testing.T) {
	sel := mustParse(t, `SELECT 1 FROM t WHERE
		a IN (1, 2, 3) AND b NOT IN (?) AND
		c BETWEEN 1 AND 10 AND d NOT BETWEEN ? AND ? AND
		e LIKE 'abc%' AND f IS NULL AND g IS NOT NULL AND
		NOT (h = 1 OR i <> 2) AND j >= -5`).(*Select)
	if sel.Where == nil {
		t.Fatal("where missing")
	}
	// Spot-check a couple of node shapes by walking.
	var inCount, betweenCount, likeCount, isNullCount int
	walkExpr(sel.Where, func(e Expr) {
		switch e.(type) {
		case *InList:
			inCount++
		case *Between:
			betweenCount++
		case *Like:
			likeCount++
		case *IsNull:
			isNullCount++
		}
	})
	if inCount != 2 || betweenCount != 2 || likeCount != 1 || isNullCount != 2 {
		t.Fatalf("counts: in=%d between=%d like=%d isnull=%d", inCount, betweenCount, likeCount, isNullCount)
	}
}

func TestParseCase(t *testing.T) {
	sel := mustParse(t, `SELECT SUM(CASE WHEN o_carrier_id = 1 THEN 1 ELSE 0 END) FROM orders`).(*Select)
	fc := sel.Exprs[0].Expr.(*FuncCall)
	if fc.Name != "SUM" {
		t.Fatal("sum")
	}
	c := fc.Args[0].(*Case)
	if len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("%+v", c)
	}
}

func TestParseNegativeLiteralFolding(t *testing.T) {
	sel := mustParse(t, "SELECT -3, -2.5 FROM t").(*Select)
	if lit := sel.Exprs[0].Expr.(*Literal); lit.Val.Int() != -3 {
		t.Fatal("int fold")
	}
	if lit := sel.Exprs[1].Expr.(*Literal); lit.Val.Float() != -2.5 {
		t.Fatal("float fold")
	}
}

func TestParseTransactionControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT WORK").(*Commit); !ok {
		t.Error("COMMIT WORK")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParseDropTruncate(t *testing.T) {
	dt := mustParse(t, "DROP TABLE IF EXISTS usertable CASCADE").(*DropTable)
	if !dt.IfExists || dt.Name != "usertable" {
		t.Fatalf("%+v", dt)
	}
	tr := mustParse(t, "TRUNCATE TABLE votes").(*TruncateTable)
	if tr.Name != "votes" {
		t.Fatalf("%+v", tr)
	}
}

func TestParseComments(t *testing.T) {
	stmt := mustParse(t, `-- leading comment
		SELECT a /* inline */ FROM t -- trailing`)
	if _, ok := stmt.(*Select); !ok {
		t.Fatal("comments broke parse")
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	sel := mustParse(t, "SELECT \"select\", `from` FROM \"order\"").(*Select)
	if sel.From[0].Table != "order" {
		t.Fatalf("%+v", sel.From)
	}
	if sel.Exprs[0].Expr.(*ColumnRef).Name != "select" {
		t.Fatal("quoted column")
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustParse(t, "SELECT 'it''s' FROM t").(*Select)
	if lit := sel.Exprs[0].Expr.(*Literal); lit.Val.Str() != "it's" {
		t.Fatalf("escape: %q", lit.Val.Str())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT a FROM t WHERE",
		"INSERT INTO t VALUES",
		"CREATE TABLE t (a FOO)",
		"SELECT 'unterminated FROM t",
		"UPDATE t SET",
		"CREATE TABLE t (a INT,)",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a FROM t WHERE a = @x",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestParamOrdering(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE b = ? AND c IN (?, ?) AND d BETWEEN ? AND ?")
	if n := ParamCount(stmt); n != 5 {
		t.Fatalf("ParamCount = %d, want 5", n)
	}
	var idxs []int
	walkStatement(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok {
			idxs = append(idxs, p.Index)
		}
	})
	for i, idx := range idxs {
		if i != idx {
			t.Fatalf("param order %v", idxs)
		}
	}
}

func TestTypeKindCoverage(t *testing.T) {
	for _, name := range []string{"INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT",
		"FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC", "VARCHAR", "CHAR", "TEXT",
		"CLOB", "BOOLEAN", "TIMESTAMP", "DATETIME", "DATE"} {
		if _, err := TypeKind(name); err != nil {
			t.Errorf("TypeKind(%s): %v", name, err)
		}
	}
	if _, err := TypeKind("GEOMETRY"); err == nil {
		t.Error("TypeKind(GEOMETRY) should fail")
	}
}

// The full TPC-C DDL should parse end to end.
func TestParseTPCCStyleDDL(t *testing.T) {
	ddls := strings.Split(`
CREATE TABLE customer (c_w_id INT NOT NULL, c_d_id INT NOT NULL, c_id INT NOT NULL, c_discount DECIMAL(4,4), c_credit CHAR(2), c_last VARCHAR(16), c_first VARCHAR(16), c_balance DECIMAL(12,2), c_ytd_payment FLOAT, c_payment_cnt INT, c_delivery_cnt INT, c_street_1 VARCHAR(20), c_city VARCHAR(20), c_state CHAR(2), c_zip CHAR(9), c_phone CHAR(16), c_since TIMESTAMP, c_middle CHAR(2), c_data VARCHAR(500), PRIMARY KEY (c_w_id, c_d_id, c_id));
CREATE INDEX idx_customer_name ON customer (c_w_id, c_d_id, c_last, c_first);
CREATE TABLE item (i_id INT NOT NULL, i_name VARCHAR(24), i_price DECIMAL(5,2), i_data VARCHAR(50), i_im_id INT, PRIMARY KEY (i_id))`, ";")
	for _, ddl := range ddls {
		ddl = strings.TrimSpace(ddl)
		if ddl == "" {
			continue
		}
		if _, err := Parse(ddl); err != nil {
			t.Errorf("%v", err)
		}
	}
}
