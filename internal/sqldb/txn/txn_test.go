package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqlval"
)

// newAccountsTable builds a two-column (id INT PK, balance INT) table.
func newAccountsTable(t *testing.T) *storage.Table {
	t.Helper()
	cat := catalog.New()
	meta, err := cat.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: sqlval.KindInt, NotNull: true},
		{Name: "balance", Kind: sqlval.KindInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewTable(meta)
}

func row(id, balance int64) []sqlval.Value {
	return []sqlval.Value{sqlval.NewInt(id), sqlval.NewInt(balance)}
}

func seed(t *testing.T, m *Manager, tbl *storage.Table, n int) {
	t.Helper()
	tx := m.Begin(false)
	for i := 0; i < n; i++ {
		if err := tx.Insert(tbl, row(int64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func readBalance(t *testing.T, m *Manager, tbl *storage.Table, id int64) (int64, bool) {
	t.Helper()
	tx := m.Begin(true)
	defer tx.Commit()
	rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(id)})
	if !ok {
		return 0, false
	}
	data, err := tx.Read(tbl, rid, false)
	if err != nil {
		t.Fatal(err)
	}
	if data == nil {
		return 0, false
	}
	return data[1].Int(), true
}

func allModes() []Mode { return []Mode{Serial, Locking, MVCC} }

func TestCommitMakesVisible(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 3)
			if bal, ok := readBalance(t, m, tbl, 1); !ok || bal != 100 {
				t.Fatalf("balance=%d ok=%v", bal, ok)
			}
		})
	}
}

func TestAbortRollsBackInsert(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			tx := m.Begin(false)
			if err := tx.Insert(tbl, row(1, 50)); err != nil {
				t.Fatal(err)
			}
			tx.Abort()
			if _, ok := readBalance(t, m, tbl, 1); ok {
				t.Fatal("aborted insert is visible")
			}
			if tbl.RowCount() != 0 {
				t.Fatalf("row slot not reclaimed: %d", tbl.RowCount())
			}
		})
	}
}

func TestAbortRollsBackUpdate(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 1)
			rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
			tx := m.Begin(false)
			if _, err := tx.Read(tbl, rid, true); err != nil {
				t.Fatal(err)
			}
			if err := tx.Update(tbl, rid, row(0, 999)); err != nil {
				t.Fatal(err)
			}
			tx.Abort()
			if bal, ok := readBalance(t, m, tbl, 0); !ok || bal != 100 {
				t.Fatalf("after abort balance=%d ok=%v, want 100", bal, ok)
			}
		})
	}
}

func TestAbortRollsBackDelete(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 1)
			rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
			tx := m.Begin(false)
			if err := tx.Delete(tbl, rid); err != nil {
				t.Fatal(err)
			}
			tx.Abort()
			if _, ok := readBalance(t, m, tbl, 0); !ok {
				t.Fatal("aborted delete removed the row")
			}
		})
	}
}

func TestDeleteCommit(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 2)
			rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
			tx := m.Begin(false)
			if err := tx.Delete(tbl, rid); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, ok := readBalance(t, m, tbl, 0); ok {
				t.Fatal("committed delete still visible")
			}
			if _, ok := readBalance(t, m, tbl, 1); !ok {
				t.Fatal("unrelated row vanished")
			}
		})
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 1)
			tx := m.Begin(false)
			err := tx.Insert(tbl, row(0, 1))
			var dup *storage.ErrDuplicateKey
			if !errors.As(err, &dup) {
				t.Fatalf("err = %v, want duplicate key", err)
			}
			tx.Abort()
		})
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 1)
			rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
			tx := m.Begin(false)
			if err := tx.Delete(tbl, rid); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx = m.Begin(false)
			if err := tx.Insert(tbl, row(0, 777)); err != nil {
				t.Fatalf("re-insert after delete: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if bal, ok := readBalance(t, m, tbl, 0); !ok || bal != 777 {
				t.Fatalf("balance=%d ok=%v", bal, ok)
			}
		})
	}
}

func TestReadOwnWrites(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			seed(t, m, tbl, 1)
			rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
			tx := m.Begin(false)
			if err := tx.Update(tbl, rid, row(0, 42)); err != nil {
				t.Fatal(err)
			}
			data, err := tx.Read(tbl, rid, false)
			if err != nil || data == nil || data[1].Int() != 42 {
				t.Fatalf("own write invisible: %v %v", data, err)
			}
			tx.Abort()
		})
	}
}

func TestMVCCSnapshotIsolation(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})

	reader := m.Begin(true) // snapshot taken now
	writer := m.Begin(false)
	if err := writer.Update(tbl, rid, row(0, 500)); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// The reader's snapshot predates the commit: it must see 100.
	data, err := reader.Read(tbl, rid, false)
	if err != nil || data == nil {
		t.Fatalf("read: %v %v", data, err)
	}
	if data[1].Int() != 100 {
		t.Fatalf("snapshot read = %d, want 100", data[1].Int())
	}
	reader.Commit()
	if bal, _ := readBalance(t, m, tbl, 0); bal != 500 {
		t.Fatalf("new snapshot = %d, want 500", bal)
	}
}

func TestMVCCFirstUpdaterWins(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})

	t1 := m.Begin(false)
	t2 := m.Begin(false)
	if err := t1.Update(tbl, rid, row(0, 111)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tbl, rid, row(0, 222)); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second writer err = %v, want ErrWriteConflict", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if bal, _ := readBalance(t, m, tbl, 0); bal != 111 {
		t.Fatalf("balance = %d", bal)
	}
}

func TestMVCCConflictAfterSnapshot(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})

	t1 := m.Begin(false) // snapshot before t2's commit
	t2 := m.Begin(false)
	if err := t2.Update(tbl, rid, row(0, 222)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Update(tbl, rid, row(0, 111)); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale writer err = %v, want ErrWriteConflict", err)
	}
	t1.Abort()
}

func TestMVCCClaimThenUpdateCommit(t *testing.T) {
	// SELECT FOR UPDATE followed by UPDATE in the same txn must leave
	// exactly one live version after commit.
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
	tx := m.Begin(false)
	if _, err := tx.Read(tbl, rid, true); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, rid, row(0, 321)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if bal, ok := readBalance(t, m, tbl, 0); !ok || bal != 321 {
		t.Fatalf("balance=%d ok=%v", bal, ok)
	}
	// An old version must not have been resurrected: a fresh snapshot sees
	// exactly the new value, and the chain head is committed-live.
	r, _ := tbl.Row(rid)
	head := r.Latest()
	if head.End() != storage.Infinity {
		t.Fatalf("head.End = %x, want Infinity", head.End())
	}
	if head.Data[1].Int() != 321 {
		t.Fatalf("head value = %d", head.Data[1].Int())
	}
}

func TestMVCCClaimOnlyCommitRestoresLiveness(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
	tx := m.Begin(false)
	if _, err := tx.Read(tbl, rid, true); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, _ := tbl.Row(rid)
	if r.Latest().End() != storage.Infinity {
		t.Fatal("claim-only commit left End marked")
	}
	// Row must be writable by others afterwards.
	t2 := m.Begin(false)
	if err := t2.Update(tbl, rid, row(0, 5)); err != nil {
		t.Fatal(err)
	}
	t2.Commit()
}

func TestLockingConflictWaitDie(t *testing.T) {
	m := NewManager(Locking)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})

	older := m.Begin(false) // smaller id
	younger := m.Begin(false)
	if _, err := older.Read(tbl, rid, true); err != nil {
		t.Fatal(err)
	}
	// The younger transaction must die rather than wait.
	if _, err := younger.Read(tbl, rid, true); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("younger err = %v, want ErrDeadlock", err)
	}
	younger.Abort()
	older.Commit()
}

func TestLockingOlderWaits(t *testing.T) {
	m := NewManager(Locking)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})

	older := m.Begin(false)
	younger := m.Begin(false)
	if err := younger.Update(tbl, rid, row(0, 9)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := older.Read(tbl, rid, false) // S lock: must wait for younger
		done <- err
	}()
	// Give the older txn a moment to start waiting, then release.
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("older read after wait: %v", err)
	}
	older.Commit()
}

func TestLockingSharedReaders(t *testing.T) {
	m := NewManager(Locking)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
	t1 := m.Begin(false)
	t2 := m.Begin(false)
	if _, err := t1.Read(tbl, rid, false); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read(tbl, rid, false); err != nil {
		t.Fatalf("shared readers should not conflict: %v", err)
	}
	t1.Commit()
	t2.Commit()
}

// Transfer money between accounts concurrently; total balance is invariant.
func TestConcurrentTransfersInvariant(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)
			const accounts = 10
			const workers = 8
			const transfersPerWorker = 200
			seed(t, m, tbl, accounts)

			var wg sync.WaitGroup
			var retries atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seedv int64) {
					defer wg.Done()
					rng := seedv
					next := func(n int64) int64 {
						rng = rng*6364136223846793005 + 1442695040888963407
						v := (rng >> 33) % n
						if v < 0 {
							v += n
						}
						return v
					}
					for i := 0; i < transfersPerWorker; i++ {
						from := next(accounts)
						to := next(accounts)
						if from == to {
							continue
						}
						for attempt := 0; attempt < 50; attempt++ {
							if transfer(m, tbl, from, to, 1) {
								break
							}
							retries.Add(1)
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()

			total := int64(0)
			tx := m.Begin(true)
			tbl.ScanAll(func(id storage.RowID, r *storage.Row) bool {
				data, err := tx.Read(tbl, id, false)
				if err != nil {
					t.Errorf("read: %v", err)
					return false
				}
				if data != nil {
					total += data[1].Int()
				}
				return true
			})
			tx.Commit()
			if total != accounts*100 {
				t.Fatalf("total balance = %d, want %d (retries=%d)", total, accounts*100, retries.Load())
			}
		})
	}
}

// transfer moves amount between accounts, returning false when the
// transaction had to abort (caller retries).
func transfer(m *Manager, tbl *storage.Table, from, to, amount int64) bool {
	tx := m.Begin(false)
	ok := func() bool {
		// Lock in id order to avoid wait-die livelock storms.
		a, b := from, to
		if b < a {
			a, b = b, a
		}
		for _, id := range []int64{a, b} {
			rid, found := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(id)})
			if !found {
				return false
			}
			data, err := tx.Read(tbl, rid, true)
			if err != nil || data == nil {
				return false
			}
			delta := amount
			if id == from {
				delta = -amount
			}
			if err := tx.Update(tbl, rid, row(id, data[1].Int()+delta)); err != nil {
				return false
			}
		}
		return true
	}()
	if !ok {
		tx.Abort()
		return false
	}
	return tx.Commit() == nil
}

func TestVacuumReclaimsDeletedRows(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 100)
	tx := m.Begin(false)
	for i := int64(0); i < 50; i++ {
		rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(i)})
		if err := tx.Delete(tbl, rid); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	reclaimed := tbl.Vacuum(m.Horizon()+1, m.Clock())
	if reclaimed != 50 {
		t.Fatalf("reclaimed %d, want 50", reclaimed)
	}
	if tbl.RowCount() != 50 {
		t.Fatalf("RowCount = %d, want 50", tbl.RowCount())
	}
	for i := int64(50); i < 100; i++ {
		if bal, ok := readBalance(t, m, tbl, i); !ok || bal != 100 {
			t.Fatalf("row %d lost after vacuum", i)
		}
	}
}

func TestOnCommitHook(t *testing.T) {
	m := NewManager(MVCC)
	var calls, writes atomic.Int64
	m.OnCommit = func(tx *Txn) error {
		calls.Add(1)
		writes.Add(int64(tx.WriteCount()))
		return nil
	}
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 3) // one commit with 3 writes
	ro := m.Begin(true)
	ro.Commit() // read-only commit must not call the hook
	if calls.Load() != 1 || writes.Load() != 3 {
		t.Fatalf("calls=%d writes=%d", calls.Load(), writes.Load())
	}
}

func TestTxnDoneErrors(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	tx := m.Begin(false)
	tx.Commit()
	if err := tx.Insert(tbl, row(1, 1)); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit err = %v", err)
	}
	tx.Abort() // must be a no-op, not a panic
}

func TestIsRetryable(t *testing.T) {
	if !IsRetryable(ErrWriteConflict) || !IsRetryable(ErrDeadlock) {
		t.Error("conflict errors must be retryable")
	}
	if IsRetryable(ErrTxnDone) || IsRetryable(errors.New("other")) {
		t.Error("non-conflict errors must not be retryable")
	}
}

// TestUpdateRespectsUniqueIndex pins the update-path uniqueness contract:
// an update moving a row onto a unique key held by another live row must
// fail (as a retryable conflict) and leave both rows and the index exactly
// as they were — updates previously installed unique entries unchecked,
// which let a racing update/insert pair commit duplicates.
func TestUpdateRespectsUniqueIndex(t *testing.T) {
	for _, mode := range []Mode{Locking, MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			cat, tbl := stressTable(t)
			idx, err := cat.AddIndex("accounts", "u_balance", []string{"balance"}, true)
			if err != nil {
				t.Fatal(err)
			}
			tbl.AddIndex(idx)

			tx := m.Begin(false)
			for i, bal := range []int64{100, 200} {
				if err := tx.Insert(tbl, row(int64(i+1), bal)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			rid2, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(2)})

			// Moving row 2 onto row 1's unique balance must fail retryably.
			tx = m.Begin(false)
			if _, err := tx.Read(tbl, rid2, true); err != nil {
				t.Fatal(err)
			}
			err = tx.Update(tbl, rid2, row(2, 100))
			if err == nil {
				t.Fatal("update onto an occupied unique key succeeded")
			}
			if !IsRetryable(err) {
				t.Fatalf("unique-violation error %v is not retryable", err)
			}
			// The same transaction stays usable: a non-conflicting update
			// must still go through.
			if err := tx.Update(tbl, rid2, row(2, 300)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			check := m.Begin(true)
			data, err := check.Read(tbl, rid2, false)
			if err != nil || data == nil {
				t.Fatalf("row 2 unreadable after failed update: %v", err)
			}
			if got := data[1].Int(); got != 300 {
				t.Fatalf("row 2 balance = %d, want 300", got)
			}
			check.Commit()
		})
	}
}

// TestInsertRollbackRestoresDisplacedPrimaryEntry pins the index/rollback
// contract that Insert displacing a committed-dead row's primary entry and
// then aborting must restore the stolen mapping: until vacuum, snapshots
// older than the delete still resolve the key through that entry.
func TestInsertRollbackRestoresDisplacedPrimaryEntry(t *testing.T) {
	for _, mode := range []Mode{Locking, MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			m := NewManager(mode)
			tbl := newAccountsTable(t)

			tx := m.Begin(false)
			if err := tx.Insert(tbl, row(1, 5)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			origID, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(1)})
			if !ok {
				t.Fatal("inserted key missing from primary index")
			}

			// Pin a snapshot that predates the delete (MVCC only: under
			// Locking a reader would block the writers below).
			var old *Txn
			if mode == MVCC {
				old = m.Begin(true)
			}

			tx = m.Begin(false)
			if err := tx.Delete(tbl, origID); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Reuse the dead row's key (displacing its entry), then abort.
			tx = m.Begin(false)
			if err := tx.Insert(tbl, row(1, 7)); err != nil {
				t.Fatal(err)
			}
			tx.Abort()

			rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(1)})
			if !ok {
				t.Fatal("rolled-back insert dropped the displaced primary entry")
			}
			if rid != origID {
				t.Fatalf("primary entry points at %d, want displaced row %d restored", rid, origID)
			}
			if old != nil {
				data, err := old.Read(tbl, rid, false)
				if err != nil || data == nil {
					t.Fatalf("pre-delete snapshot lost the row: data=%v err=%v", data, err)
				}
				if got := data[1].Int(); got != 5 {
					t.Fatalf("pre-delete snapshot reads balance %d, want 5", got)
				}
				old.Commit()
			}

			// Once nothing can see the dead row, vacuum reclaims both the
			// restored entry and the slot.
			tbl.Vacuum(m.Horizon()+1, m.Clock())
			if _, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(1)}); ok {
				t.Fatal("vacuum left the dead row's primary entry behind")
			}
			if got := tbl.RowCount(); got != 0 {
				t.Fatalf("RowCount after vacuum = %d, want 0", got)
			}
		})
	}
}

func TestHorizonTracksActiveSnapshots(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 1)
	before := m.Horizon()
	old := m.Begin(true)
	// Commit something to advance the clock.
	tx := m.Begin(false)
	rid, _ := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(0)})
	tx.Update(tbl, rid, row(0, 1))
	tx.Commit()
	if h := m.Horizon(); h != old.Snapshot() {
		t.Fatalf("horizon = %d, want pinned at %d", h, old.Snapshot())
	}
	old.Commit()
	if h := m.Horizon(); h <= before {
		t.Fatalf("horizon did not advance after release: %d", h)
	}
}
