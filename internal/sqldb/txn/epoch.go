package txn

import (
	"sync"
	"sync/atomic"
)

// Epoch registration for MVCC transactions. The engine's reclamation epochs
// are commit timestamps: a transaction "enters an epoch" by publishing its
// snapshot timestamp at begin and leaves it at finish, and the global epoch
// low-watermark (Horizon) is the minimum published snapshot. Vacuum retires
// unlinked rows stamped with the clock value at unlink time and frees them
// once the low-watermark passes that stamp, so no transaction that could
// still hold a stale reference is alive when the slot is recycled.
//
// Registration used to live in a sync.Map keyed by transaction id, which put
// two interlocked map operations plus a delete on every MVCC begin/finish.
// The epochTable replaces it with a fixed array of cache-padded slots: enter
// is one CAS on an id-hashed slot (plus a short linear probe), exit is one
// store, and the low-watermark scan is a bounded sweep of plain atomic
// loads. A full table (more concurrent transactions than slots) falls back
// to the old map so correctness never depends on the sizing.
const (
	epochSlots  = 128 // power of two; 8KB of padded slots
	epochMask   = epochSlots - 1
	epochProbes = 8
)

// epochSlot holds one registered snapshot timestamp. Zero means free: commit
// timestamps start at 1, so a live registration is never zero. The pad keeps
// neighboring slots off each other's cache lines, since distinct workers hit
// distinct slots on every transaction.
type epochSlot struct {
	snap atomic.Uint64
	_    [56]byte
}

// epochTable registers the snapshot timestamps of in-flight MVCC
// transactions.
type epochTable struct {
	slots    [epochSlots]epochSlot
	overflow sync.Map // txn id -> snapshot ts, when every probed slot is busy
}

// enter claims a slot for the transaction and publishes snap in it,
// returning the slot index, or -1 when the registration spilled to the
// overflow map.
func (e *epochTable) enter(id, snap uint64) int32 {
	h := (id * 0x9E3779B97F4A7C15) >> 57 // fibonacci hash to the slot space
	for i := uint64(0); i < epochProbes; i++ {
		idx := (h + i) & epochMask
		if e.slots[idx].snap.CompareAndSwap(0, snap) {
			return int32(idx)
		}
	}
	e.overflow.Store(id, snap)
	return -1
}

// update republishes the transaction's snapshot. The slot is already owned,
// so a plain store suffices; Horizon may observe either value, and both are
// safe because enter publishes a conservative (never higher) snapshot first.
func (e *epochTable) update(slot int32, id, snap uint64) {
	if slot >= 0 {
		e.slots[slot].snap.Store(snap)
		return
	}
	e.overflow.Store(id, snap)
}

// exit releases the transaction's registration.
func (e *epochTable) exit(slot int32, id uint64) {
	if slot >= 0 {
		e.slots[slot].snap.Store(0)
		return
	}
	e.overflow.Delete(id)
}

// min returns the smallest registered snapshot, or ceil if none is smaller.
func (e *epochTable) min(ceil uint64) uint64 {
	low := ceil
	for i := range e.slots {
		if s := e.slots[i].snap.Load(); s != 0 && s < low {
			low = s
		}
	}
	e.overflow.Range(func(_, v any) bool {
		if ts := v.(uint64); ts < low {
			low = ts
		}
		return true
	})
	return low
}
