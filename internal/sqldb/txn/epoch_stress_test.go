package txn

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqlval"
)

// bumpClock commits a trivial write so the commit clock advances; epoch
// tests use it to move the low-watermark past a limbo batch's retire stamp.
func bumpClock(t *testing.T, m *Manager, tbl *storage.Table, id int64) {
	t.Helper()
	tx := m.Begin(false)
	rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(id)})
	if !ok {
		t.Fatalf("bump row %d missing", id)
	}
	data, err := tx.Read(tbl, rid, true)
	if err != nil || data == nil {
		t.Fatalf("bump row %d unreadable: %v", id, err)
	}
	if err := tx.Update(tbl, rid, row(id, data[1].Int()+1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochReclamationGatesRecycling pins the deterministic contract of the
// limbo list: vacuum unlinks committed-dead rows immediately, but their
// slots return to the allocator only once the epoch low-watermark strictly
// passes the batch's retire stamp — i.e. after every transaction that was
// active at unlink time has finished.
func TestEpochReclamationGatesRecycling(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	const dead = 16
	seed(t, m, tbl, dead+1) // +1: row `dead` survives as the clock-bump row

	// Delete the first `dead` rows and commit, so they are committed-dead.
	tx := m.Begin(false)
	for id := int64(0); id < dead; id++ {
		rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(id)})
		if !ok {
			t.Fatalf("row %d missing", id)
		}
		if err := tx.Delete(tbl, rid); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pin a snapshot that postdates the deletes, so vacuum may classify
	// them dead while the pin is still registered in the epoch table.
	pin := m.Begin(true)
	bumpClock(t, m, tbl, dead) // ensure clock > pin.snap

	if n := tbl.Vacuum(m.Horizon(), m.Clock()); n != dead {
		t.Fatalf("vacuum retired %d rows, want %d", n, dead)
	}
	if got := tbl.RowCount(); got != 1 {
		t.Fatalf("RowCount after unlink = %d, want 1", got)
	}
	if got := tbl.LimboSlots(); got != dead {
		t.Fatalf("LimboSlots after unlink = %d, want %d", got, dead)
	}

	// While the pin is active the horizon cannot pass the retire stamp, so
	// repeated vacuums must leave the slots in limbo.
	tbl.Vacuum(m.Horizon(), m.Clock())
	if got := tbl.LimboSlots(); got != dead {
		t.Fatalf("LimboSlots with pinned snapshot = %d, want %d", got, dead)
	}

	// Release the pin and advance the clock past the retire stamp: the next
	// vacuum must recycle every limbo slot.
	if err := pin.Commit(); err != nil {
		t.Fatal(err)
	}
	bumpClock(t, m, tbl, dead)
	tbl.Vacuum(m.Horizon(), m.Clock())
	if got := tbl.LimboSlots(); got != 0 {
		t.Fatalf("LimboSlots after release = %d, want 0", got)
	}
}

// Epoch-stress geometry: churn keys live in [0, epochChurnSpan); each
// insert's payload is key*epochTagMul + a globally unique sequence, so any
// slot confusion (a reader resolving a recycled slot to another key's row
// image) shows up as a payload whose key quotient disagrees with the stored
// key.
const (
	epochChurnSpan = 24
	epochTagMul    = 1 << 20
	epochBumpID    = int64(epochChurnSpan) // dedicated clock-bump row
)

// TestEpochReclamationStress races insert/delete churn, snapshot point
// readers, batched sequential scans, an empty-transaction epoch hammer, and
// a hot vacuum loop, all under -race. Readers assert the value-tag
// invariant on every visible row; afterwards the limbo list must drain
// completely once the watermark advances.
func TestEpochReclamationStress(t *testing.T) {
	m := NewManager(MVCC)
	tbl := newAccountsTable(t)
	seed(t, m, tbl, 0)

	// The bump row is the only seeded row; churn rows come and go.
	tx := m.Begin(false)
	if err := tx.Insert(tbl, row(epochBumpID, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	iters := 600
	if testing.Short() {
		iters = 120
	}

	var writers, aux sync.WaitGroup
	var stop atomic.Bool
	var seq atomic.Int64
	start := func(wg *sync.WaitGroup, f func(r *rand.Rand)) {
		wg.Add(1)
		src := rand.Int63()
		go func() {
			defer wg.Done()
			f(rand.New(rand.NewSource(src)))
		}()
	}

	checkTag := func(data []sqlval.Value) {
		if data == nil {
			return
		}
		key, tag := data[0].Int(), data[1].Int()
		if key == epochBumpID {
			return
		}
		if tag/epochTagMul != key {
			t.Errorf("row with key %d carries tag %d (belongs to key %d): recycled slot leaked across epochs",
				key, tag, tag/epochTagMul)
		}
	}

	// Churn: insert a tagged row, commit, then delete it, leaving
	// committed-dead versions for the vacuum. Duplicate-key collisions
	// between workers are expected and ignored.
	for w := 0; w < 3; w++ {
		start(&writers, func(r *rand.Rand) {
			for i := 0; i < iters; i++ {
				key := r.Int63n(epochChurnSpan)
				tag := key*epochTagMul + seq.Add(1)%epochTagMul
				tx := m.Begin(false)
				if err := tx.Insert(tbl, row(key, tag)); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() != nil {
					continue
				}
				tx = m.Begin(false)
				if rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(key)}); ok {
					if tx.Delete(tbl, rid) == nil && tx.Commit() == nil {
						continue
					}
				}
				tx.Abort()
			}
		})
	}

	// Snapshot point readers: resolve each churn key through the primary
	// index and verify the tag of whatever version is visible.
	for w := 0; w < 2; w++ {
		start(&aux, func(r *rand.Rand) {
			for !stop.Load() {
				tx := m.Begin(true)
				for key := int64(0); key < epochChurnSpan; key++ {
					rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(key)})
					if !ok {
						continue
					}
					data, err := tx.Read(tbl, rid, false)
					if err != nil {
						break
					}
					if data != nil && sqlval.Compare(data[0], sqlval.NewInt(key)) != 0 {
						// A stale index entry must be filtered by the key
						// check, never surfaced: this is the read
						// discipline the reclamation scheme preserves.
						if tbl.VerifyPrimary(storage.IndexEntry{Key: []sqlval.Value{sqlval.NewInt(key)}, ID: rid}, data) {
							t.Errorf("primary entry for key %d verified against row with key %v", key, data[0])
						}
						continue
					}
					checkTag(data)
				}
				tx.Commit()
			}
		})
	}

	// Batched sequential scans: the same path the executor's fast read
	// uses, resolving visibility directly against the snapshot view.
	start(&aux, func(r *rand.Rand) {
		var b storage.RowBatch
		for !stop.Load() {
			tx := m.Begin(true)
			view, ok := tx.FastReadView()
			if !ok {
				t.Error("FastReadView unavailable under MVCC")
				tx.Commit()
				return
			}
			for g, n := 0, tbl.Segments(); g < n; g++ {
				for cursor := int64(0); cursor >= 0; {
					cursor = tbl.ScanBatch(g, cursor, &b)
					for i := 0; i < b.N; i++ {
						if v := view.Visible(b.Rows[i]); v != nil {
							checkTag(v.Data)
						}
					}
				}
			}
			tx.Commit()
		}
	})

	// Epoch hammer: rapid empty transactions churn the epoch slot table
	// (including its overflow path) while vacuum computes watermarks.
	start(&aux, func(r *rand.Rand) {
		for !stop.Load() {
			txs := make([]*Txn, 8)
			for i := range txs {
				txs[i] = m.Begin(true)
			}
			for _, tx := range txs {
				tx.Commit()
			}
		}
	})

	// Vacuum racing everything, including the watermark computation.
	start(&aux, func(r *rand.Rand) {
		g := 0
		for !stop.Load() {
			tbl.VacuumSegment(g%tbl.Segments(), m.Horizon(), m.Clock())
			g++
		}
	})

	writers.Wait()
	stop.Store(true)
	aux.Wait()

	// Quiesced drain: after the clock passes the last retire stamp, two
	// vacuum sweeps (unlink, then reap) must leave no limbo slots and no
	// dead churn rows beyond the live set.
	bumpClock(t, m, tbl, epochBumpID)
	tbl.Vacuum(m.Horizon(), m.Clock())
	bumpClock(t, m, tbl, epochBumpID)
	tbl.Vacuum(m.Horizon(), m.Clock())
	if got := tbl.LimboSlots(); got != 0 {
		t.Errorf("LimboSlots after quiesced drain = %d, want 0", got)
	}

	live := 0
	check := m.Begin(true)
	tbl.ScanAll(func(id storage.RowID, r *storage.Row) bool {
		data, err := check.Read(tbl, id, false)
		if err != nil {
			t.Fatal(err)
		}
		if data != nil {
			checkTag(data)
			live++
		}
		return true
	})
	check.Commit()
	if got := tbl.RowCount(); got != live {
		t.Errorf("RowCount = %d but only %d rows visible: dead rows survived the drain", got, live)
	}
}
