// Package txn implements the transaction layer of the embedded engine with
// three pluggable concurrency-control modes:
//
//   - Serial: one global database lock (shared for declared-read-only
//     transactions, exclusive otherwise). The caricature of a coarse-grained
//     engine: correct, simple, and quick to saturate.
//   - Locking: strict two-phase row locking with wait-die deadlock
//     avoidance. Conflicting write-heavy workloads abort and retry, which is
//     exactly the contention behaviour the BenchPress demo exploits when a
//     player flips a workload to read-heavy to "boost throughput due to
//     reduced lock contention".
//   - MVCC: snapshot isolation with first-updater-wins write conflicts, in
//     the Hekaton style over the storage layer's version chains.
//
// All three modes share one commit path: versions written by the transaction
// are stamped with a commit timestamp drawn from a global clock under a
// commit mutex, so snapshot readers always observe fully-stamped commits.
package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqlval"
)

// Mode selects the concurrency-control engine.
type Mode uint8

const (
	// Serial takes a global database lock per transaction.
	Serial Mode = iota
	// Locking uses strict two-phase row locking with wait-die.
	Locking
	// MVCC uses snapshot isolation with first-updater-wins.
	MVCC
)

// String returns the engine name of the mode.
func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case Locking:
		return "locking"
	case MVCC:
		return "mvcc"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Manager coordinates transactions over a set of storage tables.
type Manager struct {
	mode     Mode
	clock    atomic.Uint64 // last assigned commit timestamp
	nextTxn  atomic.Uint64 // transaction id source (ids double as wait-die age)
	commitMu sync.Mutex    // serializes commit stamping
	global   sync.RWMutex  // Serial mode database lock
	locks    *lockManager  // Locking mode lock table
	epochs   epochTable    // in-flight MVCC snapshots, for the GC horizon

	// nowait, when set, makes every engine non-blocking: Serial TryBegin
	// returns ErrBusy instead of queueing on the global lock and the
	// Locking engine aborts conflicting requests outright instead of
	// letting wait-die park the older transaction. The consistency harness
	// uses it for deterministic single-goroutine interleaving. Set before
	// concurrent use; it is not synchronized.
	nowait bool

	// mutation selectively disables one engine invariant (see Mutation).
	// Test-only: the consistency harness flips it to prove its checkers
	// detect real engine bugs. Set before concurrent use.
	mutation Mutation

	// OnCommit, when set, runs after a writing transaction's commit record
	// is durable-ordered but before its versions become visible. The engine
	// uses it to append to the WAL and emulate commit latency. The
	// transaction is fully populated but not yet stamped; hooks may read
	// its identity and write set but must not retain it.
	OnCommit func(t *Txn) error
}

// Mutation selects one deliberately broken engine invariant. The zero value
// leaves the engine correct. These switches exist solely so the consistency
// harness can validate itself: flipping one must make the corresponding
// checker fail, proving the harness detects the class of bug it claims to.
type Mutation uint8

const (
	// MutateNone leaves every invariant intact.
	MutateNone Mutation = iota
	// MutateSkipFirstUpdaterWins makes MVCC write claims ignore versions
	// committed after the claimant's snapshot, so concurrent writers to one
	// row both commit and the first update is silently lost.
	MutateSkipFirstUpdaterWins
	// MutateSkipReadLocks makes the Locking engine skip shared locks on
	// plain reads, admitting non-repeatable reads and broken replay order.
	MutateSkipReadLocks
	// MutateSharedSerialWriters admits Serial-mode writers under the shared
	// side of the global lock, so "serial" transactions interleave.
	MutateSharedSerialWriters
)

// SetNoWait switches the manager into non-blocking mode (see the nowait
// field). Must be called before transactions run concurrently.
func (m *Manager) SetNoWait(v bool) { m.nowait = v }

// SetMutation installs a deliberate invariant break (harness self-validation
// only). Must be called before transactions run concurrently.
func (m *Manager) SetMutation(mu Mutation) { m.mutation = mu }

// NewManager returns a Manager running the given mode.
func NewManager(mode Mode) *Manager {
	m := &Manager{mode: mode}
	if mode == Locking {
		m.locks = newLockManager()
	}
	// Start the clock at 1 so that 0 never appears as a commit timestamp.
	m.clock.Store(1)
	return m
}

// Mode returns the manager's concurrency-control mode.
func (m *Manager) Mode() Mode { return m.mode }

// AdvanceTxnID raises the transaction id source so no future transaction is
// assigned an id at or below floor. Disk recovery calls it with the log's
// txn-id high-water mark: a restarted engine reusing an id that already has a
// commit record on disk would make a new loser transaction's updates replay
// as committed. Ids double as wait-die ages, so this also keeps post-restart
// transactions younger than every pre-crash one.
func (m *Manager) AdvanceTxnID(floor uint64) {
	for {
		cur := m.nextTxn.Load()
		if cur >= floor || m.nextTxn.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// Horizon returns a timestamp at or below every active snapshot; versions
// deleted before it are unreachable and may be vacuumed.
func (m *Manager) Horizon() uint64 {
	return m.epochs.min(m.clock.Load())
}

// Clock returns the last assigned commit timestamp. Vacuum uses it as the
// retirement stamp for unlinked rows: every transaction active at unlink
// time has a snapshot at or below this value, so once Horizon passes it the
// unlinked slots are unreachable and safe to recycle.
func (m *Manager) Clock() uint64 { return m.clock.Load() }

// opKind classifies a write-set entry.
type opKind uint8

const (
	opInsert opKind = iota
	opUpdate
	opDelete
	opClaim // SELECT ... FOR UPDATE write intent under MVCC
)

// writeOp is one undo/redo record in a transaction's write set.
type writeOp struct {
	kind  opKind
	table *storage.Table
	rowID storage.RowID
	row   *storage.Row
	newV  *storage.Version  // version installed by this txn (insert/update)
	oldV  *storage.Version  // version whose End this txn marked
	disp  storage.Displaced // primary mapping an insert overwrote (rollback restore)
}

// Txn is an in-flight transaction.
type Txn struct {
	mgr      *Manager
	id       uint64
	snap     uint64
	readonly bool
	done     bool
	// sharedGlobal records which side of the Serial global lock this
	// transaction holds (mutations can put writers on the shared side).
	sharedGlobal bool
	// serial is the transaction's serialization timestamp, stamped at
	// commit: the new commit timestamp for writers, the current clock value
	// for read-only commits. Zero until committed.
	serial uint64
	// committed and nwrites preserve the outcome for Info after finish
	// clears the write set.
	committed bool
	nwrites   int
	writes    []writeOp
	held      map[lockKey]lockMode
	// claimed tracks rows already write-claimed under MVCC so repeated
	// writes to one row within the txn skip the conflict check.
	claimed map[*storage.Row]bool
	// slot is the epoch-table slot holding this transaction's snapshot
	// (MVCC only); -1 when the registration spilled to the overflow map.
	slot int32
}

// Begin starts a transaction. The readonly hint lets the Serial engine admit
// concurrent readers; it is advisory for the other engines.
func (m *Manager) Begin(readonly bool) *Txn {
	t := &Txn{
		mgr:      m,
		id:       m.nextTxn.Add(1),
		readonly: readonly,
	}
	switch m.mode {
	case Serial:
		t.sharedGlobal = readonly || m.mutation == MutateSharedSerialWriters
		if t.sharedGlobal {
			m.global.RLock()
		} else {
			m.global.Lock()
		}
		t.snap = m.clock.Load()
	case Locking:
		t.held = map[lockKey]lockMode{}
		t.snap = m.clock.Load()
	case MVCC:
		t.claimed = map[*storage.Row]bool{}
		// Pre-register with a conservative snapshot before taking the real
		// one: a concurrent Horizon() that misses this registration read
		// the clock before our pre-registration value, so it can never
		// exceed the snapshot we end up with. Without this, Horizon could
		// advance past a transaction between its clock read and its
		// appearance in the epoch table, letting vacuum prune versions the
		// new snapshot still needs.
		t.slot = m.epochs.enter(t.id, m.clock.Load())
		t.snap = m.clock.Load()
		m.epochs.update(t.slot, t.id, t.snap)
	}
	return t
}

// TryBegin starts a transaction like Begin, except that in nowait mode the
// Serial engine attempts the global lock without queueing and returns ErrBusy
// (retryable) when it is held incompatibly. The other engines never block in
// Begin, so TryBegin is identical to Begin for them.
func (m *Manager) TryBegin(readonly bool) (*Txn, error) {
	if m.mode != Serial || !m.nowait {
		return m.Begin(readonly), nil
	}
	t := &Txn{
		mgr:      m,
		id:       m.nextTxn.Add(1),
		readonly: readonly,
	}
	t.sharedGlobal = readonly || m.mutation == MutateSharedSerialWriters
	if t.sharedGlobal {
		if !m.global.TryRLock() {
			return nil, ErrBusy
		}
	} else {
		if !m.global.TryLock() {
			return nil, ErrBusy
		}
	}
	t.snap = m.clock.Load()
	return t, nil
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the transaction's snapshot timestamp.
func (t *Txn) Snapshot() uint64 { return t.snap }

// Info is a transaction's identity and outcome, exposed for history-recording
// harnesses and durability hooks.
type Info struct {
	// ID is the engine-assigned transaction id.
	ID uint64
	// Snapshot is the snapshot timestamp taken at begin.
	Snapshot uint64
	// SerialTS is the serialization timestamp stamped at commit: the commit
	// timestamp for writers, the clock value observed at commit for
	// read-only transactions. Zero while in flight or after an abort.
	SerialTS uint64
	// Committed reports whether Commit succeeded.
	Committed bool
	// Writes is the number of write-set entries (including MVCC claims).
	Writes int
}

// Info returns the transaction's identity and (once finished) outcome. Valid
// both in flight and after finish.
func (t *Txn) Info() Info {
	w := t.nwrites
	if !t.done {
		w = len(t.writes)
	}
	return Info{ID: t.id, Snapshot: t.snap, SerialTS: t.serial, Committed: t.committed, Writes: w}
}

// WriteKind classifies one WriteRec.
type WriteKind uint8

const (
	// WriteInsert is a row insertion.
	WriteInsert WriteKind = iota
	// WriteUpdate is a row replacement.
	WriteUpdate
	// WriteDelete is a row removal.
	WriteDelete
)

// WriteRec is one materialized write-set entry, exposed to durability hooks
// (WAL payload encoders). Data is the new image for inserts and updates and
// the deleted image for deletes; Old is the replaced image for updates (nil
// for inserts and deletes). Both alias engine memory and must not be mutated
// or retained past the hook. RowID identifies the row so disk-resident
// engines can address its heap slot.
type WriteRec struct {
	Table string
	Kind  WriteKind
	RowID storage.RowID
	Data  []sqlval.Value
	Old   []sqlval.Value
}

// WriteCount returns the number of write-set entries (including claims),
// matching what OnCommit hooks historically received.
func (t *Txn) WriteCount() int { return len(t.writes) }

// WriteSet materializes the transaction's logical writes in program order,
// skipping pure claims. Intended for OnCommit durability hooks; allocates.
func (t *Txn) WriteSet() []WriteRec {
	out := make([]WriteRec, 0, len(t.writes))
	for i := range t.writes {
		op := &t.writes[i]
		switch op.kind {
		case opInsert:
			out = append(out, WriteRec{Table: op.table.Meta.Name, Kind: WriteInsert, RowID: op.rowID, Data: op.newV.Data})
		case opUpdate:
			out = append(out, WriteRec{Table: op.table.Meta.Name, Kind: WriteUpdate, RowID: op.rowID, Data: op.newV.Data, Old: op.oldV.Data})
		case opDelete:
			out = append(out, WriteRec{Table: op.table.Meta.Name, Kind: WriteDelete, RowID: op.rowID, Data: op.oldV.Data})
		}
	}
	return out
}

// view returns the storage visibility view for this transaction.
func (t *Txn) view() storage.View {
	return storage.View{
		TxnID:    t.id,
		SnapTS:   t.snap,
		Snapshot: t.mgr.mode == MVCC,
	}
}

// FastReadView returns the transaction's visibility view when a plain
// (non-FOR UPDATE) read requires no per-row concurrency-control work, i.e.
// outside the Locking engine, which must acquire a shared lock per row.
// Batched scans use it to resolve row visibility directly — one view
// construction and liveness check per scan instead of per row — with
// semantics identical to Read(tbl, id, false).
func (t *Txn) FastReadView() (storage.View, bool) {
	if t.done || t.mgr.mode == Locking {
		return storage.View{}, false
	}
	return t.view(), true
}

// Read returns the row image visible to this transaction, or nil when the
// row is invisible. With forUpdate set, the row is locked (Locking) or
// write-claimed (MVCC) first, so the returned image remains stable until the
// transaction finishes.
func (t *Txn) Read(tbl *storage.Table, id storage.RowID, forUpdate bool) ([]sqlval.Value, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	row, ok := tbl.Row(id)
	if !ok {
		return nil, nil
	}
	switch t.mgr.mode {
	case Serial:
		// The global lock is already held.
	case Locking:
		mode := lockShared
		if forUpdate {
			mode = lockExclusive
		}
		if mode == lockShared && t.mgr.mutation == MutateSkipReadLocks {
			break // deliberately broken: unprotected read
		}
		if err := t.lock(tbl, id, mode); err != nil {
			return nil, err
		}
	case MVCC:
		if forUpdate {
			if err := t.claim(tbl, id, row); err != nil {
				return nil, err
			}
		}
	}
	v := t.view().Visible(row)
	if v == nil {
		return nil, nil
	}
	return v.Data, nil
}

// lock acquires a row lock under the Locking engine, recording it for
// release at transaction end.
func (t *Txn) lock(tbl *storage.Table, id storage.RowID, mode lockMode) error {
	k := lockKey{table: tbl, row: id}
	if held, ok := t.held[k]; ok && (held == lockExclusive || mode == lockShared) {
		return nil
	}
	if err := t.mgr.locks.acquire(t.id, k, mode, t.mgr.nowait); err != nil {
		return err
	}
	if held, ok := t.held[k]; !ok || mode > held {
		t.held[k] = mode
	}
	return nil
}

// claim write-claims a row under MVCC (first-updater-wins): it marks the
// visible version's End with this transaction so that concurrent writers
// conflict. Safe to call repeatedly.
func (t *Txn) claim(tbl *storage.Table, id storage.RowID, row *storage.Row) error {
	if _, ok := t.claimed[row]; ok {
		return nil
	}
	row.Lock()
	defer row.Unlock()
	v := row.Latest()
	if v == nil {
		return nil // nothing to claim; reader will see the row as absent
	}
	myMark := storage.TxnMark | t.id
	if storage.Uncommitted(v.Begin()) {
		if storage.MarkOwner(v.Begin()) != t.id {
			return ErrWriteConflict // uncommitted write by someone else
		}
		return nil // my own version is already exclusive
	}
	if v.Begin() > t.snap && t.mgr.mutation != MutateSkipFirstUpdaterWins {
		return ErrWriteConflict // committed after my snapshot
	}
	switch {
	case v.End() == storage.Infinity:
		v.SetEnd(myMark)
		t.writes = append(t.writes, writeOp{kind: opClaim, table: tbl, rowID: id, row: row, oldV: v})
		t.claimed[row] = true
		return nil
	case storage.Uncommitted(v.End()):
		if storage.MarkOwner(v.End()) == t.id {
			return nil
		}
		return ErrWriteConflict // claimed/deleted by another in-flight txn
	case v.End() <= t.snap:
		// The delete is already visible to this snapshot: the row is
		// simply gone, which the caller's visibility check will report.
		// Claiming a tombstone is not a conflict.
		return nil
	default:
		return ErrWriteConflict // deleted after my snapshot: true conflict
	}
}

// Insert adds a new row. The unique checks and index maintenance happen in
// the storage layer; the version is stamped at commit.
func (t *Txn) Insert(tbl *storage.Table, data []sqlval.Value) error {
	if t.done {
		return ErrTxnDone
	}
	id, row, disp, err := tbl.Insert(t.id, data)
	if err != nil {
		return err
	}
	if t.mgr.mode == Locking {
		if err := t.lock(tbl, id, lockExclusive); err != nil {
			// Cannot conflict in practice (fresh row), but stay safe.
			tbl.RollbackInsert(id, data, disp)
			return err
		}
	}
	t.writes = append(t.writes, writeOp{kind: opInsert, table: tbl, rowID: id, row: row, newV: row.Latest(), disp: disp})
	if t.claimed != nil {
		t.claimed[row] = true
	}
	return nil
}

// Update replaces the visible image of a row with newData. The caller must
// have established visibility (normally via Read during the scan).
func (t *Txn) Update(tbl *storage.Table, id storage.RowID, newData []sqlval.Value) error {
	if t.done {
		return ErrTxnDone
	}
	row, ok := tbl.Row(id)
	if !ok {
		return nil
	}
	switch t.mgr.mode {
	case Locking:
		if err := t.lock(tbl, id, lockExclusive); err != nil {
			return err
		}
	case MVCC:
		if err := t.claim(tbl, id, row); err != nil {
			return err
		}
	}
	myMark := storage.TxnMark | t.id
	row.Lock()
	old := row.Latest()
	if old == nil {
		row.Unlock()
		return nil
	}
	if storage.Uncommitted(old.Begin()) && storage.MarkOwner(old.Begin()) != t.id {
		// Another in-flight writer: impossible under Locking/Serial, a
		// missed claim under MVCC.
		row.Unlock()
		return ErrWriteConflict
	}
	prevEnd := old.End()
	if prevEnd == storage.Infinity || prevEnd == myMark {
		old.SetEnd(myMark)
	} else {
		row.Unlock()
		return ErrWriteConflict
	}
	newV := storage.NewVersion(newData, myMark, storage.Infinity, old)
	row.SetLatest(newV)
	row.Unlock()
	if err := tbl.AddVersionIndexEntries(id, old.Data, newData); err != nil {
		// Unique violation: the new image never becomes visible. Unwind
		// the chain head and the old version's end mark, then surface the
		// race as a retryable conflict — the loser re-reads committed
		// state and re-decides (a genuine duplicate then fails its own
		// predicate check instead of retrying forever).
		row.Lock()
		if row.Latest() == newV {
			row.SetLatest(old)
		}
		old.SetEnd(prevEnd)
		row.Unlock()
		return fmt.Errorf("txn: update unique violation: %v: %w", err, ErrWriteConflict)
	}
	t.writes = append(t.writes, writeOp{kind: opUpdate, table: tbl, rowID: id, row: row, newV: newV, oldV: old})
	if t.claimed != nil {
		t.claimed[row] = true
	}
	return nil
}

// Delete removes the visible image of a row.
func (t *Txn) Delete(tbl *storage.Table, id storage.RowID) error {
	if t.done {
		return ErrTxnDone
	}
	row, ok := tbl.Row(id)
	if !ok {
		return nil
	}
	switch t.mgr.mode {
	case Locking:
		if err := t.lock(tbl, id, lockExclusive); err != nil {
			return err
		}
	case MVCC:
		if err := t.claim(tbl, id, row); err != nil {
			return err
		}
	}
	myMark := storage.TxnMark | t.id
	deleteMark := myMark | storage.DeleteFlag
	row.Lock()
	defer row.Unlock()
	v := row.Latest()
	if v == nil {
		return nil
	}
	if storage.Uncommitted(v.Begin()) && storage.MarkOwner(v.Begin()) != t.id {
		return ErrWriteConflict
	}
	if v.End() == storage.Infinity || v.End() == myMark {
		v.SetEnd(deleteMark)
	} else {
		return ErrWriteConflict
	}
	t.writes = append(t.writes, writeOp{kind: opDelete, table: tbl, rowID: id, row: row, oldV: v})
	return nil
}

// HasWrites reports whether the transaction has written anything.
func (t *Txn) HasWrites() bool { return len(t.writes) > 0 }

// Commit makes the transaction's writes durable and visible.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	m := t.mgr
	// Durability (WAL append + emulated sync latency) happens before the
	// versions become visible, outside the stamping critical section so
	// that group commit can overlap many waiters.
	if m.OnCommit != nil && len(t.writes) > 0 {
		if err := m.OnCommit(t); err != nil {
			t.Abort()
			return fmt.Errorf("txn: commit durability failed: %w", err)
		}
	}
	if len(t.writes) > 0 {
		m.commitMu.Lock()
		ts := m.clock.Load() + 1
		myMark := storage.TxnMark | t.id
		// Pass 1: stamp real writes. Pass 2: release claims that no later
		// write superseded (their End is still this transaction's mark).
		for i := range t.writes {
			op := &t.writes[i]
			if op.kind == opClaim {
				continue
			}
			op.row.Lock()
			switch op.kind {
			case opInsert:
				op.newV.SetBegin(ts)
			case opUpdate:
				op.newV.SetBegin(ts)
				if op.oldV != nil && op.oldV.End() == myMark {
					op.oldV.SetEnd(ts)
				}
			case opDelete:
				if op.oldV.End() == myMark|storage.DeleteFlag {
					op.oldV.SetEnd(ts)
				}
			}
			op.row.Unlock()
		}
		for i := range t.writes {
			op := &t.writes[i]
			if op.kind != opClaim {
				continue
			}
			op.row.Lock()
			if op.oldV.End() == myMark {
				op.oldV.SetEnd(storage.Infinity)
			}
			op.row.Unlock()
		}
		m.clock.Store(ts)
		m.commitMu.Unlock()
		t.serial = ts
	} else {
		// Read-only commit: serialize at the clock value observed now.
		// Under the Serial and Locking engines every conflicting writer
		// either committed before this load (its timestamp is <= the value)
		// or is still excluded by a lock this transaction holds (and will
		// stamp strictly later), so replaying the reads at this position is
		// a valid serialization.
		t.serial = m.clock.Load()
	}
	t.committed = true
	t.finish()
	return nil
}

// Abort rolls back every write and releases all locks.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	myMark := storage.TxnMark | t.id
	// Undo in reverse order so that chained writes to one row unwind.
	for i := len(t.writes) - 1; i >= 0; i-- {
		op := t.writes[i]
		switch op.kind {
		case opInsert:
			op.table.RollbackInsert(op.rowID, op.newV.Data, op.disp)
		case opUpdate:
			op.row.Lock()
			if op.row.Latest() == op.newV {
				op.row.SetLatest(op.newV.Next())
			}
			if op.oldV != nil && op.oldV.End() == myMark {
				op.oldV.SetEnd(storage.Infinity)
			}
			op.row.Unlock()
			if op.oldV != nil {
				op.table.RemoveVersionIndexEntries(op.rowID, op.newV.Data, op.oldV.Data)
			}
		case opDelete:
			op.row.Lock()
			if op.oldV.End() == myMark|storage.DeleteFlag {
				op.oldV.SetEnd(storage.Infinity)
			}
			op.row.Unlock()
		case opClaim:
			op.row.Lock()
			if op.oldV.End() == myMark {
				op.oldV.SetEnd(storage.Infinity)
			}
			op.row.Unlock()
		}
	}
	t.finish()
}

// finish releases engine resources and marks the transaction done.
func (t *Txn) finish() {
	m := t.mgr
	switch m.mode {
	case Serial:
		if t.sharedGlobal {
			m.global.RUnlock()
		} else {
			m.global.Unlock()
		}
	case Locking:
		m.locks.release(t.id, t.held)
	case MVCC:
		m.epochs.exit(t.slot, t.id)
	}
	t.nwrites = len(t.writes)
	t.writes = nil
	t.claimed = nil
	t.done = true
}
