package txn

import "errors"

// ErrWriteConflict is returned by the MVCC engine when first-updater-wins
// detects a concurrent write to the same row. The transaction is aborted and
// should be retried by the caller.
var ErrWriteConflict = errors.New("txn: write-write conflict, transaction aborted")

// ErrDeadlock is returned by the locking engine when wait-die kills the
// younger transaction of a conflicting pair. The transaction is aborted and
// should be retried by the caller.
var ErrDeadlock = errors.New("txn: lock conflict (wait-die), transaction aborted")

// ErrTxnDone is returned when operating on a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// IsRetryable reports whether err is a concurrency abort that the workload
// driver may transparently retry.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrDeadlock)
}
