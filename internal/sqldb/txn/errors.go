package txn

import "errors"

// ErrWriteConflict is returned by the MVCC engine when first-updater-wins
// detects a concurrent write to the same row. The transaction is aborted and
// should be retried by the caller.
var ErrWriteConflict = errors.New("txn: write-write conflict, transaction aborted")

// ErrDeadlock is returned by the locking engine when wait-die kills the
// younger transaction of a conflicting pair. The transaction is aborted and
// should be retried by the caller.
var ErrDeadlock = errors.New("txn: lock conflict (wait-die), transaction aborted")

// ErrTxnDone is returned when operating on a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// ErrBusy is returned by TryBegin in nowait mode when the Serial engine's
// global lock is held incompatibly. The caller should retry later.
var ErrBusy = errors.New("txn: engine busy, transaction not started")

// IsRetryable reports whether err is a concurrency abort that the workload
// driver may transparently retry.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrDeadlock) || errors.Is(err, ErrBusy)
}
