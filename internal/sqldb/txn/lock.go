package txn

import (
	"sync"

	"benchpress/internal/sqldb/storage"
)

// lockMode is the strength of a row lock.
type lockMode uint8

const (
	lockShared lockMode = iota
	lockExclusive
)

// lockKey identifies one lockable row.
type lockKey struct {
	table *storage.Table
	row   storage.RowID
}

// lockState is the runtime state of one lock: its holders and a condition
// variable for waiters.
type lockState struct {
	holders map[uint64]lockMode // txn id -> strongest mode held
	waiters int
}

const lockShards = 64

// lockShard is one partition of the lock table.
type lockShard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[lockKey]*lockState
	// free recycles lockStates (with their emptied holder maps) under the
	// shard mutex: locks are dropped from the table the moment their last
	// holder releases, so without reuse every first acquisition of a row
	// would allocate a state and a map.
	free []*lockState
}

// newState returns a clean lockState, reusing a recycled one when available.
func (s *lockShard) newState() *lockState {
	if n := len(s.free); n > 0 {
		st := s.free[n-1]
		s.free = s.free[:n-1]
		return st
	}
	return &lockState{holders: map[uint64]lockMode{}}
}

// freeState unlinks an empty lock and recycles its state. Callers must have
// verified it has no holders and no waiters.
func (s *lockShard) freeState(k lockKey, st *lockState) {
	delete(s.locks, k)
	s.free = append(s.free, st)
}

// lockManager implements strict two-phase row locking with wait-die deadlock
// avoidance: on conflict, an older requester (smaller transaction id) waits
// and a younger requester aborts with ErrDeadlock. Wait-for edges therefore
// always point from older to younger transactions, which makes cycles - and
// hence deadlocks - impossible.
type lockManager struct {
	shards [lockShards]lockShard
}

func newLockManager() *lockManager {
	m := &lockManager{}
	for i := range m.shards {
		s := &m.shards[i]
		s.locks = map[lockKey]*lockState{}
		s.cond = sync.NewCond(&s.mu)
	}
	return m
}

func (m *lockManager) shard(k lockKey) *lockShard {
	// Row ids are sequential per table; mixing in the table pointer spreads
	// tables across shards.
	h := uint64(k.row) * 0x9e3779b97f4a7c15
	return &m.shards[h%lockShards]
}

// compatible reports whether txn id may take mode given the current holders.
func compatible(st *lockState, id uint64, mode lockMode) bool {
	for holder, held := range st.holders {
		if holder == id {
			continue // upgrades only conflict with other holders
		}
		if mode == lockExclusive || held == lockExclusive {
			return false
		}
	}
	return true
}

// oldestConflictor returns the smallest conflicting holder id, used by
// wait-die to decide whether the requester waits or dies.
func oldestConflictor(st *lockState, id uint64, mode lockMode) uint64 {
	var oldest uint64 = ^uint64(0)
	for holder, held := range st.holders {
		if holder == id {
			continue
		}
		if mode == lockExclusive || held == lockExclusive {
			if holder < oldest {
				oldest = holder
			}
		}
	}
	return oldest
}

// acquire takes the lock for txn id, blocking per wait-die. It records the
// strongest mode held. It returns ErrDeadlock when wait-die kills the caller.
// With nowait set, conflicts abort the requester outright instead of queueing
// the older transaction — no call ever blocks, which the deterministic
// consistency harness relies on.
func (m *lockManager) acquire(id uint64, k lockKey, mode lockMode, nowait bool) error {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.locks[k]
	if !ok {
		st = s.newState()
		s.locks[k] = st
	}
	for {
		if held, mine := st.holders[id]; mine && (held == lockExclusive || mode == lockShared) {
			return nil // already hold a sufficient mode
		}
		if compatible(st, id, mode) {
			if held, mine := st.holders[id]; !mine || mode > held {
				st.holders[id] = mode
			}
			return nil
		}
		// Wait-die: only wait for younger transactions (nowait: never wait).
		if oldest := oldestConflictor(st, id, mode); nowait || id > oldest {
			if len(st.holders) == 0 && st.waiters == 0 {
				s.freeState(k, st)
			}
			return ErrDeadlock
		}
		st.waiters++
		s.cond.Wait()
		st.waiters--
		// The state may have been deleted and recreated while waiting.
		if cur, ok := s.locks[k]; !ok {
			st = s.newState()
			s.locks[k] = st
		} else {
			st = cur
		}
	}
}

// release drops every lock held by txn id among the given keys. It walks the
// keys directly (one shard-mutex hop per key) instead of grouping keys by
// shard: transactions hold few locks, and the grouping map plus per-shard
// slices cost more in allocation than the extra uncontended mutex hops.
func (m *lockManager) release(id uint64, keys map[lockKey]lockMode) {
	for k := range keys {
		s := m.shard(k)
		s.mu.Lock()
		if st, ok := s.locks[k]; ok {
			delete(st.holders, id)
			hadWaiters := st.waiters > 0
			if len(st.holders) == 0 && !hadWaiters {
				s.freeState(k, st)
			}
			// Waiters block on the shard condition but each re-checks its
			// own key; only a key somebody waits for needs a wake-up.
			if hadWaiters {
				s.cond.Broadcast()
			}
		}
		s.mu.Unlock()
	}
}
