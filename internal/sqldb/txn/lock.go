package txn

import (
	"sync"

	"benchpress/internal/sqldb/storage"
)

// lockMode is the strength of a row lock.
type lockMode uint8

const (
	lockShared lockMode = iota
	lockExclusive
)

// lockKey identifies one lockable row.
type lockKey struct {
	table *storage.Table
	row   storage.RowID
}

// lockState is the runtime state of one lock: its holders and a condition
// variable for waiters.
type lockState struct {
	holders map[uint64]lockMode // txn id -> strongest mode held
	waiters int
}

const lockShards = 64

// lockShard is one partition of the lock table.
type lockShard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[lockKey]*lockState
}

// lockManager implements strict two-phase row locking with wait-die deadlock
// avoidance: on conflict, an older requester (smaller transaction id) waits
// and a younger requester aborts with ErrDeadlock. Wait-for edges therefore
// always point from older to younger transactions, which makes cycles - and
// hence deadlocks - impossible.
type lockManager struct {
	shards [lockShards]lockShard
}

func newLockManager() *lockManager {
	m := &lockManager{}
	for i := range m.shards {
		s := &m.shards[i]
		s.locks = map[lockKey]*lockState{}
		s.cond = sync.NewCond(&s.mu)
	}
	return m
}

func (m *lockManager) shard(k lockKey) *lockShard {
	// Row ids are sequential per table; mixing in the table pointer spreads
	// tables across shards.
	h := uint64(k.row) * 0x9e3779b97f4a7c15
	return &m.shards[h%lockShards]
}

// compatible reports whether txn id may take mode given the current holders.
func compatible(st *lockState, id uint64, mode lockMode) bool {
	for holder, held := range st.holders {
		if holder == id {
			continue // upgrades only conflict with other holders
		}
		if mode == lockExclusive || held == lockExclusive {
			return false
		}
	}
	return true
}

// oldestConflictor returns the smallest conflicting holder id, used by
// wait-die to decide whether the requester waits or dies.
func oldestConflictor(st *lockState, id uint64, mode lockMode) uint64 {
	var oldest uint64 = ^uint64(0)
	for holder, held := range st.holders {
		if holder == id {
			continue
		}
		if mode == lockExclusive || held == lockExclusive {
			if holder < oldest {
				oldest = holder
			}
		}
	}
	return oldest
}

// acquire takes the lock for txn id, blocking per wait-die. It records the
// strongest mode held. It returns ErrDeadlock when wait-die kills the caller.
func (m *lockManager) acquire(id uint64, k lockKey, mode lockMode) error {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.locks[k]
	if !ok {
		st = &lockState{holders: map[uint64]lockMode{}}
		s.locks[k] = st
	}
	for {
		if held, mine := st.holders[id]; mine && (held == lockExclusive || mode == lockShared) {
			return nil // already hold a sufficient mode
		}
		if compatible(st, id, mode) {
			if held, mine := st.holders[id]; !mine || mode > held {
				st.holders[id] = mode
			}
			return nil
		}
		// Wait-die: only wait for younger transactions.
		if oldest := oldestConflictor(st, id, mode); id > oldest {
			if len(st.holders) == 0 && st.waiters == 0 {
				delete(s.locks, k)
			}
			return ErrDeadlock
		}
		st.waiters++
		s.cond.Wait()
		st.waiters--
		// The state may have been deleted and recreated while waiting.
		if cur, ok := s.locks[k]; !ok {
			st = &lockState{holders: map[uint64]lockMode{}}
			s.locks[k] = st
		} else {
			st = cur
		}
	}
}

// release drops every lock held by txn id among the given keys.
func (m *lockManager) release(id uint64, keys map[lockKey]lockMode) {
	// Group by shard to take each shard lock once.
	byShard := map[*lockShard][]lockKey{}
	for k := range keys {
		s := m.shard(k)
		byShard[s] = append(byShard[s], k)
	}
	for s, ks := range byShard {
		s.mu.Lock()
		for _, k := range ks {
			if st, ok := s.locks[k]; ok {
				delete(st.holders, id)
				if len(st.holders) == 0 && st.waiters == 0 {
					delete(s.locks, k)
				}
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
