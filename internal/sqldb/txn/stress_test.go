package txn

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqlval"
)

// TestStorageStressConcurrent hammers one table with concurrent transfers,
// insert/delete churn (including deliberate duplicate-key collisions),
// consistent-sum readers, sequential scans, an online vacuum loop, and an
// AddIndex issued mid-run — the full surface the striped row store and
// per-index latches must keep coherent. Afterward it checks the money
// invariant, index/row agreement in both directions, and slot reclamation.
// Run it under -race: that is the point.
func TestStorageStressConcurrent(t *testing.T) {
	for _, mode := range []Mode{Locking, MVCC} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			stressOneTable(t, mode)
		})
	}
}

const (
	stressAccounts  = 64  // fixed rows carrying the conserved balance
	stressChurnLo   = 500 // churn workers insert/delete ids in [lo, lo+span)
	stressChurnSpan = 32
	stressTotal     = stressAccounts * 100
)

func stressIters(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 150
	}
	return 800
}

func stressTable(t *testing.T) (*catalog.Catalog, *storage.Table) {
	t.Helper()
	cat := catalog.New()
	meta, err := cat.CreateTable("accounts", []catalog.Column{
		{Name: "id", Kind: sqlval.KindInt, NotNull: true},
		{Name: "balance", Kind: sqlval.KindInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return cat, storage.NewTable(meta)
}

func stressOneTable(t *testing.T, mode Mode) {
	m := NewManager(mode)
	cat, tbl := stressTable(t)
	seed(t, m, tbl, stressAccounts)
	iters := stressIters(t)

	// Writers run a fixed iteration budget; readers and the vacuum loop run
	// until the writers are done (stop), so the full mix overlaps for the
	// whole run.
	var writers, readers sync.WaitGroup
	var stop atomic.Bool
	start := func(wg *sync.WaitGroup, f func(r *rand.Rand)) {
		wg.Add(1)
		src := rand.Int63()
		go func() {
			defer wg.Done()
			f(rand.New(rand.NewSource(src)))
		}()
	}

	// Transfers between fixed accounts: the sum must be conserved.
	for w := 0; w < 2; w++ {
		start(&writers, func(r *rand.Rand) {
			for i := 0; i < iters; i++ {
				from := r.Int63n(stressAccounts)
				to := r.Int63n(stressAccounts)
				if from != to {
					transfer(m, tbl, from, to, 1+r.Int63n(5))
				}
			}
		})
	}

	// Churn: insert a zero-balance row, sometimes roll it back, otherwise
	// commit and delete it again. Two workers share the id range so
	// concurrent same-key inserts exercise the duplicate check.
	for w := 0; w < 2; w++ {
		start(&writers, func(r *rand.Rand) {
			for i := 0; i < iters; i++ {
				id := stressChurnLo + r.Int63n(stressChurnSpan)
				tx := m.Begin(false)
				if err := tx.Insert(tbl, row(id, 0)); err != nil {
					tx.Abort() // duplicate or write conflict: both expected
					continue
				}
				if r.Intn(4) == 0 {
					tx.Abort() // exercise insert rollback (RemoveRow)
					continue
				}
				if tx.Commit() != nil {
					continue
				}
				tx = m.Begin(false)
				if rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(id)}); ok {
					if tx.Delete(tbl, rid) == nil {
						tx.Commit()
						continue
					}
				}
				tx.Abort()
			}
		})
	}

	// Consistent-sum reader: fixed balances plus zero-balance churn rows
	// must always total stressTotal. Under Locking a wait-die abort can cut
	// the read short; only completed sweeps are judged.
	start(&readers, func(r *rand.Rand) {
		for !stop.Load() {
			tx := m.Begin(true)
			sum, complete := int64(0), true
			for id := int64(0); id < stressAccounts; id++ {
				rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(id)})
				if !ok {
					complete = false
					break
				}
				data, err := tx.Read(tbl, rid, false)
				if err != nil || data == nil {
					complete = false
					break
				}
				sum += data[1].Int()
			}
			if complete && sum != stressTotal {
				t.Errorf("inconsistent sum %d, want %d", sum, stressTotal)
			}
			tx.Commit()
		}
	})

	// Sequential scan: every visible row's primary key must resolve back
	// through the primary index to a live row carrying that key.
	start(&readers, func(r *rand.Rand) {
		for !stop.Load() {
			tx := m.Begin(true)
			tbl.ScanAll(func(id storage.RowID, row *storage.Row) bool {
				data, err := tx.Read(tbl, id, false)
				if err != nil || data == nil {
					return true // invisible or lost a wait-die race
				}
				pk := []sqlval.Value{data[0]}
				rid, ok := tbl.PrimaryLookup(pk)
				if !ok {
					t.Errorf("visible row %d (pk %v) missing from primary index", id, data[0])
					return false
				}
				got, err := tx.Read(tbl, rid, false)
				if err == nil && got != nil && sqlval.Compare(got[0], data[0]) != 0 {
					t.Errorf("primary index maps pk %v to row with pk %v", data[0], got[0])
					return false
				}
				return true
			})
			tx.Commit()
		}
	})

	// Online vacuum racing everything above.
	readers.Add(1)
	go func() {
		defer readers.Done()
		g := 0
		for !stop.Load() {
			tbl.VacuumSegment(g%tbl.Segments(), m.Horizon(), m.Clock())
			g++
		}
	}()

	// DDL mid-run: publish-then-backfill must not lose concurrent writes.
	idx, err := cat.AddIndex("accounts", "accounts_balance", []string{"balance"}, false)
	if err != nil {
		t.Fatal(err)
	}
	tbl.AddIndex(idx)

	writers.Wait()
	stop.Store(true)
	readers.Wait()

	verifyStress(t, m, tbl)
}

// verifyStress checks the quiesced table: conserved money, bidirectional
// index/row agreement (including the index added mid-run), and vacuum
// reclaiming every churn slot.
func verifyStress(t *testing.T, m *Manager, tbl *storage.Table) {
	t.Helper()

	// Drain every churn row so only the fixed accounts remain live.
	tx := m.Begin(false)
	for id := stressChurnLo; id < stressChurnLo+stressChurnSpan; id++ {
		if rid, ok := tbl.PrimaryLookup([]sqlval.Value{sqlval.NewInt(int64(id))}); ok {
			if data, err := tx.Read(tbl, rid, true); err == nil && data != nil {
				if err := tx.Delete(tbl, rid); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	check := m.Begin(true)
	defer check.Commit()
	sum, visible := int64(0), 0
	tbl.ScanAll(func(id storage.RowID, row *storage.Row) bool {
		data, err := check.Read(tbl, id, false)
		if err != nil {
			t.Fatal(err)
		}
		if data == nil {
			return true
		}
		visible++
		sum += data[1].Int()
		// Row → primary index.
		rid, ok := tbl.PrimaryLookup([]sqlval.Value{data[0]})
		if !ok || rid != id {
			t.Errorf("row %d (pk %v) not canonical in primary index (got %d, %v)", id, data[0], rid, ok)
		}
		return true
	})
	if visible != stressAccounts {
		t.Errorf("visible rows = %d, want %d", visible, stressAccounts)
	}
	if sum != stressTotal {
		t.Errorf("final sum = %d, want %d", sum, stressTotal)
	}

	// Secondary index added mid-run: every live row must be reachable, and
	// verified entries must cover exactly the live set.
	found := map[storage.RowID]bool{}
	tbl.ScanSecondaryRange(0, nil, nil, false, func(e storage.IndexEntry) bool {
		data, err := check.Read(tbl, e.ID, false)
		if err != nil || data == nil {
			return true
		}
		if tbl.VerifySecondary(0, e, data) {
			found[e.ID] = true
		}
		return true
	})
	if len(found) != stressAccounts {
		t.Errorf("secondary index covers %d live rows, want %d", len(found), stressAccounts)
	}

	// With no active transactions, a full vacuum must reclaim every dead
	// churn slot.
	tbl.Vacuum(m.Horizon()+1, m.Clock())
	if got := tbl.RowCount(); got != stressAccounts {
		t.Errorf("RowCount after vacuum = %d, want %d", got, stressAccounts)
	}
}
