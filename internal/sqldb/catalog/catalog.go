// Package catalog maintains schema metadata for the embedded engine: table
// definitions, column types, and index definitions. Object names are
// case-insensitive, as in SQL.
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"benchpress/internal/sqlval"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	TypeName   string
	Kind       sqlval.Kind
	Size       int // declared VARCHAR/CHAR length; 0 = unbounded
	NotNull    bool
	HasDefault bool
	Default    sqlval.Value
	AutoInc    bool
}

// Index describes an index over a table. Columns are ordinal positions into
// the table's column list.
type Index struct {
	Name    string
	Table   string
	Columns []int
	Unique  bool
	Primary bool
}

// Table describes a table: columns, primary key, and attached indexes.
type Table struct {
	Name      string
	Columns   []Column
	PKCols    []int    // ordinal positions; empty = no declared primary key
	Indexes   []*Index // Indexes[0] is the primary index when PKCols is set
	colByName map[string]int
}

// ColumnIndex returns the ordinal of the named column (case-insensitive),
// or -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colByName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Catalog is a threadsafe registry of tables.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*Table{}}
}

// Table returns the named table, or an error when it does not exist.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Tables returns all tables in no particular order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// CreateTable registers a table. Columns and primary-key names are
// validated. When the table declares a primary key, a primary Index is
// synthesized as Indexes[0].
func (c *Catalog) CreateTable(name string, cols []Column, pkNames []string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: cols, colByName: map[string]int{}}
	for i, col := range cols {
		key := strings.ToLower(col.Name)
		if _, dup := t.colByName[key]; dup {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		t.colByName[key] = i
	}
	for _, pk := range pkNames {
		i := t.ColumnIndex(pk)
		if i < 0 {
			return nil, fmt.Errorf("catalog: primary key column %q not in table %q", pk, name)
		}
		t.PKCols = append(t.PKCols, i)
	}
	if len(t.PKCols) > 0 {
		t.Indexes = append(t.Indexes, &Index{
			Name:    name + "_pkey",
			Table:   name,
			Columns: append([]int(nil), t.PKCols...),
			Unique:  true,
			Primary: true,
		})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	c.tables[key] = t
	return t, nil
}

// DropTable removes a table from the catalog.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// AddIndex attaches a secondary index definition to a table.
func (c *Catalog) AddIndex(table, indexName string, colNames []string, unique bool) (*Index, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, idx := range t.Indexes {
		if strings.EqualFold(idx.Name, indexName) {
			return nil, fmt.Errorf("catalog: index %q already exists on %q", indexName, table)
		}
	}
	idx := &Index{Name: indexName, Table: t.Name, Unique: unique}
	for _, cn := range colNames {
		i := t.ColumnIndex(cn)
		if i < 0 {
			return nil, fmt.Errorf("catalog: index column %q not in table %q", cn, table)
		}
		idx.Columns = append(idx.Columns, i)
	}
	t.Indexes = append(t.Indexes, idx)
	return idx, nil
}
