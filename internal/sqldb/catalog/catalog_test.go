package catalog

import (
	"testing"

	"benchpress/internal/sqlval"
)

func TestCreateAndLookup(t *testing.T) {
	c := New()
	tbl, err := c.CreateTable("Users", []Column{
		{Name: "ID", Kind: sqlval.KindInt, NotNull: true},
		{Name: "Name", Kind: sqlval.KindString},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	// Case-insensitive resolution.
	got, err := c.Table("USERS")
	if err != nil || got != tbl {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if !c.HasTable("users") {
		t.Fatal("HasTable")
	}
	if tbl.ColumnIndex("name") != 1 || tbl.ColumnIndex("NAME") != 1 {
		t.Fatal("column index case folding")
	}
	if tbl.ColumnIndex("missing") != -1 {
		t.Fatal("missing column")
	}
	if len(tbl.PKCols) != 1 || tbl.PKCols[0] != 0 {
		t.Fatalf("pk cols: %v", tbl.PKCols)
	}
	if len(tbl.Indexes) != 1 || !tbl.Indexes[0].Primary || !tbl.Indexes[0].Unique {
		t.Fatalf("primary index: %+v", tbl.Indexes)
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", nil, nil); err == nil {
		t.Fatal("empty table accepted")
	}
	cols := []Column{{Name: "a", Kind: sqlval.KindInt}, {Name: "A", Kind: sqlval.KindInt}}
	if _, err := c.CreateTable("t", cols, nil); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := c.CreateTable("t", cols[:1], []string{"zzz"}); err == nil {
		t.Fatal("bad pk column accepted")
	}
	if _, err := c.CreateTable("t", cols[:1], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("T", cols[:1], nil); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	c.CreateTable("t", []Column{{Name: "a", Kind: sqlval.KindInt}}, nil)
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if c.HasTable("t") {
		t.Fatal("still present")
	}
	if err := c.DropTable("t"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestAddIndex(t *testing.T) {
	c := New()
	c.CreateTable("t", []Column{
		{Name: "a", Kind: sqlval.KindInt},
		{Name: "b", Kind: sqlval.KindString},
	}, []string{"a"})
	idx, err := c.AddIndex("t", "t_b", []string{"b"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Columns[0] != 1 || idx.Unique || idx.Primary {
		t.Fatalf("%+v", idx)
	}
	if _, err := c.AddIndex("t", "t_b", []string{"b"}, false); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := c.AddIndex("t", "t_c", []string{"nope"}, false); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := c.AddIndex("missing", "x", []string{"a"}, false); err == nil {
		t.Fatal("missing table accepted")
	}
	tbl, _ := c.Table("t")
	if len(tbl.Indexes) != 2 {
		t.Fatalf("indexes: %d", len(tbl.Indexes))
	}
}

func TestTablesEnumeration(t *testing.T) {
	c := New()
	c.CreateTable("a", []Column{{Name: "x", Kind: sqlval.KindInt}}, nil)
	c.CreateTable("b", []Column{{Name: "x", Kind: sqlval.KindInt}}, nil)
	if len(c.Tables()) != 2 {
		t.Fatalf("tables: %d", len(c.Tables()))
	}
}
