// Package sqldb is the embedded relational engine of the BenchPress
// reproduction: an in-memory, multi-version row store with a SQL front end
// and three pluggable concurrency-control modes. It stands in for the
// JDBC-connected DBMSs (MySQL, PostgreSQL, Oracle, Derby, ...) that the
// OLTP-Bench paper drives, so that the whole testbed is self-contained.
//
// The unit of work is a Session, which is what a benchmark worker's
// connection maps to. Sessions are not safe for concurrent use; an Engine is.
package sqldb

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"benchpress/internal/sqldb/catalog"
	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqldb/parser"
	"benchpress/internal/sqldb/storage"
	"benchpress/internal/sqldb/storage/heap"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
	"benchpress/internal/wal"
)

// Config describes one engine personality.
type Config struct {
	// Name identifies the engine instance (e.g. "gomvcc").
	Name string
	// Mode selects the concurrency-control engine.
	Mode txn.Mode
	// WALPolicy selects the durability emulation (default SyncNone).
	WALPolicy wal.SyncPolicy
	// GroupCommitInterval is the flush cadence when WALPolicy is SyncGroup
	// or SyncAsync (default 200us).
	GroupCommitInterval time.Duration
	// CommitDelay adds fixed latency to every writing commit, emulating
	// per-commit work (e.g. synchronous replication). Zero disables it.
	CommitDelay time.Duration
	// VacuumInterval enables the online background vacuum: every interval,
	// one row-store segment per table is swept at the transaction manager's
	// current low-watermark. Zero disables the goroutine; Engine.Vacuum
	// remains available for manual, deterministic reclamation.
	VacuumInterval time.Duration
	// WALSink, when non-nil, receives the WAL's flushed bytes (default
	// discard). The consistency harness points it at a kill-injecting
	// writer to emulate crashes at arbitrary sync boundaries.
	WALSink io.Writer
	// CommitPayload, when set together with a WAL policy, encodes each
	// committing transaction into the framed record appended to the log
	// (wal.AppendRecord), enabling crash-recovery replay checks. When nil
	// the log records only write counts.
	CommitPayload func(*txn.Txn) []byte

	// DataDir, when non-empty, makes the engine disk-resident (OpenDisk):
	// committed rows live in a slotted-page heap file (DataDir/heap.db)
	// behind a buffer pool, with ARIES-style physical logging in
	// DataDir/wal.log and full recovery on reopen.
	DataDir string
	// BufferPoolPages caps the buffer pool's frame count in disk mode
	// (default 64 frames = 256 KiB of 4 KiB pages).
	BufferPoolPages int
	// CheckpointEvery logs a fuzzy checkpoint every N disk commits
	// (default 256; negative disables).
	CheckpointEvery int
	// DiskDevice overrides the heap device in disk mode; the crash-torture
	// harness injects a tearing in-memory device here. When set, DiskWAL
	// seeds recovery with the surviving log image and WALSink receives the
	// new epoch's log bytes.
	DiskDevice heap.Device
	// DiskWAL is the surviving WAL image recovered against when DiskDevice
	// is injected. Ignored in DataDir mode (the file is read instead).
	DiskWAL []byte
}

// Engine is one embedded database instance.
type Engine struct {
	cfg  Config
	cat  *catalog.Catalog
	mgr  *txn.Manager
	log  *wal.Log
	disk *diskStore // non-nil for disk-resident engines (OpenDisk)

	mu     sync.RWMutex
	tables map[string]*storage.Table

	planMu sync.RWMutex
	stmts  map[string]*cachedStmt

	vacStop   chan struct{}
	vacWG     sync.WaitGroup
	closeOnce sync.Once
}

// cachedStmt is one merged statement-cache entry: the parsed AST, the
// compiled plan (nil for DDL and transaction control), and the autocommit
// read-only classification, all filled by a single-flight compilation. The
// hot path (Session.Exec, Prepare) takes one read-lock hit to fetch the
// entry and then never touches an engine-wide lock again.
type cachedStmt struct {
	// done is closed once the entry is fully populated; lookups that race
	// the compiling goroutine block on it instead of compiling again.
	done chan struct{}
	ast  parser.Statement
	plan exec.Plan
	// readonly marks a bare SELECT without FOR UPDATE: its autocommitted
	// execution may run in a declared-read-only transaction.
	readonly bool
	err      error
}

// Open creates an engine with the given configuration.
func Open(cfg Config) *Engine {
	e := &Engine{
		cfg:    cfg,
		cat:    catalog.New(),
		mgr:    txn.NewManager(cfg.Mode),
		tables: map[string]*storage.Table{},
		stmts:  map[string]*cachedStmt{},
	}
	if cfg.WALPolicy != wal.SyncNone || cfg.CommitDelay > 0 || cfg.WALSink != nil {
		e.log = wal.New(wal.Options{Policy: cfg.WALPolicy, GroupInterval: cfg.GroupCommitInterval, W: cfg.WALSink})
		delay := cfg.CommitDelay
		payload := cfg.CommitPayload
		e.mgr.OnCommit = func(t *txn.Txn) error {
			var err error
			if payload != nil {
				err = e.log.AppendRecord(payload(t))
			} else {
				err = e.log.Append(t.WriteCount())
			}
			if err != nil {
				return err
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return nil
		}
	}
	if cfg.VacuumInterval > 0 {
		e.vacStop = make(chan struct{})
		e.vacWG.Add(1)
		go func() {
			defer e.vacWG.Done()
			e.vacuumLoop()
		}()
	}
	return e
}

// vacuumLoop is the online vacuum: each tick it sweeps the next row-store
// segment of every table at a fresh low-watermark, so reclamation cost is
// spread thin across the run instead of stopping the world. It exits when
// Close fires.
func (e *Engine) vacuumLoop() {
	ticker := time.NewTicker(e.cfg.VacuumInterval)
	defer ticker.Stop()
	cursor := 0
	for {
		select {
		case <-ticker.C:
			horizon, now := e.mgr.Horizon(), e.mgr.Clock()
			for _, t := range e.Tables() {
				t.VacuumSegment(cursor%t.Segments(), horizon, now)
			}
			cursor++
		case <-e.vacStop:
			return
		}
	}
}

// Name returns the engine instance name.
func (e *Engine) Name() string { return e.cfg.Name }

// Mode returns the engine's concurrency-control mode.
func (e *Engine) Mode() txn.Mode { return e.cfg.Mode }

// Close releases background resources (the vacuum goroutine and the WAL
// flusher). It is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.vacStop != nil {
			close(e.vacStop)
			e.vacWG.Wait()
		}
		e.log.Close()
		if e.disk != nil {
			e.disk.close()
		}
	})
}

// WAL exposes the engine's log for statistics; may be nil.
func (e *Engine) WAL() *wal.Log { return e.log }

// TxnManager exposes the engine's transaction manager. The consistency
// harness uses it for nowait scheduling and mutation switches; regular
// clients should stay on the Session surface.
func (e *Engine) TxnManager() *txn.Manager { return e.mgr }

// StorageTable implements exec.Resolver.
func (e *Engine) StorageTable(name string) (*storage.Table, error) {
	e.mu.RLock()
	t, ok := e.tables[strings.ToLower(name)]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sqldb: table %q does not exist", name)
	}
	return t, nil
}

// Catalog exposes schema metadata.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Tables lists the physical tables.
func (e *Engine) Tables() []*storage.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*storage.Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	return out
}

// Vacuum reclaims dead rows across all tables, returning slots reclaimed.
func (e *Engine) Vacuum() int {
	horizon, now := e.mgr.Horizon(), e.mgr.Clock()
	total := 0
	for _, t := range e.Tables() {
		total += t.Vacuum(horizon, now)
	}
	return total
}

// TruncateAll empties every table (the game's "reset the database" action).
// Callers must quiesce the workload first. On a disk-backed engine the first
// failure to log a truncate is returned; the in-memory tables are emptied
// regardless, and recovery re-derives the disk image from the WAL.
func (e *Engine) TruncateAll() error {
	var first error
	for _, t := range e.Tables() {
		t.Truncate()
		if e.disk != nil {
			if err := e.disk.onTruncate(t.Meta.Name); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// RowCount sums live row slots over all tables.
func (e *Engine) RowCount() int {
	n := 0
	for _, t := range e.Tables() {
		n += t.RowCount()
	}
	return n
}

// cachedStmt returns the cache entry for sql, parsing and compiling it on
// first use. Concurrent lookups of one uncached statement compile it exactly
// once (single-flight); everyone else blocks on the entry's done channel.
// The steady state is a single read-lock hit.
func (e *Engine) cachedStmt(sql string) (*cachedStmt, error) {
	e.planMu.RLock()
	cs, ok := e.stmts[sql]
	e.planMu.RUnlock()
	if !ok {
		e.planMu.Lock()
		cs, ok = e.stmts[sql]
		if !ok {
			cs = &cachedStmt{done: make(chan struct{})}
			e.stmts[sql] = cs
			e.planMu.Unlock()
			e.compileInto(cs, sql)
		} else {
			e.planMu.Unlock()
		}
	}
	<-cs.done
	if cs.err != nil {
		return nil, cs.err
	}
	return cs, nil
}

// compileInto populates a fresh cache entry. Compilation runs outside the
// cache lock so a slow statement never blocks unrelated lookups; failed
// entries are evicted so the next attempt (e.g. after the missing table is
// created) retries from scratch.
func (e *Engine) compileInto(cs *cachedStmt, sql string) {
	defer close(cs.done)
	ast, err := parser.Parse(sql)
	if err != nil {
		cs.err = err
		e.evict(sql, cs)
		return
	}
	cs.ast = ast
	switch s := ast.(type) {
	case *parser.Select:
		cs.readonly = !s.ForUpdate
	case *parser.Insert, *parser.Update, *parser.Delete:
	default:
		return // DDL / transaction control: no plan
	}
	plan, err := exec.Compile(ast, e)
	if err != nil {
		cs.err = err
		e.evict(sql, cs)
		return
	}
	cs.plan = plan
}

// evict removes a failed entry, unless DDL already replaced the whole cache.
func (e *Engine) evict(sql string, cs *cachedStmt) {
	e.planMu.Lock()
	if e.stmts[sql] == cs {
		delete(e.stmts, sql)
	}
	e.planMu.Unlock()
}

// invalidatePlans drops every cached statement after DDL.
func (e *Engine) invalidatePlans() {
	e.planMu.Lock()
	e.stmts = map[string]*cachedStmt{}
	e.planMu.Unlock()
}

// ErrNoTxn is returned by Commit/Rollback without an open transaction.
var ErrNoTxn = errors.New("sqldb: no transaction in progress")

// Session is one connection to the engine. It is not safe for concurrent
// use, mirroring a JDBC connection.
type Session struct {
	eng *Engine
	tx  *txn.Txn
	// last is the Info of the most recently finished transaction on this
	// session (explicit or autocommit), for history-recording harnesses.
	last txn.Info
	// paramBuf is the reusable argument-conversion buffer. Sessions are
	// single-goroutine (they carry transaction state), and no plan retains
	// its params slice past Execute, so one buffer per session suffices.
	paramBuf []sqlval.Value
}

// Session opens a new connection.
func (e *Engine) Session() *Session { return &Session{eng: e} }

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// Begin starts an explicit read-write transaction.
func (s *Session) Begin() error { return s.begin(false) }

// BeginReadOnly starts an explicit transaction declared read-only (the
// Serial engine admits concurrent declared-read-only transactions).
func (s *Session) BeginReadOnly() error { return s.begin(true) }

func (s *Session) begin(readonly bool) error {
	if s.tx != nil {
		return errors.New("sqldb: transaction already in progress")
	}
	// TryBegin so that a manager in nowait mode surfaces ErrBusy instead of
	// queueing; outside nowait mode it is identical to Begin.
	t, err := s.eng.mgr.TryBegin(readonly)
	if err != nil {
		return err
	}
	s.tx = t
	return nil
}

// Commit commits the open transaction.
func (s *Session) Commit() error {
	if s.tx == nil {
		return ErrNoTxn
	}
	err := s.tx.Commit()
	s.last = s.tx.Info()
	s.tx = nil
	return err
}

// Rollback aborts the open transaction.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return ErrNoTxn
	}
	s.tx.Abort()
	s.last = s.tx.Info()
	s.tx = nil
	return nil
}

// TxnInfo returns the identity of the session's open transaction, or of the
// most recently finished one when none is open (its Committed and SerialTS
// fields then carry the outcome).
func (s *Session) TxnInfo() txn.Info {
	if s.tx != nil {
		return s.tx.Info()
	}
	return s.last
}

// Exec parses (with caching) and executes one SQL statement. Without an open
// transaction, the statement runs in its own autocommitted transaction.
// Parameters accept the Go types supported by sqlval.FromGo.
func (s *Session) Exec(sql string, args ...any) (*exec.Result, error) {
	cs, err := s.eng.cachedStmt(sql)
	if err != nil {
		return nil, err
	}
	if cs.plan == nil {
		switch cs.ast.(type) {
		case *parser.Begin:
			return &exec.Result{}, s.Begin()
		case *parser.Commit:
			return &exec.Result{}, s.Commit()
		case *parser.Rollback:
			return &exec.Result{}, s.Rollback()
		default:
			if s.tx != nil {
				return nil, errors.New("sqldb: DDL inside a transaction is not supported")
			}
			return s.eng.execDDL(cs.ast)
		}
	}
	params, err := s.convertArgs(args)
	if err != nil {
		return nil, err
	}
	if s.tx != nil {
		return cs.plan.Execute(s.tx, params)
	}
	// Autocommit: read-only for bare SELECTs without FOR UPDATE.
	tx := s.eng.mgr.Begin(cs.readonly)
	res, err := cs.plan.Execute(tx, params)
	if err != nil {
		tx.Abort()
		s.last = tx.Info()
		return nil, err
	}
	err = tx.Commit()
	s.last = tx.Info()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Query is Exec for statements expected to return rows.
func (s *Session) Query(sql string, args ...any) (*exec.Result, error) {
	return s.Exec(sql, args...)
}

// QueryRow executes and returns the first row, or nil when there is none.
func (s *Session) QueryRow(sql string, args ...any) ([]sqlval.Value, error) {
	res, err := s.Exec(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// Stmt is a prepared statement bound to a session. It carries the compiled
// plan and its autocommit classification, so repeated execution touches no
// engine-wide lock at all.
type Stmt struct {
	s        *Session
	sql      string
	plan     exec.Plan
	readonly bool
}

// Prepare compiles a DML statement for repeated execution.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	cs, err := s.eng.cachedStmt(sql)
	if err != nil {
		return nil, err
	}
	if cs.plan == nil {
		return nil, fmt.Errorf("exec: cannot compile %T", cs.ast)
	}
	return &Stmt{s: s, sql: sql, plan: cs.plan, readonly: cs.readonly}, nil
}

// Exec runs the prepared statement in the session's current transaction (or
// autocommitted, read-only for bare SELECTs just like Session.Exec).
func (st *Stmt) Exec(args ...any) (*exec.Result, error) {
	params, err := st.s.convertArgs(args)
	if err != nil {
		return nil, err
	}
	if st.s.tx != nil {
		return st.plan.Execute(st.s.tx, params)
	}
	tx := st.s.eng.mgr.Begin(st.readonly)
	res, err := st.plan.Execute(tx, params)
	if err != nil {
		tx.Abort()
		st.s.last = tx.Info()
		return nil, err
	}
	err = tx.Commit()
	st.s.last = tx.Info()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Session) convertArgs(args []any) ([]sqlval.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	if cap(s.paramBuf) < len(args) {
		s.paramBuf = make([]sqlval.Value, len(args))
	}
	params := s.paramBuf[:len(args)]
	for i, a := range args {
		v, err := sqlval.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("sqldb: argument %d: %w", i+1, err)
		}
		params[i] = v
	}
	return params, nil
}

// execDDL applies a DDL statement.
func (e *Engine) execDDL(ast parser.Statement) (*exec.Result, error) {
	defer e.invalidatePlans()
	switch d := ast.(type) {
	case *parser.CreateTable:
		if e.cat.HasTable(d.Name) {
			if d.IfNotExists {
				return &exec.Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: table %q already exists", d.Name)
		}
		cols := make([]catalog.Column, len(d.Columns))
		for i, c := range d.Columns {
			col := catalog.Column{
				Name:     c.Name,
				TypeName: c.TypeName,
				Kind:     c.Kind,
				Size:     c.Size,
				NotNull:  c.NotNull,
				AutoInc:  c.AutoInc,
			}
			if c.Default != nil {
				v, err := evalConst(c.Default)
				if err != nil {
					return nil, fmt.Errorf("sqldb: default for column %q: %w", c.Name, err)
				}
				cv, err := sqlval.CoerceKind(v, c.Kind)
				if err != nil {
					return nil, fmt.Errorf("sqldb: default for column %q: %w", c.Name, err)
				}
				col.HasDefault = true
				col.Default = cv
			}
			cols[i] = col
		}
		meta, err := e.cat.CreateTable(d.Name, cols, d.PrimaryKey)
		if err != nil {
			return nil, err
		}
		for ui, unique := range d.Uniques {
			if _, err := e.cat.AddIndex(d.Name, fmt.Sprintf("%s_unique_%d", d.Name, ui), unique, true); err != nil {
				return nil, err
			}
		}
		tbl := storage.NewTable(meta)
		e.mu.Lock()
		e.tables[strings.ToLower(d.Name)] = tbl
		e.mu.Unlock()
		if e.disk != nil {
			if err := e.disk.onCreateTable(meta); err != nil {
				// Unwind: the table is not durable, so it must not exist.
				e.cat.DropTable(d.Name)
				e.mu.Lock()
				delete(e.tables, strings.ToLower(d.Name))
				e.mu.Unlock()
				return nil, err
			}
		}
		return &exec.Result{}, nil
	case *parser.CreateIndex:
		tbl, err := e.StorageTable(d.Table)
		if err != nil {
			return nil, err
		}
		idx, err := e.cat.AddIndex(d.Table, d.Name, d.Columns, d.Unique)
		if err != nil {
			if d.IfNotExists && strings.Contains(err.Error(), "already exists") {
				return &exec.Result{}, nil
			}
			return nil, err
		}
		tbl.AddIndex(idx)
		if e.disk != nil {
			if err := e.disk.onSchemaChange(e.cat, d.Table); err != nil {
				return nil, err
			}
		}
		return &exec.Result{}, nil
	case *parser.DropTable:
		if !e.cat.HasTable(d.Name) {
			if d.IfExists {
				return &exec.Result{}, nil
			}
			return nil, fmt.Errorf("sqldb: table %q does not exist", d.Name)
		}
		if err := e.cat.DropTable(d.Name); err != nil {
			return nil, err
		}
		e.mu.Lock()
		delete(e.tables, strings.ToLower(d.Name))
		e.mu.Unlock()
		if e.disk != nil {
			if err := e.disk.onDropTable(d.Name); err != nil {
				return nil, err
			}
		}
		return &exec.Result{}, nil
	case *parser.TruncateTable:
		tbl, err := e.StorageTable(d.Name)
		if err != nil {
			return nil, err
		}
		tbl.Truncate()
		if e.disk != nil {
			if err := e.disk.onTruncate(d.Name); err != nil {
				return nil, err
			}
		}
		return &exec.Result{}, nil
	default:
		return nil, fmt.Errorf("sqldb: unsupported DDL %T", ast)
	}
}

// evalConst evaluates a constant expression (DEFAULT clauses).
func evalConst(e parser.Expr) (sqlval.Value, error) {
	switch x := e.(type) {
	case *parser.Literal:
		return x.Val, nil
	case *parser.Unary:
		if x.Op == "-" {
			v, err := evalConst(x.X)
			if err != nil {
				return sqlval.Value{}, err
			}
			return sqlval.Sub(sqlval.NewInt(0), v)
		}
	}
	return sqlval.Value{}, fmt.Errorf("non-constant expression")
}
