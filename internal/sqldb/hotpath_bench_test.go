package sqldb

import (
	"fmt"
	"testing"

	"benchpress/internal/sqldb/txn"
)

// benchEngine builds an engine with a seeded table for the hot-path
// microbenchmarks: 1000 rows, integer primary key, secondary index on grp
// (10 rows per group value).
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e := Open(Config{Mode: txn.MVCC})
	s := e.Session()
	steps := []string{
		"CREATE TABLE bench (id INT NOT NULL, grp INT, val INT, PRIMARY KEY (id))",
		"CREATE INDEX bench_grp ON bench (grp)",
	}
	for _, sql := range steps {
		if _, err := s.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if _, err := s.Exec("INSERT INTO bench (id, grp, val) VALUES (?, ?, ?)", i, i/10, i*7); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkPreparedPointRead is the canonical OLTP hot path: an autocommitted
// prepared primary-key lookup. Allocations here are paid on every transaction
// of every point-read workload.
func BenchmarkPreparedPointRead(b *testing.B) {
	e := benchEngine(b)
	st, err := e.Session().Prepare("SELECT val FROM bench WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec(i % 1000)
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("rows=%v err=%v", res, err)
		}
	}
}

// BenchmarkPreparedRangeScan reads one 10-row group through the secondary
// index, exercising scan-bound scratch reuse and the Result.Rows capacity
// hint.
func BenchmarkPreparedRangeScan(b *testing.B) {
	e := benchEngine(b)
	st, err := e.Session().Prepare("SELECT id, val FROM bench WHERE grp = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec(i % 100)
		if err != nil || len(res.Rows) != 10 {
			b.Fatalf("rows=%d err=%v", len(res.Rows), err)
		}
	}
}

// BenchmarkPreparedInsert appends fresh rows through a prepared INSERT; the
// row data slice itself must be allocated (storage retains it), everything
// else should be reused.
func BenchmarkPreparedInsert(b *testing.B) {
	e := benchEngine(b)
	st, err := e.Session().Prepare("INSERT INTO bench (id, grp, val) VALUES (?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1000 + i
		if _, err := st.Exec(id, id/10, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedUpdate rewrites one row by primary key, exercising
// collectMatches (pooled env, no defensive image copy) plus the write path.
func BenchmarkPreparedUpdate(b *testing.B) {
	e := benchEngine(b)
	st, err := e.Session().Prepare("UPDATE bench SET val = ? WHERE id = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Exec(i, i%1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecPointRead runs the same point read through Session.Exec with
// SQL text, measuring the merged statement cache's single read-lock hit on
// top of the prepared path.
func BenchmarkExecPointRead(b *testing.B) {
	e := benchEngine(b)
	s := e.Session()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec("SELECT val FROM bench WHERE id = ?", i%1000)
		if err != nil || len(res.Rows) != 1 {
			b.Fatalf("rows=%v err=%v", res, err)
		}
	}
}

// TestPreparedPointReadAllocSmoke is the allocation regression gate wired
// into scripts/verify.sh: a prepared autocommitted point read must stay
// within a small fixed allocation budget. The bound leaves 2x headroom over
// the measured 4 allocs/op so it only trips on structural regressions like a
// lost pool or a per-row buffer creeping back in.
func TestPreparedPointReadAllocSmoke(t *testing.T) {
	e := Open(Config{Mode: txn.MVCC})
	s := e.Session()
	if _, err := s.Exec("CREATE TABLE sm (id INT NOT NULL, v INT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Exec("INSERT INTO sm (id, v) VALUES (?, ?)", i, i); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Prepare("SELECT v FROM sm WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	var i int
	avg := testing.AllocsPerRun(200, func() {
		res, err := st.Exec(i % 100)
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("rows=%v err=%v", res, err)
		}
		i++
	})
	const budget = 8
	if avg > budget {
		t.Fatalf("prepared point read allocates %.1f objects/op, budget %d", avg, budget)
	}
	if testing.Verbose() {
		fmt.Printf("prepared point read: %.1f allocs/op (budget %d)\n", avg, budget)
	}
}
