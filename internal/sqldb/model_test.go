package sqldb

import (
	"math/rand"
	"sort"
	"testing"

	"benchpress/internal/sqldb/txn"
)

// TestModelBasedRandomOps drives the engine with a random sequence of
// inserts, point updates, deletes, point reads, and range counts, mirroring
// every operation into a plain Go map, and checks the two never diverge.
// Runs against all three engines (single session, so concurrency control is
// not the variable - plan/executor/storage correctness is).
func TestModelBasedRandomOps(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Serial, txn.Locking, txn.MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEngine(t, mode)
			s := e.Session()
			mustExec(t, s, `CREATE TABLE m (
				k INT NOT NULL, v INT, tag INT, PRIMARY KEY (k))`)
			mustExec(t, s, "CREATE INDEX idx_m_tag ON m (tag)")

			type rowVal struct{ v, tag int64 }
			model := map[int64]rowVal{}
			rng := rand.New(rand.NewSource(20150531))
			const keySpace = 200

			for op := 0; op < 4000; op++ {
				k := rng.Int63n(keySpace)
				switch rng.Intn(6) {
				case 0: // insert
					v, tag := rng.Int63n(1000), rng.Int63n(10)
					_, err := s.Exec("INSERT INTO m VALUES (?, ?, ?)", k, v, tag)
					if _, exists := model[k]; exists {
						if err == nil {
							t.Fatalf("op %d: duplicate insert of %d accepted", op, k)
						}
					} else {
						if err != nil {
							t.Fatalf("op %d: insert %d: %v", op, k, err)
						}
						model[k] = rowVal{v, tag}
					}
				case 1: // update
					v, tag := rng.Int63n(1000), rng.Int63n(10)
					res, err := s.Exec("UPDATE m SET v = ?, tag = ? WHERE k = ?", v, tag, k)
					if err != nil {
						t.Fatalf("op %d: update: %v", op, err)
					}
					_, exists := model[k]
					if exists != (res.RowsAffected == 1) {
						t.Fatalf("op %d: update affected=%d, model exists=%v", op, res.RowsAffected, exists)
					}
					if exists {
						model[k] = rowVal{v, tag}
					}
				case 2: // delete
					res, err := s.Exec("DELETE FROM m WHERE k = ?", k)
					if err != nil {
						t.Fatalf("op %d: delete: %v", op, err)
					}
					_, exists := model[k]
					if exists != (res.RowsAffected == 1) {
						t.Fatalf("op %d: delete affected=%d, model exists=%v", op, res.RowsAffected, exists)
					}
					delete(model, k)
				case 3: // point read
					row, err := s.QueryRow("SELECT v, tag FROM m WHERE k = ?", k)
					if err != nil {
						t.Fatalf("op %d: read: %v", op, err)
					}
					want, exists := model[k]
					if exists != (row != nil) {
						t.Fatalf("op %d: read found=%v, model exists=%v", op, row != nil, exists)
					}
					if exists && (row[0].Int() != want.v || row[1].Int() != want.tag) {
						t.Fatalf("op %d: read (%d,%d), model (%d,%d)",
							op, row[0].Int(), row[1].Int(), want.v, want.tag)
					}
				case 4: // count by indexed tag
					tag := rng.Int63n(10)
					row, err := s.QueryRow("SELECT COUNT(*) FROM m WHERE tag = ?", tag)
					if err != nil {
						t.Fatalf("op %d: count: %v", op, err)
					}
					want := int64(0)
					for _, rv := range model {
						if rv.tag == tag {
							want++
						}
					}
					if row[0].Int() != want {
						t.Fatalf("op %d: count(tag=%d) = %d, model %d", op, tag, row[0].Int(), want)
					}
				case 5: // range scan over the PK
					lo := rng.Int63n(keySpace)
					hi := lo + rng.Int63n(keySpace-lo+1)
					res, err := s.Query("SELECT k FROM m WHERE k BETWEEN ? AND ? ORDER BY k", lo, hi)
					if err != nil {
						t.Fatalf("op %d: range: %v", op, err)
					}
					var want []int64
					for mk := range model {
						if mk >= lo && mk <= hi {
							want = append(want, mk)
						}
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					if len(res.Rows) != len(want) {
						t.Fatalf("op %d: range [%d,%d] returned %d rows, model %d",
							op, lo, hi, len(res.Rows), len(want))
					}
					for i := range want {
						if res.Rows[i][0].Int() != want[i] {
							t.Fatalf("op %d: range row %d = %d, model %d",
								op, i, res.Rows[i][0].Int(), want[i])
						}
					}
				}
			}
			// Final full-table comparison.
			res, err := s.Query("SELECT k, v, tag FROM m ORDER BY k")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != len(model) {
				t.Fatalf("final count %d, model %d", len(res.Rows), len(model))
			}
			for _, r := range res.Rows {
				want := model[r[0].Int()]
				if r[1].Int() != want.v || r[2].Int() != want.tag {
					t.Fatalf("final row %v, model %+v", r, want)
				}
			}
		})
	}
}

// TestModelWithTransactions layers explicit transactions (some committed,
// some rolled back) over the model comparison.
func TestModelWithTransactions(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE mt (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		staged := map[int64]*int64{} // nil value = delete
		for i := 0; i < 1+rng.Intn(5); i++ {
			k := rng.Int63n(50)
			if rng.Intn(4) == 0 {
				s.Exec("DELETE FROM mt WHERE k = ?", k)
				staged[k] = nil
				continue
			}
			v := rng.Int63n(1000)
			if _, inModel := effective(model, staged, k); inModel {
				if _, err := s.Exec("UPDATE mt SET v = ? WHERE k = ?", v, k); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := s.Exec("INSERT INTO mt VALUES (?, ?)", k, v); err != nil {
					t.Fatalf("round %d: insert %d: %v", round, k, err)
				}
			}
			vv := v
			staged[k] = &vv
		}
		if rng.Intn(2) == 0 {
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
			for k, v := range staged {
				if v == nil {
					delete(model, k)
				} else {
					model[k] = *v
				}
			}
		} else if err := s.Rollback(); err != nil {
			t.Fatal(err)
		}
		// Cross-check a random key after each round.
		k := rng.Int63n(50)
		row, err := s.QueryRow("SELECT v FROM mt WHERE k = ?", k)
		if err != nil {
			t.Fatal(err)
		}
		want, exists := model[k]
		if exists != (row != nil) {
			t.Fatalf("round %d: key %d found=%v model=%v", round, k, row != nil, exists)
		}
		if exists && row[0].Int() != want {
			t.Fatalf("round %d: key %d = %d, model %d", round, k, row[0].Int(), want)
		}
	}
}

// effective resolves a key through the staged-but-uncommitted overlay.
func effective(model map[int64]int64, staged map[int64]*int64, k int64) (int64, bool) {
	if v, ok := staged[k]; ok {
		if v == nil {
			return 0, false
		}
		return *v, true
	}
	v, ok := model[k]
	return v, ok
}
