package sqldb

import (
	"strings"
	"testing"

	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqldb/txn"
)

func newEngine(t *testing.T, mode txn.Mode) *Engine {
	t.Helper()
	e := Open(Config{Name: "test", Mode: mode})
	t.Cleanup(e.Close)
	return e
}

func mustExec(t *testing.T, s *Session, sql string, args ...any) {
	t.Helper()
	if _, err := s.Exec(sql, args...); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

func setupPeople(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE people (
		id INT NOT NULL,
		name VARCHAR(32) NOT NULL,
		age INT,
		city VARCHAR(16),
		balance DOUBLE DEFAULT 0,
		PRIMARY KEY (id)
	)`)
	mustExec(t, s, "CREATE INDEX idx_people_city ON people (city)")
	rows := []struct {
		id      int
		name    string
		age     int
		city    string
		balance float64
	}{
		{1, "alice", 30, "pgh", 10},
		{2, "bob", 25, "nyc", 20},
		{3, "carol", 35, "pgh", 30},
		{4, "dave", 25, "sfo", 40},
		{5, "erin", 40, "nyc", 50},
	}
	for _, r := range rows {
		mustExec(t, s, "INSERT INTO people (id, name, age, city, balance) VALUES (?, ?, ?, ?, ?)",
			r.id, r.name, r.age, r.city, r.balance)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Serial, txn.Locking, txn.MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEngine(t, mode)
			s := e.Session()
			setupPeople(t, s)
			res, err := s.Query("SELECT name, age FROM people WHERE id = ?", 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].Str() != "carol" || res.Rows[0][1].Int() != 35 {
				t.Fatalf("rows = %v", res.Rows)
			}
			if res.Columns[0] != "name" || res.Columns[1] != "age" {
				t.Fatalf("columns = %v", res.Columns)
			}
		})
	}
}

func TestSelectStar(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT * FROM people WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 || len(res.Rows) != 1 {
		t.Fatalf("cols=%v rows=%d", res.Columns, len(res.Rows))
	}
}

func TestSecondaryIndexQuery(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT id FROM people WHERE city = ? ORDER BY id", "pgh")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRangeQuery(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT id FROM people WHERE id >= 2 AND id <= 4 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res, err = s.Query("SELECT id FROM people WHERE id BETWEEN ? AND ? ORDER BY id DESC", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 4 {
		t.Fatalf("desc rows = %v", res.Rows)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT name FROM people ORDER BY age DESC, name LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "carol" || res.Rows[1][0].Str() != "alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT COUNT(*), SUM(balance), AVG(age), MIN(age), MAX(age) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 5 || r[1].Float() != 150 || r[2].Float() != 31 || r[3].Int() != 25 || r[4].Int() != 40 {
		t.Fatalf("aggs = %v", r)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT COUNT(*), SUM(balance) FROM people WHERE id > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query(`SELECT city, COUNT(*) AS n, SUM(balance) AS total
		FROM people GROUP BY city HAVING COUNT(*) > 1 ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].Str() != "nyc" || res.Rows[0][1].Int() != 2 || res.Rows[0][2].Float() != 70 {
		t.Fatalf("first group = %v", res.Rows[0])
	}
	if res.Rows[1][0].Str() != "pgh" {
		t.Fatalf("second group = %v", res.Rows[1])
	}
}

func TestCountDistinct(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT COUNT(DISTINCT city), COUNT(DISTINCT age) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Int() != 4 {
		t.Fatalf("distinct counts = %v", res.Rows[0])
	}
}

func TestDistinctRows(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query("SELECT DISTINCT city FROM people ORDER BY city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, `CREATE TABLE orders (
		o_id INT NOT NULL, o_pid INT NOT NULL, amount DOUBLE, PRIMARY KEY (o_id))`)
	mustExec(t, s, "CREATE INDEX idx_orders_pid ON orders (o_pid)")
	for i, pid := range []int{1, 1, 2, 3, 3, 3} {
		mustExec(t, s, "INSERT INTO orders (o_id, o_pid, amount) VALUES (?, ?, ?)", i+1, pid, float64(i+1)*10)
	}
	res, err := s.Query(`SELECT p.name, o.amount FROM people p
		JOIN orders o ON o.o_pid = p.id WHERE p.city = ? ORDER BY o.amount`, "pgh")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	// Comma-join with WHERE predicate.
	res, err = s.Query(`SELECT COUNT(*) FROM people p, orders o WHERE o.o_pid = p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("comma join count = %v", res.Rows[0])
	}
	// Aggregation over a join.
	res, err = s.Query(`SELECT p.name, SUM(o.amount) AS total FROM people p
		JOIN orders o ON o.o_pid = p.id GROUP BY p.id, p.name ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Str() != "carol" {
		t.Fatalf("grouped join = %v", res.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, "CREATE TABLE pets (pet_id INT NOT NULL, owner INT, pname VARCHAR(10), PRIMARY KEY (pet_id))")
	mustExec(t, s, "INSERT INTO pets (pet_id, owner, pname) VALUES (1, 1, 'rex'), (2, 3, 'tom')")
	res, err := s.Query(`SELECT p.name, pt.pname FROM people p
		LEFT JOIN pets pt ON pt.owner = p.id ORDER BY p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("left join rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Str() != "rex" {
		t.Fatalf("matched row = %v", res.Rows[0])
	}
	if !res.Rows[1][1].IsNull() {
		t.Fatalf("unmatched row should be NULL-extended: %v", res.Rows[1])
	}
}

func TestUpdate(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Serial, txn.Locking, txn.MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEngine(t, mode)
			s := e.Session()
			setupPeople(t, s)
			res, err := s.Exec("UPDATE people SET balance = balance + ?, age = age + 1 WHERE city = ?", 5.0, "pgh")
			if err != nil {
				t.Fatal(err)
			}
			if res.RowsAffected != 2 {
				t.Fatalf("affected = %d", res.RowsAffected)
			}
			row, err := s.QueryRow("SELECT balance, age FROM people WHERE id = 1")
			if err != nil || row == nil {
				t.Fatal(err)
			}
			if row[0].Float() != 15 || row[1].Int() != 31 {
				t.Fatalf("row = %v", row)
			}
		})
	}
}

func TestUpdateIndexedColumn(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, "UPDATE people SET city = ? WHERE id = 1", "sfo")
	res, err := s.Query("SELECT id FROM people WHERE city = 'sfo' ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The old index entry must not produce the row anymore.
	res, err = s.Query("SELECT id FROM people WHERE city = 'pgh'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Fatalf("stale index rows = %v", res.Rows)
	}
}

func TestDelete(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Exec("DELETE FROM people WHERE age < ?", 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	cnt, _ := s.QueryRow("SELECT COUNT(*) FROM people")
	if cnt[0].Int() != 3 {
		t.Fatalf("count = %v", cnt)
	}
}

func TestExplicitTransactionCommitRollback(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Serial, txn.Locking, txn.MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEngine(t, mode)
			s := e.Session()
			setupPeople(t, s)

			mustExec(t, s, "BEGIN")
			mustExec(t, s, "UPDATE people SET balance = 0 WHERE id = 1")
			mustExec(t, s, "ROLLBACK")
			row, _ := s.QueryRow("SELECT balance FROM people WHERE id = 1")
			if row[0].Float() != 10 {
				t.Fatalf("rollback failed: %v", row)
			}

			mustExec(t, s, "BEGIN")
			mustExec(t, s, "UPDATE people SET balance = 0 WHERE id = 1")
			mustExec(t, s, "COMMIT")
			row, _ = s.QueryRow("SELECT balance FROM people WHERE id = 1")
			if row[0].Float() != 0 {
				t.Fatalf("commit failed: %v", row)
			}
		})
	}
}

func TestSelectForUpdateBlocksWriter(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s1 := e.Session()
	setupPeople(t, s1)
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Query("SELECT balance FROM people WHERE id = 1 FOR UPDATE"); err != nil {
		t.Fatal(err)
	}
	s2 := e.Session()
	if _, err := s2.Exec("UPDATE people SET balance = 99 WHERE id = 1"); err == nil {
		t.Fatal("concurrent writer should conflict with FOR UPDATE claim")
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("UPDATE people SET balance = 99 WHERE id = 1"); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestInsertDefaultsAndAutoInc(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, `CREATE TABLE logs (
		id INT NOT NULL AUTO_INCREMENT,
		msg VARCHAR(100) NOT NULL,
		level INT DEFAULT 3,
		PRIMARY KEY (id))`)
	res, err := s.Exec("INSERT INTO logs (msg) VALUES ('hello')")
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 1 {
		t.Fatalf("LastInsertID = %d", res.LastInsertID)
	}
	res, err = s.Exec("INSERT INTO logs (msg) VALUES ('world')")
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 2 {
		t.Fatalf("LastInsertID = %d", res.LastInsertID)
	}
	row, _ := s.QueryRow("SELECT level FROM logs WHERE id = 1")
	if row[0].Int() != 3 {
		t.Fatalf("default = %v", row)
	}
	// Explicit id bumps the sequence.
	mustExec(t, s, "INSERT INTO logs (id, msg) VALUES (10, 'jump')")
	res, _ = s.Exec("INSERT INTO logs (msg) VALUES ('after')")
	if res.LastInsertID != 11 {
		t.Fatalf("LastInsertID after bump = %d", res.LastInsertID)
	}
}

func TestNotNullViolation(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	if _, err := s.Exec("INSERT INTO people (id, name) VALUES (100, NULL)"); err == nil {
		t.Fatal("NOT NULL violation accepted")
	}
	if _, err := s.Exec("UPDATE people SET name = NULL WHERE id = 1"); err == nil {
		t.Fatal("NOT NULL update violation accepted")
	}
}

func TestDuplicatePrimaryKey(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	if _, err := s.Exec("INSERT INTO people (id, name) VALUES (1, 'dup')"); err == nil {
		t.Fatal("duplicate PK accepted")
	}
}

func TestVarcharTruncation(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE v (id INT NOT NULL, s VARCHAR(4), PRIMARY KEY (id))")
	mustExec(t, s, "INSERT INTO v (id, s) VALUES (1, 'abcdefgh')")
	row, _ := s.QueryRow("SELECT s FROM v WHERE id = 1")
	if row[0].Str() != "abcd" {
		t.Fatalf("s = %q", row[0].Str())
	}
}

func TestCaseExpression(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	res, err := s.Query(`SELECT SUM(CASE WHEN age < 30 THEN 1 ELSE 0 END),
		SUM(CASE WHEN age >= 30 THEN 1 ELSE 0 END) FROM people`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 || res.Rows[0][1].Int() != 3 {
		t.Fatalf("case sums = %v", res.Rows[0])
	}
}

func TestLikeInIsNull(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, "INSERT INTO people (id, name, age, city) VALUES (6, 'frank', NULL, NULL)")
	res, _ := s.Query("SELECT id FROM people WHERE name LIKE 'a%'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("like rows = %v", res.Rows)
	}
	res, _ = s.Query("SELECT id FROM people WHERE city IN ('pgh', 'sfo') ORDER BY id")
	if len(res.Rows) != 3 {
		t.Fatalf("in rows = %v", res.Rows)
	}
	res, _ = s.Query("SELECT id FROM people WHERE age IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 6 {
		t.Fatalf("is null rows = %v", res.Rows)
	}
	res, _ = s.Query("SELECT COUNT(*) FROM people WHERE age IS NOT NULL")
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("is not null = %v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	row, err := s.QueryRow("SELECT UPPER(name), LENGTH(name), SUBSTR(name, 1, 2) FROM people WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Str() != "ALICE" || row[1].Int() != 5 || row[2].Str() != "al" {
		t.Fatalf("row = %v", row)
	}
}

func TestTruncateTable(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, "TRUNCATE TABLE people")
	cnt, _ := s.QueryRow("SELECT COUNT(*) FROM people")
	if cnt[0].Int() != 0 {
		t.Fatalf("count after truncate = %v", cnt)
	}
	mustExec(t, s, "INSERT INTO people (id, name) VALUES (1, 'again')")
}

func TestDropTable(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, "DROP TABLE people")
	if _, err := s.Query("SELECT * FROM people"); err == nil {
		t.Fatal("query after drop succeeded")
	}
	mustExec(t, s, "DROP TABLE IF EXISTS people")
}

func TestMultiRowInsert(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE m (a INT NOT NULL, PRIMARY KEY (a))")
	res, err := s.Exec("INSERT INTO m (a) VALUES (1), (2), (3)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
}

func TestPreparedStatementReuse(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	st, err := s.Prepare("SELECT name FROM people WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"alice", "bob", "carol"} {
		res, err := st.Exec(i + 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Str() != want {
			t.Fatalf("row %d = %v", i, res.Rows)
		}
	}
}

func TestPlanUsesIndexes(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	// Exact PK lookup.
	cs, err := e.cachedStmt("SELECT name FROM people WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := explainOf(cs.plan); !strings.Contains(got, "pk-lookup") {
		t.Errorf("PK query plan = %s", got)
	}
	// Secondary index.
	cs, err = e.cachedStmt("SELECT name FROM people WHERE city = ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := explainOf(cs.plan); !strings.Contains(got, "index-range") {
		t.Errorf("secondary query plan = %s", got)
	}
	// Unindexed predicate: sequential scan.
	cs, err = e.cachedStmt("SELECT name FROM people WHERE age = ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := explainOf(cs.plan); !strings.Contains(got, "seqscan") {
		t.Errorf("unindexed query plan = %s", got)
	}
}

func TestVacuumThroughEngine(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	mustExec(t, s, "DELETE FROM people WHERE id <= 3")
	if n := e.Vacuum(); n != 3 {
		t.Fatalf("vacuumed %d, want 3", n)
	}
	cnt, _ := s.QueryRow("SELECT COUNT(*) FROM people")
	if cnt[0].Int() != 2 {
		t.Fatalf("count = %v", cnt)
	}
}

func TestSessionErrors(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	if err := s.Commit(); err != ErrNoTxn {
		t.Fatalf("commit without txn: %v", err)
	}
	if err := s.Rollback(); err != ErrNoTxn {
		t.Fatalf("rollback without txn: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err == nil {
		t.Fatal("nested begin accepted")
	}
	s.Rollback()
	if _, err := s.Exec("SELECT bogus FROM nothere"); err == nil {
		t.Fatal("query on missing table accepted")
	}
}

func TestArithmeticInSelect(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	row, err := s.QueryRow("SELECT balance * 2 + 1, age - 5, age % 7 FROM people WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Float() != 41 || row[1].Int() != 20 || row[2].Int() != 4 {
		t.Fatalf("row = %v", row)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, `CREATE TABLE wd (w INT NOT NULL, d INT NOT NULL, ytd DOUBLE, PRIMARY KEY (w, d))`)
	for w := 1; w <= 3; w++ {
		for d := 1; d <= 10; d++ {
			mustExec(t, s, "INSERT INTO wd (w, d, ytd) VALUES (?, ?, ?)", w, d, float64(w*100+d))
		}
	}
	row, err := s.QueryRow("SELECT ytd FROM wd WHERE w = ? AND d = ?", 2, 7)
	if err != nil || row == nil {
		t.Fatalf("row=%v err=%v", row, err)
	}
	if row[0].Float() != 207 {
		t.Fatalf("ytd = %v", row[0])
	}
	// Prefix scan on first PK column.
	res, err := s.Query("SELECT COUNT(*) FROM wd WHERE w = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("prefix count = %v", res.Rows[0])
	}
	// Prefix + range.
	res, err = s.Query("SELECT COUNT(*) FROM wd WHERE w = 2 AND d >= 5 AND d <= 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("prefix range count = %v", res.Rows[0])
	}
}

func TestConcurrentSessionsMVCC(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	setupPeople(t, s)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			sess := e.Session()
			var firstErr error
			for i := 0; i < 100; i++ {
				id := (w*100+i)%5 + 1
				if _, err := sess.Query("SELECT name, balance FROM people WHERE id = ?", id); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			done <- firstErr
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// explainOf renders a plan's access-path summary.
func explainOf(p exec.Plan) string { return exec.Explain(p) }

// Regression: updating an indexed column leaves the old index entry behind
// (by design, for snapshot readers); scans that do not constrain the updated
// column must still return each row exactly once, and scans on the old value
// must not return the row at all.
func TestUpdatedIndexEntryNotDuplicated(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE res (id INT NOT NULL, flight INT, seat INT, PRIMARY KEY (id))")
	mustExec(t, s, "CREATE UNIQUE INDEX idx_fs ON res (flight, seat)")
	mustExec(t, s, "INSERT INTO res VALUES (1, 7, 10), (2, 7, 11), (3, 8, 10)")
	// Move row 1 to another seat (same flight): its index key changes.
	mustExec(t, s, "UPDATE res SET seat = 99 WHERE id = 1")

	cnt, _ := s.QueryRow("SELECT COUNT(*) FROM res WHERE flight = 7")
	if cnt[0].Int() != 2 {
		t.Fatalf("count by flight = %v, want 2 (duplicate index entries?)", cnt[0])
	}
	// The vacated seat must read as free...
	row, _ := s.QueryRow("SELECT id FROM res WHERE flight = 7 AND seat = 10")
	if row != nil {
		t.Fatalf("vacated seat still occupied by %v", row)
	}
	// ...and be insertable again despite the stale unique-index entry.
	if _, err := s.Exec("INSERT INTO res VALUES (4, 7, 10)"); err != nil {
		t.Fatalf("re-insert into vacated unique slot: %v", err)
	}
	// The new position is found.
	row, _ = s.QueryRow("SELECT id FROM res WHERE flight = 7 AND seat = 99")
	if row == nil || row[0].Int() != 1 {
		t.Fatalf("moved row not found at new seat: %v", row)
	}
}

// The same discipline applies to primary-key updates.
func TestUpdatedPrimaryKeyLookup(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, "CREATE TABLE pkm (id INT NOT NULL, v INT, PRIMARY KEY (id))")
	mustExec(t, s, "INSERT INTO pkm VALUES (1, 10)")
	mustExec(t, s, "UPDATE pkm SET id = 2 WHERE id = 1")
	row, _ := s.QueryRow("SELECT v FROM pkm WHERE id = 1")
	if row != nil {
		t.Fatalf("old PK still resolves: %v", row)
	}
	row, _ = s.QueryRow("SELECT v FROM pkm WHERE id = 2")
	if row == nil || row[0].Int() != 10 {
		t.Fatalf("new PK not found: %v", row)
	}
	cnt, _ := s.QueryRow("SELECT COUNT(*) FROM pkm")
	if cnt[0].Int() != 1 {
		t.Fatalf("count = %v", cnt[0])
	}
}

// The order-by/limit pushdown must agree exactly with the materialize-and-
// sort path across ascending/descending, offsets, and secondary indexes.
func TestOrderByPushdownEquivalence(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s := e.Session()
	mustExec(t, s, `CREATE TABLE ev (id INT NOT NULL, grp INT, ts INT, note VARCHAR(8), PRIMARY KEY (id))`)
	mustExec(t, s, "CREATE INDEX idx_ev_grp_ts ON ev (grp, ts)")
	for i := 0; i < 200; i++ {
		mustExec(t, s, "INSERT INTO ev VALUES (?, ?, ?, ?)", i, i%5, (i*37)%101, "n")
	}
	// Pushdown-eligible: ORDER BY continues the index after the eq prefix.
	fast, err := s.Query("SELECT id, ts FROM ev WHERE grp = ? ORDER BY ts DESC LIMIT 7", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: force a non-pushdown plan by ordering on an expression.
	slow, err := s.Query("SELECT id, ts FROM ev WHERE grp = ? ORDER BY ts + 0 DESC, id LIMIT 7", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Rows) != 7 || len(slow.Rows) != len(fast.Rows) {
		t.Fatalf("row counts: fast=%d slow=%d", len(fast.Rows), len(slow.Rows))
	}
	for i := range fast.Rows {
		if fast.Rows[i][1].Int() != slow.Rows[i][1].Int() {
			t.Fatalf("row %d: pushdown ts=%v reference ts=%v", i, fast.Rows[i][1], slow.Rows[i][1])
		}
	}
	// Ascending with offset through the primary key.
	asc, err := s.Query("SELECT id FROM ev WHERE id >= 50 ORDER BY id LIMIT 5 OFFSET 3")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{53, 54, 55, 56, 57} {
		if asc.Rows[i][0].Int() != want {
			t.Fatalf("asc offset rows = %v", asc.Rows)
		}
	}
	// LIMIT 0 returns nothing and must not error.
	zero, err := s.Query("SELECT id FROM ev ORDER BY id LIMIT 0")
	if err != nil || len(zero.Rows) != 0 {
		t.Fatalf("limit 0: %v %v", zero, err)
	}
	// Parameterized limit.
	pl, err := s.Query("SELECT id FROM ev WHERE grp = ? ORDER BY ts LIMIT ?", 2, 4)
	if err != nil || len(pl.Rows) != 4 {
		t.Fatalf("param limit: %d rows, err %v", len(pl.Rows), err)
	}
}

// FOR UPDATE with a pushed-down LIMIT must only claim the returned rows,
// leaving the rest of the range writable by others.
func TestForUpdateLimitClaimsOnlyReturnedRows(t *testing.T) {
	e := newEngine(t, txn.MVCC)
	s1 := e.Session()
	mustExec(t, s1, "CREATE TABLE q (id INT NOT NULL, state INT, PRIMARY KEY (id))")
	for i := 0; i < 20; i++ {
		mustExec(t, s1, "INSERT INTO q VALUES (?, 0)", i)
	}
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	row, err := s1.Query("SELECT id FROM q ORDER BY id LIMIT 1 FOR UPDATE")
	if err != nil || len(row.Rows) != 1 || row.Rows[0][0].Int() != 0 {
		t.Fatalf("head claim: %v %v", row, err)
	}
	// Another session must be able to write any other row immediately.
	s2 := e.Session()
	if _, err := s2.Exec("UPDATE q SET state = 1 WHERE id = 5"); err != nil {
		t.Fatalf("row 5 should not be claimed: %v", err)
	}
	// But the claimed head row conflicts.
	if _, err := s2.Exec("UPDATE q SET state = 1 WHERE id = 0"); err == nil {
		t.Fatal("claimed head row was writable by another session")
	}
	s1.Commit()
}

// TestAutocommitTxnInfo is the regression test for autocommit outcome
// reporting: Exec outside an explicit transaction used to leave the session's
// last-transaction info untouched, so observers (the consistency harness
// records serialization timestamps through it) saw a stale or zero Info.
// Both the success and the failure path must publish the autocommit txn.
func TestAutocommitTxnInfo(t *testing.T) {
	for _, mode := range []txn.Mode{txn.Serial, txn.Locking, txn.MVCC} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEngine(t, mode)
			s := e.Session()
			setupPeople(t, s)
			mustExec(t, s, "UPDATE people SET age = 31 WHERE id = 1")
			info := s.TxnInfo()
			if !info.Committed || info.ID == 0 || info.SerialTS == 0 {
				t.Fatalf("successful autocommit not published: %+v", info)
			}
			prev := info.ID
			if _, err := s.Exec("INSERT INTO people (id, name) VALUES (1, 'dup')"); err == nil {
				t.Fatal("duplicate insert succeeded")
			}
			info = s.TxnInfo()
			if info.ID == prev {
				t.Fatalf("failed autocommit did not publish a new txn: %+v", info)
			}
			if info.Committed {
				t.Fatalf("failed autocommit reported committed: %+v", info)
			}
		})
	}
}
