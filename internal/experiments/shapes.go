package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/game"
)

// ShapeNames lists the four challenge shapes of Section 4.1.1.
var ShapeNames = []string{"steps", "sinusoidal", "peak", "tunnel"}

// BuildCourse constructs one of the paper's challenge shapes scaled around a
// base throughput. The corridor width is generous enough that a capable
// engine survives and a saturated one crashes.
func BuildCourse(shape string, base float64, duration time.Duration, tick time.Duration) (*game.Course, error) {
	width := base * 1.2
	switch shape {
	case "steps":
		per := duration / 5
		return game.Steps("steps", base/2, base/4, 5, per, width, tick), nil
	case "sinusoidal":
		return game.Sinusoidal("sinusoidal", base, base/2, duration/3, duration, width, tick), nil
	case "peak":
		lead := duration * 2 / 5
		spike := duration / 5
		return game.Peak("peak", base/2, base*2, lead, spike, duration-lead-spike, width, tick), nil
	case "tunnel":
		// Tunnels demand a "constant tight throughput": half the corridor
		// of the other shapes, so an engine that cannot hold the rate (or
		// oscillates at its limit) hits the walls.
		return game.Tunnel("tunnel", base, base*0.5, duration, tick), nil
	default:
		return nil, fmt.Errorf("experiments: unknown shape %q", shape)
	}
}

// ShapeResult is the autopilot outcome of one challenge shape on one engine.
type ShapeResult struct {
	Shape    string
	Engine   string
	Survived bool
	Score    int
	Ticks    int
	// Series pairs target corridor midpoints with delivered throughput per
	// tick, the figure's two curves.
	Targets  []float64
	Measured []float64
}

// PlayShape runs the autopilot through one challenge shape against a real
// workload on the named engine, reproducing the target-vs-delivered series
// of Section 4.1.1. The base rate positions the course relative to the
// engine's capacity: a base near or above capacity forces the crash the demo
// uses to expose hidden weaknesses.
func PlayShape(shape, engine string, base float64, opts Options) (*ShapeResult, error) {
	tick := 500 * time.Millisecond
	course, err := BuildCourse(shape, base, opts.Duration, tick)
	if err != nil {
		return nil, err
	}
	b, err := core.NewBenchmark("ycsb", opts.Scale)
	if err != nil {
		return nil, err
	}
	db, err := dbdriver.Open(engine)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := core.Prepare(b, db, opts.Seed); err != nil {
		return nil, err
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: course.Duration() + 10*time.Second, Rate: base / 2}},
		core.Options{Terminals: opts.Terminals, Seed: opts.Seed})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.Run(ctx)
	}()

	backend := &game.ManagerBackend{Manager: m, Cancel: cancel}
	g := game.New(course, backend, nil, game.Config{Gravity: base / 2, MaxRate: base * 4, Grace: 6})
	res := game.NewAutopilot(g).Play(ctx)

	out := &ShapeResult{
		Shape:    shape,
		Engine:   engine,
		Survived: res.Survived,
		Score:    res.Score,
		Ticks:    len(res.Trajectory),
	}
	for _, r := range res.Trajectory {
		mid := (r.Lo + r.Hi) / 2
		out.Targets = append(out.Targets, mid)
		out.Measured = append(out.Measured, r.Measured)
	}
	return out, nil
}

// GameSessionStep is one scripted step of the Figure 2 walkthrough.
type GameSessionStep struct {
	Step   string
	Detail string
}

// Fig2Session reproduces the demo workflow of Figure 2 headlessly: select a
// benchmark, select a DBMS, play (with live mixture change), and report the
// outcome. It returns the transcript plus the game result.
func Fig2Session(benchName, engine string, opts Options) ([]GameSessionStep, *ShapeResult, error) {
	var mu sync.Mutex
	var steps []GameSessionStep
	record := func(step, detail string) {
		mu.Lock()
		defer mu.Unlock()
		steps = append(steps, GameSessionStep{Step: step, Detail: detail})
	}
	// Figure 2a: select the target benchmark.
	b, err := core.NewBenchmark(benchName, opts.Scale)
	if err != nil {
		return nil, nil, err
	}
	record("select-benchmark", benchName)
	// Figure 2b: select the target DBMS.
	db, err := dbdriver.Open(engine)
	if err != nil {
		return nil, nil, err
	}
	defer db.Close()
	record("select-dbms", fmt.Sprintf("%s (%s)", engine, db.Personality().Description))

	if err := core.Prepare(b, db, opts.Seed); err != nil {
		return nil, nil, err
	}
	record("load", fmt.Sprintf("%d rows", db.Engine().RowCount()))

	// Figure 2c: the main game screen - an easy steps course.
	base := 300.0
	tick := 250 * time.Millisecond
	course, err := BuildCourse("steps", base, opts.Duration, tick)
	if err != nil {
		return nil, nil, err
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: course.Duration() + 10*time.Second, Rate: base / 2}},
		core.Options{Terminals: opts.Terminals, Seed: opts.Seed})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.Run(ctx)
	}()
	backend := &game.ManagerBackend{Manager: m, Cancel: cancel}
	g := game.New(course, backend, nil, game.Config{Gravity: base / 2, MaxRate: base * 4})

	// Figure 2d: dynamically change the workload mixture mid-game.
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-time.After(course.Duration() / 2):
		case <-ctx.Done():
			return
		}
		if err := backend.ChangeMixture("readonly", nil); err == nil {
			record("change-mixture", "preset read-only")
		}
	}()
	res := game.NewAutopilot(g).Play(ctx)
	outcome := "game over"
	if res.Survived {
		outcome = "course cleared"
	}
	record("play", fmt.Sprintf("%s (score %d over %d obstacle ticks)", outcome, res.Score, len(res.Trajectory)))

	sr := &ShapeResult{Shape: "steps", Engine: engine, Survived: res.Survived, Score: res.Score, Ticks: len(res.Trajectory)}
	for _, r := range res.Trajectory {
		sr.Targets = append(sr.Targets, (r.Lo+r.Hi)/2)
		sr.Measured = append(sr.Measured, r.Measured)
	}
	return steps, sr, nil
}
