// Package experiments implements the reproduction harness for every table
// and figure of the paper (see DESIGN.md's experiment index). Each
// experiment is a plain function returning printable rows/series, shared by
// the cmd/experiments binary and the root-level testing.B benchmarks.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	_ "benchpress/internal/benchmarks/all" // register the Table 1 suite
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/stats"
	"benchpress/internal/trace"
)

// Engines lists the target DBMS personalities every comparative experiment
// sweeps.
var Engines = []string{"goserial", "golock", "gomvcc"}

// BenchmarkClass maps each Table 1 benchmark to its class column.
var BenchmarkClass = map[string]string{
	"auctionmark": "Transactional", "chbenchmark": "Transactional",
	"seats": "Transactional", "smallbank": "Transactional",
	"tatp": "Transactional", "tpcc": "Transactional", "voter": "Transactional",
	"epinions": "Web-Oriented", "linkbench": "Web-Oriented",
	"twitter": "Web-Oriented", "wikipedia": "Web-Oriented",
	"resourcestresser": "Feature Testing", "ycsb": "Feature Testing",
	"jpab": "Feature Testing", "sibench": "Feature Testing",
}

// Options tunes experiment durations so tests run fast and the CLI runs at
// full fidelity.
type Options struct {
	// Scale is the benchmark scale factor.
	Scale float64
	// Terminals is the worker count per workload.
	Terminals int
	// Duration is the measured run length per cell.
	Duration time.Duration
	// Seed makes data generation and mixtures reproducible.
	Seed int64
}

// DefaultOptions are the CLI fidelity settings.
func DefaultOptions() Options {
	return Options{Scale: 0.2, Terminals: 8, Duration: 3 * time.Second, Seed: 1}
}

// QuickOptions shrink everything for unit tests and testing.B iterations.
func QuickOptions() Options {
	return Options{Scale: 0.02, Terminals: 4, Duration: 400 * time.Millisecond, Seed: 1}
}

// runWorkload prepares a benchmark on a fresh engine instance and runs one
// phase, returning the manager for inspection.
func runWorkload(benchName, engine string, phases []core.Phase, opts Options) (*core.Manager, error) {
	b, err := core.NewBenchmark(benchName, opts.Scale)
	if err != nil {
		return nil, err
	}
	db, err := dbdriver.Open(engine)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := core.Prepare(b, db, opts.Seed); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", benchName, engine, err)
	}
	m := core.NewManager(b, db, phases, core.Options{Terminals: opts.Terminals, Seed: opts.Seed})
	if err := m.Run(context.Background()); err != nil {
		return nil, err
	}
	return m, nil
}

// ------------------------------------------------------------------ Table 1

// Table1Row is one cell row of the benchmark-inventory experiment: a Table 1
// benchmark running open-loop on one engine.
type Table1Row struct {
	Class     string
	Benchmark string
	Engine    string
	TPS       float64
	AvgLatMS  float64
	P99LatMS  float64
	Aborts    int64
	Errors    int64
}

// Table1 runs every registered benchmark on every engine (open loop) and
// reports throughput and latency, reproducing Table 1 as a living inventory.
// When engines is empty, all three are swept.
func Table1(opts Options, engines ...string) ([]Table1Row, error) {
	if len(engines) == 0 {
		engines = Engines
	}
	names := core.BenchmarkNames()
	sort.Strings(names)
	var rows []Table1Row
	for _, bench := range names {
		// Table 1 is the paper's fixed 15-benchmark inventory; registered
		// extras (the profile-driven synthetic benchmark) are not part of it.
		if _, ok := BenchmarkClass[bench]; !ok {
			continue
		}
		for _, engine := range engines {
			m, err := runWorkload(bench, engine,
				[]core.Phase{{Duration: opts.Duration, Rate: 0}}, opts)
			if err != nil {
				return nil, err
			}
			c := m.Collector()
			g := c.Global()
			rows = append(rows, Table1Row{
				Class:     BenchmarkClass[bench],
				Benchmark: bench,
				Engine:    engine,
				TPS:       float64(c.Committed()) / opts.Duration.Seconds(),
				AvgLatMS:  ms(g.Mean()),
				P99LatMS:  ms(g.Percentile(99)),
				Aborts:    c.Aborted(),
				Errors:    c.Errors(),
			})
		}
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// ----------------------------------------------------------- E-RATE (2.2.1)

// RatePoint is one target-vs-measured observation.
type RatePoint struct {
	Target      float64
	MeasuredTPS float64
	Exponential bool
	Postponed   int64
	// NeverExceeded reports the paper's invariant: the framework never
	// exceeds the target rate (within one window of tolerance).
	NeverExceeded bool
}

// RateControl sweeps target rates under both arrival distributions on the
// MVCC engine with a light YCSB workload, reproducing Section 2.2.1's
// precision claims.
func RateControl(opts Options, targets []float64) ([]RatePoint, error) {
	if len(targets) == 0 {
		targets = []float64{100, 500, 1000, 2000, 4000}
	}
	var out []RatePoint
	for _, exponential := range []bool{false, true} {
		for _, target := range targets {
			m, err := runWorkload("ycsb", "gomvcc",
				[]core.Phase{{Duration: opts.Duration, Rate: target, Exponential: exponential}}, opts)
			if err != nil {
				return nil, err
			}
			measured := float64(m.Collector().Committed()) / opts.Duration.Seconds()
			// Check per-window overshoot against the target.
			exceeded := false
			for _, w := range m.Collector().Windows() {
				if w.TPS(m.Collector().WindowDuration()) > target*1.15+5 {
					exceeded = true
				}
			}
			out = append(out, RatePoint{
				Target:        target,
				MeasuredTPS:   measured,
				Exponential:   exponential,
				Postponed:     m.Postponed(),
				NeverExceeded: !exceeded,
			})
		}
	}
	return out, nil
}

// ------------------------------------------------------ E-MIX (2.2.2/4.1.2)

// MixturePhaseResult is the throughput of one mixture phase.
type MixturePhaseResult struct {
	Phase    string
	TPS      float64
	AbortsPS float64
}

// MixtureFlip runs YCSB on the locking engine through three mixture phases -
// default, write-heavy, read-only - reproducing the demo's observation that
// "switching the workload mixture to a read-heavy workload will boost the
// DBMS's throughput due to reduced lock contention".
func MixtureFlip(opts Options, engine string) ([]MixturePhaseResult, error) {
	if engine == "" {
		engine = "golock"
	}
	// The demo's claim is about lock-bound systems: keep the table small so
	// the Zipfian write hot spot actually contends. Larger scales give the
	// engines enough headroom that writes stop being the bottleneck.
	if opts.Scale > 0.05 {
		opts.Scale = 0.05
	}
	// Hot-spot mixture weights for YCSB:
	// Read, Insert, Scan, Update, Delete, RMW.
	writeHeavy := []float64{5, 5, 0, 70, 0, 20}
	readOnly := []float64{95, 0, 5, 0, 0, 0}
	phases := []core.Phase{
		{Duration: opts.Duration, Rate: 0},                  // default mix
		{Duration: opts.Duration, Rate: 0, Mix: writeHeavy}, // write-heavy
		{Duration: opts.Duration, Rate: 0, Mix: readOnly},   // read-heavy
	}
	// Per-phase attribution comes from the transaction trace (each entry
	// carries its phase ordinal), which is exact regardless of window size.
	b, err := core.NewBenchmark("ycsb", opts.Scale)
	if err != nil {
		return nil, err
	}
	db, err := dbdriver.Open(engine)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := core.Prepare(b, db, opts.Seed); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	m := core.NewManager(b, db, phases, core.Options{
		Terminals: opts.Terminals, Seed: opts.Seed, Trace: tw,
	})
	if err := m.Run(context.Background()); err != nil {
		return nil, err
	}
	entries, err := trace.Read(&buf)
	if err != nil {
		return nil, err
	}
	rep := trace.Analyze(entries)
	names := []string{"default", "write-heavy", "read-only"}
	out := make([]MixturePhaseResult, len(names))
	for i, name := range names {
		out[i] = MixturePhaseResult{Phase: name}
	}
	for _, pr := range rep.Phases {
		if pr.Phase < 0 || pr.Phase >= len(names) {
			continue
		}
		secs := pr.Duration.Seconds()
		if secs <= 0 {
			secs = opts.Duration.Seconds()
		}
		out[pr.Phase].TPS = pr.TPS
		out[pr.Phase].AbortsPS = float64(pr.Aborted) / secs
	}
	return out, nil
}

// ------------------------------------------------------------ E-TEN (2.2.3)

// TenancyResult reports per-tenant throughput for the quiet and noisy
// halves of the multi-tenancy experiment.
type TenancyResult struct {
	Tenant         string
	TPSAlonePhase  float64 // while the co-tenant is idle/throttled
	TPSContended   float64 // while the co-tenant bursts
	DegradationPct float64
}

// MultiTenancy runs two workloads against one engine instance: tenant A
// (YCSB read-mostly, throttled) and tenant B (YCSB write-heavy) that stays
// quiet for the first half and bursts open-loop in the second half. The
// interference on tenant A reproduces the two-player takeaway ("one player
// affecting the other").
func MultiTenancy(opts Options, engine string) ([]TenancyResult, error) {
	if engine == "" {
		engine = "golock"
	}
	db, err := dbdriver.Open(engine)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	benchA, err := core.NewBenchmark("ycsb", opts.Scale)
	if err != nil {
		return nil, err
	}
	if err := core.Prepare(benchA, db, opts.Seed); err != nil {
		return nil, err
	}
	// Tenant B shares tenant A's database instance and tables.
	benchB, err := core.NewBenchmark("ycsb", opts.Scale)
	if err != nil {
		return nil, err
	}

	half := opts.Duration
	readMostly := []float64{90, 0, 5, 5, 0, 0}
	writeStorm := []float64{0, 10, 0, 80, 0, 10}
	quiet := []float64{100, 0, 0, 0, 0, 0}

	mA := core.NewManager(benchA, db, []core.Phase{
		{Duration: 2 * half, Rate: 0, Mix: readMostly},
	}, core.Options{Terminals: opts.Terminals, Name: "tenant-a", Seed: opts.Seed})
	mB := core.NewManager(benchB, db, []core.Phase{
		{Duration: half, Rate: 20, Mix: quiet},     // near-idle first half
		{Duration: half, Rate: 0, Mix: writeStorm}, // open-loop burst second half
	}, core.Options{Terminals: opts.Terminals, Name: "tenant-b", Seed: opts.Seed + 1})

	if err := core.RunAll(context.Background(), mA, mB); err != nil {
		return nil, err
	}

	result := func(m *core.Manager, name string) TenancyResult {
		windowDur := m.Collector().WindowDuration()
		halfWindows := int(half / windowDur)
		if halfWindows < 1 {
			halfWindows = 1
		}
		var first, second int64
		var firstN, secondN int
		for _, w := range m.Collector().Windows() {
			if w.Index < halfWindows {
				first += w.Committed
				firstN++
			} else {
				second += w.Committed
				secondN++
			}
		}
		r := TenancyResult{Tenant: name}
		if firstN > 0 {
			r.TPSAlonePhase = float64(first) / (float64(firstN) * windowDur.Seconds())
		}
		if secondN > 0 {
			r.TPSContended = float64(second) / (float64(secondN) * windowDur.Seconds())
		}
		if r.TPSAlonePhase > 0 {
			r.DegradationPct = 100 * (1 - r.TPSContended/r.TPSAlonePhase)
		}
		return r
	}
	return []TenancyResult{result(mA, "tenant-a"), result(mB, "tenant-b")}, nil
}

// --------------------------------------------------------- E-TUN (4.1.1/4.3)

// TunnelResult is the steadiness report of one engine holding a constant
// target rate (the game's tunnel challenge).
type TunnelResult struct {
	Engine   string
	Target   float64
	MeanTPS  float64
	JitterCV float64
	// Passed applies the game's tunnel criterion: every window within the
	// corridor width around the target.
	Passed      bool
	WorstWindow float64
}

// TunnelJitter holds each engine at a constant rate under a write-leaning
// YCSB mixture and reports the per-window oscillation, reproducing the
// takeaway that "certain DBMSs cannot pass the tunnel tests, since they
// produce oscillating throughputs".
func TunnelJitter(opts Options, target, widthPct float64) ([]TunnelResult, error) {
	if target <= 0 {
		// Near the weakest engine's capacity (goserial sustains ~3.3k tps
		// open-loop at default settings): the tunnel separates engines that
		// hold the rate from engines that oscillate at their limit.
		target = 3000
	}
	if widthPct <= 0 {
		widthPct = 25
	}
	mix := []float64{30, 5, 0, 55, 0, 10} // write-leaning: stresses commit paths
	var out []TunnelResult
	for _, engine := range Engines {
		m, err := runWorkload("ycsb", engine,
			[]core.Phase{{Duration: opts.Duration, Rate: target, Mix: mix}}, opts)
		if err != nil {
			return nil, err
		}
		windows := m.Collector().Windows()
		dur := m.Collector().WindowDuration()
		series := make([]int, 0, len(windows))
		passed := true
		worst := target
		lo, hi := target*(1-widthPct/100), target*(1+widthPct/100)
		for i, w := range windows {
			tps := w.TPS(dur)
			series = append(series, int(w.Committed))
			if i == 0 {
				continue // warm-up window
			}
			if tps < lo || tps > hi {
				passed = false
			}
			if absf(tps-target) > absf(worst-target) {
				worst = tps
			}
		}
		mean := float64(m.Collector().Committed()) / opts.Duration.Seconds()
		out = append(out, TunnelResult{
			Engine:      engine,
			Target:      target,
			MeanTPS:     mean,
			JitterCV:    trace.JitterCV(series),
			Passed:      passed,
			WorstWindow: worst,
		})
	}
	return out, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ------------------------------------------------------------------ helpers

// SnapshotOf exposes a manager snapshot for printing.
func SnapshotOf(m *core.Manager) stats.Snapshot { return m.Collector().Snapshot() }
