package experiments

import (
	"testing"
	"time"
)

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := QuickOptions()
	opts.Duration = 200 * time.Millisecond
	rows, err := Table1(opts, "gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15 benchmarks", len(rows))
	}
	for _, r := range rows {
		if r.TPS <= 0 {
			t.Errorf("%s on %s: zero throughput", r.Benchmark, r.Engine)
		}
		if r.Errors > 0 {
			t.Errorf("%s on %s: %d errors", r.Benchmark, r.Engine, r.Errors)
		}
		if r.Class == "" {
			t.Errorf("%s: missing class", r.Benchmark)
		}
	}
}

func TestRateControlQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Duration = 600 * time.Millisecond
	pts, err := RateControl(opts, []float64{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2 targets x 2 arrival distributions
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.NeverExceeded {
			t.Errorf("target %.0f (exp=%v): exceeded the target rate", p.Target, p.Exponential)
		}
		if p.MeasuredTPS < p.Target*0.7 {
			t.Errorf("target %.0f (exp=%v): measured only %.1f", p.Target, p.Exponential, p.MeasuredTPS)
		}
	}
}

func TestMixtureFlipQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Duration = 500 * time.Millisecond
	res, err := MixtureFlip(opts, "golock")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("phases = %d", len(res))
	}
	byName := map[string]MixturePhaseResult{}
	for _, r := range res {
		byName[r.Phase] = r
	}
	// The contention signal must move in the demo's direction: the
	// write-heavy phase aborts more than the read-only phase, and the
	// read-only phase makes progress. (The throughput boost itself is
	// asserted in BenchmarkMixture_ReadHeavyBoost and recorded at full
	// fidelity in EXPERIMENTS.md; under the race detector's instrumentation
	// the raw tps ordering can invert, the abort ordering cannot.)
	if byName["read-only"].TPS <= 0 {
		t.Errorf("read-only phase made no progress: %+v", byName["read-only"])
	}
	if byName["write-heavy"].AbortsPS < byName["read-only"].AbortsPS {
		t.Errorf("write-heavy aborts/s (%.0f) below read-only (%.0f)",
			byName["write-heavy"].AbortsPS, byName["read-only"].AbortsPS)
	}
}

func TestMultiTenancyQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Duration = 700 * time.Millisecond
	res, err := MultiTenancy(opts, "golock")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("tenants = %d", len(res))
	}
	a := res[0]
	if a.TPSAlonePhase <= 0 {
		t.Fatalf("tenant-a made no progress: %+v", a)
	}
	// Interference direction: tenant A should not get faster when B bursts.
	if a.TPSContended > a.TPSAlonePhase*1.3 {
		t.Errorf("tenant-a sped up under contention: %+v", a)
	}
}

func TestTunnelJitterQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := QuickOptions()
	opts.Duration = 1500 * time.Millisecond
	res, err := TunnelJitter(opts, 300, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("engines = %d", len(res))
	}
	for _, r := range res {
		if r.MeanTPS <= 0 {
			t.Errorf("%s: zero throughput", r.Engine)
		}
	}
}

func TestBuildCourseShapes(t *testing.T) {
	for _, shape := range ShapeNames {
		c, err := BuildCourse(shape, 500, 2*time.Second, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Points) == 0 {
			t.Errorf("%s: empty course", shape)
		}
	}
	if _, err := BuildCourse("spiral", 500, time.Second, time.Millisecond); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestPlayShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := QuickOptions()
	opts.Duration = 3 * time.Second
	res, err := PlayShape("steps", "gomvcc", 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks == 0 || len(res.Targets) != res.Ticks {
		t.Fatalf("trajectory: %+v", res)
	}
}

func TestFig2SessionQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := QuickOptions()
	opts.Duration = 3 * time.Second
	steps, res, err := Fig2Session("ycsb", "gomvcc", opts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"select-benchmark": false, "select-dbms": false, "load": false, "play": false}
	for _, s := range steps {
		if _, ok := want[s.Step]; ok {
			want[s.Step] = true
		}
	}
	for step, seen := range want {
		if !seen {
			t.Errorf("missing session step %q", step)
		}
	}
	if res.Ticks == 0 {
		t.Fatal("no game trajectory")
	}
}
