package synth

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"benchpress/internal/trace"
)

// buildCapture feeds a deterministic Poisson-ish stream of attempts into a
// Capture: three types at 60/30/10, exponential gaps with mean 2ms.
func buildCapture(t *testing.T, n int) *Capture {
	t.Helper()
	c := NewCapture("ycsb", "gomvcc", 2)
	rng := rand.New(rand.NewSource(42))
	types := []string{"Read", "Update", "Insert"}
	weights := []float64{0.6, 0.3, 0.1}
	var clock int64
	for i := 0; i < n; i++ {
		clock += int64(rng.ExpFloat64() * 2000) // mean 2ms in us
		r := rng.Float64()
		ty := types[0]
		switch {
		case r >= weights[0]+weights[1]:
			ty = types[2]
		case r >= weights[0]:
			ty = types[1]
		}
		e := trace.Entry{StartUS: clock, LatencyUS: 100 + rng.Int63n(400), Type: ty, Status: "ok"}
		var args []any
		if i%5 == 0 {
			args = []any{rng.Intn(100), "payload"}
		}
		c.ObserveAttempt(e, args)
	}
	return c
}

func TestCaptureFinishProfile(t *testing.T) {
	c := buildCapture(t, 5000)
	st := c.Status()
	if st.Entries != 5000 || st.Sampled != 1000 || len(st.Types) != 3 {
		t.Fatalf("status = %+v", st)
	}
	p, err := c.Finish("p1")
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "p1" || p.Benchmark != "ycsb" || p.Scale != 2 || p.DBMS != "gomvcc" {
		t.Fatalf("profile identity = %+v", p)
	}
	if p.TotalAttempts() != 5000 {
		t.Fatalf("total attempts = %d", p.TotalAttempts())
	}
	// Captured proportions within ±5 points of the generating mixture.
	want := map[string]float64{"Read": 0.6, "Update": 0.3, "Insert": 0.1}
	for _, tp := range p.Types {
		if math.Abs(tp.Proportion-want[tp.Name]) > 0.05 {
			t.Errorf("type %s proportion %.3f, want ~%.2f", tp.Name, tp.Proportion, want[tp.Name])
		}
		if tp.MeanLatencyUS < 100 || tp.MeanLatencyUS > 500 {
			t.Errorf("type %s mean latency %.0f", tp.Name, tp.MeanLatencyUS)
		}
		if len(tp.Params) != 2 {
			t.Fatalf("type %s params = %d positions", tp.Name, len(tp.Params))
		}
		// Position 0 was numeric in [0,100); position 1 a constant string.
		if tp.Params[0].NumericCount == 0 || tp.Params[0].Min < 0 || tp.Params[0].Max >= 100 {
			t.Errorf("numeric stats = %+v", tp.Params[0])
		}
		if tp.Params[1].Distinct != 1 || tp.Params[1].Top[0].Value != "payload" {
			t.Errorf("string stats = %+v", tp.Params[1])
		}
	}
	// The captured gaps were exponential with mean 2ms → CV near 1.
	if p.InterArrivalCV < 0.8 || p.InterArrivalCV > 1.2 {
		t.Errorf("inter-arrival CV = %.2f, want ~1", p.InterArrivalCV)
	}
	if len(p.InterArrivalUS) < 1000 {
		t.Errorf("inter-arrival sample = %d gaps", len(p.InterArrivalUS))
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	c := buildCapture(t, 2000)
	p, err := c.Finish("p1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != p.ID || back.Rate != p.Rate || len(back.Types) != len(p.Types) ||
		len(back.InterArrivalUS) != len(p.InterArrivalUS) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
}

func TestProfileValidate(t *testing.T) {
	for _, p := range []*Profile{
		{Rate: 10, Types: []TypeProfile{{Name: "A"}}},                                                   // no benchmark
		{Benchmark: "ycsb", Rate: 10},                                                                   // no types
		{Benchmark: "ycsb", Types: []TypeProfile{{Name: "A"}}},                                          // no rate
		{Benchmark: "ycsb", Rate: 10, Types: []TypeProfile{{Name: "A"}}, InterArrivalUS: []int64{5, 3}}, // unsorted
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %+v validated", p)
		}
	}
}

// TestScheduleConformance is the statistical acceptance check: a schedule
// synthesized from a captured profile must reproduce the source
// inter-arrival CDF within a KS tolerance at a fixed seed, and
// amplification must compress the gaps by exactly the dial.
func TestScheduleConformance(t *testing.T) {
	c := buildCapture(t, 20000)
	p, err := c.Finish("p1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSynthesizer(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	gaps := s.SortedSchedule(8000, 7)
	if d := KSDistance(gaps, p.InterArrivalUS); d > 0.05 {
		t.Fatalf("KS distance %0.3f vs source CDF, want <= 0.05", d)
	}

	// ×10 amplification: gaps 10× tighter; rescaling by 10 restores the CDF.
	s10, err := NewSynthesizer(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := s10.TargetRate(); math.Abs(got-10*p.Rate) > 1e-9 {
		t.Fatalf("target rate %v, want %v", got, 10*p.Rate)
	}
	amp := s10.SortedSchedule(8000, 7)
	if d := KSDistance(ScaleGaps(amp, 10), p.InterArrivalUS); d > 0.05 {
		t.Fatalf("amplified KS distance %0.3f after rescale", d)
	}
	var mean, mean10 float64
	for i := range gaps {
		mean += float64(gaps[i])
	}
	for i := range amp {
		mean10 += float64(amp[i])
	}
	ratio := mean / mean10
	if ratio < 9 || ratio > 11 {
		t.Fatalf("amplification ratio %.2f, want ~10", ratio)
	}
}

func TestSynthesizerSpec(t *testing.T) {
	c := buildCapture(t, 5000)
	p, err := c.Finish("p1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSynthesizer(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Skew = 0.4
	spec := s.Spec()
	// Exponential-gapped capture (CV ~1) auto-selects Poisson.
	if spec.Process != "poisson" {
		t.Fatalf("process = %q", spec.Process)
	}
	if spec.BaseRate != p.Rate || spec.Multiplier != 3 || spec.Skew != 0.4 {
		t.Fatalf("spec = %+v", spec)
	}
	// A metronomic profile auto-selects uniform.
	s.Profile.InterArrivalCV = 0.01
	s.Process = ""
	if got := s.Spec().Process; got != "uniform" {
		t.Fatalf("low-CV process = %q", got)
	}
	// Explicit override wins.
	s.Process = "burst"
	if got := s.Spec().Process; got != "burst" {
		t.Fatalf("override process = %q", got)
	}
}

func TestScheduleExponentialFallback(t *testing.T) {
	p := &Profile{ID: "x", Benchmark: "ycsb", Rate: 500,
		Types: []TypeProfile{{Name: "Read", Attempts: 1, Proportion: 1}}}
	s, err := NewSynthesizer(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	gaps := s.Schedule(4000, 3)
	var sum float64
	for _, g := range gaps {
		sum += float64(g)
	}
	mean := sum / float64(len(gaps))
	// Exponential at 500/s → mean gap 2000us.
	if mean < 1800 || mean > 2200 {
		t.Fatalf("fallback mean gap %.0f us, want ~2000", mean)
	}
}

func TestKSDistance(t *testing.T) {
	a := []int64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	b := []int64{101, 102, 103, 104, 105}
	if d := KSDistance(a, b); d != 1 {
		t.Fatalf("disjoint distance %v", d)
	}
	if d := KSDistance(nil, a); d != 1 {
		t.Fatalf("empty distance %v", d)
	}
}

func TestDecimate(t *testing.T) {
	src := make([]int64, 10000)
	for i := range src {
		src[i] = int64(i)
	}
	out := decimate(src, 512)
	if len(out) != 512 {
		t.Fatalf("len = %d", len(out))
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatal("not sorted")
	}
	if out[0] != 0 || out[len(out)-1] != 9999 {
		t.Fatalf("extremes = %d..%d", out[0], out[len(out)-1])
	}
	// Quantiles survive decimation.
	if d := KSDistance(out, src); d > 0.01 {
		t.Fatalf("decimation KS %v", d)
	}
	short := []int64{1, 2, 3}
	if got := decimate(short, 512); len(got) != 3 {
		t.Fatalf("short sample decimated to %d", len(got))
	}
}

func TestCaptureTooSmall(t *testing.T) {
	c := NewCapture("ycsb", "gomvcc", 1)
	if _, err := c.Finish("p1"); err == nil {
		t.Fatal("empty capture produced a profile")
	}
}
