package synth

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"benchpress/internal/trace"
)

// arrivalCap bounds the raw arrival timestamps kept for the inter-arrival
// CDF; attempts past the cap still count toward the mixture and rate.
const arrivalCap = 1 << 16

// profileSampleCap bounds the inter-arrival sample persisted in a profile.
const profileSampleCap = 8192

// valueTrackCap bounds the distinct values tracked per argument position;
// once full, only already-seen values keep counting (top-K stays exact for
// values that entered early, which hot keys do by definition).
const valueTrackCap = 256

// topValues is how many frequent values a ParamStat retains.
const topValues = 8

// Capture accumulates a running workload's attempts into a Profile. It
// implements core.AttemptObserver (the manager calls ObserveAttempt from
// every worker) without importing core — attach it with
// Manager.SetCapture(c, sampleEvery).
type Capture struct {
	benchmark string
	dbms      string
	scale     float64

	mu       sync.Mutex
	started  time.Time
	types    map[string]*typeAcc
	order    []string
	arrivals []int64 // StartUS of the first arrivalCap attempts
	seen     int64
	sampled  int64
}

// typeAcc accumulates one transaction type.
type typeAcc struct {
	attempts  int64
	committed int64
	sumLatUS  int64
	params    []*paramAcc
}

// paramAcc accumulates one argument position.
type paramAcc struct {
	count    int64
	numCount int64
	sum      float64
	min, max float64
	values   map[string]int64
	overflow bool
}

// NewCapture starts an empty capture for a workload of the given source
// benchmark, target DBMS, and scale (the metadata a replay needs).
func NewCapture(benchmark, dbms string, scale float64) *Capture {
	if scale <= 0 {
		scale = 1
	}
	return &Capture{
		benchmark: benchmark,
		dbms:      dbms,
		scale:     scale,
		started:   time.Now(),
		types:     map[string]*typeAcc{},
	}
}

// ObserveAttempt records one attempt; args is non-nil only on attempts the
// manager sampled for parameters. Safe for concurrent workers.
func (c *Capture) ObserveAttempt(e trace.Entry, args []any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen++
	if len(c.arrivals) < arrivalCap {
		c.arrivals = append(c.arrivals, e.StartUS)
	}
	acc := c.types[e.Type]
	if acc == nil {
		acc = &typeAcc{}
		c.types[e.Type] = acc
		c.order = append(c.order, e.Type)
	}
	acc.attempts++
	if e.Status == "ok" {
		acc.committed++
		acc.sumLatUS += e.LatencyUS
	}
	if args == nil {
		return
	}
	c.sampled++
	for pos, a := range args {
		for pos >= len(acc.params) {
			acc.params = append(acc.params, &paramAcc{values: map[string]int64{}})
		}
		acc.params[pos].observe(a)
	}
}

// observe folds one argument value into the position accumulator.
func (p *paramAcc) observe(a any) {
	p.count++
	var num float64
	numeric := true
	var key string
	switch v := a.(type) {
	case int:
		num, key = float64(v), strconv.Itoa(v)
	case int64:
		num, key = float64(v), strconv.FormatInt(v, 10)
	case float64:
		num, key = v, strconv.FormatFloat(v, 'g', -1, 64)
	case string:
		numeric = false
		key = v
		if len(key) > 32 {
			key = key[:32]
		}
	default:
		numeric = false
		key = trace.FormatParams([]any{a})
	}
	if numeric {
		if p.numCount == 0 || num < p.min {
			p.min = num
		}
		if p.numCount == 0 || num > p.max {
			p.max = num
		}
		p.numCount++
		p.sum += num
	}
	if n, ok := p.values[key]; ok {
		p.values[key] = n + 1
	} else if len(p.values) < valueTrackCap {
		p.values[key] = 1
	} else {
		p.overflow = true
	}
}

// CaptureStatus is the live state of a capture, for the status route.
type CaptureStatus struct {
	Benchmark  string   `json:"benchmark"`
	Entries    int64    `json:"entries"`
	Sampled    int64    `json:"sampled"`
	ElapsedSec float64  `json:"elapsed_sec"`
	Types      []string `json:"types"`
}

// Status reports the capture's progress.
func (c *Capture) Status() CaptureStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CaptureStatus{
		Benchmark:  c.benchmark,
		Entries:    c.seen,
		Sampled:    c.sampled,
		ElapsedSec: time.Since(c.started).Seconds(),
		Types:      append([]string(nil), c.order...),
	}
}

// Finish freezes the capture into a profile. The capture must have seen at
// least two attempts; detach it from the manager first (SetCapture(nil))
// so the totals stop moving.
func (c *Capture) Finish(id string) (*Profile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dur := time.Since(c.started).Seconds()
	p := &Profile{
		ID:          id,
		Benchmark:   c.benchmark,
		DBMS:        c.dbms,
		Scale:       c.scale,
		DurationSec: dur,
		CreatedUnix: time.Now().Unix(),
	}
	if dur > 0 {
		p.Rate = float64(c.seen) / dur
	}
	for _, name := range c.order {
		acc := c.types[name]
		tp := TypeProfile{
			Name:      name,
			Attempts:  acc.attempts,
			Committed: acc.committed,
		}
		if c.seen > 0 {
			tp.Proportion = float64(acc.attempts) / float64(c.seen)
		}
		if acc.committed > 0 {
			tp.MeanLatencyUS = float64(acc.sumLatUS) / float64(acc.committed)
		}
		for pos, pa := range acc.params {
			tp.Params = append(tp.Params, pa.stat(pos))
		}
		p.Types = append(p.Types, tp)
	}
	// Inter-arrival CDF: sort the captured start offsets and difference
	// them. The capture keeps the run's first arrivalCap attempts, so the
	// gaps are true consecutive inter-arrivals for that prefix.
	if len(c.arrivals) >= 2 {
		starts := append([]int64(nil), c.arrivals...)
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		gaps := make([]int64, 0, len(starts)-1)
		for i := 1; i < len(starts); i++ {
			gaps = append(gaps, starts[i]-starts[i-1])
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		p.InterArrivalCV = cv(gaps)
		p.InterArrivalUS = decimate(gaps, profileSampleCap)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// stat freezes a paramAcc into its serializable summary.
func (p *paramAcc) stat(pos int) ParamStat {
	st := ParamStat{
		Pos:          pos,
		Count:        p.count,
		NumericCount: p.numCount,
		Distinct:     len(p.values),
	}
	if p.numCount > 0 {
		st.Min, st.Max, st.Mean = p.min, p.max, p.sum/float64(p.numCount)
	}
	type kv struct {
		k string
		n int64
	}
	ranked := make([]kv, 0, len(p.values))
	for k, n := range p.values {
		ranked = append(ranked, kv{k, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].k < ranked[j].k
	})
	for i := 0; i < len(ranked) && i < topValues; i++ {
		st.Top = append(st.Top, ValueCount{Value: ranked[i].k, Count: ranked[i].n})
	}
	return st
}
