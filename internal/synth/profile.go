// Package synth implements trace-driven workload synthesis: a capture mode
// that records a running workload's per-type arrival process and parameter
// distributions into a serializable workload profile, and a synthesizer
// that replays scaled and reshaped variants of that profile (Poisson and
// burst arrival processes, diurnal rate shapes, hot-key skew dialing, and
// "×N users" amplification). It is the Lauca/Redbench-style scenario axis
// on top of the testbed's dynamic workload control: the workload itself is
// derived from a measured run instead of a hand-written static mix.
package synth

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// ValueCount is one frequent parameter value with its observed count.
type ValueCount struct {
	Value string `json:"value"`
	Count int64  `json:"count"`
}

// ParamStat summarizes one statement-argument position of one transaction
// type across the sampled attempts: numeric moments when the position held
// numbers, plus the most frequent values (the hot-key evidence the skew
// dial amplifies).
type ParamStat struct {
	// Pos is the zero-based argument position.
	Pos int `json:"pos"`
	// Count is the number of sampled observations of this position.
	Count int64 `json:"count"`
	// NumericCount of them parsed as numbers; Min/Max/Mean cover those.
	NumericCount int64   `json:"numeric_count,omitempty"`
	Min          float64 `json:"min,omitempty"`
	Max          float64 `json:"max,omitempty"`
	Mean         float64 `json:"mean,omitempty"`
	// Distinct counts distinct observed values (saturating at the tracking
	// cap); Top lists the most frequent ones.
	Distinct int          `json:"distinct"`
	Top      []ValueCount `json:"top,omitempty"`
}

// TypeProfile is the captured record of one transaction type.
type TypeProfile struct {
	Name string `json:"name"`
	// Attempts and Committed count the type's captured executions.
	Attempts  int64 `json:"attempts"`
	Committed int64 `json:"committed"`
	// Proportion is Attempts over the profile total (the mixture weight).
	Proportion float64 `json:"proportion"`
	// MeanLatencyUS is the mean committed latency in microseconds.
	MeanLatencyUS float64 `json:"mean_latency_us"`
	// Params holds per-argument-position distributions from sampled
	// attempts.
	Params []ParamStat `json:"params,omitempty"`
}

// Profile is a serializable workload profile: everything the synthesizer
// needs to replay a scaled variant of a captured run.
type Profile struct {
	// ID is the profile's registry key (assigned when stored).
	ID string `json:"id"`
	// Name is an optional human label.
	Name string `json:"name,omitempty"`
	// Benchmark and Scale identify the source workload whose procedures the
	// synthetic benchmark replays; DBMS records the capture target.
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	DBMS      string  `json:"dbms,omitempty"`
	// DurationSec is the captured wall-clock span.
	DurationSec float64 `json:"duration_sec"`
	// Rate is the observed aggregate arrival rate (attempts/second).
	Rate float64 `json:"rate"`
	// Types lists per-transaction-type records, first-seen order.
	Types []TypeProfile `json:"types"`
	// InterArrivalUS is a sorted sample of aggregate inter-arrival gaps in
	// microseconds (an empirical CDF; decimated to a bounded quantile
	// sketch when the capture saw more arrivals than the cap).
	InterArrivalUS []int64 `json:"inter_arrival_us,omitempty"`
	// InterArrivalCV is the coefficient of variation of the gaps: ~0 for
	// metronomic arrivals, ~1 for Poisson, >1 for bursty traffic.
	InterArrivalCV float64 `json:"inter_arrival_cv"`
	// CreatedUnix is the capture end time (seconds since epoch).
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// TotalAttempts sums the per-type attempt counts.
func (p *Profile) TotalAttempts() int64 {
	var n int64
	for _, t := range p.Types {
		n += t.Attempts
	}
	return n
}

// Mix returns the captured mixture proportions, parallel to Types.
func (p *Profile) Mix() []float64 {
	out := make([]float64, len(p.Types))
	for i, t := range p.Types {
		out[i] = t.Proportion
	}
	return out
}

// Validate checks the invariants a stored or uploaded profile must hold.
func (p *Profile) Validate() error {
	if p.Benchmark == "" {
		return fmt.Errorf("synth: profile has no source benchmark")
	}
	if len(p.Types) == 0 {
		return fmt.Errorf("synth: profile has no transaction types")
	}
	if p.Rate <= 0 || math.IsInf(p.Rate, 0) || math.IsNaN(p.Rate) {
		return fmt.Errorf("synth: profile rate must be positive, got %v", p.Rate)
	}
	for i := 1; i < len(p.InterArrivalUS); i++ {
		if p.InterArrivalUS[i] < p.InterArrivalUS[i-1] {
			return fmt.Errorf("synth: inter-arrival sample not sorted at %d", i)
		}
	}
	return nil
}

// WriteTo serializes the profile as indented JSON.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadProfile parses and validates a serialized profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("synth: decode profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// KSDistance computes the two-sample Kolmogorov–Smirnov statistic (the
// supremum distance between empirical CDFs) of two sorted samples. The
// conformance tests hold a synthesized replay to a KS tolerance against its
// source profile.
func KSDistance(a, b []int64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance every duplicate of the smaller value (both sides on a tie)
		// before measuring, so equal samples contribute zero distance.
		x, y := a[i], b[j]
		if x <= y {
			for i < len(a) && a[i] == x {
				i++
			}
		}
		if y <= x {
			for j < len(b) && b[j] == y {
				j++
			}
		}
		if diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b))); diff > d {
			d = diff
		}
	}
	return d
}

// cv returns the coefficient of variation (stddev/mean) of a sample.
func cv(sample []int64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += float64(v)
	}
	mean := sum / float64(len(sample))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range sample {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(sample))) / mean
}

// decimate reduces a sorted sample to at most max entries while preserving
// its quantile structure (every k-th order statistic plus the extremes).
func decimate(sorted []int64, max int) []int64 {
	if len(sorted) <= max || max < 2 {
		return sorted
	}
	out := make([]int64, 0, max)
	step := float64(len(sorted)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, sorted[int(float64(i)*step+0.5)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
